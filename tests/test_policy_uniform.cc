/** @file Unit tests for the uniform per-core budgeting baseline. */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "helpers.hh"

namespace gpm
{
namespace
{

using test::randomMatrix;

PolicyInput
inputFor(const ModeMatrix &m, const std::vector<CoreSample> &s,
         Watts budget, const DvfsTable &dvfs)
{
    PolicyInput in;
    in.predicted = &m;
    in.samples = &s;
    in.budgetW = budget;
    in.dvfs = &dvfs;
    return in;
}

std::vector<CoreSample>
samplesFor(const ModeMatrix &m)
{
    std::vector<CoreSample> s(m.numCores());
    for (std::size_t c = 0; c < s.size(); c++) {
        s[c].mode = modes::Turbo;
        s[c].powerW = m.powerW(c, modes::Turbo);
        s[c].bips = m.bips(c, modes::Turbo);
    }
    return s;
}

TEST(UniformBudgetPolicy, EachCoreFitsItsSlice)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(4, 3, 5);
    auto samples = samplesFor(m);
    UniformBudgetPolicy policy;
    std::vector<PowerMode> floor_assign(4, 2), turbo_assign(4, 0);
    double budget = 0.5 * (m.totalPowerW(floor_assign) +
                           m.totalPowerW(turbo_assign));
    auto in = inputFor(m, samples, budget, dvfs);
    auto assign = policy.decide(in);
    double slice = budget / 4.0;
    for (std::size_t c = 0; c < 4; c++) {
        if (m.powerW(c, static_cast<PowerMode>(2)) <= slice)
            EXPECT_LE(m.powerW(c, assign[c]), slice);
    }
    EXPECT_LE(m.totalPowerW(assign), budget + 1e-9);
}

TEST(UniformBudgetPolicy, CannotShareSlackAcrossCores)
{
    DvfsTable dvfs = DvfsTable::classic3();
    // Core 0 cheap, core 1 expensive. Global budget would let core 1
    // run Turbo using core 0's slack; uniform slicing cannot.
    ModeMatrix m(2, 2);
    m.powerW(0, 0) = 4.0;
    m.powerW(0, 1) = 3.0;
    m.bips(0, 0) = 1.0;
    m.bips(0, 1) = 0.9;
    m.powerW(1, 0) = 12.0;
    m.powerW(1, 1) = 7.0;
    m.bips(1, 0) = 2.0;
    m.bips(1, 1) = 1.7;
    auto samples = samplesFor(m);
    UniformBudgetPolicy uniform;
    auto in = inputFor(m, samples, 16.0, dvfs);
    auto u = uniform.decide(in);
    EXPECT_EQ(u[1], 1); // 12 W > 8 W slice
    // MaxBIPS exploits the global view.
    auto g = MaxBipsPolicy::solve(m, 16.0,
                                  MaxBipsPolicy::Search::Exhaustive);
    EXPECT_EQ(g[1], 0); // 4 + 12 = 16 fits globally
    EXPECT_GT(m.totalBips(g), m.totalBips(u));
}

TEST(UniformBudgetPolicy, InfeasibleSliceFallsToSlowest)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(3, 3, 9);
    auto samples = samplesFor(m);
    UniformBudgetPolicy policy;
    auto in = inputFor(m, samples, 0.001, dvfs);
    auto assign = policy.decide(in);
    for (auto a : assign)
        EXPECT_EQ(a, 2);
}

TEST(UniformBudgetPolicy, FactoryCreates)
{
    auto p = makePolicy("UniformBudget");
    EXPECT_STREQ(p->name(), "UniformBudget");
    EXPECT_FALSE(p->wantsOracle());
}

} // namespace
} // namespace gpm
