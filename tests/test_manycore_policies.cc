/**
 * @file
 * Tests for the many-core policy engine: the shared MCKP kernels
 * (frontiers, heap greedy, LP bound), the three approximate policies
 * (MaxBIPS-DP, WaterFill, GreedyTurbo) and their factory names, the
 * policy feasibility contract across every registered decision
 * policy, phase-shifted profile replay (seekFraction), and the
 * many<N> scenario axis end to end through parse/validate/hash.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/mckp.hh"
#include "core/policies.hh"
#include "helpers.hh"
#include "service/scenario.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

using test::randomMatrix;
using test::syntheticProfile;

std::vector<CoreSample>
samplesFromMatrix(const ModeMatrix &m, PowerMode cur = 0)
{
    std::vector<CoreSample> s(m.numCores());
    for (std::size_t c = 0; c < s.size(); c++) {
        s[c].mode = cur;
        s[c].powerW = m.powerW(c, cur);
        s[c].bips = m.bips(c, cur);
        s[c].memIntensity = 1.0 / (1.0 + m.bips(c, cur));
    }
    return s;
}

/** Best BIPS over all feasible assignments, -1 when none fit. */
double
bruteForceBips(const ModeMatrix &m, Watts budget)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();
    std::vector<PowerMode> cur(n, 0);
    double best = -1.0;
    for (;;) {
        if (m.totalPowerW(cur) <= budget)
            best = std::max(best, m.totalBips(cur));
        std::size_t c = 0;
        while (c < n && ++cur[c] == static_cast<PowerMode>(k))
            cur[c++] = 0;
        if (c == n)
            break;
    }
    return best;
}

// ---------------------------------------------------------------
// MCKP kernels
// ---------------------------------------------------------------

TEST(Frontier, RecordsModesWhileBuildingHull)
{
    // Core 0: mode 1 is dominated (more power, less BIPS than mode
    // 0 after sorting); mode 3 duplicates mode 2's point exactly.
    ModeMatrix m(1, 4);
    m.powerW(0, 0) = 10.0;
    m.bips(0, 0) = 2.0;
    m.powerW(0, 1) = 9.0;
    m.bips(0, 1) = 0.5; // dominated by mode 2/3
    m.powerW(0, 2) = 6.0;
    m.bips(0, 2) = 1.5;
    m.powerW(0, 3) = 6.0;
    m.bips(0, 3) = 1.5; // exact duplicate of mode 2

    FrontierSet f = buildFrontiers(m);
    ASSERT_EQ(f.numCores(), 1u);
    ASSERT_EQ(f.sizeOf(0), 2u);
    // The duplicate resolves to the lower mode index, recorded at
    // build time rather than re-found by float comparison.
    EXPECT_EQ(f.at(0, 0).mode, 2);
    EXPECT_EQ(f.at(0, 1).mode, 0);
    EXPECT_DOUBLE_EQ(f.minTotalPowerW, 6.0);
    EXPECT_DOUBLE_EQ(f.baseTotalBips, 1.5);
    EXPECT_DOUBLE_EQ(f.minIncPowerW, 4.0);
}

TEST(Frontier, HullInvariantsHoldOnRandomMatrices)
{
    for (std::uint64_t seed = 1; seed <= 20; seed++) {
        ModeMatrix m = randomMatrix(16, 5, seed);
        FrontierSet f = buildFrontiers(m);
        ASSERT_EQ(f.numCores(), 16u);
        double min_inc = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < 16; c++) {
            ASSERT_GE(f.sizeOf(c), 1u);
            double prev_ratio =
                std::numeric_limits<double>::infinity();
            for (std::size_t h = 1; h < f.sizeOf(c); h++) {
                const HullPoint &a = f.at(c, h - 1);
                const HullPoint &b = f.at(c, h);
                // Power and BIPS strictly ascend along the hull.
                EXPECT_GT(b.powerW, a.powerW);
                EXPECT_GT(b.bips, a.bips);
                // Marginal BIPS-per-watt ratios never increase.
                double r = (b.bips - a.bips) / (b.powerW - a.powerW);
                EXPECT_LE(r, prev_ratio + 1e-12);
                prev_ratio = r;
                min_inc = std::min(min_inc, b.powerW - a.powerW);
            }
            // Every hull point is a real mode of the core.
            for (std::size_t h = 0; h < f.sizeOf(c); h++) {
                const HullPoint &p = f.at(c, h);
                EXPECT_DOUBLE_EQ(p.powerW, m.powerW(c, p.mode));
                EXPECT_DOUBLE_EQ(p.bips, m.bips(c, p.mode));
            }
        }
        EXPECT_DOUBLE_EQ(f.minIncPowerW, min_inc);
    }
}

TEST(GreedyUpgradeHeap, InfeasibleStartLeavesPositionsUntouched)
{
    ModeMatrix m = randomMatrix(4, 3, 7);
    FrontierSet f = buildFrontiers(m);
    std::vector<std::uint8_t> pos(4, 0);
    GreedyResult r =
        greedyUpgradeHeap(f, f.minTotalPowerW - 1.0, pos);
    EXPECT_FALSE(r.feasible);
    for (std::uint8_t p : pos)
        EXPECT_EQ(p, 0);
}

TEST(GreedyUpgradeHeap, TotalsMatchPositionsAndFitBudget)
{
    for (std::uint64_t seed = 1; seed <= 10; seed++) {
        ModeMatrix m = randomMatrix(32, 5, seed);
        FrontierSet f = buildFrontiers(m);
        Watts budget = f.minTotalPowerW * 1.15;
        std::vector<std::uint8_t> pos(32, 0);
        GreedyResult r = greedyUpgradeHeap(f, budget, pos);
        ASSERT_TRUE(r.feasible);
        double power = 0.0, bips = 0.0;
        for (std::size_t c = 0; c < 32; c++) {
            ASSERT_LT(pos[c], f.sizeOf(c));
            power += f.at(c, pos[c]).powerW;
            bips += f.at(c, pos[c]).bips;
        }
        EXPECT_NEAR(r.powerW, power, 1e-9);
        EXPECT_NEAR(r.bips, bips, 1e-9);
        EXPECT_LE(r.powerW, budget + 1e-9);

        // Deterministic: a second run from scratch is identical.
        std::vector<std::uint8_t> pos2(32, 0);
        GreedyResult r2 = greedyUpgradeHeap(f, budget, pos2);
        EXPECT_EQ(pos, pos2);
        EXPECT_DOUBLE_EQ(r.bips, r2.bips);
    }
}

TEST(MckpUpperBound, DominatesEveryFeasibleAssignment)
{
    for (std::uint64_t seed = 1; seed <= 15; seed++) {
        ModeMatrix m = randomMatrix(4, 3, seed);
        FrontierSet f = buildFrontiers(m);
        for (double frac : {1.02, 1.1, 1.3, 2.0}) {
            Watts budget = f.minTotalPowerW * frac;
            double bound = mckpUpperBound(f, budget);
            double best = bruteForceBips(m, budget);
            ASSERT_GE(best, 0.0);
            EXPECT_GE(bound, best - 1e-9)
                << "seed " << seed << " frac " << frac;
        }
    }
}

// ---------------------------------------------------------------
// Approximate policies
// ---------------------------------------------------------------

TEST(MaxBipsDp, NearOptimalOnSmallMatrices)
{
    for (std::uint64_t seed = 1; seed <= 12; seed++) {
        ModeMatrix m = randomMatrix(6, 4, seed);
        std::vector<PowerMode> slowest(6, 3), turbo(6, 0);
        Watts lo = m.totalPowerW(slowest);
        Watts hi = m.totalPowerW(turbo);
        for (double frac : {0.1, 0.4, 0.7, 0.95}) {
            Watts budget = lo + frac * (hi - lo);
            auto dp = MaxBipsDpPolicy::solve(
                m, budget, MaxBipsDpPolicy::defaultGrid);
            double exact = bruteForceBips(m, budget);
            EXPECT_LE(m.totalPowerW(dp), budget + 1e-9);
            // The acceptance bar for the DP engine: within 2% of
            // the true optimum at the default grid.
            EXPECT_GE(m.totalBips(dp), 0.98 * exact)
                << "seed " << seed << " frac " << frac;
        }
    }
}

TEST(MaxBipsDp, FinerGridNeverWorseOnAverage)
{
    // A denser grid must stay feasible and lose nothing on an easy
    // instance where the coarse grid already matches the optimum.
    ModeMatrix m = randomMatrix(8, 5, 99);
    std::vector<PowerMode> slowest(8, 4), turbo(8, 0);
    Watts budget = m.totalPowerW(slowest) +
        0.5 * (m.totalPowerW(turbo) - m.totalPowerW(slowest));
    auto coarse = MaxBipsDpPolicy::solve(m, budget, 16);
    auto fine = MaxBipsDpPolicy::solve(m, budget, 1024);
    EXPECT_LE(m.totalPowerW(coarse), budget + 1e-9);
    EXPECT_LE(m.totalPowerW(fine), budget + 1e-9);
    EXPECT_GE(m.totalBips(fine), 0.999 * m.totalBips(coarse));
}

TEST(ManycorePolicies, ContractAcrossAllPolicies)
{
    // The policies.hh contract, old and new engines alike: a
    // budget-feasible assignment whenever one exists, all-slowest
    // otherwise.
    const std::vector<std::string> names = {
        "MaxBIPS",     "MaxBIPS-BnB", "MaxBIPS-DP",
        "MaxBIPS-DP16", "WaterFill",   "GreedyTurbo",
        "Priority",    "PullHiPushLo", "ChipWideDVFS",
        "UniformBudget"};
    DvfsTable dvfs = DvfsTable::classic3();
    for (std::uint64_t seed = 1; seed <= 6; seed++) {
        ModeMatrix m = randomMatrix(8, 3, seed);
        std::vector<PowerMode> slowest(8, 2), turbo(8, 0);
        Watts lo = m.totalPowerW(slowest);
        Watts hi = m.totalPowerW(turbo);
        auto samples = samplesFromMatrix(m);
        for (double frac : {0.02, 0.35, 0.8}) {
            Watts budget = lo + frac * (hi - lo);
            for (const auto &name : names) {
                auto policy = makePolicy(name);
                PolicyInput in;
                in.predicted = &m;
                in.samples = &samples;
                in.budgetW = budget;
                in.dvfs = &dvfs;
                auto assign = policy->decide(in);
                ASSERT_EQ(assign.size(), 8u) << name;
                EXPECT_LE(m.totalPowerW(assign), budget + 1e-9)
                    << name << " busts a feasible budget";
            }
        }
        // Below the all-slowest floor nothing fits: all-slowest.
        for (const auto &name : names) {
            auto policy = makePolicy(name);
            PolicyInput in;
            in.predicted = &m;
            in.samples = &samples;
            in.budgetW = lo * 0.5;
            in.dvfs = &dvfs;
            auto assign = policy->decide(in);
            EXPECT_EQ(assign, slowest)
                << name << " must fall back to all-slowest";
        }
    }
}

TEST(ManycorePolicies, GreedyTurboMatchesHeapKernel)
{
    ModeMatrix m = randomMatrix(64, 5, 17);
    FrontierSet f = buildFrontiers(m);
    Watts budget = f.minTotalPowerW * 1.2;
    std::vector<std::uint8_t> pos(64, 0);
    greedyUpgradeHeap(f, budget, pos);
    EXPECT_EQ(GreedyTurboPolicy::solve(m, budget),
              assignmentFromPositions(f, pos));
}

TEST(PolicyFactory, ManycoreNamesAndGridSuffix)
{
    EXPECT_TRUE(isPolicyName("MaxBIPS-DP"));
    EXPECT_TRUE(isPolicyName("MaxBIPS-DP256"));
    EXPECT_TRUE(isPolicyName("WaterFill"));
    EXPECT_TRUE(isPolicyName("GreedyTurbo"));
    EXPECT_FALSE(isPolicyName("MaxBIPS-DP0"));
    EXPECT_FALSE(isPolicyName("MaxBIPS-DP1"));
    EXPECT_FALSE(isPolicyName("MaxBIPS-DPx"));
    EXPECT_FALSE(isPolicyName("MaxBIPS-DP99999999"));
    EXPECT_FALSE(isPolicyName("WaterFall"));

    EXPECT_STREQ(makePolicy("MaxBIPS-DP")->name(), "MaxBIPS-DP");
    EXPECT_STREQ(makePolicy("MaxBIPS-DP256")->name(),
                 "MaxBIPS-DP256");
    // Spelling the default grid explicitly resolves to the same
    // configuration (the canonical label drops the suffix).
    MaxBipsDpPolicy explicit_default(MaxBipsDpPolicy::defaultGrid);
    EXPECT_STREQ(explicit_default.name(), "MaxBIPS-DP");
    EXPECT_EQ(explicit_default.gridBins(),
              MaxBipsDpPolicy::defaultGrid);
}

// ---------------------------------------------------------------
// Phase-shifted profile replay
// ---------------------------------------------------------------

TEST(SeekFraction, ConservesInstructionsAndEnergy)
{
    WorkloadProfile p = syntheticProfile(
        10, 10'000, 10.0, 1e-4, {1.0, 1.2, 1.5}, {1.0, 0.8, 0.6});
    for (double f : {0.0, 0.25, 0.37, 0.999}) {
        ProfileCursor base(p);
        ProfileCursor shifted(p);
        shifted.seekFraction(f);
        double bi = 0, be = 0, si = 0, se = 0;
        // Advance both to completion in identical steps, cycling
        // modes so the wrap replay crosses mode switches too.
        for (int step = 0; !base.finished(); step++) {
            auto d = base.advance(
                7.0, static_cast<PowerMode>(step % 3));
            bi += d.instructions;
            be += d.energyJ;
        }
        for (int step = 0; !shifted.finished(); step++) {
            auto d = shifted.advance(
                7.0, static_cast<PowerMode>(step % 3));
            si += d.instructions;
            se += d.energyJ;
        }
        // A wrapped replay covers exactly the same instruction
        // stream, so totals are conserved.
        EXPECT_NEAR(si, bi, bi * 1e-9) << "f=" << f;
        EXPECT_NEAR(se, be, be * 1e-6) << "f=" << f;
        EXPECT_NEAR(shifted.instructionsDone(), si, si * 1e-9);
    }
}

TEST(SeekFraction, RewindReturnsToShiftedStart)
{
    WorkloadProfile p = syntheticProfile(
        8, 5'000, 12.0, 2e-4, {1.0, 1.3}, {1.0, 0.7});
    ProfileCursor cur(p);
    cur.seekFraction(0.6);
    auto first = cur.advance(9.0, 0);
    cur.advance(9.0, 1);
    EXPECT_GT(cur.instructionsDone(), 0.0);

    cur.rewind();
    EXPECT_EQ(cur.instructionsDone(), 0.0);
    EXPECT_FALSE(cur.finished());
    auto replay = cur.advance(9.0, 0);
    EXPECT_DOUBLE_EQ(replay.instructions, first.instructions);
    EXPECT_DOUBLE_EQ(replay.energyJ, first.energyJ);
}

// ---------------------------------------------------------------
// many<N> combination keys and scenario plumbing
// ---------------------------------------------------------------

TEST(ManyCoreCombo, ReplicatesSuiteRoundRobin)
{
    const auto &suite = spec2000Suite();
    const auto &combo = manyCoreCombo(25);
    ASSERT_EQ(combo.size(), 25u);
    for (std::size_t c = 0; c < combo.size(); c++)
        EXPECT_EQ(combo[c], suite[c % suite.size()].name);

    const auto *big = findCombination("many1024");
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(big->size(), 1024u);
    EXPECT_EQ(findCombination("many64"), &manyCoreCombo(64));

    EXPECT_EQ(findCombination("many0"), nullptr);
    EXPECT_EQ(findCombination("many1025"), nullptr);
    EXPECT_EQ(findCombination("manyx"), nullptr);
    EXPECT_EQ(findCombination("many"), nullptr);
    EXPECT_EQ(findCombination("many12345"), nullptr);
}

ScenarioSpec
parseOk(const std::string &text)
{
    auto v = json::parse(text);
    EXPECT_TRUE(v.ok()) << text;
    auto r = parseScenario(v.ok() ? v.value() : json::Value());
    EXPECT_TRUE(r.ok()) << text << " -> "
                        << (r.ok() ? "" : r.error());
    return r.ok() ? r.value() : ScenarioSpec{};
}

TEST(ManycoreScenario, ManyComboAndStrideParse)
{
    ScenarioSpec s = parseOk(
        R"({"combo": "many64", "policy": "WaterFill",
            "budget": 0.8,
            "sim": {"phaseShiftStride": 0.25}})");
    EXPECT_EQ(s.combo.size(), 64u);
    EXPECT_EQ(s.policy, "WaterFill");
    EXPECT_EQ(s.phaseShiftStride, 0.25);
    EXPECT_EQ(s.simConfig().phaseShiftStride, 0.25);
}

TEST(ManycoreScenario, NewPolicyNamesValidate)
{
    for (const char *policy :
         {"MaxBIPS-DP", "MaxBIPS-DP256", "WaterFill",
          "GreedyTurbo"}) {
        ScenarioSpec s;
        s.combo = {"mcf"};
        s.policy = policy;
        s.budgets = {0.8};
        EXPECT_FALSE(validateScenario(s).has_value()) << policy;
    }
}

TEST(ManycoreScenario, StrideZeroHashesLikeAbsent)
{
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "GreedyTurbo",
            "budget": 0.8})");
    ScenarioSpec b = parseOk(
        R"({"combo": ["mcf"], "policy": "GreedyTurbo",
            "budget": 0.8, "sim": {"phaseShiftStride": 0}})");
    ScenarioSpec c = parseOk(
        R"({"combo": ["mcf"], "policy": "GreedyTurbo",
            "budget": 0.8, "sim": {"phaseShiftStride": 0.5}})");
    // Explicit zero must not perturb pre-existing cache keys.
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash());
}

TEST(ManycoreScenario, DpGridIsPartOfTheCacheKey)
{
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS-DP",
            "budget": 0.8})");
    ScenarioSpec b = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS-DP256",
            "budget": 0.8})");
    EXPECT_NE(a.hash(), b.hash());
}

TEST(ManycoreScenario, RejectsBadStride)
{
    for (const char *bad :
         {R"({"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.8,
              "sim": {"phaseShiftStride": 1.0}})",
          R"({"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.8,
              "sim": {"phaseShiftStride": -0.1}})"}) {
        auto v = json::parse(bad);
        ASSERT_TRUE(v.ok());
        EXPECT_FALSE(parseScenario(v.value()).ok()) << bad;
    }
}

} // namespace
} // namespace gpm
