/** @file Unit and property tests for the MinPower dual policy. */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "helpers.hh"

namespace gpm
{
namespace
{

using test::randomMatrix;

/** Brute-force dual optimum for cross-checking. */
std::pair<double, double>
bruteForceMinPower(const ModeMatrix &m, double target)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();
    std::vector<PowerMode> cur(n, 0);
    double best_power = 1e300, best_bips = -1.0;
    for (;;) {
        double b = m.totalBips(cur);
        if (b + 1e-12 >= target) {
            double p = m.totalPowerW(cur);
            if (p < best_power ||
                (p == best_power && b > best_bips)) {
                best_power = p;
                best_bips = b;
            }
        }
        std::size_t c = 0;
        while (c < n && ++cur[c] == k)
            cur[c++] = 0;
        if (c == n)
            break;
    }
    return {best_power, best_bips};
}

class MinPowerSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(MinPowerSweep, ExhaustiveMatchesBruteForce)
{
    auto [seed, frac] = GetParam();
    ModeMatrix m = randomMatrix(5, 3, seed + 100);
    std::vector<PowerMode> turbo(5, 0), slow(5, 2);
    double target = m.totalBips(slow) +
        frac * (m.totalBips(turbo) - m.totalBips(slow));
    auto best = bruteForceMinPower(m, target);
    auto assign = MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::Exhaustive);
    EXPECT_GE(m.totalBips(assign) + 1e-9, target);
    EXPECT_NEAR(m.totalPowerW(assign), best.first, 1e-9);
}

TEST_P(MinPowerSweep, BnbMatchesExhaustive)
{
    auto [seed, frac] = GetParam();
    ModeMatrix m = randomMatrix(7, 3, seed + 200);
    std::vector<PowerMode> turbo(7, 0), slow(7, 2);
    double target = m.totalBips(slow) +
        frac * (m.totalBips(turbo) - m.totalBips(slow));
    auto ex = MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::Exhaustive);
    auto bb = MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::BranchAndBound);
    EXPECT_NEAR(m.totalPowerW(ex), m.totalPowerW(bb), 1e-9);
    EXPECT_GE(m.totalBips(bb) + 1e-9, target);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinPowerSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.1, 0.5, 0.9, 1.0)));

TEST(MinPowerPolicy, TrivialTargetAllSlowest)
{
    ModeMatrix m = randomMatrix(4, 3, 31);
    auto assign = MaxBipsPolicy::solveMinPower(
        m, 0.0, MaxBipsPolicy::Search::Exhaustive);
    // Zero target: cheapest possible = all-slowest (monotone).
    for (auto a : assign)
        EXPECT_EQ(a, 2);
}

TEST(MinPowerPolicy, UnreachableTargetBestEffortTurbo)
{
    ModeMatrix m = randomMatrix(4, 3, 32);
    auto assign = MaxBipsPolicy::solveMinPower(
        m, 1e9, MaxBipsPolicy::Search::Exhaustive);
    for (auto a : assign)
        EXPECT_EQ(a, 0);
    auto bb = MaxBipsPolicy::solveMinPower(
        m, 1e9, MaxBipsPolicy::Search::BranchAndBound);
    for (auto a : bb)
        EXPECT_EQ(a, 0);
}

TEST(MinPowerPolicy, FullTargetNeedsAllTurbo)
{
    ModeMatrix m = randomMatrix(4, 3, 33);
    std::vector<PowerMode> turbo(4, 0);
    auto assign = MaxBipsPolicy::solveMinPower(
        m, m.totalBips(turbo) - 1e-9,
        MaxBipsPolicy::Search::Exhaustive);
    for (auto a : assign)
        EXPECT_EQ(a, 0);
}

TEST(MinPowerPolicy, BnbScalesTo64Cores)
{
    ModeMatrix m = randomMatrix(64, 3, 55);
    std::vector<PowerMode> turbo(64, 0);
    double target = 0.95 * m.totalBips(turbo);
    auto assign = MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::BranchAndBound);
    EXPECT_GE(m.totalBips(assign) + 1e-9, target);
    EXPECT_LT(m.totalPowerW(assign), m.totalPowerW(turbo));
}

TEST(MinPowerPolicy, DecideUsesPredictedMatrix)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(4, 3, 41);
    std::vector<CoreSample> samples(4);
    for (std::size_t c = 0; c < 4; c++) {
        samples[c].mode = modes::Turbo;
        samples[c].powerW = m.powerW(c, modes::Turbo);
        samples[c].bips = m.bips(c, modes::Turbo);
    }
    MinPowerPolicy policy(0.9);
    EXPECT_DOUBLE_EQ(policy.targetFraction(), 0.9);
    PolicyInput in;
    in.predicted = &m;
    in.samples = &samples;
    in.dvfs = &dvfs;
    auto assign = policy.decide(in);
    std::vector<PowerMode> turbo(4, 0);
    EXPECT_GE(m.totalBips(assign) + 1e-9,
              0.9 * m.totalBips(turbo));
    EXPECT_LE(m.totalPowerW(assign), m.totalPowerW(turbo));
}

TEST(MinPowerPolicy, DualityWithMaxBips)
{
    // Weak duality: MaxBIPS at budget P* (the power MinPower paid)
    // must achieve at least MinPower's BIPS.
    ModeMatrix m = randomMatrix(5, 3, 61);
    std::vector<PowerMode> turbo(5, 0);
    double target = 0.92 * m.totalBips(turbo);
    auto mp = MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::Exhaustive);
    auto mb = MaxBipsPolicy::solve(
        m, m.totalPowerW(mp), MaxBipsPolicy::Search::Exhaustive);
    EXPECT_GE(m.totalBips(mb) + 1e-9, m.totalBips(mp));
}

TEST(MinPowerPolicy, FactoryParsesTargets)
{
    auto p = makePolicy("MinPower");
    EXPECT_STREQ(p->name(), "MinPower");
    auto q = makePolicy("MinPower85");
    auto *mp = dynamic_cast<MinPowerPolicy *>(q.get());
    ASSERT_NE(mp, nullptr);
    EXPECT_NEAR(mp->targetFraction(), 0.85, 1e-12);
}

} // namespace
} // namespace gpm
