/** @file Behavioural tests of the one-pass OOO core timing model. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "uarch/core.hh"
#include "uarch/memory.hh"
#include "util/rng.hh"

namespace gpm
{
namespace
{

using test::ScriptedSource;
using test::repeatOp;

struct Rig
{
    explicit Rig(std::vector<MicroOp> ops, Hertz f = 1.0e9,
                 CoreConfig cfg_in = CoreConfig{})
        : cfg(cfg_in), l2(cfg), mem(cfg, l2), src(std::move(ops)),
          core(cfg, mem, src, f)
    {
    }

    CoreConfig cfg;
    PrivateL2 l2;
    MemorySystem mem;
    ScriptedSource src;
    OooCore core;
};

double
ipcOf(const CoreRunResult &r, Hertz f)
{
    double cycles =
        static_cast<double>(r.elapsedPs) * 1e-12 * f;
    return static_cast<double>(r.instructions) / cycles;
}

TEST(OooCore, IndependentIntOpsBoundByFxuCount)
{
    // 2 FXUs: independent IntAlu throughput caps at ~2 IPC.
    Rig rig(repeatOp(OpClass::IntAlu, 50'000));
    auto r = rig.core.run(50'000);
    EXPECT_EQ(r.instructions, 50'000u);
    double ipc = ipcOf(r, 1.0e9);
    EXPECT_GT(ipc, 1.7);
    EXPECT_LE(ipc, 2.05);
}

TEST(OooCore, DependentChainBoundByLatency)
{
    // depA = 1: strict serial chain of 1-cycle ops -> IPC ~ 1.
    Rig rig(repeatOp(OpClass::IntAlu, 20'000, 1));
    auto r = rig.core.run(20'000);
    double ipc = ipcOf(r, 1.0e9);
    EXPECT_NEAR(ipc, 1.0, 0.1);
}

TEST(OooCore, FpChainBoundByFpLatency)
{
    // Serial FpAlu chain: IPC ~ 1/6 (latFpAlu = 6).
    Rig rig(repeatOp(OpClass::FpAlu, 10'000, 1));
    auto r = rig.core.run(10'000);
    double ipc = ipcOf(r, 1.0e9);
    EXPECT_NEAR(ipc, 1.0 / 6.0, 0.03);
}

TEST(OooCore, MixedIndependentOpsReachHigherIpc)
{
    // Rotating FXU/FPU/LSU ops with no deps use more FU slots.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 30'000; i++) {
        MicroOp op;
        op.pc = 0x1000 + 4 * i;
        switch (i % 3) {
          case 0: op.cls = OpClass::IntAlu; break;
          case 1: op.cls = OpClass::FpAlu; break;
          default:
            op.cls = OpClass::Load;
            op.addr = (i % 64) * 8; // L1-resident
        }
        ops.push_back(op);
    }
    Rig rig(std::move(ops));
    auto r = rig.core.run(30'000);
    EXPECT_GT(ipcOf(r, 1.0e9), 2.5);
}

TEST(OooCore, SerialMissChainBoundByMemoryLatency)
{
    // Dependent loads striding far apart: every load misses L2 and
    // serializes -> ~1 op per ~79 cycles (77 + agen + L1).
    std::vector<MicroOp> ops;
    for (int i = 0; i < 2'000; i++) {
        MicroOp op;
        op.cls = OpClass::Load;
        op.pc = 0x1000 + 4 * i;
        op.addr = static_cast<std::uint64_t>(i) * 1024 * 1024;
        op.depA = 1;
        ops.push_back(op);
    }
    Rig rig(std::move(ops));
    auto r = rig.core.run(2'000);
    double cpi = 1.0 / ipcOf(r, 1.0e9);
    EXPECT_NEAR(cpi, 79.0, 5.0);
}

TEST(OooCore, IndependentMissesOverlapViaMshrs)
{
    // Independent far-striding loads exploit the 8 MSHRs: CPI well
    // below the serial 77-cycle latency.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4'000; i++) {
        MicroOp op;
        op.cls = OpClass::Load;
        op.pc = 0x1000 + 4 * i;
        op.addr = static_cast<std::uint64_t>(i) * 1024 * 1024;
        ops.push_back(op);
    }
    Rig rig(std::move(ops));
    auto r = rig.core.run(4'000);
    double cpi = 1.0 / ipcOf(r, 1.0e9);
    EXPECT_LT(cpi, 79.0 / 4.0);
    // But the MSHR ring still bounds parallelism somewhat: a load
    // can't be infinitely fast either.
    EXPECT_GT(cpi, 1.0);
}

TEST(OooCore, L1HitLoadsAreFast)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 20'000; i++) {
        MicroOp op;
        op.cls = OpClass::Load;
        op.pc = 0x1000 + 4 * i;
        op.addr = (i % 512) * 8; // 4 KB hot set
        ops.push_back(op);
    }
    Rig rig(std::move(ops));
    auto r = rig.core.run(20'000);
    EXPECT_GT(ipcOf(r, 1.0e9), 1.5); // 2 LSUs
}

TEST(OooCore, MemoryBoundInsensitiveToFrequency)
{
    // KEY PAPER PROPERTY: memory latency is fixed in ns, so slowing
    // the core barely slows a memory-bound chain in wall-clock.
    auto mk = [](Hertz f) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 1'500; i++) {
            MicroOp op;
            op.cls = OpClass::Load;
            op.pc = 0x1000 + 4 * i;
            op.addr = static_cast<std::uint64_t>(i) * 1024 * 1024;
            op.depA = 1;
            ops.push_back(op);
        }
        Rig rig(std::move(ops), f);
        return rig.core.run(1'500).elapsedPs;
    };
    double t_turbo = static_cast<double>(mk(1.0e9));
    double t_eff2 = static_cast<double>(mk(0.85e9));
    double slowdown = t_eff2 / t_turbo - 1.0;
    EXPECT_LT(slowdown, 0.05); // far below the 17.6% compute bound
}

TEST(OooCore, ComputeBoundScalesWithFrequency)
{
    auto mk = [](Hertz f) {
        Rig rig(repeatOp(OpClass::IntAlu, 30'000, 1), f);
        return rig.core.run(30'000).elapsedPs;
    };
    double t_turbo = static_cast<double>(mk(1.0e9));
    double t_eff2 = static_cast<double>(mk(0.85e9));
    EXPECT_NEAR(t_eff2 / t_turbo, 1.0 / 0.85, 0.02);
}

TEST(OooCore, MispredictsSlowExecution)
{
    auto mk = [](bool predictable) {
        Rng rng(1234);
        std::vector<MicroOp> ops;
        for (int i = 0; i < 20'000; i++) {
            MicroOp op;
            op.pc = 0x1000 + 4 * (i % 8);
            if (i % 4 == 0) {
                op.cls = OpClass::Branch;
                op.taken = predictable ? true : rng.chance(0.5);
            } else {
                op.cls = OpClass::IntAlu;
            }
            ops.push_back(op);
        }
        Rig rig(std::move(ops));
        return rig.core.run(20'000).elapsedPs;
    };
    EXPECT_GT(mk(false), mk(true) * 1.3);
}

TEST(OooCore, WindowLimitsRunahead)
{
    // A full window behind a long-latency head op: the 256-entry
    // window bounds how much independent work proceeds under a miss.
    CoreConfig cfg;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 10'000; i++) {
        MicroOp op;
        op.pc = 0x1000 + 4 * i;
        if (i % 512 == 0) {
            op.cls = OpClass::Load;
            op.addr = static_cast<std::uint64_t>(i) * 1024 * 1024;
            op.depA = 1; // serialize against previous miss
        } else {
            op.cls = OpClass::IntAlu;
        }
        ops.push_back(op);
    }
    Rig rig(std::move(ops));
    auto r = rig.core.run(10'000);
    // Without a window constraint the compute (2 IPC over 511 ops)
    // would hide the ~79-cycle misses entirely; with the window only
    // 256 ops can slide past. Just check it lands between bounds.
    double ipc = ipcOf(r, 1.0e9);
    EXPECT_GT(ipc, 1.0);
    EXPECT_LT(ipc, 2.0);
}

TEST(OooCore, RunCountsAreExact)
{
    Rig rig(repeatOp(OpClass::IntAlu, 1'000));
    auto r1 = rig.core.run(400);
    EXPECT_EQ(r1.instructions, 400u);
    EXPECT_FALSE(r1.streamEnded);
    auto r2 = rig.core.run(10'000);
    EXPECT_EQ(r2.instructions, 600u);
    EXPECT_TRUE(r2.streamEnded);
    EXPECT_EQ(rig.core.totalInstructions(), 1'000u);
}

TEST(OooCore, RunUntilPsAdvancesTime)
{
    Rig rig(repeatOp(OpClass::IntAlu, 1'000'000));
    auto r = rig.core.runUntilPs(1'000'000); // 1 us
    EXPECT_GE(rig.core.nowPs(), 1'000'000u);
    EXPECT_GT(r.instructions, 1'000u);
    EXPECT_LT(r.instructions, 3'000u);
}

TEST(OooCore, StallUntilPsPushesTime)
{
    Rig rig(repeatOp(OpClass::IntAlu, 10'000));
    rig.core.run(100);
    std::uint64_t now = rig.core.nowPs();
    rig.core.stallUntilPs(now + 5'000'000); // +5 us
    EXPECT_GE(rig.core.nowPs(), now + 5'000'000);
    auto r = rig.core.run(100);
    EXPECT_EQ(r.instructions, 100u);
}

TEST(OooCore, ActivityCountsConsistent)
{
    Rig rig(repeatOp(OpClass::IntAlu, 5'000));
    auto r = rig.core.run(5'000);
    EXPECT_EQ(r.activity.committed, 5'000u);
    EXPECT_EQ(r.activity.fxuOps, 5'000u);
    EXPECT_EQ(r.activity.issued, 5'000u);
    EXPECT_EQ(r.activity.dispatched, 5'000u);
    EXPECT_GE(r.activity.fetched, 5'000u);
    EXPECT_GT(r.activity.cycles, 0u);
}

TEST(OooCore, FpDivOccupiesUnit)
{
    // Unpipelined divides: 2 FPUs, 30-cycle occupancy -> IPC ~ 2/30.
    Rig rig(repeatOp(OpClass::FpDiv, 2'000));
    auto r = rig.core.run(2'000);
    EXPECT_NEAR(ipcOf(r, 1.0e9), 2.0 / 30.0, 0.01);
}

TEST(OooCore, IcacheMissesSlowFetch)
{
    auto mk = [](std::uint64_t code_span) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 30'000; i++) {
            MicroOp op;
            op.cls = OpClass::IntAlu;
            op.depA = 1;
            // Jump around a code footprint.
            op.pc = ((static_cast<std::uint64_t>(i) * 2654435761u) %
                     code_span) & ~3ULL;
            ops.push_back(op);
        }
        Rig rig(std::move(ops));
        return rig.core.run(30'000).elapsedPs;
    };
    // 16 KB fits L1I (64 KB); 16 MB thrashes it and the L2.
    EXPECT_GT(mk(16ULL << 20), mk(16ULL << 10) * 1.2);
}

TEST(OooCore, FrequencyAccessor)
{
    Rig rig(repeatOp(OpClass::IntAlu, 10));
    EXPECT_DOUBLE_EQ(rig.core.frequency(), 1.0e9);
    rig.core.setFrequency(0.85e9);
    EXPECT_DOUBLE_EQ(rig.core.frequency(), 0.85e9);
}

} // namespace
} // namespace gpm
