/** @file Unit tests for table/CSV output helpers. */

#include <cstdio>

#include <gtest/gtest.h>

#include "util/table.hh"

namespace gpm
{
namespace
{

TEST(Table, RendersHeadersAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, PadsShortRows)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t({"h"});
    t.addRow({"longercell"});
    std::string out = t.render();
    // Every line should have the same length.
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsFraction)
{
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, CsvHasCommas)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(CsvWriter, WritesRows)
{
    std::string path = ::testing::TempDir() + "/gpm_csv_test.csv";
    {
        CsvWriter w(path);
        w.row({"x", "y"});
        w.rowNums({1.5, 2.5});
    }
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "x,y\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "1.5,2.5\n");
    std::fclose(f);
    std::remove(path.c_str());
}

} // namespace
} // namespace gpm
