/** @file Unit tests for the statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace gpm
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MeanOfKnownValues)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, VarianceMatchesDefinition)
{
    RunningStat s;
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        s.add(x);
    // Classic example: population variance 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, WeightedMean)
{
    RunningStat s;
    s.addWeighted(10.0, 1.0);
    s.addWeighted(20.0, 3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 17.5);
    EXPECT_DOUBLE_EQ(s.weight(), 4.0);
}

TEST(RunningStat, ZeroWeightIgnored)
{
    RunningStat s;
    s.addWeighted(100.0, 0.0);
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HarmonicMean, SingleValue)
{
    HarmonicMean h;
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.value(), 4.0);
}

TEST(HarmonicMean, KnownValues)
{
    HarmonicMean h;
    h.add(1.0);
    h.add(2.0);
    h.add(4.0);
    EXPECT_NEAR(h.value(), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(HarmonicMean, EmptyIsZero)
{
    HarmonicMean h;
    EXPECT_DOUBLE_EQ(h.value(), 0.0);
}

TEST(HarmonicMean, DominatedBySmallest)
{
    HarmonicMean h;
    h.add(0.01);
    for (int i = 0; i < 9; i++)
        h.add(100.0);
    EXPECT_LT(h.value(), 0.11);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamped to 0
    h.add(100.0); // clamped to 9
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLo(5), 5.0);
}

TEST(Histogram, RenderIncludesCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.1);
    h.add(0.9);
    std::string out = h.render();
    EXPECT_NE(out.find('2'), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(VectorMeans, Arithmetic)
{
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
}

TEST(VectorMeans, Harmonic)
{
    EXPECT_NEAR(harmonicMeanOf({1.0, 2.0, 4.0}),
                3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMeanOf({}), 0.0);
}

TEST(VectorMeans, Geometric)
{
    EXPECT_NEAR(geometricMeanOf({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMeanOf({}), 0.0);
}

TEST(VectorMeans, HarmonicLEArithmetic)
{
    std::vector<double> v{0.3, 1.7, 2.5, 0.9};
    EXPECT_LE(harmonicMeanOf(v), meanOf(v));
    EXPECT_LE(geometricMeanOf(v), meanOf(v));
    EXPECT_GE(geometricMeanOf(v), harmonicMeanOf(v));
}

} // namespace
} // namespace gpm
