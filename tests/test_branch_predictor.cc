/** @file Unit tests for the tournament branch predictor. */

#include <gtest/gtest.h>

#include "uarch/branch_predictor.hh"
#include "util/rng.hh"

namespace gpm
{
namespace
{

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(1024);
    for (int i = 0; i < 100; i++)
        bp.predictAndUpdate(0x1000, true);
    // After warmup, the last predictions must be correct.
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; i++)
        bp.predictAndUpdate(0x1000, true);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(1024);
    for (int i = 0; i < 100; i++)
        bp.predictAndUpdate(0x2000, false);
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; i++)
        bp.predictAndUpdate(0x2000, false);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPredictor, GshareLearnsAlternating)
{
    // A strict T/N/T/N pattern defeats bimodal but the
    // history-indexed gshare component captures it.
    BranchPredictor bp(1024);
    bool taken = false;
    for (int i = 0; i < 2000; i++) {
        bp.predictAndUpdate(0x3000, taken);
        taken = !taken;
    }
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 200; i++) {
        bp.predictAndUpdate(0x3000, taken);
        taken = !taken;
    }
    EXPECT_LE(bp.mispredicts() - before, 4u);
}

TEST(BranchPredictor, RandomStreamNearHalf)
{
    BranchPredictor bp(1024);
    Rng rng(7);
    for (int i = 0; i < 20000; i++)
        bp.predictAndUpdate(0x4000 + (rng.below(64) << 2),
                            rng.chance(0.5));
    EXPECT_NEAR(bp.mispredictRate(), 0.5, 0.05);
}

TEST(BranchPredictor, BiasedStreamBeatsBias)
{
    BranchPredictor bp(16 * 1024);
    Rng rng(9);
    for (int i = 0; i < 50000; i++)
        bp.predictAndUpdate(0x5000 + (rng.below(32) << 2),
                            rng.chance(0.9));
    // Should approach the 10% floor for a stationary 90% bias.
    EXPECT_LT(bp.mispredictRate(), 0.15);
    EXPECT_GT(bp.mispredictRate(), 0.05);
}

TEST(BranchPredictor, CountsLookups)
{
    BranchPredictor bp(256);
    for (int i = 0; i < 42; i++)
        bp.predictAndUpdate(0x100, true);
    EXPECT_EQ(bp.lookups(), 42u);
}

TEST(BranchPredictor, ResetClearsState)
{
    BranchPredictor bp(256);
    for (int i = 0; i < 100; i++)
        bp.predictAndUpdate(0x100, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    EXPECT_DOUBLE_EQ(bp.mispredictRate(), 0.0);
}

TEST(BranchPredictor, IndependentPcsDoNotAlias)
{
    // With a large table, two opposite-biased branches both train.
    BranchPredictor bp(16 * 1024);
    for (int i = 0; i < 200; i++) {
        bp.predictAndUpdate(0x1000, true);
        bp.predictAndUpdate(0x2000, false);
    }
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; i++) {
        bp.predictAndUpdate(0x1000, true);
        bp.predictAndUpdate(0x2000, false);
    }
    EXPECT_LE(bp.mispredicts() - before, 10u);
}

class PredictorSizeSweep
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PredictorSizeSweep, BiasedStreamLearnable)
{
    BranchPredictor bp(GetParam());
    Rng rng(GetParam());
    for (int i = 0; i < 20000; i++)
        bp.predictAndUpdate(0x100 + (rng.below(16) << 2),
                            rng.chance(0.95));
    EXPECT_LT(bp.mispredictRate(), 0.12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PredictorSizeSweep,
                         ::testing::Values(256, 1024, 4096,
                                           16 * 1024));

} // namespace
} // namespace gpm
