/** @file Unit tests for the per-core memory system (L1s, prefetch,
 *  address disambiguation) and the private L2 service. */

#include <gtest/gtest.h>

#include "uarch/core_config.hh"
#include "uarch/memory.hh"

namespace gpm
{
namespace
{

class MemoryTest : public ::testing::Test
{
  protected:
    MemoryTest() : l2(cfg), mem(cfg, l2, 0) {}

    CoreConfig cfg;
    PrivateL2 l2;
    MemorySystem mem;
};

TEST_F(MemoryTest, L1HitCostsNothingBeyondL1)
{
    mem.dataAccess(0x100, false, 0.0); // warm
    auto r = mem.dataAccess(0x100, false, 10.0);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_DOUBLE_EQ(r.beyondL1Ns, 0.0);
    EXPECT_FALSE(r.offChip);
}

TEST_F(MemoryTest, L2HitCostsL2Latency)
{
    // Fill L2 then evict from L1 by thrashing its set.
    mem.dataAccess(0x0, false, 0.0);
    // L1D: 32KB/2way/128B = 128 sets; stride 16 KB hits set 0.
    mem.dataAccess(0x0 + 16 * 1024, false, 0.0);
    mem.dataAccess(0x0 + 32 * 1024, false, 0.0);
    auto r = mem.dataAccess(0x0, false, 0.0); // L1 miss, L2 hit
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.offChip);
    EXPECT_DOUBLE_EQ(r.beyondL1Ns, cfg.l2LatNs);
}

TEST_F(MemoryTest, ColdAccessGoesOffChip)
{
    auto r = mem.dataAccess(0xdead000, false, 0.0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.offChip);
    EXPECT_DOUBLE_EQ(r.beyondL1Ns, cfg.memLatNs);
}

TEST_F(MemoryTest, StatsCountAccessesAndMisses)
{
    mem.dataAccess(0x40000, false, 0.0); // cold miss
    mem.dataAccess(0x40000, false, 0.0); // hit
    EXPECT_EQ(mem.stats().l1dAccesses, 2u);
    EXPECT_EQ(mem.stats().l1dMisses, 1u);
    EXPECT_EQ(mem.stats().l2Misses, 1u);
}

TEST_F(MemoryTest, InstFetchTracksSeparateStats)
{
    mem.instFetch(0x1000, 0.0);
    mem.instFetch(0x1000, 0.0);
    EXPECT_EQ(mem.stats().l1iAccesses, 2u);
    EXPECT_EQ(mem.stats().l1iMisses, 1u);
}

TEST_F(MemoryTest, NextLinePrefetchHidesSequentialMisses)
{
    // Walk sequential blocks: only the first fetch may miss.
    mem.instFetch(0x0, 0.0);
    for (std::uint64_t b = 1; b < 64; b++) {
        auto r = mem.instFetch(b * 128, 0.0);
        EXPECT_TRUE(r.l1Hit) << "block " << b;
    }
    EXPECT_EQ(mem.stats().l1iMisses, 1u);
    EXPECT_GT(mem.stats().l1iPrefetches, 60u);
}

TEST_F(MemoryTest, JumpTargetsStillMiss)
{
    mem.instFetch(0x0, 0.0);
    auto r = mem.instFetch(0x100000, 0.0); // far jump
    EXPECT_FALSE(r.l1Hit);
}

TEST_F(MemoryTest, InstAndDataSpacesDoNotCollideInL2)
{
    // Same numeric address via fetch and load: both should miss
    // off-chip independently (separate L2 blocks).
    auto ri = mem.instFetch(0x400000, 0.0);
    auto rd = mem.dataAccess(0x400000, false, 0.0);
    EXPECT_TRUE(ri.offChip);
    EXPECT_TRUE(rd.offChip);
}

TEST(MemoryDisambiguation, CoresUseDisjointL2Space)
{
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    MemorySystem a(cfg, l2, 0);
    MemorySystem b(cfg, l2, 1);
    a.dataAccess(0x1234000, false, 0.0); // fills core-0 copy
    auto r = b.dataAccess(0x1234000, false, 0.0);
    // Core 1's view of the same virtual address is a different
    // physical block: still an off-chip miss.
    EXPECT_TRUE(r.offChip);
}

TEST(MemoryReset, ResetStatsClears)
{
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    MemorySystem mem(cfg, l2, 0);
    mem.dataAccess(0x0, false, 0.0);
    mem.resetStats();
    EXPECT_EQ(mem.stats().l1dAccesses, 0u);
}

TEST(PrivateL2Test, SecondAccessHits)
{
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    auto r1 = l2.access(0, 0x5000, false, 0.0);
    EXPECT_TRUE(r1.miss);
    EXPECT_DOUBLE_EQ(r1.latencyNs, cfg.memLatNs);
    auto r2 = l2.access(0, 0x5000, false, 0.0);
    EXPECT_FALSE(r2.miss);
    EXPECT_DOUBLE_EQ(r2.latencyNs, cfg.l2LatNs);
}

} // namespace
} // namespace gpm
