/** @file Cross-cutting property tests: invariants that must hold
 *  for random op streams, random profiles and random matrices. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "trace/phase_profile.hh"
#include "trace/profiler.hh"
#include "trace/synth_generator.hh"
#include "trace/workload.hh"
#include "uarch/core.hh"
#include "uarch/memory.hh"
#include "util/rng.hh"

namespace gpm
{
namespace
{

/** Random-but-valid micro-op stream. */
std::vector<MicroOp>
randomOps(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<MicroOp> ops(n);
    std::uint64_t pc = 0x1000;
    for (std::size_t i = 0; i < n; i++) {
        MicroOp &op = ops[i];
        double r = rng.uniform();
        if (r < 0.25) {
            op.cls = OpClass::Load;
            op.addr = rng.next64() % (64ULL << 20);
        } else if (r < 0.35) {
            op.cls = OpClass::Store;
            op.addr = rng.next64() % (64ULL << 20);
        } else if (r < 0.45) {
            op.cls = OpClass::Branch;
            op.taken = rng.chance(0.6);
        } else if (r < 0.60) {
            op.cls = OpClass::FpAlu;
        } else if (r < 0.65) {
            op.cls = OpClass::FpMul;
        } else if (r < 0.67) {
            op.cls = OpClass::FpDiv;
        } else if (r < 0.72) {
            op.cls = OpClass::IntMul;
        } else {
            op.cls = OpClass::IntAlu;
        }
        op.depA =
            static_cast<std::uint8_t>(rng.below(64));
        op.depB = rng.chance(0.3)
            ? static_cast<std::uint8_t>(rng.below(64))
            : 0;
        op.pc = pc;
        pc += 4;
        if (op.cls == OpClass::Branch && op.taken)
            pc = 0x1000 + (rng.next64() % 8192) * 4;
    }
    return ops;
}

class CorePropertySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CorePropertySweep, CommitsEveryOpExactlyOnce)
{
    auto ops = randomOps(GetParam(), 20'000);
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    MemorySystem mem(cfg, l2);
    test::ScriptedSource src(ops);
    OooCore core(cfg, mem, src);
    auto r = core.run(1'000'000);
    EXPECT_EQ(r.instructions, 20'000u);
    EXPECT_EQ(r.activity.committed, 20'000u);
    EXPECT_EQ(r.activity.issued, 20'000u);
    EXPECT_TRUE(r.streamEnded);
}

TEST_P(CorePropertySweep, IpcBoundedByDispatchWidth)
{
    auto ops = randomOps(GetParam() + 100, 20'000);
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    MemorySystem mem(cfg, l2);
    test::ScriptedSource src(ops);
    OooCore core(cfg, mem, src);
    auto r = core.run(1'000'000);
    double cycles =
        static_cast<double>(r.elapsedPs) * 1e-12 * 1e9;
    EXPECT_LE(20'000.0 / cycles,
              static_cast<double>(cfg.dispatchWidth));
    EXPECT_GT(20'000.0 / cycles, 0.0);
}

TEST_P(CorePropertySweep, TimeMonotoneAcrossRuns)
{
    auto ops = randomOps(GetParam() + 200, 30'000);
    CoreConfig cfg;
    PrivateL2 l2(cfg);
    MemorySystem mem(cfg, l2);
    test::ScriptedSource src(ops);
    OooCore core(cfg, mem, src);
    std::uint64_t prev = 0;
    for (int chunk = 0; chunk < 6; chunk++) {
        core.run(5'000);
        EXPECT_GE(core.nowPs(), prev);
        prev = core.nowPs();
    }
}

TEST_P(CorePropertySweep, SlowerClockNeverFasterWallClock)
{
    auto ops = randomOps(GetParam() + 300, 15'000);
    auto run_at = [&](Hertz f) {
        CoreConfig cfg;
        PrivateL2 l2(cfg);
        MemorySystem mem(cfg, l2);
        test::ScriptedSource src(ops);
        OooCore core(cfg, mem, src, f);
        return core.run(1'000'000).elapsedPs;
    };
    std::uint64_t turbo = run_at(1.0e9);
    std::uint64_t eff2 = run_at(0.85e9);
    EXPECT_GE(eff2, turbo);
    // And never slower than the pure-frequency bound.
    EXPECT_LE(static_cast<double>(eff2),
              static_cast<double>(turbo) / 0.85 * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertySweep,
                         ::testing::Values(11, 22, 33, 44, 55));

class GeneratorConservation
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GeneratorConservation, ProfilerChunksConserveInstructions)
{
    // Profile a real workload at tiny scale and verify the chunked
    // representation conserves instruction counts across modes.
    DvfsTable dvfs = DvfsTable::classic3();
    Profiler prof(dvfs);
    auto p = prof.profileWorkload(workload(GetParam()), 0.004);
    std::uint64_t total = p.at(0).totalInsts();
    for (std::size_t m = 1; m < p.modes.size(); m++)
        EXPECT_EQ(p.at(static_cast<PowerMode>(m)).totalInsts(),
                  total);

    // Cursor replay, any mode, any step size: instructions conserve.
    for (PowerMode m = 0; m < 3; m++) {
        ProfileCursor cur(p);
        double insts = 0.0;
        while (!cur.finished())
            insts += cur.advance(37.0, m).instructions;
        EXPECT_NEAR(insts, static_cast<double>(total),
                    total * 1e-9);
    }
}

TEST_P(GeneratorConservation, CursorEnergyConserves)
{
    DvfsTable dvfs = DvfsTable::classic3();
    Profiler prof(dvfs);
    auto p = prof.profileWorkload(workload(GetParam()), 0.004);
    for (PowerMode m = 0; m < 3; m++) {
        double want = p.at(m).totalEnergyJ();
        ProfileCursor cur(p);
        double got = 0.0;
        while (!cur.finished())
            got += cur.advance(53.0, m).energyJ;
        EXPECT_NEAR(got, want, want * 1e-9);
    }
}

TEST_P(GeneratorConservation, ModeSwitchingConservesInstructions)
{
    DvfsTable dvfs = DvfsTable::classic3();
    Profiler prof(dvfs);
    auto p = prof.profileWorkload(workload(GetParam()), 0.004);
    std::uint64_t total = p.at(0).totalInsts();
    ProfileCursor cur(p);
    Rng rng(99);
    double insts = 0.0;
    while (!cur.finished()) {
        auto m = static_cast<PowerMode>(rng.below(3));
        insts += cur.advance(41.0, m).instructions;
    }
    EXPECT_NEAR(insts, static_cast<double>(total), total * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Workloads, GeneratorConservation,
                         ::testing::Values("mcf", "ammp", "gcc",
                                           "crafty"));

} // namespace
} // namespace gpm
