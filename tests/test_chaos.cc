/** @file Chaos harness: every fault point in util/fault.hh armed
 *  in turn against a live ScenarioService / GpmServer over loopback,
 *  asserting graceful degradation — structured errors instead of
 *  dead daemons, supervisor-respawned workers, shed expired
 *  deadlines, reaped idle connections, answered over-long lines, and
 *  payloads that stay bitwise-identical to a direct sweep once the
 *  fault clears. Plus the deterministic backoff schedule gpmctl
 *  retries on. */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/fault.hh"
#include "service/server.hh"
#include "util/backoff.hh"

namespace gpm
{
namespace
{

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------
// BackoffSchedule: the client-side half of the resilience story.
// ---------------------------------------------------------------

TEST(Backoff, SameSeedReplaysSameDelays)
{
    BackoffSchedule a(50.0, 2000.0, 42);
    BackoffSchedule b(50.0, 2000.0, 42);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(a.nextMs(), b.nextMs()) << "call " << i;
    EXPECT_EQ(a.attempts(), 8u);
}

TEST(Backoff, DelaysGrowExponentiallyJitteredAndCapped)
{
    const double base = 50.0, cap = 2000.0;
    BackoffSchedule s(base, cap, 1);
    double raw = base;
    for (int i = 0; i < 12; i++) {
        double d = s.nextMs();
        // Jitter keeps each delay in [raw/2, raw).
        EXPECT_GE(d, raw * 0.5) << "call " << i;
        EXPECT_LT(d, raw) << "call " << i;
        raw = std::min(raw * 2.0, cap);
    }
}

TEST(Backoff, DifferentSeedsDecorrelate)
{
    BackoffSchedule a(50.0, 2000.0, 1);
    BackoffSchedule b(50.0, 2000.0, 2);
    bool differed = false;
    for (int i = 0; i < 8; i++)
        differed |= a.nextMs() != b.nextMs();
    EXPECT_TRUE(differed);
}

// ---------------------------------------------------------------
// Fault spec parsing and the disarmed fast path.
// ---------------------------------------------------------------

class FaultSpec : public ::testing::Test
{
  protected:
    void TearDown() override { fault::disarm(); }
};

TEST_F(FaultSpec, ArmParsesNamesProbabilitiesDelaysAndSeed)
{
    EXPECT_FALSE(fault::armed());
    auto err =
        fault::arm("worker-throw:0.5,conn-stall:1:150,seed:42");
    EXPECT_FALSE(err.has_value()) << *err;
    EXPECT_TRUE(fault::armed());

    fault::disarm();
    EXPECT_FALSE(fault::armed());

    // A bare name arms at probability 1.
    EXPECT_FALSE(fault::arm("read-drop").has_value());
    EXPECT_TRUE(fault::armed());

    // An empty spec just disarms.
    EXPECT_FALSE(fault::arm("").has_value());
    EXPECT_FALSE(fault::armed());
}

TEST_F(FaultSpec, ArmRejectsMalformedSpecs)
{
    auto expectRejected = [](const char *spec,
                             const char *needle) {
        auto err = fault::arm(spec);
        ASSERT_TRUE(err.has_value()) << spec;
        EXPECT_NE(err->find(needle), std::string::npos) << *err;
        EXPECT_FALSE(fault::armed()) << spec;
    };
    expectRejected("frobnicate:1", "unknown fault point");
    expectRejected("worker-throw:1.5", "bad probability");
    expectRejected("worker-throw:-0.1", "bad probability");
    expectRejected("conn-stall:1:999999999", "bad delay-ms");
    expectRejected("conn-stall:1:-5", "bad delay-ms");
    expectRejected("seed:abc", "bad seed");
    expectRejected("seed", "seed needs exactly one value");
    expectRejected("conn-stall:1:2:3", "too many");
}

TEST_F(FaultSpec, PointNamesRoundTrip)
{
    for (std::size_t i = 0; i < fault::kPoints; i++) {
        auto p = static_cast<fault::Point>(i);
        auto back = fault::pointByName(fault::name(p));
        ASSERT_TRUE(back.has_value()) << fault::name(p);
        EXPECT_EQ(*back, p);
    }
    EXPECT_FALSE(fault::pointByName("nope").has_value());
}

TEST_F(FaultSpec, DisarmedPointsNeverFire)
{
    fault::disarm();
    for (std::size_t i = 0; i < fault::kPoints; i++) {
        auto p = static_cast<fault::Point>(i);
        EXPECT_FALSE(fault::fire(p));
        EXPECT_EQ(fault::fires(p), 0u);
    }
    // Arming one point leaves the others cold.
    ASSERT_FALSE(fault::arm("worker-throw:1").has_value());
    EXPECT_FALSE(fault::fire(fault::Point::ConnStall));
    EXPECT_TRUE(fault::fire(fault::Point::WorkerThrow));
    EXPECT_EQ(fault::fires(fault::Point::WorkerThrow), 1u);
}

// ---------------------------------------------------------------
// Service-level chaos: crash containment, supervisor, deadlines.
// ---------------------------------------------------------------

class ChaosServiceTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    static ScenarioSpec
    scenario()
    {
        ScenarioSpec s;
        s.combo = {"mcf"};
        s.policy = "MaxBIPS";
        s.budgets = {0.8};
        return s;
    }

    /** Ground truth for scenario(): a direct serial sweep. */
    static std::string
    directPayload(const ScenarioSpec &spec)
    {
        ExperimentRunner direct(lib(), dvfs(), spec.simConfig());
        return serializeResults(spec, direct.sweep(spec.sweepSpec()));
    }

    /** Poll until stats() satisfies @p done (or ~5 s pass). */
    template <typename Pred>
    static bool
    waitForStats(ScenarioService &svc, Pred done)
    {
        for (int i = 0; i < 5000; i++) {
            if (done(svc.stats()))
                return true;
            sleepMs(1);
        }
        return false;
    }

    void TearDown() override { fault::disarm(); }
};

TEST_F(ChaosServiceTest, WorkerThrowBecomesInternalErrorNotADeadService)
{
    ScenarioService svc(lib(), dvfs());
    ASSERT_FALSE(fault::arm("worker-throw:1").has_value());

    auto r = svc.submit(scenario());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "internal_error");
    EXPECT_NE(r.errorMessage.find("worker-throw"),
              std::string::npos)
        << r.errorMessage;

    ServiceStats s = svc.stats();
    EXPECT_GE(s.workerCrashes, 1u);

    // The supervisor respawns the crashed worker.
    EXPECT_TRUE(waitForStats(svc, [&](const ServiceStats &st) {
        return st.workersAlive == svc.options().workers;
    })) << "worker count not restored";

    // Once the fault clears, the same scenario computes the exact
    // bytes a direct sweep produces — the crash poisoned nothing.
    fault::disarm();
    auto ok = svc.submit(scenario());
    ASSERT_TRUE(ok.ok) << ok.errorCode << ": " << ok.errorMessage;
    EXPECT_EQ(ok.payload, directPayload(scenario()));
}

TEST_F(ChaosServiceTest, ServiceSurvivesRepeatedCrashes)
{
    ScenarioService svc(lib(), dvfs());
    ASSERT_FALSE(fault::arm("worker-throw:1,seed:9").has_value());

    // Distinct scenarios so nothing is served from cache; each one
    // kills a worker and the supervisor must keep up.
    for (int i = 0; i < 4; i++) {
        ScenarioSpec spec = scenario();
        spec.budgets = {0.70 + 0.05 * i};
        auto r = svc.submit(spec);
        EXPECT_FALSE(r.ok) << "iteration " << i;
        EXPECT_EQ(r.errorCode, "internal_error");
    }
    EXPECT_GE(svc.stats().workerCrashes, 4u);
    EXPECT_TRUE(waitForStats(svc, [&](const ServiceStats &st) {
        return st.workersAlive == svc.options().workers;
    }));
}

TEST_F(ChaosServiceTest, ProbabilisticCrashesConvergeUnderRetry)
{
    ScenarioService svc(lib(), dvfs());
    ASSERT_FALSE(
        fault::arm("worker-throw:0.6,seed:7").has_value());

    // A client retry loop (the gpmctl shape): resubmit with seeded
    // backoff until the Bernoulli stream lets one through.
    BackoffSchedule backoff(1.0, 8.0, 7);
    ScenarioService::Response r;
    for (int attempt = 0; attempt < 50; attempt++) {
        r = svc.submit(scenario());
        if (r.ok)
            break;
        ASSERT_EQ(r.errorCode, "internal_error");
        sleepMs(static_cast<int>(backoff.nextMs()) + 1);
    }
    ASSERT_TRUE(r.ok) << "never converged";
    EXPECT_EQ(r.payload, directPayload(scenario()));
}

TEST_F(ChaosServiceTest, ExpiredDeadlineIsShedNotComputed)
{
    // Pin the only worker inside a deterministically slow sweep —
    // profile warm-up makes real sweeps too fast to race against.
    ASSERT_FALSE(fault::arm("worker-stall:1:400").has_value());
    ServiceOptions o;
    o.workers = 1;
    ScenarioService svc(lib(), dvfs(), o);

    ScenarioSpec slow = scenario();
    std::thread holder([&] {
        auto r = svc.submit(slow);
        EXPECT_TRUE(r.ok) << r.errorCode;
    });
    bool sawBusy = waitForStats(svc, [](const ServiceStats &st) {
        return st.inFlight > 0;
    });

    // Queue a request whose deadline cannot survive the stall. The
    // worker sheds it at pop time instead of computing for a caller
    // that has given up.
    ScenarioSpec doomed = scenario();
    doomed.budgets = {0.95};
    doomed.deadlineMs = 0.01;
    auto r = svc.submit(doomed);
    holder.join();

    EXPECT_TRUE(sawBusy);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "deadline_exceeded");
    EXPECT_EQ(svc.stats().shedDeadline, 1u);
    EXPECT_EQ(svc.stats().workerCrashes, 0u);

    // Fault cleared and no deadline: the same scenario computes.
    fault::disarm();
    doomed.deadlineMs = 0.0;
    auto ok = svc.submit(doomed);
    ASSERT_TRUE(ok.ok) << ok.errorCode;
    EXPECT_EQ(ok.payload, directPayload(doomed));
}

TEST_F(ChaosServiceTest, DeadlineIsQosOnlyAndSharesTheCacheEntry)
{
    ScenarioService svc(lib(), dvfs());
    ScenarioSpec spec = scenario();
    ASSERT_TRUE(svc.submit(spec).ok);

    // The same scenario with a (satisfiable) deadline hits the
    // cache: deadlineMs is not part of the scenario's identity.
    spec.deadlineMs = 60000.0;
    auto r = svc.submit(spec);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.cacheHit);
}

// ---------------------------------------------------------------
// Server-level chaos: transport faults over real loopback sockets.
// ---------------------------------------------------------------

class ChaosServerTest : public ChaosServiceTest
{
  protected:
    /** Bring up a server on an ephemeral port; tests pick their own
     *  service/server options, so this is not in SetUp(). */
    void
    start(ServiceOptions sopts = ServiceOptions{},
          ServerOptions opts = ServerOptions{})
    {
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        ASSERT_TRUE(listener.ok()) << listener.error();
        svc = std::make_unique<ScenarioService>(lib(), dvfs(),
                                                sopts);
        server = std::make_unique<GpmServer>(
            *svc, std::move(listener.value()), opts);
        port = server->port();
        acceptThread = std::thread([this] { server->run(); });
    }

    void
    TearDown() override
    {
        if (server) {
            server->requestStop();
            if (acceptThread.joinable())
                acceptThread.join();
            server->stopAndDrain();
            server.reset();
            svc.reset();
        }
        fault::disarm();
    }

    TcpStream
    connect()
    {
        auto conn = TcpStream::connectTo("127.0.0.1", port);
        EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
        return conn.ok() ? std::move(conn.value()) : TcpStream();
    }

    std::string
    roundTrip(TcpStream &stream, const std::string &line)
    {
        EXPECT_TRUE(stream.writeAll(line + "\n"));
        std::string response;
        EXPECT_EQ(stream.readLine(response),
                  TcpStream::ReadStatus::Line);
        return response;
    }

    static json::Value
    parseOk(const std::string &text)
    {
        auto r = json::parse(text);
        EXPECT_TRUE(r.ok()) << text;
        return r.ok() ? r.value() : json::Value();
    }

    static const char *
    submitLine()
    {
        return R"({"id": 1, "verb": "submit", "scenario": )"
               R"({"combo": ["mcf"], "policy": "MaxBIPS", )"
               R"("budget": 0.8}})";
    }

    std::unique_ptr<ScenarioService> svc;
    std::unique_ptr<GpmServer> server;
    std::uint16_t port = 0;
    std::thread acceptThread;
};

TEST_F(ChaosServerTest, DelayFaultsSlowTheRequestButNeverBreakIt)
{
    ASSERT_FALSE(fault::arm("accept-delay:1:30,conn-stall:1:30,"
                            "response-delay:1:30")
                     .has_value());
    start();

    TcpStream c = connect();
    json::Value r = parseOk(roundTrip(c, submitLine()));
    ASSERT_TRUE(r.find("ok")->asBool());

    // Every delay point actually fired, and the payload is still
    // exactly what a direct sweep computes.
    EXPECT_GE(fault::fires(fault::Point::AcceptDelay), 1u);
    EXPECT_GE(fault::fires(fault::Point::ConnStall), 1u);
    EXPECT_GE(fault::fires(fault::Point::ResponseDelay), 1u);
    auto direct = json::parse(directPayload(scenario()));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(r.find("result")->canonical(),
              direct.value().canonical());
}

TEST_F(ChaosServerTest, DroppedRequestTimesOutThenRetrySucceeds)
{
    ASSERT_FALSE(fault::arm("read-drop:1").has_value());
    start();

    TcpStream c = connect();
    c.setReadTimeoutMs(200);
    ASSERT_TRUE(c.writeAll(R"({"verb": "ping"})"
                           "\n"));
    // The server swallowed the line: the client's only signal is
    // its own timeout — exactly what gpmctl retries on.
    std::string response;
    EXPECT_EQ(c.readLine(response),
              TcpStream::ReadStatus::Timeout);
    EXPECT_GE(fault::fires(fault::Point::ReadDrop), 1u);

    // The retry (fault cleared) is served on the same connection.
    fault::disarm();
    c.setReadTimeoutMs(5000);
    json::Value r = parseOk(roundTrip(c, R"({"verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
}

TEST_F(ChaosServerTest, WorkerThrowOverTheWireLeavesDaemonServing)
{
    ASSERT_FALSE(fault::arm("worker-throw:1").has_value());
    start();

    TcpStream c = connect();
    json::Value r = parseOk(roundTrip(c, submitLine()));
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "internal_error");

    // Same connection still pings; the stats verb reports the
    // crash and the restored worker count.
    r = parseOk(roundTrip(c, R"({"verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
    EXPECT_TRUE(waitForStats(*svc, [&](const ServiceStats &st) {
        return st.workersAlive == svc->options().workers;
    }));
    r = parseOk(roundTrip(c, R"({"verb": "stats"})"));
    const json::Value *sr = r.find("result");
    ASSERT_TRUE(sr);
    EXPECT_GE(sr->find("workerCrashes")->asNumber(), 1.0);
    EXPECT_EQ(sr->find("workersAlive")->asNumber(),
              static_cast<double>(svc->options().workers));
    EXPECT_TRUE(sr->find("faultsArmed")->asBool());

    // Disarmed, the daemon serves the scenario it crashed on.
    fault::disarm();
    r = parseOk(roundTrip(c, submitLine()));
    ASSERT_TRUE(r.find("ok")->asBool());
    auto direct = json::parse(directPayload(scenario()));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(r.find("result")->canonical(),
              direct.value().canonical());
}

TEST_F(ChaosServerTest, IdleConnectionIsReaped)
{
    ServerOptions opts;
    opts.idleTimeoutMs = 150;
    start(ServiceOptions{}, opts);

    TcpStream idle = connect();
    idle.setReadTimeoutMs(5000);
    // Say nothing: the server reaps us, seen as an orderly close.
    std::string line;
    EXPECT_EQ(idle.readLine(line), TcpStream::ReadStatus::Eof);
    EXPECT_GE(server->idleReapedCount(), 1u);

    // Reaping one deadbeat does not disturb new connections.
    TcpStream fresh = connect();
    json::Value r =
        parseOk(roundTrip(fresh, R"({"verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
}

TEST_F(ChaosServerTest, OverlongLineIsAnsweredThenConnectionCloses)
{
    ServerOptions opts;
    opts.maxLineBytes = 64;
    start(ServiceOptions{}, opts);

    TcpStream c = connect();
    c.setReadTimeoutMs(5000);
    ASSERT_TRUE(
        c.writeAll(std::string(200, 'x') + "\n"));

    // One structured refusal, then EOF — framing is unrecoverable
    // past an overrun, so the server does not guess.
    std::string response;
    ASSERT_EQ(c.readLine(response), TcpStream::ReadStatus::Line);
    json::Value r = parseOk(response);
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "line_too_long");
    EXPECT_EQ(c.readLine(response), TcpStream::ReadStatus::Eof);
    EXPECT_GE(server->lineTooLongCount(), 1u);
}

TEST_F(ChaosServerTest, StatsVerbReportsRobustnessCounters)
{
    start();
    TcpStream c = connect();
    json::Value r = parseOk(roundTrip(c, R"({"verb": "stats"})"));
    const json::Value *sr = r.find("result");
    ASSERT_TRUE(sr);
    EXPECT_EQ(sr->find("shedDeadline")->asNumber(), 0.0);
    EXPECT_EQ(sr->find("workerCrashes")->asNumber(), 0.0);
    EXPECT_EQ(sr->find("workersAlive")->asNumber(),
              static_cast<double>(svc->options().workers));
    EXPECT_EQ(sr->find("idleReaped")->asNumber(), 0.0);
    EXPECT_EQ(sr->find("lineTooLong")->asNumber(), 0.0);
    EXPECT_FALSE(sr->find("faultsArmed")->asBool());
}

} // namespace
} // namespace gpm
