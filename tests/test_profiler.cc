/** @file Integration tests: profiling real workloads on the core
 *  model (small length scales). */

#include <gtest/gtest.h>

#include "trace/profiler.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

class ProfilerTest : public ::testing::Test
{
  protected:
    ProfilerTest() : dvfs(DvfsTable::classic3()), prof(dvfs) {}

    DvfsTable dvfs;
    Profiler prof;
};

TEST_F(ProfilerTest, ChunkStructureConsistentAcrossModes)
{
    auto p = prof.profileWorkload(workload("ammp"), 0.01);
    ASSERT_EQ(p.modes.size(), 3u);
    EXPECT_EQ(p.at(0).chunks.size(), p.at(1).chunks.size());
    EXPECT_EQ(p.at(0).chunks.size(), p.at(2).chunks.size());
    EXPECT_EQ(p.at(0).totalInsts(), p.at(2).totalInsts());
}

TEST_F(ProfilerTest, SlowerModesSlowerAndCheaper)
{
    auto p = prof.profileWorkload(workload("crafty"), 0.01);
    EXPECT_GT(p.at(modes::Eff1).totalTimePs(),
              p.at(modes::Turbo).totalTimePs());
    EXPECT_GT(p.at(modes::Eff2).totalTimePs(),
              p.at(modes::Eff1).totalTimePs());
    EXPECT_LT(p.at(modes::Eff1).avgPowerW(),
              p.at(modes::Turbo).avgPowerW());
    EXPECT_LT(p.at(modes::Eff2).avgPowerW(),
              p.at(modes::Eff1).avgPowerW());
}

TEST_F(ProfilerTest, MemoryBoundDegradesLessThanComputeBound)
{
    auto cpu = prof.profileWorkload(workload("sixtrack"), 0.01);
    auto mem = prof.profileWorkload(workload("mcf"), 0.01);
    auto slow = [](const WorkloadProfile &p) {
        return static_cast<double>(
                   p.at(modes::Eff2).totalTimePs()) /
            static_cast<double>(p.at(modes::Turbo).totalTimePs());
    };
    EXPECT_GT(slow(cpu), 1.12);
    EXPECT_LT(slow(mem), 1.06);
}

TEST_F(ProfilerTest, PowerSavingsNearCubic)
{
    auto p = prof.profileWorkload(workload("gcc"), 0.01);
    auto s = prof.summarize(p);
    // Within a couple of points of the ideal 14.26% / 38.59%.
    EXPECT_NEAR(s.powerSavings[0], 0.1426, 0.02);
    EXPECT_NEAR(s.powerSavings[1], 0.3859, 0.03);
}

TEST_F(ProfilerTest, SummaryDegradationBounds)
{
    auto p = prof.profileWorkload(workload("mesa"), 0.01);
    auto s = prof.summarize(p);
    // Eff1 elapsed-time increase within (0, 1/0.95-1];
    // Eff2 within (0, 1/0.85-1].
    EXPECT_GT(s.perfDegradation[0], 0.0);
    EXPECT_LE(s.perfDegradation[0], 1.0 / 0.95 - 1.0 + 1e-9);
    EXPECT_GT(s.perfDegradation[1], 0.0);
    EXPECT_LE(s.perfDegradation[1], 1.0 / 0.85 - 1.0 + 1e-9);
}

TEST_F(ProfilerTest, L2TrafficComparableAcrossModes)
{
    // The same instruction stream produces (nearly) the same misses
    // regardless of frequency.
    auto p = prof.profileWorkload(workload("art"), 0.01);
    auto misses = [](const ModeProfile &mp) {
        double m = 0;
        for (const auto &c : mp.chunks)
            m += c.l2Misses;
        return m;
    };
    double m0 = misses(p.at(modes::Turbo));
    double m2 = misses(p.at(modes::Eff2));
    EXPECT_GT(m0, 0.0);
    EXPECT_NEAR(m2 / m0, 1.0, 0.02);
}

TEST_F(ProfilerTest, CustomChunkSize)
{
    auto p1 =
        prof.profileWorkload(workload("mcf"), 0.01, 5'000);
    auto p2 =
        prof.profileWorkload(workload("mcf"), 0.01, 20'000);
    EXPECT_EQ(p1.at(0).totalInsts(), p2.at(0).totalInsts());
    EXPECT_GT(p1.at(0).chunks.size(), p2.at(0).chunks.size());
}

TEST_F(ProfilerTest, MemoryBoundHasLowerPower)
{
    auto cpu = prof.profileWorkload(workload("sixtrack"), 0.01);
    auto mem = prof.profileWorkload(workload("mcf"), 0.01);
    EXPECT_GT(cpu.at(modes::Turbo).avgPowerW(),
              mem.at(modes::Turbo).avgPowerW() * 1.4);
}

} // namespace
} // namespace gpm
