/** @file Unit tests for the shared L2 + windowed bus arbitration. */

#include <gtest/gtest.h>

#include "fullsim/shared_l2.hh"

namespace gpm
{
namespace
{

class SharedL2Test : public ::testing::Test
{
  protected:
    CoreConfig cfg;
};

TEST_F(SharedL2Test, HitAndMissLatencies)
{
    SharedL2 l2(cfg, 2, 4.0, 1000.0);
    auto r1 = l2.access(0, 0x8000, false, 0.0);
    EXPECT_TRUE(r1.miss);
    EXPECT_GE(r1.latencyNs, cfg.memLatNs);
    auto r2 = l2.access(0, 0x8000, false, 500.0);
    EXPECT_FALSE(r2.miss);
    EXPECT_GE(r2.latencyNs, cfg.l2LatNs);
}

TEST_F(SharedL2Test, SharingIsVisibleAcrossCores)
{
    SharedL2 l2(cfg, 2, 4.0, 1000.0);
    l2.access(0, 0x8000, false, 0.0);
    // The other core accessing the same physical block hits.
    auto r = l2.access(1, 0x8000, false, 100.0);
    EXPECT_FALSE(r.miss);
}

TEST_F(SharedL2Test, BacklogDelaysBurstTraffic)
{
    SharedL2 l2(cfg, 2, 4.0, 1000.0);
    // 100 requests all at t=0: request k waits ~4k ns.
    double total_queue = 0.0;
    for (int i = 0; i < 100; i++) {
        auto r = l2.access(0, 0x10000 + i * 0x10000, false, 0.0);
        total_queue += r.latencyNs - cfg.memLatNs;
    }
    EXPECT_GT(total_queue, 100.0 * 4.0); // some real queueing
    EXPECT_GT(l2.avgQueueNs(), 1.0);
}

TEST_F(SharedL2Test, QuietBusHasNoQueue)
{
    SharedL2 l2(cfg, 2, 4.0, 1000.0);
    // Sparse requests, one per window.
    for (int i = 0; i < 10; i++) {
        auto r = l2.access(0, 0x10000 + i * 0x10000, false,
                           i * 1000.0 + 500.0);
        EXPECT_DOUBLE_EQ(r.latencyNs, cfg.memLatNs) << i;
    }
    EXPECT_DOUBLE_EQ(l2.avgQueueNs(), 0.0);
}

TEST_F(SharedL2Test, OrderInsensitiveAcrossCores)
{
    // Same total traffic split across two cores, either order:
    // total queueing must be identical (windowed accounting).
    auto run = [&](bool core0_first) {
        SharedL2 l2(cfg, 2, 4.0, 1000.0);
        double q = 0.0;
        for (int w = 0; w < 5; w++) {
            double base = w * 1000.0;
            auto burst = [&](std::uint32_t core,
                             std::uint64_t tag) {
                for (int i = 0; i < 20; i++) {
                    auto r = l2.access(
                        core, tag + i * 0x10000 + w * 0x1000000,
                        false, base + i * 40.0);
                    q += r.latencyNs;
                }
            };
            if (core0_first) {
                burst(0, 0x1000000000ULL);
                burst(1, 0x2000000000ULL);
            } else {
                burst(1, 0x2000000000ULL);
                burst(0, 0x1000000000ULL);
            }
        }
        return q;
    };
    EXPECT_NEAR(run(true), run(false), 1e-6);
}

TEST_F(SharedL2Test, BacklogCarriesAcrossSaturatedWindows)
{
    SharedL2 l2(cfg, 1, 4.0, 100.0); // tiny window: 25 slots
    // 50 requests at t=0: 200 ns of service in a 100 ns window.
    double last_queue = 0.0;
    for (int i = 0; i < 50; i++) {
        auto r = l2.access(0, 0x10000 + i * 0x10000, false, 0.0);
        last_queue = r.latencyNs - cfg.memLatNs;
    }
    EXPECT_GT(last_queue, 100.0); // backlog spilled past window
    // A request much later sees a drained bus.
    auto r = l2.access(0, 0x9000000, false, 10'000.0);
    EXPECT_DOUBLE_EQ(r.latencyNs, cfg.memLatNs);
}

TEST_F(SharedL2Test, PerCoreTrafficAttribution)
{
    SharedL2 l2(cfg, 3, 4.0, 1000.0);
    l2.access(0, 0x8000, false, 0.0);
    l2.access(1, 0x10000, false, 0.0);
    l2.access(1, 0x18000, false, 0.0);
    EXPECT_EQ(l2.traffic(0).accesses, 1u);
    EXPECT_EQ(l2.traffic(1).accesses, 2u);
    EXPECT_EQ(l2.traffic(2).accesses, 0u);
    EXPECT_EQ(l2.traffic(1).misses, 2u);
}

TEST_F(SharedL2Test, CapacityContention)
{
    // One core streams a >2MB footprint, evicting the other's set.
    SharedL2 l2(cfg, 2, 4.0, 1000.0);
    l2.access(0, 0x0, false, 0.0);
    for (std::uint64_t b = 0; b < 4 * 1024 * 1024 / 128; b++)
        l2.access(1, 0x40000000ULL + b * 128, false, 100.0);
    auto r = l2.access(0, 0x0, false, 50'000.0);
    EXPECT_TRUE(r.miss); // victimized by the streaming core
}

} // namespace
} // namespace gpm
