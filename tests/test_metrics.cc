/** @file Unit tests for the run metrics. */

#include <gtest/gtest.h>

#include "metrics/metrics.hh"

namespace gpm
{
namespace
{

SimResult
makeResult(MicroSec end_us, std::vector<double> insts,
           std::vector<double> energy)
{
    SimResult r;
    r.endUs = end_us;
    r.coreInstructions = std::move(insts);
    r.coreEnergyJ = std::move(energy);
    r.finished.assign(r.coreInstructions.size(), false);
    return r;
}

TEST(Metrics, NoDegradationAgainstSelf)
{
    auto ref = makeResult(1000.0, {1e6, 2e6}, {1e-2, 1e-2});
    auto m = computeMetrics(ref, ref, 20.0);
    EXPECT_NEAR(m.perfDegradation, 0.0, 1e-12);
    EXPECT_NEAR(m.weightedSlowdown, 0.0, 1e-12);
    EXPECT_NEAR(m.powerSavings, 0.0, 1e-12);
    EXPECT_NEAR(m.powerOverBudget, 20.0 / 20.0, 1e-12);
}

TEST(Metrics, ThroughputDegradation)
{
    auto ref = makeResult(1000.0, {1e6, 1e6}, {1e-2, 1e-2});
    auto run = makeResult(1000.0, {0.9e6, 0.9e6}, {8e-3, 8e-3});
    auto m = computeMetrics(run, ref, 18.0);
    EXPECT_NEAR(m.perfDegradation, 0.10, 1e-9);
    EXPECT_NEAR(m.powerSavings, 0.20, 1e-9);
    // 16 W against an 18 W budget.
    EXPECT_NEAR(m.powerOverBudget, 16.0 / 18.0, 1e-9);
}

TEST(Metrics, WeightedSlowdownUsesHarmonicMean)
{
    auto ref = makeResult(1000.0, {1e6, 1e6}, {1e-2, 1e-2});
    // Thread 0 halves, thread 1 unchanged.
    auto run = makeResult(1000.0, {0.5e6, 1e6}, {1e-2, 1e-2});
    auto m = computeMetrics(run, ref, 0.0);
    double hmean = 2.0 / (1.0 / 0.5 + 1.0 / 1.0);
    EXPECT_NEAR(m.weightedSlowdown, 1.0 - hmean, 1e-9);
    EXPECT_NEAR(m.weightedSpeedupLoss, 1.0 - 0.75, 1e-9);
    // Harmonic mean punishes imbalance more than arithmetic.
    EXPECT_GT(m.weightedSlowdown, m.weightedSpeedupLoss);
}

TEST(Metrics, ThreadSpeedupsPerCore)
{
    auto ref = makeResult(1000.0, {1e6, 2e6}, {1e-2, 1e-2});
    auto run = makeResult(2000.0, {1e6, 4e6}, {1e-2, 1e-2});
    auto s = threadSpeedups(run, ref);
    EXPECT_NEAR(s[0], 0.5, 1e-9);
    EXPECT_NEAR(s[1], 1.0, 1e-9);
}

TEST(Metrics, ZeroBudgetSkipsRatio)
{
    auto ref = makeResult(1000.0, {1e6}, {1e-2});
    auto m = computeMetrics(ref, ref, 0.0);
    EXPECT_DOUBLE_EQ(m.powerOverBudget, 0.0);
}

TEST(Metrics, DifferentWindowsNormalizedByTime)
{
    // Run takes twice as long for the same instructions: half BIPS.
    auto ref = makeResult(1000.0, {1e6}, {1e-2});
    auto run = makeResult(2000.0, {1e6}, {2e-2});
    auto m = computeMetrics(run, ref, 0.0);
    EXPECT_NEAR(m.perfDegradation, 0.5, 1e-9);
    // Same average power.
    EXPECT_NEAR(m.powerSavings, 0.0, 1e-9);
}

} // namespace
} // namespace gpm
