/** @file The service JSON layer: strict parsing, malformed-input
 *  rejection, bit-exact double round trips, and canonical-form
 *  (hashing) invariance. */

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

#include "service/json.hh"

namespace gpm::json
{
namespace
{

Value
parseOk(const std::string &text)
{
    auto r = parse(text);
    EXPECT_TRUE(r.ok()) << text << " -> "
                        << (r.ok() ? "" : r.error().message);
    return r.ok() ? r.value() : Value();
}

std::string
parseErr(const std::string &text)
{
    auto r = parse(text);
    EXPECT_FALSE(r.ok()) << text << " unexpectedly parsed";
    return r.ok() ? "" : r.error().message;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_EQ(parseOk("-0.5e2").asNumber(), -50.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseOk("  17 ").asNumber(), 17.0);
}

TEST(Json, ParsesNestedStructures)
{
    Value v = parseOk(
        R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->asArray().size(), 3u);
    EXPECT_EQ(a->asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(a->asArray()[2].find("b")->isNull());
    EXPECT_EQ(v.find("c")->find("d")->asString(), "e");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "  ", "{", "[", "\"", "{\"a\":}", "[1,]", "{,}",
          "[1 2]", "{\"a\" 1}", "tru", "nul", "TRUE", "'x'",
          "{\"a\":1,}", "1 2", "[1]]", "{\"a\":1}x", "\x01"})
        parseErr(bad);
}

TEST(Json, RejectsMalformedNumbers)
{
    for (const char *bad : {"01", "1.", ".5", "+1", "1e", "1e+",
                            "--1", "nan", "Infinity", "0x10", "- 1"})
        parseErr(bad);
}

TEST(Json, RejectsDuplicateKeys)
{
    EXPECT_NE(parseErr(R"({"a":1,"a":2})").find("duplicate"),
              std::string::npos);
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parseOk(R"("a\nb\tc\"d\\e\/f")").asString(),
              "a\nb\tc\"d\\e/f");
    EXPECT_EQ(parseOk(R"("Aé")").asString(),
              "A\xc3\xa9");
    // Astral plane via surrogate pair (U+1F600).
    EXPECT_EQ(parseOk(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
    parseErr(R"("\ud83d")");       // unpaired high surrogate
    parseErr(R"("\ude00")");       // lone low surrogate
    parseErr(R"("\ud83dA")"); // invalid low surrogate
    parseErr(R"("\q")");           // unknown escape
    parseErr("\"a\nb\"");          // raw control character
}

TEST(Json, SerializerEscapesControlCharacters)
{
    Value v(std::string("a\"b\\c\n\x01"));
    EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\n\\u0001\"");
    // And it parses back to the identical string.
    EXPECT_EQ(parseOk(v.dump()).asString(), v.asString());
}

TEST(Json, DepthLimit)
{
    std::string deep40(40, '['), close40(40, ']');
    parseOk(deep40 + "1" + close40);
    std::string deep100(100, '['), close100(100, ']');
    parseErr(deep100 + "1" + close100);
}

TEST(Json, DoublesRoundTripBitExactly)
{
    const double cases[] = {0.0,
                            -0.0,
                            1.0,
                            0.1,
                            1.0 / 3.0,
                            2.0 / 3.0,
                            1e-9,
                            6.02214076e23,
                            123456789.123456789,
                            5e-324,
                            1.7976931348623157e308,
                            0.625,
                            0.925};
    for (double d : cases) {
        std::string s = formatDouble(d);
        double back = parseOk(s).asNumber();
        EXPECT_EQ(std::memcmp(&back, &d, sizeof(double)), 0)
            << d << " -> " << s << " -> " << back;
    }
    EXPECT_EQ(formatDouble(0.5), "0.5"); // shortest form wins
    EXPECT_EQ(formatDouble(5.0), "5");
}

TEST(Json, DumpPreservesInsertionOrderCanonicalSorts)
{
    Value v = Value::object();
    v.set("zeta", 1);
    v.set("alpha", Value::array());
    EXPECT_EQ(v.dump(), R"({"zeta":1,"alpha":[]})");
    EXPECT_EQ(v.canonical(), R"({"alpha":[],"zeta":1})");
}

TEST(Json, CanonicalHashIgnoresKeyOrder)
{
    Value a = parseOk(R"({"x": 1, "y": [true, {"k": 2}]})");
    Value b = parseOk(R"({"y": [true, {"k": 2}], "x": 1})");
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.canonicalHash(), b.canonicalHash());

    Value c = parseOk(R"({"x": 1, "y": [true, {"k": 3}]})");
    EXPECT_NE(a.canonicalHash(), c.canonicalHash());
}

TEST(Json, SetReplacesExistingKey)
{
    Value v = Value::object();
    v.set("a", 1);
    v.set("a", 2);
    ASSERT_EQ(v.asObject().size(), 1u);
    EXPECT_EQ(v.find("a")->asNumber(), 2.0);
}

TEST(Json, ParseDumpRoundTrip)
{
    std::string text =
        R"({"s":"é","n":-1.25e-3,"b":false,"a":[null,1],"o":{}})";
    Value v = parseOk(text);
    EXPECT_EQ(parseOk(v.dump()).canonical(), v.canonical());
}

} // namespace
} // namespace gpm::json
