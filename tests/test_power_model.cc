/** @file Unit tests for the activity-based core power model. */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace gpm
{
namespace
{

ActivitySample
busySample(std::uint64_t cycles)
{
    ActivitySample s;
    s.cycles = cycles;
    s.fetched = cycles * 4;
    s.dispatched = cycles * 4;
    s.issued = cycles * 4;
    s.committed = cycles * 4;
    s.fxuOps = cycles;
    s.fpuOps = cycles;
    s.lsuOps = cycles;
    s.branches = cycles / 2;
    s.l1iAccesses = cycles;
    s.l1dAccesses = cycles;
    return s;
}

class PowerModelTest : public ::testing::Test
{
  protected:
    PowerModelTest()
        : dvfs(DvfsTable::classic3()),
          model(CorePowerParams::classic(), dvfs)
    {
    }

    DvfsTable dvfs;
    CorePowerModel model;
};

TEST_F(PowerModelTest, IdleLessThanBusy)
{
    ActivitySample idle;
    idle.cycles = 1000;
    EXPECT_LT(model.power(idle, modes::Turbo),
              model.power(busySample(1000), modes::Turbo));
}

TEST_F(PowerModelTest, PowerBoundedByPeak)
{
    EXPECT_LE(model.power(busySample(1000), modes::Turbo),
              model.peakW());
}

TEST_F(PowerModelTest, UtilizationMonotone)
{
    ActivitySample half = busySample(1000);
    half.fxuOps /= 2;
    half.fpuOps /= 2;
    half.lsuOps /= 2;
    EXPECT_LT(model.power(half, modes::Turbo),
              model.power(busySample(1000), modes::Turbo));
}

TEST_F(PowerModelTest, DvfsScalingNearCubic)
{
    // Dynamic power scales exactly cubically; leakage (linear in V)
    // pulls measured savings slightly below the ideal 14.26%/38.6%.
    ActivitySample s = busySample(1000);
    double p0 = model.power(s, modes::Turbo);
    double p1 = model.power(s, modes::Eff1);
    double p2 = model.power(s, modes::Eff2);
    double save1 = 1.0 - p1 / p0;
    double save2 = 1.0 - p2 / p0;
    EXPECT_NEAR(save1, 0.1426, 0.01);
    EXPECT_NEAR(save2, 0.3859, 0.02);
    EXPECT_LT(save1, 0.1427);
    EXPECT_LT(save2, 0.3859);
}

TEST_F(PowerModelTest, EnergyIsPowerTimesTime)
{
    ActivitySample s = busySample(1'000'000);
    double p = model.power(s, modes::Turbo);
    double e = model.energy(s, modes::Turbo);
    double secs = 1'000'000 / dvfs.frequency(modes::Turbo);
    EXPECT_NEAR(e, p * secs, 1e-12);
}

TEST_F(PowerModelTest, SameCyclesTakeLongerAtLowerFrequency)
{
    // Same cycle count = more seconds at lower f; energy reflects
    // power scale x time scale.
    ActivitySample s = busySample(1'000'000);
    double e0 = model.energy(s, modes::Turbo);
    double e2 = model.energy(s, modes::Eff2);
    // e2/e0 = pscale / fscale = 0.614 / 0.85.
    EXPECT_NEAR(e2 / e0, 0.614125 / 0.85, 0.02);
}

TEST_F(PowerModelTest, StallPowerBetweenZeroAndIdleCeiling)
{
    double stall = model.stallPower(modes::Turbo);
    EXPECT_GT(stall, 0.0);
    EXPECT_LT(stall, model.peakW() / 2);
    // Stall power scales down with mode too.
    EXPECT_LT(model.stallPower(modes::Eff2), stall);
}

TEST_F(PowerModelTest, ZeroCycleSampleHasNoUtilization)
{
    ActivitySample s;
    double p = model.power(s, modes::Turbo);
    EXPECT_NEAR(p, model.stallPower(modes::Turbo), 1e-9);
}

TEST(ActivitySample, MergeAccumulates)
{
    ActivitySample a, b;
    a.cycles = 10;
    a.fxuOps = 5;
    b.cycles = 20;
    b.fxuOps = 7;
    b.l2Misses = 3;
    a.merge(b);
    EXPECT_EQ(a.cycles, 30u);
    EXPECT_EQ(a.fxuOps, 12u);
    EXPECT_EQ(a.l2Misses, 3u);
}

TEST(ActivitySample, ResetClears)
{
    ActivitySample a;
    a.cycles = 10;
    a.branches = 2;
    a.reset();
    EXPECT_EQ(a.cycles, 0u);
    EXPECT_EQ(a.branches, 0u);
}

TEST(CorePowerParams, PeakIsSumOfUnitsPlusLeakage)
{
    auto p = CorePowerParams::classic();
    double sum = p.leakageW;
    for (auto w : p.unitMaxW)
        sum += w;
    EXPECT_DOUBLE_EQ(p.peakW(), sum);
    EXPECT_GT(p.peakW(), 10.0);
}

TEST(UncorePowerModel, BasePlusTraffic)
{
    UncorePowerModel::Params prm;
    prm.baseW = 2.0;
    prm.l2AccessJ = 1e-9;
    prm.memAccessJ = 5e-9;
    UncorePowerModel u(prm);
    EXPECT_DOUBLE_EQ(u.energy(1.0, 0, 0), 2.0);
    EXPECT_DOUBLE_EQ(u.energy(1.0, 1000, 100),
                     2.0 + 1000e-9 + 500e-9);
    EXPECT_DOUBLE_EQ(u.baseW(), 2.0);
}

TEST(UnitName, AllUnitsNamed)
{
    for (std::size_t u = 0; u < numUnits; u++)
        EXPECT_NE(unitName(static_cast<Unit>(u)), nullptr);
}

class ModeSweepPower
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModeSweepPower, PowerMonotoneAcrossModes)
{
    auto dvfs = DvfsTable::linear(6, 0.75);
    CorePowerModel model(CorePowerParams::classic(), dvfs);
    ActivitySample s = busySample(GetParam());
    double prev = 1e300;
    for (std::size_t m = 0; m < dvfs.numModes(); m++) {
        double p = model.power(s, static_cast<PowerMode>(m));
        EXPECT_LT(p, prev);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(CycleCounts, ModeSweepPower,
                         ::testing::Values(1, 100, 10'000,
                                           1'000'000));

} // namespace
} // namespace gpm
