/** @file Unit tests for profiles, cursors and the profile library. */

#include <cstdio>

#include <gtest/gtest.h>

#include "helpers.hh"
#include "trace/phase_profile.hh"

namespace gpm
{
namespace
{

using test::classicSyntheticProfile;
using test::syntheticProfile;

TEST(ModeProfile, Totals)
{
    auto p = classicSyntheticProfile(10, 10.0, 1e-4);
    const ModeProfile &mp = p.at(modes::Turbo);
    EXPECT_EQ(mp.totalInsts(), 100'000u);
    EXPECT_EQ(mp.totalTimePs(), 100'000'000u); // 10 x 10 us
    EXPECT_NEAR(mp.totalEnergyJ(), 1e-3, 1e-12);
    EXPECT_NEAR(mp.avgPowerW(), 1e-3 / 100e-6, 1e-6);
    EXPECT_NEAR(mp.bips(), 100'000 / (100e-6 * 1e9), 1e-9);
}

TEST(ModeProfile, SlowerModesTakeLonger)
{
    auto p = classicSyntheticProfile();
    EXPECT_GT(p.at(modes::Eff1).totalTimePs(),
              p.at(modes::Turbo).totalTimePs());
    EXPECT_GT(p.at(modes::Eff2).totalTimePs(),
              p.at(modes::Eff1).totalTimePs());
    EXPECT_LT(p.at(modes::Eff2).avgPowerW(),
              p.at(modes::Turbo).avgPowerW());
}

TEST(ProfileCursor, AdvanceConsumesTime)
{
    auto p = classicSyntheticProfile(10, 10.0, 1e-4);
    ProfileCursor cur(p);
    auto d = cur.advance(25.0, modes::Turbo); // 2.5 chunks
    EXPECT_NEAR(d.instructions, 25'000, 1);
    EXPECT_NEAR(d.usedUs, 25.0, 1e-9);
    EXPECT_FALSE(d.finished);
    EXPECT_NEAR(cur.progress(), 0.25, 1e-9);
}

TEST(ProfileCursor, FinishesAndReportsPartialUse)
{
    auto p = classicSyntheticProfile(10, 10.0, 1e-4);
    ProfileCursor cur(p);
    auto d = cur.advance(1000.0, modes::Turbo);
    EXPECT_TRUE(d.finished);
    EXPECT_NEAR(d.usedUs, 100.0, 1e-6);
    EXPECT_NEAR(d.instructions, 100'000, 1);
    EXPECT_TRUE(cur.finished());
    // Advancing further yields nothing.
    auto d2 = cur.advance(50.0, modes::Turbo);
    EXPECT_NEAR(d2.instructions, 0.0, 1e-9);
    EXPECT_NEAR(d2.usedUs, 0.0, 1e-9);
}

TEST(ProfileCursor, PeekDoesNotMove)
{
    auto p = classicSyntheticProfile();
    ProfileCursor cur(p);
    auto d1 = cur.peek(30.0, modes::Turbo);
    auto d2 = cur.peek(30.0, modes::Turbo);
    EXPECT_NEAR(d1.instructions, d2.instructions, 1e-9);
    EXPECT_NEAR(cur.progress(), 0.0, 1e-12);
}

TEST(ProfileCursor, ModeSwitchPreservesInstructionPosition)
{
    auto p = classicSyntheticProfile(10, 10.0, 1e-4);
    ProfileCursor a(p), b(p);
    // a: all Turbo. b: half Turbo then Eff2 — instructions conserve.
    double insts_a = 0.0;
    insts_a += a.advance(50.0, modes::Turbo).instructions;
    double insts_b = 0.0;
    insts_b += b.advance(50.0, modes::Turbo).instructions;
    EXPECT_NEAR(a.instructionsDone(), b.instructionsDone(), 1e-6);
    // Continue b at Eff2: it needs 1/0.85 more time per chunk.
    auto d = b.advance(10.0 / 0.85, modes::Eff2);
    EXPECT_NEAR(d.instructions, 10'000, 1);
}

TEST(ProfileCursor, SlowerModeYieldsFewerInstructionsPerTime)
{
    auto p = classicSyntheticProfile();
    ProfileCursor cur(p);
    auto turbo = cur.peek(40.0, modes::Turbo);
    auto eff2 = cur.peek(40.0, modes::Eff2);
    EXPECT_NEAR(eff2.instructions / turbo.instructions, 0.85, 1e-6);
}

TEST(ProfileCursor, DilationSlowsProgress)
{
    auto p = classicSyntheticProfile();
    ProfileCursor cur(p);
    auto plain = cur.peek(40.0, modes::Turbo, 1.0);
    auto dilated = cur.peek(40.0, modes::Turbo, 1.25);
    EXPECT_NEAR(dilated.instructions / plain.instructions,
                1.0 / 1.25, 1e-6);
}

TEST(ProfileCursor, RewindRestarts)
{
    auto p = classicSyntheticProfile();
    ProfileCursor cur(p);
    cur.advance(1e6, modes::Turbo);
    EXPECT_TRUE(cur.finished());
    cur.rewind();
    EXPECT_FALSE(cur.finished());
    EXPECT_NEAR(cur.progress(), 0.0, 1e-12);
}

TEST(ProfileCursor, EnergyProportionalToProgress)
{
    auto p = classicSyntheticProfile(10, 10.0, 1e-4);
    ProfileCursor cur(p);
    auto d = cur.advance(50.0, modes::Turbo);
    EXPECT_NEAR(d.energyJ, 5e-4, 1e-10);
}

TEST(ProfileCursor, L2TrafficAccumulates)
{
    auto p = syntheticProfile(10, 10'000, 10.0, 1e-4,
                              {1.0, 1.0 / 0.85},
                              {1.0, 0.614}, 500);
    ProfileCursor cur(p);
    auto d = cur.advance(35.0, static_cast<PowerMode>(0));
    EXPECT_NEAR(d.l2Misses, 3.5 * 500, 1);
    EXPECT_NEAR(d.l2Accesses, 3.5 * 1000, 2);
}

TEST(WorkloadProfile, AtChecksBounds)
{
    auto p = classicSyntheticProfile();
    EXPECT_EQ(&p.at(modes::Turbo), &p.modes[0]);
}

TEST(ProfileLibrary, SaveLoadRoundTrip)
{
    auto dvfs = DvfsTable::classic3();
    std::string path =
        ::testing::TempDir() + "/gpm_profiles_test.bin";
    ProfileLibrary lib(dvfs, 0.002);
    const WorkloadProfile &p = lib.get("mcf");
    std::uint64_t insts = p.at(modes::Turbo).totalInsts();
    lib.save(path);

    ProfileLibrary lib2(dvfs, 0.002);
    ASSERT_TRUE(lib2.load(path));
    const WorkloadProfile &q = lib2.get("mcf");
    EXPECT_EQ(q.at(modes::Turbo).totalInsts(), insts);
    EXPECT_EQ(q.at(modes::Turbo).chunks.size(),
              p.at(modes::Turbo).chunks.size());
    EXPECT_NEAR(q.at(modes::Eff2).totalEnergyJ(),
                p.at(modes::Eff2).totalEnergyJ(), 1e-12);
    std::remove(path.c_str());
}

TEST(ProfileLibrary, LoadMergesWithoutInvalidatingReferences)
{
    // gpmd prewarms load() on a background thread while get()
    // serves: a load must merge into the live table, never clear
    // it — references handed out earlier stay valid.
    auto dvfs = DvfsTable::classic3();
    std::string path =
        ::testing::TempDir() + "/gpm_profiles_merge.bin";
    ProfileLibrary lib(dvfs, 0.002);
    lib.get("mcf");
    lib.get("art");
    lib.save(path);

    ProfileLibrary lib2(dvfs, 0.002);
    const WorkloadProfile *mcf = &lib2.get("mcf");
    std::uint64_t insts = mcf->at(modes::Turbo).totalInsts();
    ASSERT_TRUE(lib2.load(path));
    // The pre-existing Ready slot survives the load by address...
    EXPECT_EQ(mcf, &lib2.get("mcf"));
    EXPECT_EQ(mcf->at(modes::Turbo).totalInsts(), insts);
    // ...and only the file's other profile merged in from disk.
    EXPECT_EQ(lib2.stats().diskHits, 1u);
    lib2.get("art");
    EXPECT_EQ(lib2.stats().builds, 1u);
    std::remove(path.c_str());
}

TEST(ProfileLibrary, LoadRejectsWrongScale)
{
    auto dvfs = DvfsTable::classic3();
    std::string path =
        ::testing::TempDir() + "/gpm_profiles_scale.bin";
    ProfileLibrary lib(dvfs, 0.002);
    lib.get("mcf");
    lib.save(path);

    ProfileLibrary other(dvfs, 0.004);
    EXPECT_FALSE(other.load(path));
    std::remove(path.c_str());
}

TEST(ProfileLibrary, LoadRejectsGarbage)
{
    std::string path = ::testing::TempDir() + "/gpm_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a profile file", f);
    std::fclose(f);
    auto dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, 1.0);
    EXPECT_FALSE(lib.load(path));
    std::remove(path.c_str());
}

TEST(ProfileLibrary, LoadMissingFileFails)
{
    auto dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, 1.0);
    EXPECT_FALSE(lib.load("/nonexistent/path/profiles.bin"));
}

TEST(ProfileLibrary, GetIsStableAcrossGrowth)
{
    auto dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, 0.002);
    const WorkloadProfile *first = &lib.get("mcf");
    lib.get("art");
    lib.get("ammp");
    EXPECT_EQ(first, &lib.get("mcf"));
}

TEST(ProfileLibrary, FingerprintStable)
{
    auto dvfs = DvfsTable::classic3();
    ProfileLibrary a(dvfs, 0.5), b(dvfs, 0.5), c(dvfs, 0.25);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

} // namespace
} // namespace gpm
