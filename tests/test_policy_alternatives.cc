/** @file Unit tests for the exploration- and history-based policy
 *  alternatives of paper Section 5.5. */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "helpers.hh"

namespace gpm
{
namespace
{

using test::randomMatrix;

std::vector<CoreSample>
samplesAt(const ModeMatrix &m, const std::vector<PowerMode> &modes)
{
    std::vector<CoreSample> s(m.numCores());
    for (std::size_t c = 0; c < s.size(); c++) {
        s[c].mode = modes[c];
        s[c].powerW = m.powerW(c, modes[c]);
        s[c].bips = m.bips(c, modes[c]);
    }
    return s;
}

PolicyInput
inputFor(const ModeMatrix &m, const std::vector<CoreSample> &s,
         Watts budget, const DvfsTable &dvfs)
{
    PolicyInput in;
    in.predicted = &m;
    in.samples = &s;
    in.budgetW = budget;
    in.dvfs = &dvfs;
    return in;
}

TEST(ExplorationPolicy, SweepsAllModesSlowestFirst)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(3, 3, 5);
    ExplorationPolicy policy(4);
    std::vector<PowerMode> cur(3, 2);
    // First three decisions must be uniform Eff2, Eff1, Turbo.
    for (int expect = 2; expect >= 0; expect--) {
        auto samples = samplesAt(m, cur);
        auto in = inputFor(m, samples, 1e9, dvfs);
        cur = policy.decide(in);
        for (auto a : cur)
            EXPECT_EQ(static_cast<int>(a), expect);
    }
}

TEST(ExplorationPolicy, ExploitsMeasuredMatrixAfterSweep)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(3, 3, 6);
    ExplorationPolicy policy(4);
    std::vector<PowerMode> cur(3, 2);
    std::vector<PowerMode> floor_assign(3, 2);
    Watts budget = m.totalPowerW(floor_assign) * 1.25;
    for (int i = 0; i < 3; i++) {
        auto samples = samplesAt(m, cur);
        auto in = inputFor(m, samples, budget, dvfs);
        cur = policy.decide(in);
    }
    // Decision after the sweep: solved over exact measurements, so
    // identical to MaxBIPS on the true matrix.
    auto samples = samplesAt(m, cur);
    auto in = inputFor(m, samples, budget, dvfs);
    auto post = policy.decide(in);
    auto ideal = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::Exhaustive);
    EXPECT_NEAR(m.totalBips(post), m.totalBips(ideal), 1e-12);
    // ...and it holds that assignment while exploiting.
    auto samples2 = samplesAt(m, post);
    auto in2 = inputFor(m, samples2, budget, dvfs);
    auto held = policy.decide(in2);
    EXPECT_EQ(held, post);
}

TEST(ExplorationPolicy, ReExploresAfterExploitWindow)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(2, 3, 7);
    ExplorationPolicy policy(2); // short exploitation window
    std::vector<PowerMode> cur(2, 2);
    // Sweep (3) + decision-and-exploit (2) then sweep restarts.
    std::vector<std::vector<PowerMode>> history;
    for (int i = 0; i < 8; i++) {
        auto samples = samplesAt(m, cur);
        auto in = inputFor(m, samples, 1e9, dvfs);
        cur = policy.decide(in);
        history.push_back(cur);
    }
    // Step 5 (0-based) must be the uniform-Eff2 start of sweep #2.
    bool found_resweep = false;
    for (std::size_t i = 4; i < history.size(); i++) {
        if (history[i] ==
            std::vector<PowerMode>(2, static_cast<PowerMode>(2)))
            found_resweep = true;
    }
    EXPECT_TRUE(found_resweep);
}

TEST(HistoryPolicy, UsesRememberedMeasurementsOverScaling)
{
    DvfsTable dvfs = DvfsTable::classic3();
    // Build a "true" matrix whose Eff2 behaviour deviates from the
    // cubic scaling of its Turbo row (memory-bound core).
    ModeMatrix truth(1, 3);
    truth.powerW(0, 0) = 10.0;
    truth.powerW(0, 1) = 8.6;
    truth.powerW(0, 2) = 6.1;
    truth.bips(0, 0) = 1.0;
    truth.bips(0, 1) = 0.99; // far better than linear
    truth.bips(0, 2) = 0.97;

    HistoryPolicy policy;
    // Interval 1: measured at Eff2 -> remembered.
    auto s1 = samplesAt(truth, {2});
    ModeMatrix pred1 = randomMatrix(1, 3, 9); // arbitrary analytic
    auto in1 = inputFor(pred1, s1, 1e9, dvfs);
    policy.decide(in1);
    // Interval 2: at Turbo; budget forces Eff2-or-Eff1 choice. The
    // remembered Eff2 point (bips 0.97, power 6.1) should overlay
    // whatever the analytic matrix claims for Eff2.
    auto s2 = samplesAt(truth, {0});
    ModeMatrix pred2(1, 3);
    pred2.powerW(0, 0) = 10.0;
    pred2.powerW(0, 1) = 8.6;
    pred2.powerW(0, 2) = 6.1;
    pred2.bips(0, 0) = 1.0;
    pred2.bips(0, 1) = 0.95; // linear-scaled guesses
    pred2.bips(0, 2) = 0.85;
    auto in2 = inputFor(pred2, s2, 7.0, dvfs);
    auto assign = policy.decide(in2);
    // Only Eff2 fits 7 W either way; the point is it must not
    // crash and must fit the budget with the overlaid matrix.
    EXPECT_EQ(assign[0], 2);
}

TEST(HistoryPolicy, FallsBackToPredictionWhenUnseen)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(3, 3, 11);
    HistoryPolicy policy;
    auto samples = samplesAt(m, {0, 0, 0});
    std::vector<PowerMode> floor_assign(3, 2);
    Watts budget = m.totalPowerW(floor_assign) * 1.2;
    auto in = inputFor(m, samples, budget, dvfs);
    auto assign = policy.decide(in);
    // Never-visited modes use the analytic matrix: the decision is
    // exactly MaxBIPS over it (Turbo rows are remembered == exact).
    auto ideal = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::Exhaustive);
    EXPECT_NEAR(m.totalBips(assign), m.totalBips(ideal), 1e-12);
}

TEST(AlternativePolicies, FactoryCreates)
{
    EXPECT_STREQ(makePolicy("ExploreMaxBIPS")->name(),
                 "ExploreMaxBIPS");
    EXPECT_STREQ(makePolicy("HistoryMaxBIPS")->name(),
                 "HistoryMaxBIPS");
}

} // namespace
} // namespace gpm
