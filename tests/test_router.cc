/** @file Sharding-router coverage: RendezvousRing placement
 *  properties (balance, minimal remap, restart determinism,
 *  failover ranking) and GpmRouter end-to-end over real loopback
 *  sockets against in-process gpmd backends — routed results
 *  byte-identical to direct submits, batch split/remap, failover
 *  after a killed backend, breaker recovery via the prober. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "router/ring.hh"
#include "router/router.hh"
#include "service/server.hh"

namespace gpm
{
namespace
{

/** Stand-in scenario hashes: splitmix64 over the index, the same
 *  full-avalanche shape canonicalHash() produces. */
std::uint64_t
testKey(std::uint64_t i)
{
    std::uint64_t x = i + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::vector<std::string>
backendNames(std::size_t n, std::uint16_t basePort = 7500)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < n; i++)
        names.push_back("127.0.0.1:" +
                        std::to_string(basePort + i));
    return names;
}

TEST(RendezvousRing, BalancedAcrossBackends)
{
    const std::size_t nBackends = 4, nKeys = 10000;
    RendezvousRing ring(backendNames(nBackends));
    std::vector<std::size_t> load(nBackends, 0);
    for (std::uint64_t i = 0; i < nKeys; i++)
        load[ring.owner(testKey(i))]++;
    double mean =
        static_cast<double>(nKeys) / static_cast<double>(nBackends);
    std::size_t maxLoad =
        *std::max_element(load.begin(), load.end());
    EXPECT_LT(static_cast<double>(maxLoad) / mean, 1.15)
        << "max shard " << maxLoad << " vs mean " << mean;
    for (std::size_t l : load)
        EXPECT_GT(l, 0u);
}

TEST(RendezvousRing, JoinMovesOnlyItsShare)
{
    const std::size_t nKeys = 10000;
    RendezvousRing four(backendNames(4));
    RendezvousRing five(backendNames(5));
    std::size_t moved = 0;
    for (std::uint64_t i = 0; i < nKeys; i++) {
        std::uint64_t k = testKey(i);
        std::size_t before = four.owner(k);
        std::size_t after = five.owner(k);
        if (five.name(after) != four.name(before)) {
            moved++;
            // A key only ever moves TO the new backend.
            EXPECT_EQ(five.name(after), "127.0.0.1:7504");
        }
    }
    // Expected moved fraction is 1/5; "< 1/N" with N the smaller
    // fleet (plus sampling slack under the binomial sd ~0.4%).
    EXPECT_LT(static_cast<double>(moved) / nKeys, 1.0 / 4.0);
    EXPECT_GT(moved, 0u);
}

TEST(RendezvousRing, LeaveMovesOnlyTheDepartedShard)
{
    const std::size_t nKeys = 10000;
    std::vector<std::string> names = backendNames(4);
    RendezvousRing four(names);
    std::vector<std::string> three(names.begin(),
                                   names.begin() + 3);
    RendezvousRing rest(three);
    std::size_t moved = 0;
    for (std::uint64_t i = 0; i < nKeys; i++) {
        std::uint64_t k = testKey(i);
        std::size_t before = four.owner(k);
        if (four.name(before) == names[3]) {
            moved++;
        } else {
            // Survivors keep every key they already owned.
            EXPECT_EQ(rest.name(rest.owner(k)),
                      four.name(before));
        }
    }
    EXPECT_LT(static_cast<double>(moved) / nKeys, 1.0 / 3.0);
    EXPECT_GT(moved, 0u);
}

TEST(RendezvousRing, DeterministicAcrossRestartsAndOrder)
{
    std::vector<std::string> names = backendNames(5);
    RendezvousRing a(names);
    RendezvousRing restarted(names); // "new process", same config
    std::vector<std::string> shuffled = {names[3], names[0],
                                         names[4], names[2],
                                         names[1]};
    RendezvousRing reordered(shuffled);
    for (std::uint64_t i = 0; i < 1000; i++) {
        std::uint64_t k = testKey(i);
        EXPECT_EQ(a.name(a.owner(k)),
                  restarted.name(restarted.owner(k)));
        EXPECT_EQ(a.name(a.owner(k)),
                  reordered.name(reordered.owner(k)));
    }
}

TEST(RendezvousRing, MaskedOwnerWalksTheFailoverRanking)
{
    RendezvousRing ring(backendNames(4));
    std::vector<char> all(4, 1);
    for (std::uint64_t i = 0; i < 200; i++) {
        std::uint64_t k = testKey(i);
        std::vector<std::size_t> order = ring.rank(k);
        EXPECT_EQ(ring.owner(k), order[0]);
        EXPECT_EQ(ring.owner(k, all), order[0]);
        std::vector<char> mask = all;
        mask[order[0]] = 0;
        EXPECT_EQ(ring.owner(k, mask), order[1]);
        mask[order[1]] = 0;
        EXPECT_EQ(ring.owner(k, mask), order[2]);
        std::vector<char> none(4, 0);
        EXPECT_EQ(ring.owner(k, none), RendezvousRing::npos);
    }
}

// ---------------------------------------------------------------
// End-to-end: router in front of two in-process gpmd backends
// ---------------------------------------------------------------

class RouterTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t nBackends = 2;

    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    void
    SetUp() override
    {
        std::vector<RouterEndpoint> eps;
        for (std::size_t i = 0; i < nBackends; i++) {
            startBackend(i, 0);
            eps.push_back({"127.0.0.1", ports[i]});
        }
        RouterOptions opts;
        // Fast-recovery tuning so breaker/prober behaviour is
        // observable within test time.
        opts.breaker.window = 4;
        opts.breaker.minSamples = 2;
        opts.breaker.cooldownMs = 50.0;
        opts.probeIntervalMs = 10;
        opts.backendConnectTimeoutMs = 250;
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        ASSERT_TRUE(listener.ok()) << listener.error();
        router = std::make_unique<GpmRouter>(
            eps, std::move(listener.value()), opts);
        routerPort = router->port();
        routerThread = std::thread([this] { router->run(); });
    }

    void
    TearDown() override
    {
        router->requestStop();
        if (routerThread.joinable())
            routerThread.join();
        router->stopAndDrain();
        router.reset();
        for (std::size_t i = 0; i < nBackends; i++)
            stopBackend(i);
    }

    void
    startBackend(std::size_t i, std::uint16_t port)
    {
        auto listener = TcpListener::listenOn("127.0.0.1", port);
        ASSERT_TRUE(listener.ok()) << listener.error();
        svcs[i] = std::make_unique<ScenarioService>(lib(), dvfs());
        servers[i] = std::make_unique<GpmServer>(
            *svcs[i], std::move(listener.value()));
        ports[i] = servers[i]->port();
        threads[i] =
            std::thread([this, i] { servers[i]->run(); });
    }

    void
    stopBackend(std::size_t i)
    {
        if (!servers[i])
            return;
        servers[i]->requestStop();
        if (threads[i].joinable())
            threads[i].join();
        servers[i]->stopAndDrain();
        servers[i].reset();
        svcs[i].reset();
    }

    TcpStream
    connectTo(std::uint16_t port)
    {
        auto conn = TcpStream::connectTo("127.0.0.1", port);
        EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
        return conn.ok() ? std::move(conn.value()) : TcpStream();
    }

    std::string
    roundTrip(TcpStream &stream, const std::string &line)
    {
        EXPECT_TRUE(stream.writeAll(line + "\n"));
        std::string response;
        EXPECT_EQ(stream.readLine(response),
                  TcpStream::ReadStatus::Line);
        return response;
    }

    static json::Value
    parseOk(const std::string &text)
    {
        auto r = json::parse(text);
        EXPECT_TRUE(r.ok()) << text;
        return r.ok() ? r.value() : json::Value();
    }

    static std::string
    scenarioLine(double budget, const char *policy = "MaxBIPS")
    {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            R"({"combo": ["mcf", "crafty"], "policy": "%s", )"
            R"("budget": %.3f})",
            policy, budget);
        return buf;
    }

    std::unique_ptr<ScenarioService> svcs[nBackends];
    std::unique_ptr<GpmServer> servers[nBackends];
    std::thread threads[nBackends];
    std::uint16_t ports[nBackends] = {0, 0};
    std::unique_ptr<GpmRouter> router;
    std::uint16_t routerPort = 0;
    std::thread routerThread;
};

TEST_F(RouterTest, PingAndStatsAnswerLocally)
{
    TcpStream c = connectTo(routerPort);
    json::Value r =
        parseOk(roundTrip(c, R"({"id": 3, "verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("id")->asNumber(), 3.0);
    EXPECT_TRUE(r.find("result")->find("pong")->asBool());

    json::Value s = parseOk(roundTrip(c, R"({"verb": "stats"})"));
    const json::Value *res = s.find("result");
    ASSERT_TRUE(res);
    EXPECT_EQ(res->find("backendsTotal")->asNumber(), 2.0);
    EXPECT_EQ(res->find("backendsLive")->asNumber(), 2.0);
    EXPECT_TRUE(res->find("backends")->isArray());
    EXPECT_EQ(res->find("backends")->asArray().size(), 2u);
}

TEST_F(RouterTest, RoutedSubmitMatchesDirectByteForByte)
{
    const std::string submit =
        R"({"id": "x", "verb": "submit", "scenario": )" +
        scenarioLine(0.8) + "}";

    TcpStream c = connectTo(routerPort);
    json::Value routed = parseOk(roundTrip(c, submit));
    ASSERT_TRUE(routed.find("ok")->asBool());
    EXPECT_FALSE(routed.find("cached")->asBool());
    ASSERT_TRUE(routed.find("result"));

    // The same scenario direct against BOTH backends: one serves
    // its cached copy, the other computes independently — all
    // three payloads must be byte-identical (content-addressed
    // results are deterministic).
    for (std::size_t i = 0; i < nBackends; i++) {
        TcpStream d = connectTo(ports[i]);
        json::Value direct = parseOk(roundTrip(d, submit));
        ASSERT_TRUE(direct.find("ok")->asBool());
        EXPECT_EQ(direct.find("result")->dump(),
                  routed.find("result")->dump())
            << "backend " << i;
    }

    // Resubmit through the router: consistent hashing lands on
    // the same backend, whose memory tier now holds it.
    json::Value again = parseOk(roundTrip(c, submit));
    ASSERT_TRUE(again.find("ok")->asBool());
    EXPECT_TRUE(again.find("cached")->asBool());
    EXPECT_EQ(again.find("result")->dump(),
              routed.find("result")->dump());
}

TEST_F(RouterTest, BatchSplitsByShardAndRemapsIndices)
{
    // Ten distinct scenarios so both shards deterministically get
    // a non-empty slice (hashes are fixed by content).
    const std::size_t n = 10;
    std::string req =
        R"({"id": 42, "verb": "submit_batch", "scenarios": [)";
    for (std::size_t i = 0; i < n; i++) {
        if (i)
            req += ",";
        req += scenarioLine(0.5 + 0.04 * static_cast<double>(i));
    }
    req += "]}";

    TcpStream c = connectTo(routerPort);
    ASSERT_TRUE(c.writeAll(req + "\n"));
    std::set<std::size_t> seen;
    std::vector<std::string> results(n);
    for (std::size_t got = 0; got < n; got++) {
        std::string line;
        ASSERT_EQ(c.readLine(line), TcpStream::ReadStatus::Line);
        json::Value r = parseOk(line);
        EXPECT_EQ(r.find("id")->asNumber(), 42.0);
        ASSERT_TRUE(r.find("ok")->asBool()) << line;
        ASSERT_TRUE(r.find("index"));
        auto idx =
            static_cast<std::size_t>(r.find("index")->asNumber());
        ASSERT_LT(idx, n);
        EXPECT_TRUE(seen.insert(idx).second)
            << "duplicate index " << idx;
        ASSERT_TRUE(r.find("hash"));
        EXPECT_EQ(r.find("hash")->asString().size(), 16u);
        results[idx] = r.find("result")->dump();
    }
    EXPECT_EQ(seen.size(), n);

    // Both backends carried a slice.
    RouterStats s = router->stats();
    EXPECT_EQ(s.routedScenarios, n);
    for (const auto &b : s.backends)
        EXPECT_GT(b.routed, 0u) << b.name;

    // Every routed payload equals the direct submit's payload.
    TcpStream d = connectTo(ports[0]);
    for (std::size_t i = 0; i < n; i++) {
        std::string submit =
            R"({"id": 1, "verb": "submit", "scenario": )" +
            scenarioLine(0.5 + 0.04 * static_cast<double>(i)) +
            "}";
        json::Value direct = parseOk(roundTrip(d, submit));
        ASSERT_TRUE(direct.find("ok")->asBool());
        EXPECT_EQ(direct.find("result")->dump(), results[i])
            << "scenario " << i;
    }
}

TEST_F(RouterTest, KilledBackendFailsOverWithoutClientErrors)
{
    stopBackend(0);

    // Every submit must still be answered ok — scenarios owned by
    // the dead backend re-resolve onto the live replica (connect
    // refusal feeds the breaker and triggers the re-route), and
    // nothing may surface internal_error.
    TcpStream c = connectTo(routerPort);
    for (std::size_t i = 0; i < 10; i++) {
        std::string submit =
            R"({"id": 9, "verb": "submit", "scenario": )" +
            scenarioLine(0.5 + 0.04 * static_cast<double>(i),
                         "WaterFill") +
            "}";
        json::Value r = parseOk(roundTrip(c, submit));
        ASSERT_TRUE(r.find("ok")->asBool())
            << roundTrip(c, submit);
    }

    // The breaker needs minSamples attempts against the dead
    // backend before it may open, and key ownership is hash-split
    // — keep submitting fresh keys (each ~1/2 owned by the dead
    // shard) until it trips. Every answer must still be ok.
    for (std::size_t i = 0;
         i < 100 && router->stats().backendsLive == 2; i++) {
        std::string submit =
            R"({"id": 9, "verb": "submit", "scenario": )" +
            scenarioLine(0.5 + 0.004 * static_cast<double>(i),
                         "WaterFill") +
            "}";
        json::Value r = parseOk(roundTrip(c, submit));
        ASSERT_TRUE(r.find("ok")->asBool());
    }

    RouterStats s = router->stats();
    EXPECT_GT(s.backendFailures, 0u);
    EXPECT_LT(s.backendsLive, 2u);
}

TEST_F(RouterTest, ProberClosesBreakerWhenBackendReturns)
{
    std::uint16_t oldPort = ports[0];
    stopBackend(0);

    // Drive traffic so the breaker on the dead backend opens.
    TcpStream c = connectTo(routerPort);
    for (std::size_t i = 0; i < 6; i++) {
        std::string submit =
            R"({"id": 1, "verb": "submit", "scenario": )" +
            scenarioLine(0.6 + 0.05 * static_cast<double>(i)) +
            "}";
        json::Value r = parseOk(roundTrip(c, submit));
        EXPECT_TRUE(r.find("ok")->asBool());
    }

    // Restart the backend on the same port; the prober must close
    // the breaker within a few cooldown windows.
    startBackend(0, oldPort);
    ASSERT_EQ(ports[0], oldPort);
    bool live = false;
    for (int spin = 0; spin < 500 && !live; spin++) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
        live = router->stats().backendsLive == 2;
    }
    EXPECT_TRUE(live)
        << "breaker never closed after backend restart";

    json::Value r = parseOk(roundTrip(
        c, R"({"id": 2, "verb": "submit", "scenario": )" +
               scenarioLine(0.8) + "}"));
    EXPECT_TRUE(r.find("ok")->asBool());
}

TEST_F(RouterTest, WholeFleetDownShedsRetryableErrors)
{
    stopBackend(0);
    stopBackend(1);

    TcpStream c = connectTo(routerPort);
    // Single submits: per-request retryable errors, never
    // internal_error.
    json::Value r = parseOk(roundTrip(
        c, R"({"id": 1, "verb": "submit", "scenario": )" +
               scenarioLine(0.8) + "}"));
    ASSERT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(), "busy");
    EXPECT_GT(r.find("error")->find("retryAfterMs")->asNumber(),
              0.0);

    // Keep poking until both breakers open, then a batch gets the
    // single batch-level refusal (contract parity with gpmd).
    bool batchLevel = false;
    for (int spin = 0; spin < 50 && !batchLevel; spin++) {
        std::string req =
            R"({"id": 5, "verb": "submit_batch", "scenarios": [)" +
            scenarioLine(0.7) + "," + scenarioLine(0.9) + "]}";
        TcpStream b = connectTo(routerPort);
        ASSERT_TRUE(b.writeAll(req + "\n"));
        std::string line;
        ASSERT_EQ(b.readLine(line), TcpStream::ReadStatus::Line);
        json::Value v = parseOk(line);
        ASSERT_FALSE(v.find("ok")->asBool());
        EXPECT_NE(v.find("error")->find("code")->asString(),
                  "internal_error");
        if (!v.find("index")) {
            batchLevel = true; // one line for the whole batch
        } else {
            // Per-scenario shed: drain the second line.
            ASSERT_EQ(b.readLine(line),
                      TcpStream::ReadStatus::Line);
        }
    }
    EXPECT_TRUE(batchLevel);
}

TEST_F(RouterTest, MalformedLinesGetStructuredErrors)
{
    TcpStream c = connectTo(routerPort);

    json::Value r = parseOk(roundTrip(c, "{nonsense"));
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(), "parse");

    r = parseOk(roundTrip(c, R"({"verb": "frobnicate"})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    r = parseOk(roundTrip(c, R"({"verb": "submit"})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    r = parseOk(roundTrip(
        c,
        R"({"verb": "submit", "scenario": {"combo": ["mcf"], )"
        R"("policy": "Nope", "budget": 0.8}})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    r = parseOk(roundTrip(c, R"({"verb": "ping", "zap": 1})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    // The connection survives every error.
    r = parseOk(roundTrip(c, R"({"verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
}

TEST_F(RouterTest, MetricsRenderIncludesPerBackendSeries)
{
    TcpStream c = connectTo(routerPort);
    parseOk(roundTrip(
        c, R"({"id": 1, "verb": "submit", "scenario": )" +
               scenarioLine(0.8) + "}"));

    std::string body = renderRouterPrometheus(
        router->stats(), ReactorStats{});
    EXPECT_NE(body.find("gpm_build_info{version="),
              std::string::npos);
    EXPECT_NE(body.find("gpm_router_routed_scenarios_total 1"),
              std::string::npos);
    for (std::size_t i = 0; i < nBackends; i++) {
        std::string label =
            "{backend=\"127.0.0.1:" + std::to_string(ports[i]) +
            "\"}";
        EXPECT_NE(
            body.find("gpm_router_backend_routed_total" + label),
            std::string::npos)
            << body;
    }
    EXPECT_NE(body.find("gpm_router_breaker_state{backend="),
              std::string::npos);
}

} // namespace
} // namespace gpm
