/**
 * @file
 * The parallel profile pipeline: buildSuite() determinism vs a
 * serial baseline (mirroring test_sweep.cc's contract), the
 * content-addressed ProfileStore (round trip, fingerprint
 * addressing, corrupt/truncated-entry quarantine, fault injection),
 * incremental invalidation, and the legacy monolithic fallback.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "trace/phase_profile.hh"
#include "trace/profile_store.hh"
#include "trace/profiler.hh"
#include "trace/workload.hh"
#include "util/fault.hh"

namespace gpm
{
namespace
{

/** Tiny scale so a full suite build stays in test time. */
constexpr double kScale = 0.002;

bool
identical(const WorkloadProfile &a, const WorkloadProfile &b)
{
    if (a.name != b.name || a.modes.size() != b.modes.size())
        return false;
    for (std::size_t m = 0; m < a.modes.size(); m++) {
        const ModeProfile &x = a.modes[m], &y = b.modes[m];
        if (x.chunkInsts != y.chunkInsts ||
            x.lastChunkInsts != y.lastChunkInsts ||
            x.chunks.size() != y.chunks.size())
            return false;
        if (std::memcmp(x.chunks.data(), y.chunks.data(),
                        x.chunks.size() * sizeof(ChunkRecord)) != 0)
            return false;
    }
    return true;
}

class ProfileStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarm();
        char tmpl[] = "/tmp/gpm_profile_store_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
        dvfs = DvfsTable::classic3();
    }

    void
    TearDown() override
    {
        fault::disarm();
        std::string cmd = "rm -rf " + dir;
        ASSERT_EQ(std::system(cmd.c_str()), 0);
    }

    /** A small profile built directly (one workload, full modes). */
    WorkloadProfile
    buildOne(const std::string &name)
    {
        Profiler profiler(dvfs);
        return profiler.profileWorkload(workload(name), kScale);
    }

    std::string dir;
    DvfsTable dvfs = DvfsTable::classic3();
};

TEST_F(ProfileStoreTest, ParallelBuildMatchesSerialBaseline)
{
    // Serial reference: the exact profiles a pre-parallel library
    // would have produced one (workload, mode) at a time.
    ProfileLibrary serial(dvfs, kScale);
    serial.buildSuite(1);

    for (std::size_t threads : {1u, 2u, 8u}) {
        ProfileLibrary lib(dvfs, kScale);
        lib.buildSuite(threads);
        for (const auto &w : spec2000Suite())
            EXPECT_TRUE(
                identical(lib.get(w.name), serial.get(w.name)))
                << w.name << " diverged at concurrency " << threads;
    }
}

TEST_F(ProfileStoreTest, StoreRoundTrip)
{
    WorkloadProfile p = buildOne("mcf");
    ProfileStore store(dir);
    ASSERT_TRUE(store.save("mcf", 0x1234, p));

    WorkloadProfile q;
    ASSERT_TRUE(store.load("mcf", 0x1234, q));
    EXPECT_TRUE(identical(p, q));
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST_F(ProfileStoreTest, FingerprintAddressesEntries)
{
    WorkloadProfile p = buildOne("mcf");
    ProfileStore store(dir);
    ASSERT_TRUE(store.save("mcf", 0x1234, p));

    WorkloadProfile q;
    // A different fingerprint is a different entry: miss, and the
    // existing entry is left untouched (no quarantine).
    EXPECT_FALSE(store.load("mcf", 0x9999, q));
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().quarantined, 0u);
    EXPECT_TRUE(store.load("mcf", 0x1234, q));
}

TEST_F(ProfileStoreTest, TruncatedEntryQuarantined)
{
    WorkloadProfile p = buildOne("mcf");
    ProfileStore store(dir);
    ASSERT_TRUE(store.save("mcf", 7, p));
    std::string path = store.pathFor("mcf", 7);

    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size / 2), 0);

    WorkloadProfile q;
    EXPECT_FALSE(store.load("mcf", 7, q));
    EXPECT_EQ(store.stats().quarantined, 1u);
    // The entry was set aside, not deleted, for postmortems...
    struct stat aside;
    EXPECT_EQ(::stat((path + ".corrupt").c_str(), &aside), 0);
    // ...and the slot is clean: a rebuilt profile saves and loads.
    ASSERT_TRUE(store.save("mcf", 7, p));
    EXPECT_TRUE(store.load("mcf", 7, q));
    EXPECT_TRUE(identical(p, q));
}

TEST_F(ProfileStoreTest, FlippedByteQuarantined)
{
    WorkloadProfile p = buildOne("mcf");
    ProfileStore store(dir);
    ASSERT_TRUE(store.save("mcf", 7, p));
    std::string path = store.pathFor("mcf", 7);

    // Flip one payload byte; the CRC catches it.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    WorkloadProfile q;
    EXPECT_FALSE(store.load("mcf", 7, q));
    EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST_F(ProfileStoreTest, ReadCorruptFaultQuarantinesAndRebuilds)
{
    ProfileLibrary lib(dvfs, kScale);
    lib.attachStore(dir);
    const WorkloadProfile &built = lib.get("mcf");
    ASSERT_EQ(lib.stats().builds, 1u);

    // Every read sees an (injected) corrupt entry: a fresh library
    // quarantines it and rebuilds from scratch...
    ASSERT_FALSE(fault::arm("profile-read-corrupt:1,seed:1"));
    ProfileLibrary lib2(dvfs, kScale);
    lib2.attachStore(dir);
    const WorkloadProfile &rebuilt = lib2.get("mcf");
    EXPECT_GE(fault::fires(fault::Point::ProfileReadCorrupt), 1u);
    fault::disarm();

    ProfileLibraryStats st = lib2.stats();
    EXPECT_EQ(st.builds, 1u);
    EXPECT_EQ(st.diskHits, 0u);
    EXPECT_EQ(st.storeQuarantined, 1u);
    // ...bitwise-identical (the build is deterministic), and the
    // rebuild re-persisted it: a third library loads from disk.
    EXPECT_TRUE(identical(built, rebuilt));
    ProfileLibrary lib3(dvfs, kScale);
    lib3.attachStore(dir);
    lib3.get("mcf");
    EXPECT_EQ(lib3.stats().diskHits, 1u);
    EXPECT_EQ(lib3.stats().builds, 0u);
}

TEST_F(ProfileStoreTest, WriteFailFaultMeansRebuildNextStart)
{
    ASSERT_FALSE(fault::arm("profile-write-fail:1,seed:1"));
    ProfileLibrary lib(dvfs, kScale);
    lib.attachStore(dir);
    lib.get("mcf");
    EXPECT_GE(fault::fires(fault::Point::ProfileWriteFail), 1u);
    EXPECT_EQ(lib.stats().storeWriteFailures, 1u);
    fault::disarm();

    // Nothing persisted: the next cold start builds again, and with
    // the fault gone the entry lands on disk this time.
    ProfileLibrary lib2(dvfs, kScale);
    lib2.attachStore(dir);
    lib2.get("mcf");
    EXPECT_EQ(lib2.stats().builds, 1u);
    ProfileLibrary lib3(dvfs, kScale);
    lib3.attachStore(dir);
    lib3.get("mcf");
    EXPECT_EQ(lib3.stats().diskHits, 1u);
}

TEST_F(ProfileStoreTest, WarmStartBuildsNothing)
{
    {
        ProfileLibrary lib(dvfs, kScale);
        lib.attachStore(dir);
        lib.buildSuite(2);
        EXPECT_EQ(lib.stats().builds, spec2000Suite().size());
    }
    ProfileLibrary warm(dvfs, kScale);
    warm.attachStore(dir);
    warm.buildSuite(2);
    ProfileLibraryStats st = warm.stats();
    EXPECT_EQ(st.builds, 0u);
    EXPECT_EQ(st.diskHits, spec2000Suite().size());
    EXPECT_EQ(st.ready, spec2000Suite().size());
}

TEST_F(ProfileStoreTest, InvalidatingOneEntryRebuildsOnlyIt)
{
    {
        ProfileLibrary lib(dvfs, kScale);
        lib.attachStore(dir);
        lib.buildSuite(2);
    }
    const WorkloadSpec &victim = spec2000Suite().front();
    ProfileLibrary lib(dvfs, kScale);
    lib.attachStore(dir);
    {
        ProfileStore probe(dir);
        ASSERT_EQ(::unlink(probe
                               .pathFor(victim.name,
                                        lib.workloadFingerprint(
                                            victim))
                               .c_str()),
                  0);
    }
    lib.buildSuite(2);
    ProfileLibraryStats st = lib.stats();
    EXPECT_EQ(st.builds, 1u);
    EXPECT_EQ(st.diskHits, spec2000Suite().size() - 1);
}

TEST_F(ProfileStoreTest, ScaleChangesWorkloadFingerprint)
{
    ProfileLibrary a(dvfs, 0.002), b(dvfs, 0.002), c(dvfs, 0.004);
    const WorkloadSpec &w = spec2000Suite().front();
    EXPECT_EQ(a.workloadFingerprint(w), b.workloadFingerprint(w));
    EXPECT_NE(a.workloadFingerprint(w), c.workloadFingerprint(w));
    // Distinct workloads address distinct entries.
    EXPECT_NE(a.workloadFingerprint(spec2000Suite()[0]),
              a.workloadFingerprint(spec2000Suite()[1]));
}

TEST_F(ProfileStoreTest, LegacyMonolithicFallbackStillLoads)
{
    std::string path = dir + "/legacy.bin";
    ProfileLibrary lib(dvfs, kScale);
    lib.get("mcf");
    lib.get("art");
    lib.save(path);

    // loadOrBuild takes the legacy read path: everything the file
    // holds is served without a single detailed-core run.
    ProfileLibrary lib2(dvfs, kScale);
    lib2.loadOrBuild(path); // file is compatible -> no build
    ProfileLibraryStats st = lib2.stats();
    EXPECT_EQ(st.diskHits, 2u);
    EXPECT_TRUE(identical(lib2.get("mcf"), lib.get("mcf")));
    EXPECT_EQ(lib2.stats().builds, 0u);
}

TEST_F(ProfileStoreTest, TruncatedMonolithicFallsBackToBuild)
{
    std::string path = dir + "/legacy.bin";
    ProfileLibrary lib(dvfs, kScale);
    lib.get("mcf");
    lib.save(path);

    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size - 8), 0);

    ProfileLibrary lib2(dvfs, kScale);
    EXPECT_FALSE(lib2.load(path));
}

TEST_F(ProfileStoreTest, SaveIsAtomic)
{
    // save() must never leave a partially written file at the
    // target path; the temp is cleaned up on success.
    std::string path = dir + "/atomic.bin";
    ProfileLibrary lib(dvfs, kScale);
    lib.get("mcf");
    lib.save(path);
    ProfileLibrary lib2(dvfs, kScale);
    EXPECT_TRUE(lib2.load(path));
    // No stray temp files in the directory.
    std::string cmd =
        "ls " + dir + " | grep -q '\\.tmp\\.' && exit 1 || exit 0";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
}

} // namespace
} // namespace gpm
