/** @file The high-throughput serving path: submitBatch all-or-nothing
 *  admission and out-of-order completion streaming, batch fan-out
 *  across the worker pool, cooperative mid-sweep deadline
 *  cancellation, the two-tier (memory + disk) result cache across
 *  restarts and shared directories, and the submit_batch wire verb
 *  over a pipelined connection. */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <dirent.h>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "util/fault.hh"
#include "service/server.hh"
#include "service/service.hh"

namespace gpm
{
namespace
{

DvfsTable &
testDvfs()
{
    static DvfsTable d = DvfsTable::classic3();
    return d;
}

ProfileLibrary &
testLib()
{
    static ProfileLibrary l(testDvfs(), 0.03);
    return l;
}

/** Collects streamed batch completions across worker threads. */
struct Collector
{
    std::mutex mtx;
    std::condition_variable cv;
    std::vector<std::pair<std::size_t, ScenarioService::Response>>
        done;

    std::function<void(std::size_t, ScenarioService::Response &&)>
    sink()
    {
        return [this](std::size_t i,
                      ScenarioService::Response &&r) {
            std::lock_guard<std::mutex> lock(mtx);
            done.emplace_back(i, std::move(r));
            cv.notify_all();
        };
    }

    bool
    waitFor(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mtx);
        return cv.wait_for(lock, std::chrono::seconds(30),
                           [&] { return done.size() >= n; });
    }

    std::size_t
    count()
    {
        std::lock_guard<std::mutex> lock(mtx);
        return done.size();
    }
};

class BatchTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        return testDvfs();
    }

    static ProfileLibrary &
    lib()
    {
        return testLib();
    }

    void
    TearDown() override
    {
        fault::disarm();
        if (!cacheDir.empty())
            removeTree(cacheDir);
    }

    /** A single-budget scenario; @p budget varies the cache key. */
    static ScenarioSpec
    scenario(double budget = 0.8)
    {
        ScenarioSpec s;
        s.combo = {"mcf"};
        s.policy = "MaxBIPS";
        s.budgets = {budget};
        return s;
    }

    /** Lazily-created scratch directory for the disk tier. */
    const std::string &
    makeCacheDir()
    {
        if (cacheDir.empty()) {
            char tmpl[] = "/tmp/gpm_batch_cache_XXXXXX";
            EXPECT_NE(::mkdtemp(tmpl), nullptr);
            cacheDir = tmpl;
        }
        return cacheDir;
    }

    static void
    removeTree(const std::string &dir)
    {
        if (DIR *d = ::opendir(dir.c_str())) {
            while (const dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(dir.c_str());
    }

    std::string cacheDir;
};

TEST_F(BatchTest, InvalidEntryRejectsWholeBatchBeforeAnythingRuns)
{
    ScenarioService svc(lib(), dvfs());
    std::vector<ScenarioSpec> specs = {scenario(0.7), scenario(0.8),
                                       scenario(0.9)};
    specs[1].policy = "NoSuchPolicy";

    Collector got;
    auto outcome = svc.submitBatch(specs, got.sink());
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.errorCode, "invalid");
    EXPECT_EQ(outcome.errorIndex, 1u);
    EXPECT_NE(outcome.errorMessage.find("scenario 1"),
              std::string::npos);
    EXPECT_NE(outcome.errorMessage.find("NoSuchPolicy"),
              std::string::npos);
    // Nothing ran: no callbacks, no counters moved.
    EXPECT_EQ(got.count(), 0u);
    ServiceStats s = svc.stats();
    EXPECT_EQ(s.cacheMisses, 0u);
    EXPECT_EQ(s.served, 0u);
}

TEST_F(BatchTest, FullQueueRejectsWholeBatchAllOrNothing)
{
    ServiceOptions opts;
    opts.queueCapacity = 1; // room for one miss, batch needs two
    ScenarioService svc(lib(), dvfs(), opts);
    Collector got;
    auto outcome = svc.submitBatch({scenario(0.7), scenario(0.8)},
                                   got.sink());
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.errorCode, "busy");
    EXPECT_EQ(got.count(), 0u);
    EXPECT_EQ(svc.stats().cacheMisses, 0u);
    EXPECT_EQ(svc.stats().rejectedBusy, 1u);
}

TEST_F(BatchTest, DrainingServiceRejectsBatches)
{
    ScenarioService svc(lib(), dvfs());
    svc.drain();
    Collector got;
    auto outcome = svc.submitBatch({scenario()}, got.sink());
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.errorCode, "draining");
    EXPECT_EQ(got.count(), 0u);
}

TEST_F(BatchTest, MixedHitMissBatchStreamsEveryScenarioOnce)
{
    ScenarioService svc(lib(), dvfs());
    // Prime the cache with one of the three.
    auto primed = svc.submit(scenario(0.8));
    ASSERT_TRUE(primed.ok);

    Collector got;
    auto outcome = svc.submitBatch(
        {scenario(0.7), scenario(0.8), scenario(0.9)}, got.sink());
    ASSERT_TRUE(outcome.admitted) << outcome.errorCode;
    ASSERT_TRUE(got.waitFor(3));
    EXPECT_EQ(got.count(), 3u);

    bool seen[3] = {false, false, false};
    for (auto &[idx, r] : got.done) {
        ASSERT_LT(idx, 3u);
        EXPECT_FALSE(seen[idx]) << "duplicate completion " << idx;
        seen[idx] = true;
        ASSERT_TRUE(r.ok) << r.errorCode << ": " << r.errorMessage;
        EXPECT_EQ(r.cacheHit, idx == 1);
    }
    // The hit's bytes are the primed submit's bytes.
    for (auto &[idx, r] : got.done) {
        if (idx == 1) {
            EXPECT_EQ(r.payload, primed.payload);
        }
    }

    ServiceStats s = svc.stats();
    EXPECT_EQ(s.batchRequests, 1u);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.cacheMisses, 3u); // primed + two batch misses
    EXPECT_EQ(s.served, 4u);
}

TEST_F(BatchTest, BatchMissesFanOutAcrossTheWorkerPool)
{
    // Four misses on four workers should take roughly one
    // single-scenario time, not four. CPU work serializes on a
    // 1-core host, so the per-scenario cost is dominated by an
    // injected 250 ms worker stall — stalls overlap iff the batch
    // genuinely fans out. Serial execution would exceed 1000 ms.
    ServiceOptions opts;
    opts.workers = 4;
    opts.sweepConcurrency = 1;
    ScenarioService svc(lib(), dvfs(), opts);
    // Warm the profile/runner caches outside the timed window.
    ASSERT_TRUE(svc.submit(scenario(0.99)).ok);

    ASSERT_FALSE(fault::arm("worker-stall:1:250,seed:1"));
    Collector got;
    auto t0 = std::chrono::steady_clock::now();
    auto outcome = svc.submitBatch(
        {scenario(0.61), scenario(0.66), scenario(0.71),
         scenario(0.76)},
        got.sink());
    ASSERT_TRUE(outcome.admitted) << outcome.errorCode;
    ASSERT_TRUE(got.waitFor(4));
    double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    fault::disarm();

    for (auto &[idx, r] : got.done)
        ASSERT_TRUE(r.ok) << idx << ": " << r.errorMessage;
    EXPECT_GE(wallMs, 250.0); // every miss really stalled
    EXPECT_LT(wallMs, 900.0) << "batch did not run in parallel";
}

TEST_F(BatchTest, DeadlineExpiringMidSweepCancelsCooperatively)
{
    // One worker, a 300 ms stall before the sweep, a 100 ms
    // deadline: the job is popped immediately (so it is NOT shed
    // from the queue), the deadline expires during the stall, and
    // the sweep cancels at its first budget-point check.
    ServiceOptions opts;
    opts.workers = 1;
    ScenarioService svc(lib(), dvfs(), opts);
    ASSERT_FALSE(fault::arm("worker-stall:1:300,seed:1"));

    ScenarioSpec spec = scenario(0.8);
    spec.deadlineMs = 100.0;
    auto r = svc.submit(spec);
    fault::disarm();

    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "deadline_exceeded");
    EXPECT_NE(r.errorMessage.find("mid-sweep"), std::string::npos)
        << r.errorMessage;
    ServiceStats s = svc.stats();
    EXPECT_EQ(s.cancelledMidSweep, 1u);
    EXPECT_EQ(s.shedDeadline, 0u);
    EXPECT_EQ(s.served, 0u);

    // The worker is free and healthy: the same scenario without a
    // deadline computes normally.
    auto again = svc.submit(scenario(0.8));
    EXPECT_TRUE(again.ok) << again.errorCode;
}

TEST_F(BatchTest, DiskTierServesRestartBitIdentically)
{
    const std::string &dir = makeCacheDir();
    ServiceOptions opts;
    opts.cacheDir = dir;

    std::string firstPayload;
    {
        ScenarioService svc(lib(), dvfs(), opts);
        auto r = svc.submit(scenario(0.8));
        ASSERT_TRUE(r.ok) << r.errorCode;
        EXPECT_FALSE(r.cacheHit);
        firstPayload = r.payload;
        svc.drain();
    } // "restart": the memory tier dies with the service

    ScenarioService revived(lib(), dvfs(), opts);
    auto r = revived.submit(scenario(0.8));
    ASSERT_TRUE(r.ok) << r.errorCode;
    EXPECT_TRUE(r.cacheHit);
    EXPECT_TRUE(r.diskHit);
    EXPECT_EQ(r.payload, firstPayload);

    // And the disk bytes are exactly what a direct sweep produces.
    ScenarioSpec spec = scenario(0.8);
    ExperimentRunner direct(lib(), dvfs(), spec.simConfig());
    EXPECT_EQ(r.payload,
              serializeResults(spec, direct.sweep(spec.sweepSpec())));

    ServiceStats s = revived.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.cacheMisses, 0u);
}

TEST_F(BatchTest, CorruptDiskEntryQuarantinedAndRecomputed)
{
    // Chaos: a corrupt disk entry must never reach a client — it is
    // quarantined and the scenario recomputed, with the recomputed
    // bytes identical to the originals.
    const std::string &dir = makeCacheDir();
    ServiceOptions opts;
    opts.cacheDir = dir;

    std::string firstPayload;
    {
        ScenarioService svc(lib(), dvfs(), opts);
        auto r = svc.submit(scenario(0.8));
        ASSERT_TRUE(r.ok);
        firstPayload = r.payload;
        svc.drain();
    }

    ASSERT_FALSE(fault::arm("disk-read-corrupt,seed:1"));
    ScenarioService revived(lib(), dvfs(), opts);
    auto r = revived.submit(scenario(0.8));
    fault::disarm();
    ASSERT_TRUE(r.ok) << r.errorCode;
    EXPECT_FALSE(r.cacheHit); // recomputed, not served corrupt
    EXPECT_EQ(r.payload, firstPayload);
    ServiceStats s = revived.stats();
    EXPECT_EQ(s.diskQuarantined, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.cacheMisses, 1u);
}

TEST_F(BatchTest, DiskTierEvictsToByteBudget)
{
    // Measure one entry's disk footprint, then rerun with a budget
    // that fits one entry but not two.
    const std::string &dir = makeCacheDir();
    std::uint64_t oneEntryBytes;
    {
        ServiceOptions opts;
        opts.cacheDir = dir;
        opts.cacheDiskBytes = 0; // unbounded
        ScenarioService svc(lib(), dvfs(), opts);
        ASSERT_TRUE(svc.submit(scenario(0.7)).ok);
        oneEntryBytes = svc.stats().diskBytes;
        ASSERT_GT(oneEntryBytes, 0u);
        svc.drain();
    }
    removeTree(dir);
    cacheDir.clear();
    makeCacheDir();

    ServiceOptions opts;
    opts.cacheDir = cacheDir;
    opts.cacheDiskBytes = oneEntryBytes + 64;
    ScenarioService svc(lib(), dvfs(), opts);
    ASSERT_TRUE(svc.submit(scenario(0.7)).ok);
    ASSERT_TRUE(svc.submit(scenario(0.9)).ok);
    ServiceStats s = svc.stats();
    EXPECT_GE(s.diskEvictions, 1u);
    EXPECT_EQ(s.diskEntries, 1u);
    EXPECT_LE(s.diskBytes, oneEntryBytes + 64);
}

TEST_F(BatchTest, TwoLiveServicesShareOneCacheDirectory)
{
    const std::string &dir = makeCacheDir();
    ServiceOptions opts;
    opts.cacheDir = dir;
    ScenarioService a(lib(), dvfs(), opts);
    ScenarioService b(lib(), dvfs(), opts);

    auto computed = a.submit(scenario(0.8));
    ASSERT_TRUE(computed.ok);
    EXPECT_FALSE(computed.cacheHit);

    // b never computed this scenario; its disk probe finds a's
    // write and serves the identical bytes.
    auto shared = b.submit(scenario(0.8));
    ASSERT_TRUE(shared.ok);
    EXPECT_TRUE(shared.cacheHit);
    EXPECT_TRUE(shared.diskHit);
    EXPECT_EQ(shared.payload, computed.payload);
    EXPECT_EQ(b.stats().diskHits, 1u);
}

/** submit_batch and pipelining over real loopback sockets. */
class BatchServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        ASSERT_TRUE(listener.ok()) << listener.error();
        svc = std::make_unique<ScenarioService>(testLib(),
                                                testDvfs());
        server = std::make_unique<GpmServer>(
            *svc, std::move(listener.value()));
        port = server->port();
        ASSERT_NE(port, 0);
        acceptThread = std::thread([this] { server->run(); });
    }

    void
    TearDown() override
    {
        server->requestStop();
        if (acceptThread.joinable())
            acceptThread.join();
        server->stopAndDrain();
        server.reset();
        svc.reset();
    }

    TcpStream
    connect()
    {
        auto conn = TcpStream::connectTo("127.0.0.1", port);
        EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
        return conn.ok() ? std::move(conn.value()) : TcpStream();
    }

    static json::Value
    parseOk(const std::string &text)
    {
        auto r = json::parse(text);
        EXPECT_TRUE(r.ok()) << text;
        return r.ok() ? r.value() : json::Value();
    }

    std::unique_ptr<ScenarioService> svc;
    std::unique_ptr<GpmServer> server;
    std::uint16_t port = 0;
    std::thread acceptThread;
};

TEST_F(BatchServerTest, BatchStreamsPerScenarioLinesAndPipelines)
{
    // One write carrying a 2-scenario batch AND a pipelined ping:
    // the client owes nothing before sending the second request.
    const std::string wire =
        R"({"id": "b", "verb": "submit_batch", "scenarios": [)"
        R"({"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.7},)"
        R"({"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.9}]})"
        "\n"
        R"({"id": "p", "verb": "ping"})"
        "\n";

    TcpStream c = connect();
    ASSERT_TRUE(c.writeAll(wire));

    bool sawPing = false;
    bool sawIndex[2] = {false, false};
    for (int i = 0; i < 3; i++) {
        std::string line;
        ASSERT_EQ(c.readLine(line), TcpStream::ReadStatus::Line);
        json::Value r = parseOk(line);
        ASSERT_TRUE(r.find("ok") && r.find("ok")->asBool()) << line;
        if (r.find("id")->asString() == "p") {
            sawPing = true;
            continue;
        }
        // A per-scenario batch line: index, 16-hex hash, spliced
        // result identical to a direct sweep.
        EXPECT_EQ(r.find("id")->asString(), "b");
        ASSERT_TRUE(r.find("index"));
        auto idx =
            static_cast<std::size_t>(r.find("index")->asNumber());
        ASSERT_LT(idx, 2u);
        sawIndex[idx] = true;
        ASSERT_TRUE(r.find("hash"));
        EXPECT_EQ(r.find("hash")->asString().size(), 16u);
        EXPECT_FALSE(r.find("cached")->asBool());

        ScenarioSpec spec;
        spec.combo = {"mcf"};
        spec.policy = "MaxBIPS";
        spec.budgets = {idx == 0 ? 0.7 : 0.9};
        ExperimentRunner direct(testLib(), testDvfs(),
                                spec.simConfig());
        std::string payload =
            serializeResults(spec, direct.sweep(spec.sweepSpec()));
        ASSERT_TRUE(r.find("result"));
        EXPECT_EQ(r.find("result")->canonical(),
                  parseOk(payload).canonical());
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(spec.hash()));
        EXPECT_EQ(r.find("hash")->asString(), hex);
    }
    EXPECT_TRUE(sawPing);
    EXPECT_TRUE(sawIndex[0]);
    EXPECT_TRUE(sawIndex[1]);

    // The stats verb counts the batch and the cache traffic.
    std::string statsLine;
    ASSERT_TRUE(c.writeAll("{\"verb\": \"stats\"}\n"));
    ASSERT_EQ(c.readLine(statsLine), TcpStream::ReadStatus::Line);
    json::Value stats = parseOk(statsLine);
    const json::Value *sr = stats.find("result");
    ASSERT_TRUE(sr);
    EXPECT_EQ(sr->find("batchRequests")->asNumber(), 1.0);
    EXPECT_EQ(sr->find("cacheMisses")->asNumber(), 2.0);
    EXPECT_EQ(sr->find("diskHits")->asNumber(), 0.0);
    EXPECT_EQ(sr->find("cancelledMidSweep")->asNumber(), 0.0);
}

TEST_F(BatchServerTest, BatchLevelErrorsAreOneLineWithNoIndex)
{
    TcpStream c = connect();

    // An invalid scenario rejects the whole batch with one line.
    ASSERT_TRUE(c.writeAll(
        R"({"id": "b", "verb": "submit_batch", "scenarios": [)"
        R"({"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.7},)"
        R"({"combo": ["mcf"], "policy": "Nope", "budget": 0.9}]})"
        "\n"));
    std::string line;
    ASSERT_EQ(c.readLine(line), TcpStream::ReadStatus::Line);
    json::Value r = parseOk(line);
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("index"), nullptr);
    EXPECT_EQ(r.find("error")->find("code")->asString(), "invalid");
    EXPECT_NE(
        r.find("error")->find("message")->asString().find(
            "scenario 1"),
        std::string::npos);

    // An empty scenarios array is invalid, not a zero-line no-op.
    ASSERT_TRUE(c.writeAll(
        R"({"id": "b", "verb": "submit_batch", "scenarios": []})"
        "\n"));
    ASSERT_EQ(c.readLine(line), TcpStream::ReadStatus::Line);
    r = parseOk(line);
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(), "invalid");

    // The connection survives both errors.
    ASSERT_TRUE(c.writeAll(R"({"verb": "ping"})" "\n"));
    ASSERT_EQ(c.readLine(line), TcpStream::ReadStatus::Line);
    EXPECT_TRUE(parseOk(line).find("ok")->asBool());
}

} // namespace
} // namespace gpm
