/** @file Unit tests for the synthetic workload generator. */

#include <map>

#include <gtest/gtest.h>

#include "trace/synth_generator.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

WorkloadSpec
simpleSpec()
{
    WorkloadSpec w;
    w.name = "test";
    w.isFp = false;
    w.totalInsts = 100'000;
    w.seed = 77;
    PhaseSpec p{};
    p.lengthInsts = 10'000;
    p.fracLoad = 0.30;
    p.fracStore = 0.10;
    p.fracBranch = 0.10;
    p.fracFp = 0.5;
    p.hotFrac = 1.0;
    w.phases = {p};
    return w;
}

TEST(SynthGenerator, ProducesExactlyTotalInsts)
{
    SynthGenerator g(simpleSpec());
    MicroOp op;
    std::uint64_t n = 0;
    while (g.next(op))
        n++;
    EXPECT_EQ(n, 100'000u);
    EXPECT_EQ(g.emitted(), 100'000u);
}

TEST(SynthGenerator, DeterministicStreams)
{
    SynthGenerator a(simpleSpec()), b(simpleSpec());
    MicroOp oa, ob;
    for (int i = 0; i < 20'000; i++) {
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(static_cast<int>(oa.cls),
                  static_cast<int>(ob.cls));
        ASSERT_EQ(oa.depA, ob.depA);
        ASSERT_EQ(oa.taken, ob.taken);
    }
}

TEST(SynthGenerator, DifferentSeedsDiffer)
{
    auto s1 = simpleSpec();
    auto s2 = simpleSpec();
    s2.seed = 78;
    SynthGenerator a(s1), b(s2);
    MicroOp oa, ob;
    int diffs = 0;
    for (int i = 0; i < 1000; i++) {
        a.next(oa);
        b.next(ob);
        if (oa.addr != ob.addr ||
            static_cast<int>(oa.cls) != static_cast<int>(ob.cls))
            diffs++;
    }
    EXPECT_GT(diffs, 100);
}

TEST(SynthGenerator, OpMixMatchesSpec)
{
    SynthGenerator g(simpleSpec());
    MicroOp op;
    std::map<OpClass, int> counts;
    const int n = 100'000;
    for (int i = 0; i < n; i++) {
        ASSERT_TRUE(g.next(op));
        counts[op.cls]++;
    }
    EXPECT_NEAR(counts[OpClass::Load] / double(n), 0.30, 0.01);
    EXPECT_NEAR(counts[OpClass::Store] / double(n), 0.10, 0.01);
    EXPECT_NEAR(counts[OpClass::Branch] / double(n), 0.10, 0.01);
    double fp = (counts[OpClass::FpAlu] + counts[OpClass::FpMul] +
                 counts[OpClass::FpDiv]) /
        double(n);
    EXPECT_NEAR(fp, 0.5 * 0.5, 0.01); // 50% of compute = 25%
}

TEST(SynthGenerator, LengthScaleShortens)
{
    SynthGenerator g(simpleSpec(), 0.1);
    EXPECT_EQ(g.totalInsts(), 10'000u);
    MicroOp op;
    std::uint64_t n = 0;
    while (g.next(op))
        n++;
    EXPECT_EQ(n, 10'000u);
}

TEST(SynthGenerator, HotAddressesStayInHotRegion)
{
    auto s = simpleSpec();
    SynthGenerator g(s);
    MicroOp op;
    for (int i = 0; i < 50'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (isMem(op.cls))
            EXPECT_LT(op.addr, s.hotBytes);
    }
}

TEST(SynthGenerator, ColdAddressesReachColdRegion)
{
    auto s = simpleSpec();
    s.phases[0].hotFrac = 0.0;
    s.phases[0].coldFrac = 1.0;
    SynthGenerator g(s);
    MicroOp op;
    int cold = 0;
    for (int i = 0; i < 10'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (isMem(op.cls)) {
            EXPECT_GE(op.addr, 0x2000'0000ULL);
            cold++;
        }
    }
    EXPECT_GT(cold, 1000);
}

TEST(SynthGenerator, StreamsAreSequential)
{
    auto s = simpleSpec();
    s.phases[0].hotFrac = 0.0;
    s.phases[0].strideFrac = 1.0;
    SynthGenerator g(s);
    MicroOp op;
    std::map<std::uint64_t, std::uint64_t> last_per_stream;
    for (int i = 0; i < 10'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (!isMem(op.cls))
            continue;
        std::uint64_t stream = op.addr >> 24;
        auto it = last_per_stream.find(stream);
        if (it != last_per_stream.end() && op.addr > it->second)
            EXPECT_EQ(op.addr - it->second, 8u);
        last_per_stream[stream] = op.addr;
    }
    EXPECT_GE(last_per_stream.size(), 2u);
}

TEST(SynthGenerator, ChainedLoadsDependOnPreviousLoad)
{
    auto s = simpleSpec();
    s.phases[0].chainFrac = 1.0;
    SynthGenerator g(s);
    MicroOp op;
    int last_load = -1;
    int chained = 0;
    int idx = 0;
    for (int i = 0; i < 20'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (op.cls == OpClass::Load) {
            if (last_load >= 0 && idx - last_load <= 63) {
                // depA must point exactly at the previous load.
                if (op.depA == idx - last_load)
                    chained++;
            }
            last_load = idx;
        }
        idx++;
    }
    EXPECT_GT(chained, 4000);
}

TEST(SynthGenerator, PhasesCycle)
{
    auto s = simpleSpec();
    PhaseSpec second = s.phases[0];
    second.lengthInsts = 5'000;
    second.fracLoad = 0.0;
    second.fracStore = 0.0;
    s.phases.push_back(second);
    SynthGenerator g(s);
    MicroOp op;
    // Phase 0: 10K ops, phase 1: 5K ops, repeat.
    for (int i = 0; i < 10'000; i++)
        ASSERT_TRUE(g.next(op));
    EXPECT_EQ(g.currentPhase(), 0u); // phase switch is lazy
    int mem_in_phase1 = 0;
    for (int i = 0; i < 5'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (isMem(op.cls))
            mem_in_phase1++;
    }
    EXPECT_EQ(mem_in_phase1, 0);
    // Back to phase 0.
    int mem_again = 0;
    for (int i = 0; i < 5'000; i++) {
        ASSERT_TRUE(g.next(op));
        if (isMem(op.cls))
            mem_again++;
    }
    EXPECT_GT(mem_again, 1000);
}

TEST(SynthGenerator, TakenBranchesJumpWithinCodeFootprint)
{
    auto s = simpleSpec();
    s.codeBytes = 64 * 1024;
    SynthGenerator g(s);
    MicroOp op;
    std::uint64_t prev_pc = 0;
    bool prev_taken = false;
    for (int i = 0; i < 50'000; i++) {
        ASSERT_TRUE(g.next(op));
        EXPECT_GE(op.pc, 0x8000'0000ULL);
        EXPECT_LT(op.pc, 0x8000'0000ULL + s.codeBytes + 4096);
        if (prev_taken)
            EXPECT_EQ(op.pc % 128, 0u); // jumps land on block starts
        else if (prev_pc)
            EXPECT_EQ(op.pc, prev_pc + 4);
        prev_pc = op.pc;
        prev_taken = op.cls == OpClass::Branch && op.taken;
    }
}

TEST(SynthGenerator, SuiteSpecsAllGenerate)
{
    for (const auto &w : spec2000Suite()) {
        SynthGenerator g(w, 0.001);
        MicroOp op;
        std::uint64_t n = 0;
        while (g.next(op))
            n++;
        EXPECT_GT(n, 0u) << w.name;
        EXPECT_EQ(n, g.totalInsts()) << w.name;
    }
}

TEST(Workload, SuiteHasTwelveBenchmarks)
{
    EXPECT_EQ(spec2000Suite().size(), 12u);
}

TEST(Workload, LookupFindsAll)
{
    for (const auto &w : spec2000Suite())
        EXPECT_EQ(workload(w.name).seed, w.seed);
}

TEST(Workload, Table2CombinationsPresent)
{
    auto &combos = benchmarkCombinations();
    EXPECT_EQ(combos.size(), 10u);
    EXPECT_EQ(combination("4way1").size(), 4u);
    EXPECT_EQ(combination("2way4").size(), 2u);
    EXPECT_EQ(combination("8way2").size(), 8u);
    EXPECT_EQ(combination("4way1")[1], "mcf");
}

TEST(Workload, FractionsAreValid)
{
    for (const auto &w : spec2000Suite()) {
        for (const auto &p : w.phases) {
            EXPECT_LE(p.fracLoad + p.fracStore + p.fracBranch, 1.0)
                << w.name;
            EXPECT_LE(p.strideFrac + p.hotFrac + p.warmFrac +
                          p.coldFrac,
                      1.0 + 1e-9)
                << w.name;
            EXPECT_GT(p.lengthInsts, 0u) << w.name;
        }
    }
}

} // namespace
} // namespace gpm
