/** @file DiskCache — the persistent result-cache tier — against a
 *  real scratch directory: round trips, persistence across
 *  instances and processes sharing a directory, CRC verification
 *  with quarantine of corrupt entries, the LRU byte budget, and the
 *  disk-read-corrupt / disk-write-fail chaos points. */

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "service/disk_cache.hh"
#include "util/fault.hh"

namespace gpm
{
namespace
{

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/gpm_disk_cache_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
    }

    void
    TearDown() override
    {
        fault::disarm();
        if (DIR *d = ::opendir(dir.c_str())) {
            while (const dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(dir.c_str());
    }

    std::string
    entryPath(std::uint64_t hash) const
    {
        return dir + "/" + DiskCache::fileNameFor(hash);
    }

    bool
    fileExists(const std::string &path) const
    {
        struct stat st;
        return ::stat(path.c_str(), &st) == 0;
    }

    /** Overwrite one byte at @p offset from the file's end. */
    void
    corruptTail(const std::string &path, long offset_from_end)
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, -offset_from_end, SEEK_END), 0);
        int c = std::fgetc(f);
        ASSERT_EQ(std::fseek(f, -offset_from_end, SEEK_END), 0);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }

    std::string dir;
};

TEST_F(DiskCacheTest, RoundTripAndStats)
{
    DiskCache cache(dir, 0);
    std::string payload = "{\"results\":[1,2,3]}";
    cache.put(0x1234, payload);
    ASSERT_TRUE(fileExists(entryPath(0x1234)));

    std::string out;
    EXPECT_TRUE(cache.get(0x1234, out));
    EXPECT_EQ(out, payload);
    EXPECT_FALSE(cache.get(0x9999, out));

    DiskCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, payload.size());
}

TEST_F(DiskCacheTest, SurvivesRestart)
{
    std::string payload(3000, 'x');
    payload += "end";
    {
        DiskCache first(dir, 0);
        first.put(0xabcdef, payload);
    }
    DiskCache second(dir, 0);
    EXPECT_EQ(second.stats().entries, 1u);
    std::string out;
    EXPECT_TRUE(second.get(0xabcdef, out));
    EXPECT_EQ(out, payload);
}

TEST_F(DiskCacheTest, IndexMissProbesEntriesWrittenByOthers)
{
    // Two instances over one directory, both created while it was
    // empty — the fleet-sharing case. B's write is invisible to A's
    // index, but A's get() probes the filesystem and finds it.
    DiskCache a(dir, 0);
    DiskCache b(dir, 0);
    b.put(0x77, "shared-payload");
    std::string out;
    EXPECT_TRUE(a.get(0x77, out));
    EXPECT_EQ(out, "shared-payload");
}

TEST_F(DiskCacheTest, CorruptPayloadQuarantinedNeverServed)
{
    DiskCache cache(dir, 0);
    cache.put(0x42, "precious-bytes");
    corruptTail(entryPath(0x42), 3); // flip a payload byte

    std::string out;
    EXPECT_FALSE(cache.get(0x42, out));
    DiskCacheStats s = cache.stats();
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_EQ(s.hits, 0u);
    // Renamed aside for postmortem, not deleted, and no longer
    // served under its entry name.
    EXPECT_FALSE(fileExists(entryPath(0x42)));
    EXPECT_TRUE(fileExists(entryPath(0x42) + ".corrupt"));

    // The recompute path repopulates cleanly.
    cache.put(0x42, "precious-bytes");
    EXPECT_TRUE(cache.get(0x42, out));
    EXPECT_EQ(out, "precious-bytes");
}

TEST_F(DiskCacheTest, TruncatedEntryQuarantined)
{
    DiskCache cache(dir, 0);
    cache.put(0x43, "will-be-truncated");
    ASSERT_EQ(::truncate(entryPath(0x43).c_str(), 10), 0);
    std::string out;
    EXPECT_FALSE(cache.get(0x43, out));
    EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST_F(DiskCacheTest, EvictsLeastRecentlyUsedToByteBudget)
{
    std::string payload(512, 'p');
    std::uint64_t oneEntryBytes;
    {
        DiskCache probe(dir, 0);
        probe.put(0x1, payload);
        oneEntryBytes = probe.stats().bytes;
        ::unlink(entryPath(0x1).c_str());
    }

    // Budget for one entry (plus slack): the second put evicts the
    // stalest.
    DiskCache cache(dir, oneEntryBytes + 64);
    cache.put(0x1, payload);
    cache.put(0x2, payload);
    DiskCacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_LE(s.bytes, oneEntryBytes + 64);
    EXPECT_FALSE(fileExists(entryPath(0x1)));
    EXPECT_TRUE(fileExists(entryPath(0x2)));

    // Recency matters: touch 0x2 via get, insert 0x3 — 0x2 stays.
    std::string out;
    ASSERT_TRUE(cache.get(0x2, out));
    cache.put(0x3, payload);
    EXPECT_TRUE(fileExists(entryPath(0x2)) ||
                fileExists(entryPath(0x3)));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(DiskCacheTest, RestartWithSmallerBudgetKeepsEntriesUntilPut)
{
    std::string payload(512, 'q');
    {
        DiskCache first(dir, 0);
        first.put(0x10, payload);
        first.put(0x11, payload);
    }
    // A tiny budget must not purge the directory at startup — a
    // restarted daemon still serves yesterday's corpus.
    DiskCache second(dir, 64);
    EXPECT_EQ(second.stats().entries, 2u);
    std::string out;
    EXPECT_TRUE(second.get(0x10, out));
    // The budget bites on the next insertion.
    second.put(0x12, payload);
    EXPECT_GT(second.stats().evictions, 0u);
}

TEST_F(DiskCacheTest, InjectedReadCorruptionQuarantines)
{
    DiskCache cache(dir, 0);
    cache.put(0x50, "healthy-bytes");
    ASSERT_FALSE(fault::arm("disk-read-corrupt,seed:1"));
    std::string out;
    EXPECT_FALSE(cache.get(0x50, out));
    EXPECT_EQ(cache.stats().quarantined, 1u);
    EXPECT_GE(fault::fires(fault::Point::DiskReadCorrupt), 1u);
    fault::disarm();
    // Quarantine is real even for an injected verdict: the entry is
    // gone and recomputation repopulates.
    EXPECT_FALSE(cache.get(0x50, out));
    cache.put(0x50, "healthy-bytes");
    EXPECT_TRUE(cache.get(0x50, out));
}

TEST_F(DiskCacheTest, InjectedWriteFailureDropsTheEntry)
{
    DiskCache cache(dir, 0);
    ASSERT_FALSE(fault::arm("disk-write-fail,seed:1"));
    cache.put(0x60, "never-lands");
    fault::disarm();
    EXPECT_FALSE(fileExists(entryPath(0x60)));
    std::string out;
    EXPECT_FALSE(cache.get(0x60, out));
    DiskCacheStats s = cache.stats();
    EXPECT_EQ(s.writeFailures, 1u);
    EXPECT_EQ(s.entries, 0u);
}

TEST_F(DiskCacheTest, FileNameIsSixteenHex)
{
    EXPECT_EQ(DiskCache::fileNameFor(0xdeadbeef),
              "00000000deadbeef.gpmc");
    EXPECT_EQ(DiskCache::fileNameFor(0), "0000000000000000.gpmc");
}

} // namespace
} // namespace gpm
