/**
 * @file
 * Shared test fixtures: scripted micro-op sources, hand-built
 * workload profiles, and random ModeMatrix generators.
 */

#ifndef GPM_TESTS_HELPERS_HH
#define GPM_TESTS_HELPERS_HH

#include <vector>

#include "core/types.hh"
#include "trace/phase_profile.hh"
#include "uarch/isa.hh"
#include "util/rng.hh"

namespace gpm::test
{

/** OpSource that replays a fixed vector of micro-ops. */
class ScriptedSource : public OpSource
{
  public:
    explicit ScriptedSource(std::vector<MicroOp> ops)
        : ops(std::move(ops))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (pos >= ops.size())
            return false;
        op = ops[pos++];
        return true;
    }

  private:
    std::vector<MicroOp> ops;
    std::size_t pos = 0;
};

/** n copies of the same op (pc advances). */
inline std::vector<MicroOp>
repeatOp(OpClass cls, std::size_t n, std::uint8_t dep_a = 0,
         std::uint64_t addr_stride = 0)
{
    std::vector<MicroOp> ops(n);
    for (std::size_t i = 0; i < n; i++) {
        ops[i].cls = cls;
        ops[i].pc = 0x1000 + 4 * i;
        ops[i].depA = dep_a;
        ops[i].addr = addr_stride * i;
    }
    return ops;
}

/**
 * Hand-built WorkloadProfile: `chunks` chunks of `chunk_insts`
 * instructions each. Mode m runs a chunk in base_us * slowdown[m]
 * microseconds consuming base_j * pscale[m] joules.
 */
inline WorkloadProfile
syntheticProfile(std::size_t chunks, std::uint64_t chunk_insts,
                 double base_us, double base_j,
                 const std::vector<double> &slowdown,
                 const std::vector<double> &pscale,
                 std::uint32_t l2_misses_per_chunk = 0)
{
    WorkloadProfile p;
    p.name = "synthetic";
    for (std::size_t m = 0; m < slowdown.size(); m++) {
        ModeProfile mp;
        mp.chunkInsts = chunk_insts;
        mp.lastChunkInsts = chunk_insts;
        for (std::size_t c = 0; c < chunks; c++) {
            ChunkRecord r;
            r.timePs = static_cast<std::uint64_t>(
                base_us * slowdown[m] * 1e6);
            r.energyJ = base_j * pscale[m];
            r.l2Misses = l2_misses_per_chunk;
            r.l2Accesses = l2_misses_per_chunk * 2;
            mp.chunks.push_back(r);
        }
        p.modes.push_back(std::move(mp));
    }
    return p;
}

/** Classic-3-mode synthetic profile with cubic power behaviour. */
inline WorkloadProfile
classicSyntheticProfile(std::size_t chunks = 100,
                        double base_us = 10.0, double base_j = 1e-4)
{
    return syntheticProfile(chunks, 10'000, base_us, base_j,
                            {1.0, 1.0 / 0.95, 1.0 / 0.85},
                            {1.0, 0.857375, 0.614125});
}

/** Random ModeMatrix: powers descend with mode, bips descend too. */
inline ModeMatrix
randomMatrix(std::size_t cores, std::size_t n_modes,
             std::uint64_t seed)
{
    Rng rng(seed);
    ModeMatrix m(cores, n_modes);
    for (std::size_t c = 0; c < cores; c++) {
        double p = rng.uniform(5.0, 12.0);
        double b = rng.uniform(0.2, 2.5);
        for (std::size_t mi = 0; mi < n_modes; mi++) {
            double s = 1.0 -
                0.15 * static_cast<double>(mi) *
                    rng.uniform(0.8, 1.2);
            auto mode = static_cast<PowerMode>(mi);
            m.powerW(c, mode) = p * s * s * s;
            m.bips(c, mode) = b * s;
        }
    }
    return m;
}

} // namespace gpm::test

#endif // GPM_TESTS_HELPERS_HH
