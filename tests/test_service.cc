/** @file ScenarioService end to end: a submitted scenario's payload
 *  is bitwise-identical to a direct ExperimentRunner::sweep over the
 *  equivalent SweepSpec, repeats are served from cache with the same
 *  bytes, and the bounded queue / draining shutdown reject with
 *  structured error codes. Uses the small shared profile scale of
 *  the other experiment tests. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/service.hh"

namespace gpm
{
namespace
{

class ServiceTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    /** The scenario used throughout: a 2-core combo, MaxBIPS at two
     *  budgets. */
    static ScenarioSpec
    scenario()
    {
        ScenarioSpec s;
        s.combo = {"mcf", "crafty"};
        s.policy = "MaxBIPS";
        s.budgets = {0.75, 0.9};
        return s;
    }
};

TEST_F(ServiceTest, SubmitMatchesDirectSweep)
{
    ScenarioSpec spec = scenario();

    ScenarioService svc(lib(), dvfs());
    auto r = svc.submit(spec);
    ASSERT_TRUE(r.ok) << r.errorCode << ": " << r.errorMessage;
    EXPECT_FALSE(r.cacheHit);
    EXPECT_EQ(r.hash, spec.hash());

    // Ground truth: a direct sweep on an equivalent runner.
    ExperimentRunner direct(lib(), dvfs(), spec.simConfig());
    auto evals = direct.sweep(spec.sweepSpec());
    EXPECT_EQ(r.payload, serializeResults(spec, evals));

    // And the payload's numbers parse back bit-exactly.
    auto parsed = json::parse(r.payload);
    ASSERT_TRUE(parsed.ok());
    const json::Value *results = parsed.value().find("results");
    ASSERT_TRUE(results && results->isArray());
    ASSERT_EQ(results->asArray().size(), evals.size());
    for (std::size_t i = 0; i < evals.size(); i++) {
        const json::Value &res = results->asArray()[i];
        EXPECT_EQ(res.find("policy")->asString(), evals[i].policy);
        EXPECT_EQ(res.find("budget")->asNumber(),
                  evals[i].budgetFrac);
        const json::Value *m = res.find("metrics");
        ASSERT_TRUE(m);
        EXPECT_EQ(m->find("perfDegradation")->asNumber(),
                  evals[i].metrics.perfDegradation);
        EXPECT_EQ(m->find("chipBips")->asNumber(),
                  evals[i].metrics.chipBips);
        EXPECT_EQ(m->find("avgChipPowerW")->asNumber(),
                  evals[i].metrics.avgChipPowerW);
    }
}

TEST_F(ServiceTest, RepeatedSubmitServedFromCacheBitIdentically)
{
    ScenarioService svc(lib(), dvfs());
    auto first = svc.submit(scenario());
    ASSERT_TRUE(first.ok);
    EXPECT_FALSE(first.cacheHit);

    auto second = svc.submit(scenario());
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.payload, first.payload);

    ServiceStats s = svc.stats();
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.cacheMisses, 1u);
    EXPECT_EQ(s.served, 2u);
    EXPECT_EQ(s.cacheSize, 1u);
    EXPECT_EQ(s.cacheHitRate, 0.5);
}

TEST_F(ServiceTest, EquivalentSpellingsShareOneCacheEntry)
{
    ScenarioService svc(lib(), dvfs());
    auto a = svc.submitJsonText(
        R"({"combo": ["mcf", "crafty"], "policy": "MaxBIPS",
            "budgets": [0.75, 0.9]})");
    ASSERT_TRUE(a.ok) << a.errorCode << ": " << a.errorMessage;
    // Same meaning, different spelling: key order swapped and an
    // explicit default sim block.
    auto b = svc.submitJsonText(
        R"({"policy": "MaxBIPS", "budgets": [0.75, 0.9],
            "combo": ["mcf", "crafty"],
            "sim": {"exploreUs": 500, "deltaSimUs": 50}})");
    ASSERT_TRUE(b.ok);
    EXPECT_TRUE(b.cacheHit);
    EXPECT_EQ(b.payload, a.payload);
}

TEST_F(ServiceTest, InvalidScenarioRejectedStructured)
{
    ScenarioService svc(lib(), dvfs());
    ScenarioSpec bad = scenario();
    bad.policy = "NoSuchPolicy";
    auto r = svc.submit(bad);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "invalid");
    EXPECT_NE(r.errorMessage.find("NoSuchPolicy"),
              std::string::npos);
    EXPECT_EQ(svc.stats().invalid, 1u);

    auto p = svc.submitJsonText("this is not json");
    EXPECT_FALSE(p.ok);
    EXPECT_EQ(p.errorCode, "parse");
}

TEST_F(ServiceTest, ZeroCapacityQueueRejectsEveryMiss)
{
    ServiceOptions opts;
    opts.queueCapacity = 0;
    ScenarioService svc(lib(), dvfs(), opts);
    auto r = svc.submit(scenario());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "busy");
    EXPECT_EQ(svc.stats().rejectedBusy, 1u);
    EXPECT_EQ(svc.stats().served, 0u);
}

TEST_F(ServiceTest, DrainedServiceRejectsNewWork)
{
    ScenarioService svc(lib(), dvfs());
    svc.drain();
    auto r = svc.submit(scenario());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "draining");
    svc.drain(); // idempotent
}

TEST_F(ServiceTest, CacheEvictsLeastRecentlyUsed)
{
    ServiceOptions opts;
    opts.cacheCapacity = 1;
    ScenarioService svc(lib(), dvfs(), opts);

    ScenarioSpec a = scenario();
    a.budgets = {0.75};
    ScenarioSpec b = scenario();
    b.budgets = {0.9};

    ASSERT_TRUE(svc.submit(a).ok); // miss, cache = {a}
    ASSERT_TRUE(svc.submit(b).ok); // miss, evicts a
    auto r = svc.submit(a);        // miss again
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_EQ(svc.stats().cacheMisses, 3u);
    EXPECT_EQ(svc.stats().cacheSize, 1u);
}

TEST_F(ServiceTest, ConcurrentIdenticalSubmitsAgree)
{
    ScenarioService svc(lib(), dvfs());
    constexpr int kClients = 4;
    std::vector<ScenarioService::Response> out(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; i++)
        clients.emplace_back(
            [&, i] { out[i] = svc.submit(scenario()); });
    for (auto &t : clients)
        t.join();
    for (const auto &r : out) {
        ASSERT_TRUE(r.ok) << r.errorCode;
        EXPECT_EQ(r.payload, out[0].payload);
    }
}

TEST_F(ServiceTest, DistinctSimKnobsGetDistinctRunnersAndResults)
{
    ScenarioService svc(lib(), dvfs());
    ScenarioSpec fast = scenario();
    fast.budgets = {0.75};
    ScenarioSpec coarse = fast;
    coarse.exploreUs = 1000.0;
    coarse.deltaSimUs = 100.0;

    auto a = svc.submit(fast);
    auto b = svc.submit(coarse);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_NE(a.hash, b.hash);
    EXPECT_NE(a.payload, b.payload);

    // Each knob set is deterministic on its own runner.
    ExperimentRunner direct(lib(), dvfs(), coarse.simConfig());
    EXPECT_EQ(b.payload,
              serializeResults(coarse,
                               direct.sweep(coarse.sweepSpec())));
}

} // namespace
} // namespace gpm
