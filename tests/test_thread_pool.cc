/** @file Tests for the ThreadPool / parallelFor engine behind
 *  ExperimentRunner::sweep: index coverage, exception propagation,
 *  degenerate sizes, nested calls and shutdown draining. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace gpm
{
namespace
{

TEST(ThreadPool, ConcurrencyCountsCallingThread)
{
    ThreadPool p1(1);
    EXPECT_EQ(p1.concurrency(), 1u);
    ThreadPool p4(4);
    EXPECT_EQ(p4.concurrency(), 4u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (std::size_t conc : {1u, 2u, 8u}) {
        ThreadPool pool(conc);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < n; i++)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForWritesLandInDeterministicSlots)
{
    ThreadPool pool(4);
    std::vector<std::size_t> out(257, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ZeroAndSingleTaskWork)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { calls++; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls++;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 42)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The pool must remain usable after a failed loop.
    std::atomic<int> ok{0};
    pool.parallelFor(10, [&](std::size_t) { ok++; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndices)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(100000, [&](std::size_t) {
            ran++;
            throw std::runtime_error("first");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    // Far fewer than all indices actually executed.
    EXPECT_LT(ran.load(), 100000);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    // Each outer task runs a nested loop; the nested call must not
    // deadlock on the pool's own queue.
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(16,
                         [&](std::size_t) { inner_total++; });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, SubmitReturnsCompletionFuture)
{
    ThreadPool pool(2);
    std::atomic<bool> ran{false};
    auto fut = pool.submit([&] { ran = true; });
    fut.get();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto fut =
        pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; i++)
            futs.push_back(pool.submit([&] { done++; }));
        // Pool destroyed here with tasks possibly still queued.
    }
    EXPECT_EQ(done.load(), 32);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, FreeParallelForMatchesSerialLoop)
{
    for (std::size_t conc : {0u, 1u, 3u}) {
        std::vector<int> out(100, 0);
        parallelFor(conc, out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i) + 1; });
        EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0),
                  100 * 101 / 2);
    }
}

TEST(ThreadPool, DefaultConcurrencyHonoursEnv)
{
    // GPM_THREADS wins over hardware_concurrency when set.
    setenv("GPM_THREADS", "3", 1);
    EXPECT_EQ(defaultConcurrency(), 3u);
    setenv("GPM_THREADS", "0", 1);
    EXPECT_GE(defaultConcurrency(), 1u);
    unsetenv("GPM_THREADS");
    EXPECT_GE(defaultConcurrency(), 1u);
}

} // namespace
} // namespace gpm
