/** @file Unit tests for the Power/BIPS matrix mode predictor
 *  (paper Section 5.5). */

#include <gtest/gtest.h>

#include "core/mode_predictor.hh"

namespace gpm
{
namespace
{

class PredictorTest : public ::testing::Test
{
  protected:
    PredictorTest()
        : dvfs(DvfsTable::classic3()), pred(dvfs, 500.0)
    {
    }

    DvfsTable dvfs;
    ModePredictor pred;
};

TEST_F(PredictorTest, TransitionFactorsMatchPaper)
{
    // Paper Section 5.5: scale factors 500/507, 500/513, 500/520
    // (with ~7/13/20 us transitions; ours are exactly 6.5/13/19.5).
    EXPECT_NEAR(pred.transitionFactor(modes::Turbo, modes::Eff1),
                500.0 / 506.5, 1e-9);
    EXPECT_NEAR(pred.transitionFactor(modes::Eff1, modes::Eff2),
                500.0 / 513.0, 1e-9);
    EXPECT_NEAR(pred.transitionFactor(modes::Turbo, modes::Eff2),
                500.0 / 519.5, 1e-9);
    EXPECT_DOUBLE_EQ(
        pred.transitionFactor(modes::Eff1, modes::Eff1), 1.0);
}

TEST_F(PredictorTest, CubicPowerPrediction)
{
    // Paper's worked example: core in Eff1 with P1E1; then
    // P1T = P1E1 / 0.95^3 and P1E2 = P1T * 0.85^3 — blended with
    // the departing power over the transition stall, since the
    // scored interval includes the stall.
    std::vector<CoreSample> s(1);
    s[0].powerW = 8.0;
    s[0].bips = 1.0;
    s[0].mode = modes::Eff1;
    ModeMatrix m = pred.predict(s);
    double p1t = 8.0 / (0.95 * 0.95 * 0.95);
    double p1e2 = p1t * 0.85 * 0.85 * 0.85;
    EXPECT_NEAR(m.powerW(0, modes::Turbo),
                (6.5 * 8.0 + 500.0 * p1t) / 506.5, 1e-9);
    EXPECT_NEAR(m.powerW(0, modes::Eff2),
                (13.0 * 8.0 + 500.0 * p1e2) / 513.0, 1e-9);
    EXPECT_NEAR(m.powerW(0, modes::Eff1), 8.0, 1e-9);
}

TEST_F(PredictorTest, LinearBipsPredictionWithTransitionCost)
{
    // B1E2 = B1T * 0.85 * (500 / 519.5) from Turbo.
    std::vector<CoreSample> s(1);
    s[0].powerW = 10.0;
    s[0].bips = 2.0;
    s[0].mode = modes::Turbo;
    ModeMatrix m = pred.predict(s);
    EXPECT_NEAR(m.bips(0, modes::Eff2),
                2.0 * 0.85 * (500.0 / 519.5), 1e-9);
    EXPECT_NEAR(m.bips(0, modes::Eff1),
                2.0 * 0.95 * (500.0 / 506.5), 1e-9);
    // Same-mode prediction is the measurement itself.
    EXPECT_NEAR(m.bips(0, modes::Turbo), 2.0, 1e-12);
}

TEST_F(PredictorTest, SameModePowerIsMeasurement)
{
    // No transition, no blend: the same-mode column is exactly the
    // measured value, at any mode.
    for (PowerMode mode = 0; mode < 3; mode++) {
        std::vector<CoreSample> s(1);
        s[0].powerW = 5.0;
        s[0].bips = 0.6;
        s[0].mode = mode;
        ModeMatrix m = pred.predict(s);
        EXPECT_NEAR(m.powerW(0, mode), 5.0, 1e-12);
        EXPECT_NEAR(m.bips(0, mode), 0.6, 1e-12);
    }
}

TEST_F(PredictorTest, InactiveCoresGetIdlePower)
{
    ModePredictor p2(dvfs, 500.0, 3.0);
    std::vector<CoreSample> s(2);
    s[0].powerW = 10.0;
    s[0].bips = 1.0;
    s[0].mode = modes::Turbo;
    s[1].active = false;
    s[1].mode = modes::Turbo;
    ModeMatrix m = p2.predict(s);
    EXPECT_NEAR(m.powerW(1, modes::Turbo), 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.bips(1, modes::Turbo), 0.0);
    EXPECT_LT(m.powerW(1, modes::Eff2), 3.0);
}

TEST_F(PredictorTest, OutcomeScoringComputesRelativeError)
{
    std::vector<CoreSample> s(1);
    s[0].powerW = 10.0;
    s[0].bips = 1.0;
    s[0].mode = modes::Turbo;
    ModeMatrix m = pred.predict(s);
    std::vector<PowerMode> chosen{modes::Turbo};
    std::vector<CoreSample> actual(1);
    actual[0].powerW = 9.5; // 5.26% under prediction of 10
    actual[0].bips = 1.1;
    actual[0].mode = modes::Turbo;
    pred.recordOutcome(m, chosen, actual);
    EXPECT_EQ(pred.outcomes(), 1u);
    EXPECT_NEAR(pred.meanPowerError(), 0.5 / 9.5, 1e-9);
    EXPECT_NEAR(pred.meanBipsError(), 0.1 / 1.1, 1e-9);
}

TEST_F(PredictorTest, InactiveOutcomesIgnored)
{
    std::vector<CoreSample> s(1);
    s[0].powerW = 10.0;
    s[0].bips = 1.0;
    s[0].mode = modes::Turbo;
    ModeMatrix m = pred.predict(s);
    std::vector<CoreSample> actual(1);
    actual[0].active = false;
    pred.recordOutcome(m, {modes::Turbo}, actual);
    EXPECT_DOUBLE_EQ(pred.meanPowerError(), 0.0);
}

TEST_F(PredictorTest, PerfectPredictionZeroError)
{
    std::vector<CoreSample> s(1);
    s[0].powerW = 10.0;
    s[0].bips = 1.0;
    s[0].mode = modes::Turbo;
    ModeMatrix m = pred.predict(s);
    std::vector<CoreSample> actual = s;
    pred.recordOutcome(m, {modes::Turbo}, actual);
    EXPECT_DOUBLE_EQ(pred.meanPowerError(), 0.0);
    EXPECT_DOUBLE_EQ(pred.meanBipsError(), 0.0);
}

class PredictorModeSweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PredictorModeSweep, PredictionsMonotoneInMode)
{
    auto dvfs = DvfsTable::linear(GetParam(), 0.8);
    ModePredictor pred(dvfs, 500.0);
    std::vector<CoreSample> s(1);
    s[0].powerW = 10.0;
    s[0].bips = 1.5;
    s[0].mode = 0;
    ModeMatrix m = pred.predict(s);
    for (std::size_t mi = 1; mi < dvfs.numModes(); mi++) {
        EXPECT_LT(m.powerW(0, static_cast<PowerMode>(mi)),
                  m.powerW(0, static_cast<PowerMode>(mi - 1)));
        EXPECT_LT(m.bips(0, static_cast<PowerMode>(mi)),
                  m.bips(0, static_cast<PowerMode>(mi - 1)));
    }
}

INSTANTIATE_TEST_SUITE_P(ModeCounts, PredictorModeSweep,
                         ::testing::Values(2, 3, 5, 8));

} // namespace
} // namespace gpm
