/** @file ScenarioSpec round trips: JSON parse -> ScenarioSpec ->
 *  SweepSpec, strict rejection of malformed scenarios, and
 *  canonical-form hash invariance across equivalent spellings. */

#include <gtest/gtest.h>

#include <cstdio>

#include "service/scenario.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

ScenarioSpec
parseOk(const std::string &text)
{
    auto v = json::parse(text);
    EXPECT_TRUE(v.ok()) << text;
    auto r = parseScenario(v.ok() ? v.value() : json::Value());
    EXPECT_TRUE(r.ok()) << text << " -> "
                        << (r.ok() ? "" : r.error());
    return r.ok() ? r.value() : ScenarioSpec{};
}

std::string
parseErr(const std::string &text)
{
    auto v = json::parse(text);
    EXPECT_TRUE(v.ok()) << text;
    auto r = parseScenario(v.ok() ? v.value() : json::Value());
    EXPECT_FALSE(r.ok()) << text << " unexpectedly accepted";
    return r.ok() ? "" : r.error();
}

TEST(Scenario, ParsesFullScenario)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["mcf", "crafty"], "policy": "MaxBIPS",
            "budgets": [0.7, 0.85],
            "sim": {"exploreUs": 250, "deltaSimUs": 25,
                    "contention": true, "sensorNoise": 0.05}})");
    EXPECT_EQ(s.combo,
              (std::vector<std::string>{"mcf", "crafty"}));
    EXPECT_EQ(s.policy, "MaxBIPS");
    EXPECT_EQ(s.budgets, (std::vector<double>{0.7, 0.85}));
    EXPECT_EQ(s.exploreUs, 250.0);
    EXPECT_EQ(s.deltaSimUs, 25.0);
    EXPECT_TRUE(s.contention);
    EXPECT_EQ(s.sensorNoise, 0.05);
}

TEST(Scenario, MinimalScenarioGetsDefaults)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["art"], "policy": "Priority",
            "budget": 0.8})");
    EXPECT_EQ(s.budgets, (std::vector<double>{0.8}));
    EXPECT_EQ(s.exploreUs, 500.0);
    EXPECT_EQ(s.deltaSimUs, 50.0);
    EXPECT_FALSE(s.contention);
    EXPECT_EQ(s.sensorNoise, 0.0);
    EXPECT_EQ(s.staticFit, StaticFit::Peak);
}

TEST(Scenario, CombinationKeyResolvesToTable2List)
{
    ScenarioSpec s = parseOk(
        R"({"combo": "2way1", "policy": "MaxBIPS",
            "budget": 0.75})");
    EXPECT_EQ(s.combo, combination("2way1"));
}

TEST(Scenario, StaticScenarioParsesFit)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["gcc"], "policy": "Static",
            "budget": 0.9, "staticFit": "average"})");
    EXPECT_EQ(s.staticFit, StaticFit::Average);

    SweepSpec sweep = s.sweepSpec();
    ASSERT_EQ(sweep.size(), 1u);
    EXPECT_EQ(sweep.points[0].policy, "Static");
    EXPECT_EQ(sweep.points[0].staticFit, StaticFit::Average);
}

TEST(Scenario, SweepSpecHasOnePointPerBudget)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["mcf", "art"], "policy": "ChipWideDVFS",
            "budgets": [0.6, 0.8, 1.0]})");
    SweepSpec sweep = s.sweepSpec();
    ASSERT_EQ(sweep.size(), 3u);
    for (std::size_t i = 0; i < sweep.size(); i++) {
        EXPECT_EQ(sweep.points[i].combo, s.combo);
        EXPECT_EQ(sweep.points[i].policy, "ChipWideDVFS");
    }
    EXPECT_EQ(sweep.points[0].budgetFrac, 0.6);
    EXPECT_EQ(sweep.points[1].budgetFrac, 0.8);
    EXPECT_EQ(sweep.points[2].budgetFrac, 1.0);
}

TEST(Scenario, SimConfigCarriesKnobs)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["mesa"], "policy": "MaxBIPS", "budget": 0.7,
            "sim": {"exploreUs": 100, "deltaSimUs": 10}})");
    SimConfig cfg = s.simConfig();
    EXPECT_EQ(cfg.exploreUs, 100.0);
    EXPECT_EQ(cfg.deltaSimUs, 10.0);
    EXPECT_FALSE(cfg.contention);
    EXPECT_EQ(cfg.sensorNoise, 0.0);
}

TEST(Scenario, HashIgnoresKeyOrder)
{
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budget": 0.7})");
    ScenarioSpec b = parseOk(
        R"({"policy": "MaxBIPS", "budget": 0.7,
            "combo": ["mcf"]})");
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(Scenario, BudgetAndBudgetsSpellingsHashIdentically)
{
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budget": 0.7})");
    ScenarioSpec b = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budgets": [0.7]})");
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.canonicalJson().canonical(),
              b.canonicalJson().canonical());
}

TEST(Scenario, CombinationKeyAndExplicitListHashIdentically)
{
    const auto &combo = combination("2way1");
    json::Value list = json::Value::array();
    for (const auto &name : combo)
        list.push(name);
    json::Value explicit_form = json::Value::object();
    explicit_form.set("combo", std::move(list));
    explicit_form.set("policy", "MaxBIPS");
    explicit_form.set("budget", 0.75);

    auto a = parseScenario(explicit_form);
    ASSERT_TRUE(a.ok());
    ScenarioSpec b = parseOk(
        R"({"combo": "2way1", "policy": "MaxBIPS",
            "budget": 0.75})");
    EXPECT_EQ(a.value().hash(), b.hash());
}

TEST(Scenario, DistinctScenariosHashDifferently)
{
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budget": 0.7})");
    ScenarioSpec b = a;
    b.budgets = {0.8};
    EXPECT_NE(a.hash(), b.hash());
    ScenarioSpec c = a;
    c.contention = true;
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Scenario, StaticFitOnlyHashedForStaticPolicy)
{
    // For a dynamic policy the fit rule cannot change the result,
    // so it must not split the cache.
    ScenarioSpec a = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budget": 0.7})");
    ScenarioSpec b = a;
    b.staticFit = StaticFit::Average;
    EXPECT_EQ(a.hash(), b.hash());

    ScenarioSpec s1 = parseOk(
        R"({"combo": ["mcf"], "policy": "Static", "budget": 0.7,
            "staticFit": "peak"})");
    ScenarioSpec s2 = parseOk(
        R"({"combo": ["mcf"], "policy": "Static", "budget": 0.7,
            "staticFit": "average"})");
    EXPECT_NE(s1.hash(), s2.hash());
}

TEST(ClusterScenario, ParsesChipsAndExpandsCounts)
{
    ScenarioSpec s = parseOk(
        R"({"cluster": {"chips": [
              {"combo": "2way1", "policy": "MaxBIPS", "count": 2,
               "phaseShiftStride": 0.1},
              {"combo": ["mcf", "crafty"], "policy": "WaterFill",
               "phaseOffset": 0.5}],
            "epochs": 4, "epochUs": 1500, "levels": 12},
            "policy": "MaxBIPS-DP", "budget": 0.75})");
    ASSERT_TRUE(s.cluster.has_value());
    EXPECT_TRUE(s.combo.empty());
    ASSERT_EQ(s.cluster->chips.size(), 3u);
    EXPECT_EQ(s.cluster->chips[0].combo,
              (std::vector<std::string>{"ammp", "art"}));
    EXPECT_EQ(s.cluster->chips[0].policy, "MaxBIPS");
    EXPECT_EQ(s.cluster->chips[0].phaseShiftStride, 0.1);
    EXPECT_EQ(s.cluster->chips[1].combo,
              s.cluster->chips[0].combo);
    EXPECT_EQ(s.cluster->chips[2].policy, "WaterFill");
    EXPECT_EQ(s.cluster->chips[2].phaseOffset, 0.5);
    EXPECT_EQ(s.cluster->epochs, 4u);
    EXPECT_EQ(s.cluster->epochUs, 1500.0);
    EXPECT_EQ(s.cluster->levels, 12u);
    EXPECT_EQ(s.policy, "MaxBIPS-DP");

    // clusterSpec() carries the top-level policy into the spec.
    EXPECT_EQ(s.clusterSpec().policy, "MaxBIPS-DP");
    EXPECT_EQ(s.cluster->totalCores(), 6u);
}

TEST(ClusterScenario, CountReplicasHashLikeExplicitChips)
{
    ScenarioSpec a = parseOk(
        R"({"cluster": {"chips": [
              {"combo": ["mcf"], "policy": "MaxBIPS", "count": 3}]},
            "policy": "WaterFill", "budget": 0.8})");
    ScenarioSpec b = parseOk(
        R"({"cluster": {"chips": [
              {"combo": ["mcf"], "policy": "MaxBIPS"},
              {"combo": ["mcf"], "policy": "MaxBIPS"},
              {"combo": ["mcf"], "policy": "MaxBIPS"}]},
            "policy": "WaterFill", "budget": 0.8})");
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(ClusterScenario, RejectsMalformedClusters)
{
    // combo and cluster are mutually exclusive.
    EXPECT_NE(parseErr(
                  R"({"combo": ["mcf"], "cluster": {"chips":
                   [{"combo": ["art"], "policy": "MaxBIPS"}]},
                   "policy": "WaterFill", "budget": 0.8})")
                  .find("either"),
              std::string::npos);
    // The top-level policy must be an arbitration kernel.
    EXPECT_NE(parseErr(
                  R"({"cluster": {"chips":
                   [{"combo": ["art"], "policy": "MaxBIPS"}]},
                   "policy": "Priority", "budget": 0.8})")
                  .find("arbitration"),
              std::string::npos);
    // Chip policies must be dynamic per-chip policies.
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "Static"}]},
         "policy": "WaterFill", "budget": 0.8})");
    // Unknown cluster / chip fields are rejected.
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "MaxBIPS"}], "zap": 1},
         "policy": "WaterFill", "budget": 0.8})");
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "MaxBIPS", "zap": 1}]},
         "policy": "WaterFill", "budget": 0.8})");
    // Knob ranges.
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "MaxBIPS"}], "epochs": 0},
         "policy": "WaterFill", "budget": 0.8})");
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "MaxBIPS"}], "levels": 1},
         "policy": "WaterFill", "budget": 0.8})");
    parseErr(
        R"({"cluster": {"chips":
         [{"combo": ["art"], "policy": "MaxBIPS"}],
           "epochUs": 100}, "policy": "WaterFill", "budget": 0.8})");
    // Per-chip shifts live on the chips, not in sim.
    EXPECT_NE(parseErr(
                  R"({"cluster": {"chips":
                   [{"combo": ["art"], "policy": "MaxBIPS"}]},
                   "policy": "WaterFill", "budget": 0.8,
                   "sim": {"phaseShiftStride": 0.1}})")
                  .find("per chip"),
              std::string::npos);
    // A cluster scenario must still name chips.
    parseErr(R"({"cluster": {}, "policy": "WaterFill",
                 "budget": 0.8})");
}

/** Frozen canonical hashes: these lock the canonical serialization
 *  of the request schema. A change here invalidates every persisted
 *  result cache — if one of these breaks, that is a cache-format
 *  break and must be deliberate (and called out in the change
 *  description), never incidental. */
TEST(Scenario, GoldenCanonicalHashes)
{
    auto hex = [](const ScenarioSpec &s) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(s.hash()));
        return std::string(buf);
    };

    // Flat minimal scenario.
    EXPECT_EQ(hex(parseOk(
                  R"({"combo": ["mcf"], "policy": "MaxBIPS",
                      "budget": 0.8})")),
              "9ab3726c5cbbca51");
    // Static with a fit rule (staticFit participates).
    EXPECT_EQ(hex(parseOk(
                  R"({"combo": ["mcf", "crafty"],
                      "policy": "Static", "staticFit": "average",
                      "budget": 0.75})")),
              "37d118bdff94e81a");
    // Many-core with a phase-shift stride.
    EXPECT_EQ(hex(parseOk(
                  R"({"combo": "many64", "policy": "MaxBIPS-DP",
                      "budgets": [0.7, 0.9],
                      "sim": {"phaseShiftStride": 0.618}})")),
              "4a44bccc6c556285");
    // A cluster scenario.
    EXPECT_EQ(hex(parseOk(
                  R"({"cluster": {"chips": [
                        {"combo": "2way1", "policy": "MaxBIPS",
                         "count": 2},
                        {"combo": ["mcf", "crafty"],
                         "policy": "WaterFill",
                         "phaseOffset": 0.25}],
                      "epochs": 3, "epochUs": 1000, "levels": 8},
                      "policy": "GreedyTurbo", "budget": 0.8})")),
              "07ab87de98850d7f");
}

TEST(Scenario, RejectsMalformedScenarios)
{
    // Shape errors.
    parseErr(R"({"policy": "MaxBIPS", "budget": 0.7})");
    parseErr(R"({"combo": ["mcf"], "budget": 0.7})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS"})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "budgets": [0.8]})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "bogus": 1})");
    parseErr(R"({"combo": 3, "policy": "MaxBIPS",
                 "budget": 0.7})");
    parseErr(R"({"combo": [3], "policy": "MaxBIPS",
                 "budget": 0.7})");
    parseErr(R"({"combo": [], "policy": "MaxBIPS",
                 "budget": 0.7})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": "0.7"})");
    parseErr("[1, 2]");

    // Unknown names.
    parseErr(R"({"combo": ["nosuch"], "policy": "MaxBIPS",
                 "budget": 0.7})");
    parseErr(R"({"combo": "99way9", "policy": "MaxBIPS",
                 "budget": 0.7})");
    parseErr(R"({"combo": ["mcf"], "policy": "NoSuchPolicy",
                 "budget": 0.7})");

    // staticFit misuse.
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "staticFit": "peak"})");
    parseErr(R"({"combo": ["mcf"], "policy": "Static",
                 "budget": 0.7, "staticFit": "best"})");

    // Range errors.
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 1.5})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": -0.5})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budgets": []})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "sim": {"exploreUs": 0}})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7,
                 "sim": {"exploreUs": 100, "deltaSimUs": 200}})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "sim": {"sensorNoise": 2}})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "sim": {"nope": 1}})");
    parseErr(R"({"combo": ["mcf"], "policy": "MaxBIPS",
                 "budget": 0.7, "sim": 5})");
}

TEST(Scenario, ValidateCatchesOversizedRequests)
{
    ScenarioSpec s;
    s.combo.assign(ScenarioSpec::maxCores + 1, "mcf");
    s.policy = "MaxBIPS";
    s.budgets = {0.7};
    EXPECT_TRUE(validateScenario(s).has_value());

    s.combo = {"mcf"};
    s.budgets.assign(ScenarioSpec::maxBudgets + 1, 0.5);
    EXPECT_TRUE(validateScenario(s).has_value());

    s.budgets = {0.5};
    EXPECT_FALSE(validateScenario(s).has_value());
}

TEST(Scenario, SerializeResultsIsCanonicalAndParsesBack)
{
    ScenarioSpec s = parseOk(
        R"({"combo": ["mcf"], "policy": "MaxBIPS",
            "budget": 0.7})");
    PolicyEval ev;
    ev.policy = "MaxBIPS";
    ev.budgetFrac = 0.7;
    ev.metrics.chipBips = 1.0 / 3.0;
    ev.managerStats.decisions = 42;

    std::string payload = serializeResults(s, {ev});
    EXPECT_EQ(payload, serializeResults(s, {ev}));

    auto parsed = json::parse(payload);
    ASSERT_TRUE(parsed.ok());
    // Canonical form round trips byte-identically.
    EXPECT_EQ(parsed.value().canonical(), payload);
    const json::Value *results = parsed.value().find("results");
    ASSERT_TRUE(results && results->isArray());
    ASSERT_EQ(results->asArray().size(), 1u);
    const json::Value &r = results->asArray()[0];
    EXPECT_EQ(r.find("metrics")->find("chipBips")->asNumber(),
              1.0 / 3.0);
    EXPECT_EQ(r.find("manager")->find("decisions")->asNumber(),
              42.0);
}

} // namespace
} // namespace gpm
