/** @file Unit tests for the GlobalManager control loop. */

#include <gtest/gtest.h>

#include "core/global_manager.hh"

namespace gpm
{
namespace
{

std::vector<CoreSample>
twoCoreSamples(double p0, double p1, PowerMode m0 = modes::Turbo,
               PowerMode m1 = modes::Turbo)
{
    std::vector<CoreSample> s(2);
    s[0].powerW = p0;
    s[0].bips = 1.0;
    s[0].mode = m0;
    s[1].powerW = p1;
    s[1].bips = 0.5;
    s[1].mode = m1;
    return s;
}

class ManagerTest : public ::testing::Test
{
  protected:
    ManagerTest() : dvfs(DvfsTable::classic3()) {}

    GlobalManager
    make(const std::string &policy)
    {
        return GlobalManager(dvfs, makePolicy(policy), 500.0, 2.0);
    }

    DvfsTable dvfs;
};

TEST_F(ManagerTest, TightBudgetForcesThrottling)
{
    auto mgr = make("MaxBIPS");
    auto modes_out = mgr.atExplore(twoCoreSamples(10.0, 10.0), 14.0);
    ASSERT_EQ(modes_out.size(), 2u);
    // 20 W at Turbo vs 14 W budget: someone must slow down.
    bool any_slow = modes_out[0] != modes::Turbo ||
        modes_out[1] != modes::Turbo;
    EXPECT_TRUE(any_slow);
}

TEST_F(ManagerTest, AmpleBudgetKeepsTurbo)
{
    auto mgr = make("MaxBIPS");
    auto modes_out = mgr.atExplore(twoCoreSamples(10.0, 10.0), 50.0);
    EXPECT_EQ(modes_out[0], modes::Turbo);
    EXPECT_EQ(modes_out[1], modes::Turbo);
}

TEST_F(ManagerTest, CountsDecisionsAndSwitches)
{
    auto mgr = make("MaxBIPS");
    mgr.atExplore(twoCoreSamples(10.0, 10.0), 50.0);
    mgr.atExplore(twoCoreSamples(10.0, 10.0), 12.0);
    EXPECT_EQ(mgr.stats().decisions, 2u);
    EXPECT_GT(mgr.stats().modeSwitches, 0u);
}

TEST_F(ManagerTest, DetectsOvershoot)
{
    auto mgr = make("MaxBIPS");
    mgr.atExplore(twoCoreSamples(10.0, 10.0), 15.0);
    // Next interval reports 22 W against the 15 W budget.
    mgr.atExplore(twoCoreSamples(11.0, 11.0), 15.0);
    EXPECT_EQ(mgr.stats().overshoots, 1u);
}

TEST_F(ManagerTest, ScoresPredictions)
{
    auto mgr = make("MaxBIPS");
    mgr.atExplore(twoCoreSamples(10.0, 10.0), 50.0);
    EXPECT_EQ(mgr.predictor().outcomes(), 0u);
    mgr.atExplore(twoCoreSamples(10.0, 10.0), 50.0);
    EXPECT_EQ(mgr.predictor().outcomes(), 1u);
    // Identical behaviour at an unchanged mode: zero error.
    EXPECT_NEAR(mgr.predictor().meanPowerError(), 0.0, 1e-12);
}

TEST_F(ManagerTest, OraclePolicyConsumesOracleMatrix)
{
    auto mgr = make("Oracle");
    EXPECT_TRUE(mgr.wantsOracle());
    ModeMatrix om(2, 3);
    for (std::size_t c = 0; c < 2; c++) {
        om.powerW(c, 0) = 10.0;
        om.powerW(c, 1) = 8.5;
        om.powerW(c, 2) = 6.0;
        om.bips(c, 0) = 1.0;
        om.bips(c, 1) = 0.95;
        om.bips(c, 2) = 0.85;
    }
    auto modes_out =
        mgr.atExplore(twoCoreSamples(10.0, 10.0), 17.0, &om);
    EXPECT_LE(om.totalPowerW(modes_out), 17.0 + 1e-9);
}

TEST_F(ManagerTest, PolicyNameExposed)
{
    auto mgr = make("PullHiPushLo");
    EXPECT_STREQ(mgr.currentPolicy().name(), "PullHiPushLo");
}

} // namespace
} // namespace gpm
