/** @file Unit tests for the optimistic static mode planner. */

#include <gtest/gtest.h>

#include "core/static_planner.hh"

namespace gpm
{
namespace
{

std::vector<std::vector<StaticModeStats>>
twoCores()
{
    // Core 0: CPU-bound (loses BIPS when slowed).
    // Core 1: memory-bound (barely loses BIPS).
    return {
        {{10.0, 10.0, 2.0}, {8.6, 8.6, 1.9}, {6.1, 6.1, 1.7}},
        {{8.0, 8.0, 0.5}, {6.9, 6.9, 0.495}, {4.9, 4.9, 0.48}},
    };
}

TEST(StaticPlanner, UnlimitedBudgetAllTurbo)
{
    auto assign = planStaticAssignment(twoCores(), 100.0);
    EXPECT_EQ(assign[0], 0);
    EXPECT_EQ(assign[1], 0);
}

TEST(StaticPlanner, ZeroBudgetAllSlowest)
{
    auto assign = planStaticAssignment(twoCores(), 0.0);
    EXPECT_EQ(assign[0], 2);
    EXPECT_EQ(assign[1], 2);
}

TEST(StaticPlanner, ThrottlesMemoryBoundFirst)
{
    // Budget 16 W: Turbo+Turbo = 18 W doesn't fit. Best throughput
    // keeps the CPU-bound core fast and slows the memory-bound one.
    auto assign = planStaticAssignment(twoCores(), 16.0);
    EXPECT_EQ(assign[0], 0);
    EXPECT_GT(assign[1], 0);
}

TEST(StaticPlanner, RespectsBudget)
{
    auto per_core = twoCores();
    for (double budget : {11.0, 13.0, 15.0, 17.0, 19.0}) {
        auto assign = planStaticAssignment(per_core, budget);
        double total = 0.0;
        for (std::size_t c = 0; c < assign.size(); c++)
            total += per_core[c][assign[c]].avgPowerW;
        EXPECT_LE(total, budget + 1e-9) << "budget " << budget;
    }
}

TEST(StaticPlanner, PeakFitIsMoreConservative)
{
    // Peak 20% above average: with the budget between the two, the
    // peak-fitting plan must back off while average-fitting stays.
    std::vector<std::vector<StaticModeStats>> cores = {
        {{10.0, 12.0, 2.0}, {8.6, 10.3, 1.9}, {6.1, 7.3, 1.7}},
        {{10.0, 12.0, 2.0}, {8.6, 10.3, 1.9}, {6.1, 7.3, 1.7}},
    };
    auto avg = planStaticAssignment(cores, 21.0,
                                    StaticFit::Average);
    auto peak = planStaticAssignment(cores, 21.0,
                                     StaticFit::Peak);
    double avg_b = 0.0, peak_b = 0.0;
    for (std::size_t c = 0; c < 2; c++) {
        avg_b += cores[c][avg[c]].bips;
        peak_b += cores[c][peak[c]].bips;
        EXPECT_GE(peak[c], avg[c]); // never faster than avg-fit
    }
    EXPECT_LT(peak_b, avg_b);
    // And the peak plan really fits at peak level.
    double peak_pw = 0.0;
    for (std::size_t c = 0; c < 2; c++)
        peak_pw += cores[c][peak[c]].peakPowerW;
    EXPECT_LE(peak_pw, 21.0 + 1e-9);
}

TEST(StaticPlanner, SingleCore)
{
    std::vector<std::vector<StaticModeStats>> one = {
        {{10.0, 10.0, 2.0}, {8.6, 8.6, 1.9}, {6.1, 6.1, 1.7}}};
    EXPECT_EQ(planStaticAssignment(one, 9.0)[0], 1);
    EXPECT_EQ(planStaticAssignment(one, 7.0)[0], 2);
    EXPECT_EQ(planStaticAssignment(one, 20.0)[0], 0);
}

} // namespace
} // namespace gpm
