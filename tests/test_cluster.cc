/** @file Cluster budget arbitration: the frontier collapse is the
 *  exact MCKP optimum at every one of its own power levels,
 *  quantization keeps endpoints, facility allocation honors the
 *  feasible-else-all-floors contract at the cluster level, and
 *  ClusterManager runs are bitwise-deterministic across thread
 *  counts, cached on resubmit, and contain chip-sim failures as
 *  structured errors. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "cluster/cluster_manager.hh"
#include "service/service.hh"
#include "util/fault.hh"

namespace gpm
{
namespace
{

/** 3 cores x 3 modes, mode 0 fastest (highest power). */
ModeMatrix
smallMatrix()
{
    ModeMatrix m(3, 3);
    const double p[3][3] = {
        {4.0, 2.5, 1.0}, {5.0, 3.0, 2.0}, {3.5, 2.0, 1.5}};
    const double b[3][3] = {
        {8.0, 6.0, 3.0}, {9.0, 7.0, 5.0}, {6.0, 4.0, 3.2}};
    for (std::size_t c = 0; c < 3; c++)
        for (std::size_t md = 0; md < 3; md++) {
            m.powerW(c, static_cast<PowerMode>(md)) = p[c][md];
            m.bips(c, static_cast<PowerMode>(md)) = b[c][md];
        }
    return m;
}

TEST(ClusterFrontier, CollapseMatchesBruteForceOptimum)
{
    ModeMatrix m = smallMatrix();
    ChipFrontier f = collapseChipFrontier(m);

    ASSERT_GE(f.pts.size(), 2u);
    // Power- and BIPS-ascending.
    for (std::size_t i = 1; i < f.pts.size(); i++) {
        EXPECT_GT(f.pts[i].powerW, f.pts[i - 1].powerW);
        EXPECT_GT(f.pts[i].bips, f.pts[i - 1].bips);
    }

    // Every frontier point must be the exact integer MCKP optimum
    // at its own power level: enumerate all 27 assignments.
    for (const HullPoint &p : f.pts) {
        double best = 0.0;
        for (int a = 0; a < 3; a++)
            for (int b = 0; b < 3; b++)
                for (int c = 0; c < 3; c++) {
                    double pw =
                        m.powerW(0, static_cast<PowerMode>(a)) +
                        m.powerW(1, static_cast<PowerMode>(b)) +
                        m.powerW(2, static_cast<PowerMode>(c));
                    if (pw > p.powerW + 1e-9)
                        continue;
                    double bips =
                        m.bips(0, static_cast<PowerMode>(a)) +
                        m.bips(1, static_cast<PowerMode>(b)) +
                        m.bips(2, static_cast<PowerMode>(c));
                    if (bips > best)
                        best = bips;
                }
        EXPECT_NEAR(p.bips, best, 1e-9);
    }

    // Endpoints: all-slowest floor and all-hull-top best.
    EXPECT_NEAR(f.pts.front().powerW, 1.0 + 2.0 + 1.5, 1e-12);
    EXPECT_NEAR(f.pts.back().bips, 8.0 + 9.0 + 6.0, 1e-12);
}

TEST(ClusterFrontier, QuantizeKeepsEndpointsAndBound)
{
    ModeMatrix m = smallMatrix();
    ChipFrontier f = collapseChipFrontier(m);
    ASSERT_GT(f.pts.size(), 3u);

    ChipFrontier q = quantizeFrontier(f, 3);
    ASSERT_EQ(q.pts.size(), 3u);
    EXPECT_EQ(q.pts.front().powerW, f.pts.front().powerW);
    EXPECT_EQ(q.pts.back().powerW, f.pts.back().powerW);
    EXPECT_EQ(q.pts.back().bips, f.pts.back().bips);
    for (std::size_t i = 1; i < q.pts.size(); i++)
        EXPECT_GT(q.pts[i].powerW, q.pts[i - 1].powerW);

    // Already within the bound: unchanged.
    ChipFrontier same = quantizeFrontier(f, 64);
    ASSERT_EQ(same.pts.size(), f.pts.size());
    for (std::size_t i = 0; i < f.pts.size(); i++)
        EXPECT_EQ(same.pts[i].powerW, f.pts[i].powerW);
}

TEST(ClusterAllocationTest, ConservesBudgetAndFallsBackToFloors)
{
    ModeMatrix m = smallMatrix();
    ChipFrontier f = collapseChipFrontier(m);
    std::vector<ChipFrontier> chips = {f, f, f};
    const double floor_total = 3.0 * f.floorPowerW();

    for (const char *policy :
         {"MaxBIPS", "MaxBIPS-BnB", "MaxBIPS-DP", "WaterFill",
          "GreedyTurbo"}) {
        SCOPED_TRACE(policy);
        ClusterAllocation a =
            allocateFacilityBudget(chips, floor_total * 1.8, policy);
        EXPECT_TRUE(a.feasible);
        double sum = 0.0;
        for (Watts w : a.awardsW)
            sum += w;
        EXPECT_LE(sum, floor_total * 1.8 * (1.0 + 1e-12));
        EXPECT_GT(a.predictedBips, 0.0);

        // Infeasible: every chip pinned at its floor.
        ClusterAllocation low =
            allocateFacilityBudget(chips, floor_total * 0.5, policy);
        EXPECT_FALSE(low.feasible);
        ASSERT_EQ(low.awardsW.size(), 3u);
        for (Watts w : low.awardsW)
            EXPECT_EQ(w, f.floorPowerW());
    }
}

TEST(ClusterPolicyNames, AcceptsKernelsRejectsOthers)
{
    EXPECT_TRUE(isClusterPolicyName("MaxBIPS"));
    EXPECT_TRUE(isClusterPolicyName("MaxBIPS-BnB"));
    EXPECT_TRUE(isClusterPolicyName("MaxBIPS-DP"));
    EXPECT_TRUE(isClusterPolicyName("MaxBIPS-DP128"));
    EXPECT_TRUE(isClusterPolicyName("WaterFill"));
    EXPECT_TRUE(isClusterPolicyName("GreedyTurbo"));
    EXPECT_FALSE(isClusterPolicyName("Static"));
    EXPECT_FALSE(isClusterPolicyName("Priority"));
    EXPECT_FALSE(isClusterPolicyName("Oracle"));
    EXPECT_FALSE(isClusterPolicyName(""));
}

class ClusterTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    /** Two heterogeneous chips, three epochs. */
    static ClusterSpec
    clusterSpec()
    {
        ClusterSpec s;
        ChipSpec a;
        a.combo = {"mcf", "crafty"};
        a.policy = "MaxBIPS";
        ChipSpec b;
        b.combo = {"gcc", "mesa"};
        b.policy = "WaterFill";
        b.phaseOffset = 0.25;
        s.chips = {a, b};
        s.policy = "GreedyTurbo";
        s.epochs = 3;
        s.epochUs = 1000.0;
        s.levels = 8;
        return s;
    }

    /** The scenario-service view of the same cluster. */
    static ScenarioSpec
    scenario()
    {
        ScenarioSpec s;
        ClusterSpec cl = clusterSpec();
        s.policy = cl.policy;
        cl.policy.clear();
        s.cluster = std::move(cl);
        s.budgets = {0.8};
        return s;
    }
};

TEST_F(ClusterTest, EpochAwardsConserveFacilityBudget)
{
    ClusterManager mgr(lib(), dvfs(), SimConfig{}, clusterSpec());
    auto run = mgr.run(0.8, 1);
    ASSERT_TRUE(run.ok()) << run.error().message;
    const ClusterRunResult &r = run.value();

    ASSERT_EQ(r.epochs.size(), 3u);
    ASSERT_EQ(r.chips.size(), 2u);
    EXPECT_GT(r.facilityBudgetW, 0.0);
    EXPECT_GT(r.clusterBips, 0.0);
    for (const EpochTrace &t : r.epochs) {
        ASSERT_EQ(t.awardsW.size(), 2u);
        double sum = 0.0;
        for (Watts w : t.awardsW) {
            EXPECT_GT(w, 0.0);
            sum += w;
        }
        if (t.feasible) {
            EXPECT_LE(sum,
                      r.facilityBudgetW * (1.0 + 1e-9));
        }
    }
    for (const ChipOutcome &c : r.chips) {
        EXPECT_GT(c.bips, 0.0);
        EXPECT_GT(c.refPowerW, 0.0);
        EXPECT_GT(c.awardedMeanW, 0.0);
        EXPECT_GT(c.managerStats.decisions, 0u);
    }
}

TEST_F(ClusterTest, DeterministicAcrossThreadCounts)
{
    ScenarioSpec spec = scenario();
    std::array<std::string, 3> payloads;
    std::size_t k = 0;
    for (std::size_t conc : {1u, 2u, 8u}) {
        ClusterManager mgr(lib(), dvfs(), spec.simConfig(),
                           spec.clusterSpec());
        auto run = mgr.run(0.8, conc);
        ASSERT_TRUE(run.ok()) << run.error().message;
        payloads[k++] =
            serializeClusterResults(spec, {run.value()});
    }
    EXPECT_EQ(payloads[0], payloads[1]);
    EXPECT_EQ(payloads[0], payloads[2]);
}

TEST_F(ClusterTest, ServiceServesAndCachesClusterScenarios)
{
    ScenarioSpec spec = scenario();

    ScenarioService svc(lib(), dvfs());
    auto first = svc.submit(spec);
    ASSERT_TRUE(first.ok)
        << first.errorCode << ": " << first.errorMessage;
    EXPECT_FALSE(first.cacheHit);
    EXPECT_EQ(first.hash, spec.hash());

    // Ground truth: a direct ClusterManager run.
    ClusterManager direct(lib(), dvfs(), spec.simConfig(),
                          spec.clusterSpec());
    auto run = direct.run(0.8, svc.options().sweepConcurrency);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(first.payload,
              serializeClusterResults(spec, {run.value()}));

    // Resubmit: served from the result cache, identical bytes.
    auto second = svc.submit(spec);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.payload, first.payload);

    ServiceStats s = svc.stats();
    EXPECT_EQ(s.clusterRequests, 1u);
    EXPECT_EQ(s.clusterEpochs, 3u);
    EXPECT_EQ(s.chipSims, 2u);
    EXPECT_EQ(s.cacheHits, 1u);
}

TEST_F(ClusterTest, ChipSimThrowSurfacesAsStructuredError)
{
    ScenarioSpec spec = scenario();

    ScenarioService svc(lib(), dvfs());
    ASSERT_FALSE(fault::arm("chip-sim-throw:1"));
    auto r = svc.submit(spec);
    fault::disarm();

    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "internal_error");
    EXPECT_NE(r.errorMessage.find("chip"), std::string::npos);

    // Contained, not crashed: the worker survived and the failure
    // was not cached.
    ServiceStats s = svc.stats();
    EXPECT_EQ(s.workerCrashes, 0u);
    EXPECT_EQ(s.workersAlive, svc.options().workers);

    auto retry = svc.submit(spec);
    ASSERT_TRUE(retry.ok)
        << retry.errorCode << ": " << retry.errorMessage;
    EXPECT_FALSE(retry.cacheHit);
}

} // namespace
} // namespace gpm
