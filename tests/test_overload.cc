/** @file The overload-resilience layer: backoff overflow safety at
 *  absurd attempt counts, the degradation ladder's shape, the
 *  CircuitBreaker state machine, admission-control fairness and
 *  doomed-deadline shedding, end-to-end degraded serving (bitwise
 *  equal to a direct run of the fallback policy, cached only under
 *  the degraded hash), and the disk cache's read breaker under
 *  injected read stalls. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>

#include "service/degrade.hh"
#include "service/disk_cache.hh"
#include "service/service.hh"
#include "util/backoff.hh"
#include "util/breaker.hh"
#include "util/fault.hh"

namespace gpm
{
namespace
{

// --------------------------------------------------------------
// BackoffSchedule: the exponent must saturate, not overflow.

TEST(BackoffOverflow, HighAttemptCountsStayFiniteAndCapped)
{
    const double cap = 30000.0;
    BackoffSchedule b(100.0, cap, 7);
    for (int i = 0; i < 500; i++) {
        double d = b.nextMs();
        ASSERT_TRUE(std::isfinite(d)) << "attempt " << i;
        ASSERT_GE(d, 0.0) << "attempt " << i;
        // Jitter draws from [0.5, 1), so the delay never exceeds
        // the un-jittered cap even at attempt counts where an
        // unclamped 2^n is infinite.
        ASSERT_LT(d, cap) << "attempt " << i;
        if (i > 62) {
            ASSERT_GE(d, cap * 0.5) << "attempt " << i;
        }
    }
    EXPECT_EQ(b.attempts(), 500u);
}

// --------------------------------------------------------------
// Degradation ladder shape.

TEST(DegradeLadder, RungsAndTraversal)
{
    EXPECT_TRUE(degrade::onLadder("MaxBIPS"));
    EXPECT_TRUE(degrade::onLadder("MaxBIPS-BnB"));
    EXPECT_TRUE(degrade::onLadder("MaxBIPS-DP"));
    EXPECT_TRUE(degrade::onLadder("MaxBIPS-DP<64>"));
    EXPECT_TRUE(degrade::onLadder("GreedyTurbo"));
    EXPECT_TRUE(degrade::onLadder("WaterFill"));
    EXPECT_FALSE(degrade::onLadder("Priority"));
    EXPECT_FALSE(degrade::onLadder("Static"));
    EXPECT_FALSE(degrade::onLadder("MinPowerGreedy"));

    EXPECT_EQ(degrade::rungIndex("MaxBIPS"), 0);
    EXPECT_EQ(degrade::rungIndex("MaxBIPS-BnB"), 0);
    EXPECT_EQ(degrade::rungIndex("MaxBIPS-DP<128>"), 1);
    EXPECT_EQ(degrade::rungIndex("GreedyTurbo"), 2);
    EXPECT_EQ(degrade::rungIndex("WaterFill"), 3);
    EXPECT_FALSE(degrade::rungIndex("Oracle").has_value());

    // Walking from the top visits every rung and terminates.
    std::string p = "MaxBIPS";
    std::vector<std::string> walk{p};
    while (auto next = degrade::nextRung(p)) {
        p = *next;
        walk.push_back(p);
    }
    EXPECT_EQ(walk,
              (std::vector<std::string>{"MaxBIPS", "MaxBIPS-DP",
                                        "GreedyTurbo",
                                        "WaterFill"}));
    EXPECT_FALSE(degrade::nextRung("Priority").has_value());
}

// --------------------------------------------------------------
// CircuitBreaker state machine.

BreakerOptions
fastBreaker()
{
    BreakerOptions o;
    o.window = 8;
    o.minSamples = 4;
    o.failureThreshold = 0.5;
    o.cooldownMs = 20.0;
    o.seed = 3;
    return o;
}

/** Cooldown upper bound: cooldownMs * jitter < cooldownMs * 1.5. */
void
sleepPastCooldown(const BreakerOptions &o)
{
    std::this_thread::sleep_for(std::chrono::duration<double,
                                                      std::milli>(
        o.cooldownMs * 1.5 + 10.0));
}

TEST(Breaker, OpensAfterWindowedFailures)
{
    CircuitBreaker b(fastBreaker());
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
    EXPECT_STREQ(b.stateName(), "closed");

    // Below minSamples nothing trips, however bad the rate.
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(b.allow());
        b.recordFailure();
    }
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);

    ASSERT_TRUE(b.allow());
    b.recordFailure(); // 4th failure of 4: rate 1.0 >= 0.5
    EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(b.opens(), 1u);
    EXPECT_FALSE(b.allow()); // refused while open
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess)
{
    CircuitBreaker b(fastBreaker());
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(b.allow());
        b.recordFailure();
    }
    ASSERT_EQ(b.state(), CircuitBreaker::State::Open);

    sleepPastCooldown(b.options());
    ASSERT_TRUE(b.allow()); // the probe
    EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_STREQ(b.stateName(), "half-open");
    EXPECT_FALSE(b.allow()); // only ONE probe

    b.recordSuccess();
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(b.allow());
    // The window was cleared: one new failure must not re-trip.
    b.recordFailure();
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(b.opens(), 1u);
}

TEST(Breaker, HalfOpenProbeReopensOnFailure)
{
    CircuitBreaker b(fastBreaker());
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(b.allow());
        b.recordFailure();
    }
    sleepPastCooldown(b.options());
    ASSERT_TRUE(b.allow());
    b.recordFailure(); // the probe fails
    EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(b.opens(), 2u);
    EXPECT_FALSE(b.allow());

    // And the cycle repeats: it can still recover later.
    sleepPastCooldown(b.options());
    ASSERT_TRUE(b.allow());
    b.recordSuccess();
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
}

// --------------------------------------------------------------
// AdmissionController in isolation.

AdmissionOptions
admissionOpts()
{
    AdmissionOptions o;
    o.fairShare = 0.5;
    o.headroom = 1.0;
    o.degradeDepth = 0.75;
    return o;
}

TEST(Admission, FairnessCapsOnePipelinedClient)
{
    // capacity 8, fairShare 0.5 -> one client may hold 4 slots.
    AdmissionController ac(admissionOpts(), 8, 2);
    const std::string key = "MaxBIPS";

    for (int i = 0; i < 4; i++) {
        auto d = ac.preAdmit(1, key, key, 0.0, i);
        ASSERT_TRUE(d.admit) << "slot " << i;
        ac.onEnqueue(1);
    }
    auto d = ac.preAdmit(1, key, key, 0.0, 4);
    EXPECT_FALSE(d.admit);
    EXPECT_EQ(d.errorCode, "rejected_overload");
    EXPECT_GE(d.retryAfterMs, 10.0);
    EXPECT_LE(d.retryAfterMs, 5000.0);
    EXPECT_EQ(ac.shedCount(), 1u);

    // A second client still gets in; client 0 is always exempt.
    EXPECT_TRUE(ac.preAdmit(2, key, key, 0.0, 4).admit);
    EXPECT_TRUE(ac.preAdmit(0, key, key, 0.0, 4).admit);

    // Freeing a slot readmits the flooding client.
    ac.onDequeue(1);
    EXPECT_TRUE(ac.preAdmit(1, key, key, 0.0, 3).admit);
}

TEST(Admission, DoomedDeadlinesShedOnlyAfterObservation)
{
    AdmissionController ac(admissionOpts(), 8, 1);

    // Cold service: even an absurd deadline is admitted (no EWMA,
    // no prediction).
    EXPECT_TRUE(
        ac.preAdmit(0, "MaxBIPS", "WaterFill", 0.001, 0).admit);

    // Observe the ladder floor at 500 ms; a 10 ms deadline is now
    // predictably doomed, a 10 s one is fine.
    ac.recordService("WaterFill", 500.0);
    ac.recordService("WaterFill", 500.0);
    EXPECT_NEAR(ac.serviceTimeMs("WaterFill"), 500.0, 1e-9);

    auto doomed = ac.preAdmit(0, "MaxBIPS", "WaterFill", 10.0, 0);
    EXPECT_FALSE(doomed.admit);
    EXPECT_EQ(doomed.errorCode, "rejected_overload");
    EXPECT_GE(doomed.retryAfterMs, 10.0);
    EXPECT_TRUE(
        ac.preAdmit(0, "MaxBIPS", "WaterFill", 10000.0, 0).admit);

    // Queue wait scales the prediction: a deadline that clears one
    // service time but not the backlog's worth is shed at load.
    EXPECT_TRUE(
        ac.preAdmit(0, "MaxBIPS", "WaterFill", 700.0, 0).admit);
    EXPECT_FALSE(
        ac.preAdmit(0, "MaxBIPS", "WaterFill", 700.0, 4).admit);

    // Deadline-less requests are never deadline-shed.
    EXPECT_TRUE(
        ac.preAdmit(0, "MaxBIPS", "WaterFill", 0.0, 100).admit);
}

TEST(Admission, DisabledControllerAdmitsEverything)
{
    AdmissionOptions o = admissionOpts();
    o.enabled = false;
    AdmissionController ac(o, 4, 1);
    ac.recordService("WaterFill", 1e6);
    for (int i = 0; i < 10; i++) {
        auto d = ac.preAdmit(1, "MaxBIPS", "WaterFill", 1.0, 4);
        EXPECT_TRUE(d.admit);
        EXPECT_FALSE(d.overloaded);
        ac.onEnqueue(1);
    }
    EXPECT_EQ(ac.shedCount(), 0u);
}

// --------------------------------------------------------------
// End-to-end degraded serving through ScenarioService.

class OverloadServiceTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    static ScenarioSpec
    scenario()
    {
        ScenarioSpec s;
        s.combo = {"mcf", "crafty"};
        s.policy = "MaxBIPS";
        s.budgets = {0.8};
        return s;
    }

    void
    TearDown() override
    {
        fault::disarm();
    }
};

TEST_F(OverloadServiceTest,
       DeadlineDegradeMatchesDirectFallbackBitwise)
{
    ScenarioService svc(lib(), dvfs());
    // Teach the service that exact MaxBIPS takes ~60 s while the
    // ladder floor is ~1 ms: a 5 s deadline passes admission (the
    // floor could meet it) but the exact solver predictably blows
    // it, so execution steps one rung down.
    svc.admissionController().recordService("MaxBIPS", 60000.0);
    svc.admissionController().recordService("WaterFill", 1.0);

    ScenarioSpec spec = scenario();
    spec.deadlineMs = 5000.0;
    auto r = svc.submit(spec);
    ASSERT_TRUE(r.ok) << r.errorCode << ": " << r.errorMessage;
    EXPECT_EQ(r.hash, spec.hash()); // echoes the SUBMITTED hash
    EXPECT_FALSE(r.cacheHit);
    EXPECT_EQ(r.degradedFrom, "MaxBIPS");
    EXPECT_EQ(r.degradedTo, "MaxBIPS-DP");
    EXPECT_EQ(r.degradedReason, "deadline");
    EXPECT_EQ(svc.stats().degradedRequests, 1u);

    // Bitwise ground truth: a direct submission of the degraded
    // scenario to a pristine service returns the same bytes.
    ScenarioSpec fallback =
        degradeSpec(scenario(), "MaxBIPS-DP");
    ScenarioService fresh(lib(), dvfs());
    auto direct = fresh.submit(fallback);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(r.payload, direct.payload);

    // CACHE ISOLATION: the degraded payload must not be reachable
    // under the original scenario's hash...
    ScenarioSpec exact = scenario();
    auto exactRun = svc.submit(exact);
    ASSERT_TRUE(exactRun.ok);
    EXPECT_FALSE(exactRun.cacheHit)
        << "degraded payload leaked into the exact hash";
    EXPECT_TRUE(exactRun.degradedTo.empty());
    EXPECT_NE(exactRun.payload, r.payload);

    // ...but a direct request for the fallback scenario IS a cache
    // hit with exactly the degraded bytes.
    auto fallbackRun = svc.submit(fallback);
    ASSERT_TRUE(fallbackRun.ok);
    EXPECT_TRUE(fallbackRun.cacheHit);
    EXPECT_EQ(fallbackRun.payload, r.payload);
}

TEST_F(OverloadServiceTest, OverloadAtAdmitDegradesOneRung)
{
    ServiceOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 8;
    // Any queued or in-flight work puts the service in overload.
    opts.admission.degradeDepth = 0.01;
    ScenarioService svc(lib(), dvfs(), opts);

    // Pin the single worker so the second submission is admitted
    // while the first is still in flight.
    ASSERT_FALSE(fault::arm("worker-stall:1:200"));

    ScenarioSpec first = scenario();
    auto p1 = std::make_shared<
        std::promise<ScenarioService::Response>>();
    auto f1 = p1->get_future();
    svc.submitAsync(first,
                    [p1](const ScenarioService::Response &r) {
                        p1->set_value(r);
                    });

    ScenarioSpec second = scenario();
    second.combo = {"gcc", "mesa"};
    auto p2 = std::make_shared<
        std::promise<ScenarioService::Response>>();
    auto f2 = p2->get_future();
    svc.submitAsync(second,
                    [p2](const ScenarioService::Response &r) {
                        p2->set_value(r);
                    });

    auto r1 = f1.get();
    auto r2 = f2.get();
    ASSERT_TRUE(r1.ok) << r1.errorCode << ": " << r1.errorMessage;
    ASSERT_TRUE(r2.ok) << r2.errorCode << ": " << r2.errorMessage;
    EXPECT_EQ(r2.degradedFrom, "MaxBIPS");
    EXPECT_EQ(r2.degradedTo, "MaxBIPS-DP");
    EXPECT_EQ(r2.degradedReason, "overload");
    EXPECT_GE(svc.stats().degradedRequests, 1u);
}

TEST_F(OverloadServiceTest, ClusterFacilityKernelDegrades)
{
    ScenarioService svc(lib(), dvfs());
    svc.admissionController().recordService("cluster:GreedyTurbo",
                                            60000.0);
    svc.admissionController().recordService("cluster:WaterFill",
                                            1.0);

    ScenarioSpec spec;
    ClusterSpec cl;
    ChipSpec a;
    a.combo = {"mcf", "crafty"};
    a.policy = "MaxBIPS";
    ChipSpec b;
    b.combo = {"gcc", "mesa"};
    b.policy = "WaterFill";
    cl.chips = {a, b};
    cl.epochs = 2;
    cl.epochUs = 1000.0;
    cl.levels = 8;
    spec.cluster = std::move(cl);
    spec.policy = "GreedyTurbo"; // the facility kernel
    spec.budgets = {0.8};
    spec.deadlineMs = 5000.0;

    auto r = svc.submit(spec);
    ASSERT_TRUE(r.ok) << r.errorCode << ": " << r.errorMessage;
    EXPECT_EQ(r.degradedFrom, "GreedyTurbo");
    EXPECT_EQ(r.degradedTo, "WaterFill");
    EXPECT_EQ(r.degradedReason, "deadline");
    EXPECT_EQ(r.hash, spec.hash());

    // The chips keep their inner policies: only the facility
    // kernel moved down the ladder.
    ScenarioSpec fallback = degradeSpec(spec, "WaterFill");
    EXPECT_EQ(fallback.cluster->chips[0].policy, "MaxBIPS");
    ScenarioService fresh(lib(), dvfs());
    auto direct = fresh.submit(fallback);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(r.payload, direct.payload);
}

TEST_F(OverloadServiceTest, BusyRejectionCarriesRetryHint)
{
    ServiceOptions opts;
    opts.queueCapacity = 0; // every miss is a hard "busy"
    ScenarioService svc(lib(), dvfs(), opts);
    auto r = svc.submit(scenario());
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "busy");
    EXPECT_GE(r.retryAfterMs, 10.0);
    EXPECT_LE(r.retryAfterMs, 5000.0);
}

TEST_F(OverloadServiceTest, LadderOffServesExactOrNothing)
{
    ServiceOptions opts;
    opts.degradeLadder = false;
    ScenarioService svc(lib(), dvfs(), opts);
    svc.admissionController().recordService("MaxBIPS", 60000.0);
    svc.admissionController().recordService("WaterFill", 1.0);

    ScenarioSpec spec = scenario();
    spec.deadlineMs = 5000.0;
    auto r = svc.submit(spec);
    // With the ladder off the request runs (or sheds) as
    // submitted; it must never come back degraded.
    EXPECT_TRUE(r.degradedTo.empty());
    if (r.ok) {
        EXPECT_TRUE(r.degradedReason.empty());
    }
}

// --------------------------------------------------------------
// Disk-cache read breaker under injected read stalls.

class DiskBreakerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/gpm_overload_disk_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
    }

    void
    TearDown() override
    {
        fault::disarm();
        if (DIR *d = ::opendir(dir.c_str())) {
            while (const dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(dir.c_str());
    }

    std::string dir;
};

TEST_F(DiskBreakerTest, ReadStallsOpenThenRecoveryCloses)
{
    BreakerOptions bo = fastBreaker();
    bo.minSamples = 2;
    bo.window = 4;
    DiskCache cache(dir, 0, bo);
    cache.put(0x1234, "payload-bytes");
    std::string out;
    ASSERT_TRUE(cache.get(0x1234, out));
    ASSERT_EQ(out, "payload-bytes");

    // A sick disk: every read stalls and fails. After minSamples
    // failures the breaker opens and further reads are refused
    // without touching the disk at all.
    ASSERT_FALSE(fault::arm("disk-read-stall:1:1"));
    EXPECT_FALSE(cache.get(0x1234, out));
    EXPECT_FALSE(cache.get(0x1234, out));
    EXPECT_EQ(cache.readBreaker().state(),
              CircuitBreaker::State::Open);
    auto fired = fault::fires(fault::Point::DiskReadStall);

    EXPECT_FALSE(cache.get(0x1234, out)); // refused, no disk I/O
    EXPECT_EQ(fault::fires(fault::Point::DiskReadStall), fired);
    DiskCacheStats st = cache.stats();
    EXPECT_GE(st.breakerOpens, 1u);
    EXPECT_GE(st.breakerRefusals, 1u);
    EXPECT_EQ(std::string(st.breakerState), "open");

    // Writes are skipped while open (nothing half-consumes the
    // probe), and counted as refusals.
    auto refusalsBefore = cache.stats().breakerRefusals;
    cache.put(0x5678, "never-lands");
    EXPECT_GT(cache.stats().breakerRefusals, refusalsBefore);

    // The disk heals; after the cooldown the half-open probe
    // succeeds and service returns, with the original bytes.
    fault::disarm();
    sleepPastCooldown(bo);
    out.clear();
    ASSERT_TRUE(cache.get(0x1234, out));
    EXPECT_EQ(out, "payload-bytes");
    EXPECT_EQ(cache.readBreaker().state(),
              CircuitBreaker::State::Closed);
    EXPECT_EQ(std::string(cache.stats().breakerState), "closed");
}

TEST_F(DiskBreakerTest, ServiceSurfacesBreakerCounters)
{
    ServiceOptions opts;
    opts.cacheDir = dir;
    BreakerOptions bo = fastBreaker();
    bo.minSamples = 2;
    bo.window = 4;
    opts.resultBreaker = bo;

    DvfsTable dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, 0.03);
    ScenarioService svc(lib, dvfs, opts);

    ScenarioSpec s;
    s.combo = {"mcf", "crafty"};
    s.policy = "WaterFill";
    s.budgets = {0.8};

    ASSERT_FALSE(fault::arm("disk-read-stall:1:1"));
    ASSERT_TRUE(svc.submit(s).ok);
    s.budgets = {0.9};
    ASSERT_TRUE(svc.submit(s).ok);
    ServiceStats st = svc.stats();
    EXPECT_GE(st.diskBreakerOpens, 1u);
    EXPECT_EQ(std::string(st.diskBreakerState), "open");
    // The profile-store breaker is independent (no store attached
    // here) and reports closed.
    EXPECT_EQ(std::string(st.profileBreakerState), "closed");
}

} // namespace
} // namespace gpm
