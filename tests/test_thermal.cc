/** @file Unit tests for the lumped RC thermal model. */

#include <cmath>

#include <gtest/gtest.h>

#include "power/thermal.hh"

namespace gpm
{
namespace
{

TEST(ThermalNode, StartsAtAmbient)
{
    ThermalParams p;
    ThermalNode node(p);
    EXPECT_DOUBLE_EQ(node.temperatureC(), p.ambientC);
    EXPECT_DOUBLE_EQ(node.peakC(), p.ambientC);
}

TEST(ThermalNode, SteadyStateIsAmbientPlusPR)
{
    ThermalParams p;
    ThermalNode node(p);
    // Integrate far past the time constant.
    for (int i = 0; i < 1000; i++)
        node.step(9.0, 100.0);
    EXPECT_NEAR(node.temperatureC(),
                p.ambientC + 9.0 * p.rthKPerW, 1e-6);
    EXPECT_NEAR(node.steadyStateC(9.0),
                p.ambientC + 9.0 * p.rthKPerW, 1e-12);
}

TEST(ThermalNode, ExponentialTimeConstant)
{
    ThermalParams p;
    ThermalNode node(p);
    double target = node.steadyStateC(10.0);
    double tau_us = p.tauSeconds() * 1e6;
    node.step(10.0, tau_us);
    // After one tau: 1 - 1/e of the way to steady state.
    double expect = target +
        (p.ambientC - target) * std::exp(-1.0);
    EXPECT_NEAR(node.temperatureC(), expect, 1e-9);
}

TEST(ThermalNode, StepSizeInvariance)
{
    // One 1000 us step equals ten 100 us steps (exact exponential
    // discretization).
    ThermalNode a, b;
    a.step(8.0, 1000.0);
    for (int i = 0; i < 10; i++)
        b.step(8.0, 100.0);
    EXPECT_NEAR(a.temperatureC(), b.temperatureC(), 1e-9);
}

TEST(ThermalNode, CoolsBackTowardAmbient)
{
    ThermalParams p;
    ThermalNode node(p);
    for (int i = 0; i < 100; i++)
        node.step(10.0, 1000.0);
    double hot = node.temperatureC();
    for (int i = 0; i < 100; i++)
        node.step(0.0, 1000.0);
    EXPECT_LT(node.temperatureC(), hot);
    EXPECT_NEAR(node.temperatureC(), p.ambientC, 0.01);
    // Peak remembers the excursion.
    EXPECT_NEAR(node.peakC(), hot, 1e-9);
}

TEST(ThermalNode, ResetClears)
{
    ThermalNode node;
    node.step(10.0, 10'000.0);
    node.reset();
    EXPECT_DOUBLE_EQ(node.temperatureC(),
                     node.params().ambientC);
}

TEST(ChipThermalModel, TracksHottestCore)
{
    ChipThermalModel chip(3);
    for (int i = 0; i < 500; i++)
        chip.step({3.0, 9.0, 6.0}, 100.0);
    EXPECT_GT(chip.temperatureC(1), chip.temperatureC(2));
    EXPECT_GT(chip.temperatureC(2), chip.temperatureC(0));
    EXPECT_NEAR(chip.hottestC(), chip.temperatureC(1), 1e-12);
    EXPECT_GE(chip.peakC(), chip.hottestC());
}

TEST(ChipThermalModel, BalancedPowerLowersPeak)
{
    // Same total power, balanced vs skewed: the skewed chip's
    // hottest core runs hotter — the PullHiPushLo rationale.
    ChipThermalModel balanced(2), skewed(2);
    for (int i = 0; i < 1000; i++) {
        balanced.step({6.0, 6.0}, 100.0);
        skewed.step({9.0, 3.0}, 100.0);
    }
    EXPECT_LT(balanced.peakC(), skewed.peakC());
}

} // namespace
} // namespace gpm
