/** @file Unit tests for the deterministic PCG32 RNG. */

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace gpm
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next32() == b.next32())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next32() == b.next32())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(5);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; i++) {
        double u = r.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(11);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsZero)
{
    Rng r(1);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng r(13);
    const std::uint32_t n = 10;
    std::vector<int> counts(n, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; i++)
        counts[r.below(n)]++;
    for (auto c : counts)
        EXPECT_NEAR(c, draws / static_cast<int>(n), draws / 100);
}

TEST(Rng, RangeInclusive)
{
    Rng r(15);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(17);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        if (r.chance(0.3))
            hits++;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng r(21);
    double s = 0.0;
    const int n = 100000;
    const double p = 0.25;
    for (int i = 0; i < n; i++)
        s += r.geometric(p);
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(s / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero)
{
    Rng r(23);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(25);
    double s = 0.0, s2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        double g = r.gaussian();
        s += g;
        s2 += g * g;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng r(27);
    double s = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        s += r.gaussian(10.0, 2.0);
    EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, ZipfInRange)
{
    Rng r(29);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.zipf(100, 1.0), 100u);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng r(31);
    int low = 0;
    const int n = 10000;
    for (int i = 0; i < n; i++)
        if (r.zipf(1000, 1.2) < 10)
            low++;
    // Heavily skewed: the first 1% of items get far more than 1%.
    EXPECT_GT(low, n / 10);
}

TEST(Rng, ZipfSingleton)
{
    Rng r(33);
    EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformMeanStable)
{
    Rng r(GetParam());
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, GeometricWithinBounds)
{
    Rng r(GetParam());
    for (int i = 0; i < 1000; i++)
        EXPECT_LE(r.geometric(0.01), 4'000'000'000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 10, 99, 12345,
                                           999983));

} // namespace
} // namespace gpm
