/** @file Unit tests for the banked open-row DRAM model and the
 *  windowed backlog queue. */

#include <gtest/gtest.h>

#include "fullsim/cmp_system.hh"
#include "fullsim/dram.hh"

namespace gpm
{
namespace
{

TEST(WindowedQueue, EmptyWindowNoWait)
{
    WindowedQueue q(1000.0);
    EXPECT_DOUBLE_EQ(q.enqueue(500.0, 20.0), 0.0);
}

TEST(WindowedQueue, BacklogAccumulates)
{
    WindowedQueue q(1000.0);
    // Ten 20 ns requests all at t=0: k-th waits 20k ns.
    for (int k = 0; k < 10; k++)
        EXPECT_DOUBLE_EQ(q.enqueue(0.0, 20.0), 20.0 * k);
}

TEST(WindowedQueue, BacklogDrainsAcrossWindows)
{
    WindowedQueue q(100.0);
    for (int k = 0; k < 20; k++)
        q.enqueue(0.0, 20.0); // 400 ns of service in 100 ns window
    // Far in the future the queue has drained.
    EXPECT_DOUBLE_EQ(q.enqueue(10'000.0, 20.0), 0.0);
}

TEST(DramModel, RowBufferHitsAreCheap)
{
    DramModel dram;
    std::uint64_t addr = 0x10000;
    double first = dram.access(addr, 0.0);
    double second = dram.access(addr + 64, 1000.0); // same row
    EXPECT_DOUBLE_EQ(first, dram.params().rowMissNs);
    EXPECT_DOUBLE_EQ(second, dram.params().rowHitNs);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(DramModel, DifferentRowsSameBankConflict)
{
    DramParams p;
    DramModel dram(p);
    std::uint64_t a = 0x0;
    // Same bank, different row: rows spaced banks*rowBytes apart.
    std::uint64_t b = static_cast<std::uint64_t>(p.banks) *
        p.rowBytes;
    dram.access(a, 0.0);
    double lat = dram.access(b, 10'000.0);
    EXPECT_DOUBLE_EQ(lat, p.rowMissNs); // closed the open row
    double lat2 = dram.access(a, 20'000.0);
    EXPECT_DOUBLE_EQ(lat2, p.rowMissNs); // a's row was closed by b
}

TEST(DramModel, BanksAreIndependent)
{
    DramParams p;
    DramModel dram(p);
    dram.access(0x0, 0.0);                       // bank 0
    dram.access(p.rowBytes, 10'000.0);           // bank 1
    double lat = dram.access(0x40, 20'000.0);    // bank 0, same row
    EXPECT_DOUBLE_EQ(lat, p.rowHitNs);
}

TEST(DramModel, StreamingHasHighRowHitRate)
{
    DramModel dram;
    for (std::uint64_t a = 0; a < 64 * 1024; a += 128)
        dram.access(a, static_cast<double>(a));
    EXPECT_GT(dram.rowHitRate(), 0.9);
}

TEST(DramModel, RandomTrafficHasLowRowHitRate)
{
    DramModel dram;
    std::uint64_t x = 12345;
    for (int i = 0; i < 4'000; i++) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        dram.access(x % (1ULL << 30), i * 100.0);
    }
    EXPECT_LT(dram.rowHitRate(), 0.2);
}

TEST(DramModel, BankQueueDelaysBursts)
{
    DramParams p;
    DramModel dram(p);
    // Hammer one bank at t=0.
    double last = 0.0;
    for (int i = 0; i < 10; i++) {
        last = dram.access(
            static_cast<std::uint64_t>(i) * p.banks * p.rowBytes,
            0.0);
    }
    EXPECT_GT(last, p.rowMissNs + 8 * p.bankServiceNs);
}

TEST(CmpSystemDram, DramSlowsMemoryBoundCombos)
{
    DvfsTable dvfs = DvfsTable::classic3();
    FullSimConfig flat;
    flat.lengthScale = 0.005;
    FullSimConfig banked = flat;
    banked.useDram = true;

    CmpSystem a({"mcf", "art"}, dvfs, flat);
    CmpSystem b({"mcf", "art"}, dvfs, banked);
    auto ra = a.runStatic({modes::Turbo, modes::Turbo});
    auto rb = b.runStatic({modes::Turbo, modes::Turbo});
    // Random pointer-chasing traffic mostly misses row buffers
    // (95 ns vs flat 77 ns) and adds bank queueing: slower.
    EXPECT_LT(rb.chipBips(), ra.chipBips());
    ASSERT_NE(b.sharedL2().dram(), nullptr);
    EXPECT_GT(b.sharedL2().dram()->accesses(), 100u);
}

} // namespace
} // namespace gpm
