/** @file Unit and property tests for the global management policies.
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "helpers.hh"

namespace gpm
{
namespace
{

using test::randomMatrix;

/** Brute-force optimum for cross-checking MaxBIPS. */
std::pair<double, double>
bruteForceBest(const ModeMatrix &m, Watts budget)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();
    std::vector<PowerMode> cur(n, 0);
    double best_bips = -1.0, best_power = 0.0;
    for (;;) {
        double p = m.totalPowerW(cur);
        if (p <= budget) {
            double b = m.totalBips(cur);
            if (b > best_bips ||
                (b == best_bips && p < best_power)) {
                best_bips = b;
                best_power = p;
            }
        }
        std::size_t c = 0;
        while (c < n && ++cur[c] == k)
            cur[c++] = 0;
        if (c == n)
            break;
    }
    return {best_bips, best_power};
}

PolicyInput
makeInput(const ModeMatrix &m, const std::vector<CoreSample> &s,
          Watts budget, const DvfsTable &dvfs)
{
    PolicyInput in;
    in.predicted = &m;
    in.samples = &s;
    in.budgetW = budget;
    in.dvfs = &dvfs;
    return in;
}

std::vector<CoreSample>
samplesFromMatrix(const ModeMatrix &m, PowerMode cur = 0)
{
    std::vector<CoreSample> s(m.numCores());
    for (std::size_t c = 0; c < s.size(); c++) {
        s[c].mode = cur;
        s[c].powerW = m.powerW(c, cur);
        s[c].bips = m.bips(c, cur);
        s[c].memIntensity = 1.0 / (1.0 + m.bips(c, cur));
    }
    return s;
}

class PolicyBudgetSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
  protected:
    DvfsTable dvfs = DvfsTable::classic3();
};

TEST_P(PolicyBudgetSweep, AllPoliciesFitBudgetWhenFeasible)
{
    auto [seed, budget_frac] = GetParam();
    ModeMatrix m = randomMatrix(4, 3, seed);
    // Budget between the all-slowest floor and all-fastest total.
    std::vector<PowerMode> floor_assign(4, 2), turbo_assign(4, 0);
    Watts lo = m.totalPowerW(floor_assign);
    Watts hi = m.totalPowerW(turbo_assign);
    Watts budget = lo + budget_frac * (hi - lo);

    auto samples = samplesFromMatrix(m);
    for (const char *name :
         {"MaxBIPS", "Priority", "PullHiPushLo", "ChipWideDVFS"}) {
        auto policy = makePolicy(name);
        auto in = makeInput(m, samples, budget, dvfs);
        auto assign = policy->decide(in);
        ASSERT_EQ(assign.size(), 4u) << name;
        EXPECT_LE(m.totalPowerW(assign), budget + 1e-9)
            << name << " busts the budget";
    }
}

TEST_P(PolicyBudgetSweep, MaxBipsMatchesBruteForce)
{
    auto [seed, budget_frac] = GetParam();
    ModeMatrix m = randomMatrix(5, 3, seed + 1000);
    std::vector<PowerMode> floor_assign(5, 2), turbo_assign(5, 0);
    Watts lo = m.totalPowerW(floor_assign);
    Watts hi = m.totalPowerW(turbo_assign);
    Watts budget = lo + budget_frac * (hi - lo);

    auto best = bruteForceBest(m, budget);
    auto assign = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::Exhaustive);
    EXPECT_NEAR(m.totalBips(assign), best.first, 1e-12);
}

TEST_P(PolicyBudgetSweep, BranchAndBoundEqualsExhaustive)
{
    auto [seed, budget_frac] = GetParam();
    ModeMatrix m = randomMatrix(7, 3, seed + 2000);
    std::vector<PowerMode> floor_assign(7, 2), turbo_assign(7, 0);
    Watts lo = m.totalPowerW(floor_assign);
    Watts hi = m.totalPowerW(turbo_assign);
    Watts budget = lo + budget_frac * (hi - lo);

    auto ex = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::Exhaustive);
    auto bb = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::BranchAndBound);
    EXPECT_NEAR(m.totalBips(ex), m.totalBips(bb), 1e-12);
    EXPECT_NEAR(m.totalPowerW(ex), m.totalPowerW(bb), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyBudgetSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0.05, 0.3, 0.6, 0.9)));

TEST(MaxBipsPolicy, InfeasibleBudgetYieldsAllSlowest)
{
    ModeMatrix m = randomMatrix(4, 3, 9);
    auto assign = MaxBipsPolicy::solve(
        m, 0.0, MaxBipsPolicy::Search::Exhaustive);
    for (auto a : assign)
        EXPECT_EQ(a, 2);
}

TEST(MaxBipsPolicy, UnlimitedBudgetYieldsAllTurbo)
{
    ModeMatrix m = randomMatrix(4, 3, 10);
    auto assign = MaxBipsPolicy::solve(
        m, 1e9, MaxBipsPolicy::Search::Exhaustive);
    for (auto a : assign)
        EXPECT_EQ(a, 0);
}

TEST(MaxBipsPolicy, PrefersHighBipsPerWatt)
{
    // Two cores; budget allows exactly one at Turbo. The one with
    // more BIPS to gain must get it.
    ModeMatrix m(2, 2);
    m.powerW(0, 0) = 10.0;
    m.powerW(0, 1) = 6.0;
    m.bips(0, 0) = 2.0;
    m.bips(0, 1) = 1.7;
    m.powerW(1, 0) = 10.0;
    m.powerW(1, 1) = 6.0;
    m.bips(1, 0) = 1.0;
    m.bips(1, 1) = 0.98; // memory-bound: loses almost nothing
    auto assign = MaxBipsPolicy::solve(
        m, 16.0, MaxBipsPolicy::Search::Exhaustive);
    EXPECT_EQ(assign[0], 0); // CPU-bound gets Turbo
    EXPECT_EQ(assign[1], 1); // memory-bound throttled
}

TEST(MaxBipsPolicy, BnbScalesTo32Cores)
{
    ModeMatrix m = randomMatrix(32, 3, 77);
    std::vector<PowerMode> floor_assign(32, 2), turbo_assign(32, 0);
    Watts budget = 0.5 * (m.totalPowerW(floor_assign) +
                          m.totalPowerW(turbo_assign));
    auto assign = MaxBipsPolicy::solve(
        m, budget, MaxBipsPolicy::Search::BranchAndBound);
    EXPECT_EQ(assign.size(), 32u);
    EXPECT_LE(m.totalPowerW(assign), budget + 1e-9);
    // Must beat the trivial all-slowest solution.
    EXPECT_GT(m.totalBips(assign), m.totalBips(floor_assign));
}

TEST(ChipWidePolicy, UniformAssignment)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(4, 3, 11);
    auto samples = samplesFromMatrix(m);
    ChipWideDvfsPolicy policy;
    for (double f : {0.0, 0.5, 1.0}) {
        std::vector<PowerMode> floor_assign(4, 2), turbo_assign(4, 0);
        Watts lo = m.totalPowerW(floor_assign);
        Watts hi = m.totalPowerW(turbo_assign);
        auto in = makeInput(m, samples, lo + f * (hi - lo), dvfs);
        auto assign = policy.decide(in);
        for (auto a : assign)
            EXPECT_EQ(a, assign[0]);
    }
}

TEST(ChipWidePolicy, PicksFastestFittingMode)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m(2, 3);
    for (std::size_t c = 0; c < 2; c++) {
        m.powerW(c, 0) = 10.0;
        m.powerW(c, 1) = 8.0;
        m.powerW(c, 2) = 6.0;
        m.bips(c, 0) = 1.0;
        m.bips(c, 1) = 0.95;
        m.bips(c, 2) = 0.85;
    }
    auto samples = samplesFromMatrix(m);
    ChipWideDvfsPolicy policy;
    auto in = makeInput(m, samples, 17.0, dvfs);
    auto assign = policy.decide(in);
    EXPECT_EQ(assign[0], 1); // 2x8=16 fits; 2x10=20 does not
}

TEST(PriorityPolicy, HighestCoreFavored)
{
    DvfsTable dvfs = DvfsTable::classic3();
    // Identical cores, budget for exactly one Turbo upgrade.
    ModeMatrix m(3, 3);
    for (std::size_t c = 0; c < 3; c++) {
        m.powerW(c, 0) = 10.0;
        m.powerW(c, 1) = 8.5;
        m.powerW(c, 2) = 6.0;
        m.bips(c, 0) = 1.0;
        m.bips(c, 1) = 0.95;
        m.bips(c, 2) = 0.85;
    }
    auto samples = samplesFromMatrix(m);
    PriorityPolicy policy;
    auto in = makeInput(m, samples, 22.0, dvfs);
    auto assign = policy.decide(in);
    // Core 2 (highest priority) gets the fastest mode the budget
    // allows; lower-priority cores stay slow.
    EXPECT_LT(assign[2], assign[0]);
    EXPECT_LE(assign[2], assign[1]);
    EXPECT_LE(m.totalPowerW(assign), 22.0 + 1e-9);
}

TEST(PriorityPolicy, SkipsUnaffordableUpgradeAndContinues)
{
    DvfsTable dvfs = DvfsTable::classic3();
    // Core 1 (higher priority) is expensive to upgrade; core 0 is
    // cheap. Budget affords only the cheap upgrade: priority must
    // release it "out of order".
    ModeMatrix m(2, 2);
    m.powerW(0, 0) = 6.5;
    m.powerW(0, 1) = 6.0;
    m.bips(0, 0) = 1.0;
    m.bips(0, 1) = 0.9;
    m.powerW(1, 0) = 12.0;
    m.powerW(1, 1) = 6.0;
    m.bips(1, 0) = 1.0;
    m.bips(1, 1) = 0.9;
    auto samples = samplesFromMatrix(m);
    PriorityPolicy policy;
    auto in = makeInput(m, samples, 13.0, dvfs);
    auto assign = policy.decide(in);
    EXPECT_EQ(assign[1], 1); // can't afford 12 + 6 = 18
    EXPECT_EQ(assign[0], 0); // 6.5 + 6 = 12.5 fits
}

TEST(PullHiPushLoPolicy, SlowsHottestOnOvershoot)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m(2, 3);
    // Core 0 hot, core 1 cool.
    m.powerW(0, 0) = 12.0;
    m.powerW(0, 1) = 10.0;
    m.powerW(0, 2) = 7.0;
    m.powerW(1, 0) = 6.0;
    m.powerW(1, 1) = 5.0;
    m.powerW(1, 2) = 4.0;
    for (std::size_t c = 0; c < 2; c++) {
        m.bips(c, 0) = 1.0;
        m.bips(c, 1) = 0.95;
        m.bips(c, 2) = 0.85;
    }
    auto samples = samplesFromMatrix(m, 0); // both at Turbo: 18 W
    PullHiPushLoPolicy policy;
    auto in = makeInput(m, samples, 16.5, dvfs);
    auto assign = policy.decide(in);
    EXPECT_GT(assign[0], 0); // hot core slowed
    EXPECT_LE(m.totalPowerW(assign), 16.5 + 1e-9);
}

TEST(PullHiPushLoPolicy, SpeedsCoolestOnSlack)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m(2, 3);
    m.powerW(0, 0) = 12.0;
    m.powerW(0, 1) = 10.0;
    m.powerW(0, 2) = 7.0;
    m.powerW(1, 0) = 6.0;
    m.powerW(1, 1) = 5.0;
    m.powerW(1, 2) = 4.0;
    for (std::size_t c = 0; c < 2; c++) {
        m.bips(c, 0) = 1.0;
        m.bips(c, 1) = 0.95;
        m.bips(c, 2) = 0.85;
    }
    auto samples = samplesFromMatrix(m, 2); // both at Eff2: 11 W
    PullHiPushLoPolicy policy;
    auto in = makeInput(m, samples, 30.0, dvfs);
    auto assign = policy.decide(in);
    // Ample slack: both cores end up at Turbo.
    EXPECT_EQ(assign[0], 0);
    EXPECT_EQ(assign[1], 0);
}

TEST(PullHiPushLoPolicy, StartsFromCurrentModes)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix m = randomMatrix(4, 3, 21);
    auto samples = samplesFromMatrix(m, 1);
    PullHiPushLoPolicy policy;
    // Budget exactly at the current (all-Eff1) total: no change
    // should be needed, and result must still fit.
    std::vector<PowerMode> eff1(4, 1);
    auto in = makeInput(m, samples, m.totalPowerW(eff1), dvfs);
    auto assign = policy.decide(in);
    EXPECT_LE(m.totalPowerW(assign), m.totalPowerW(eff1) + 1e-9);
}

TEST(OraclePolicy, UsesOracleMatrix)
{
    DvfsTable dvfs = DvfsTable::classic3();
    ModeMatrix predicted = randomMatrix(3, 3, 31);
    ModeMatrix oracle = randomMatrix(3, 3, 32);
    auto samples = samplesFromMatrix(predicted);
    OraclePolicy policy;
    EXPECT_TRUE(policy.wantsOracle());
    PolicyInput in;
    in.predicted = &predicted;
    in.oracle = &oracle;
    in.samples = &samples;
    in.dvfs = &dvfs;
    std::vector<PowerMode> floor_assign(3, 2);
    in.budgetW = oracle.totalPowerW(floor_assign) * 1.2;
    auto assign = policy.decide(in);
    EXPECT_LE(oracle.totalPowerW(assign), in.budgetW + 1e-9);
}

TEST(PolicyFactory, KnownNames)
{
    for (const char *name :
         {"MaxBIPS", "MaxBIPS-BnB", "Priority", "PullHiPushLo",
          "ChipWideDVFS", "Oracle", "UniformBudget"}) {
        auto p = makePolicy(name);
        ASSERT_NE(p, nullptr);
    }
    EXPECT_STREQ(makePolicy("MaxBIPS")->name(), "MaxBIPS");
    EXPECT_STREQ(makePolicy("Oracle")->name(), "Oracle");
}

TEST(ModeMatrixTest, TotalsMatchManualSum)
{
    ModeMatrix m(2, 2);
    m.powerW(0, 0) = 1.0;
    m.powerW(0, 1) = 0.5;
    m.powerW(1, 0) = 2.0;
    m.powerW(1, 1) = 1.0;
    m.bips(0, 0) = 3.0;
    m.bips(1, 1) = 4.0;
    std::vector<PowerMode> assign{0, 1};
    EXPECT_DOUBLE_EQ(m.totalPowerW(assign), 2.0);
    EXPECT_DOUBLE_EQ(m.totalBips(assign), 7.0);
    EXPECT_EQ(m.numCores(), 2u);
    EXPECT_EQ(m.numModes(), 2u);
}

} // namespace
} // namespace gpm
