/** @file Integration tests for the trace-based CMP simulator on
 *  hand-built profiles (exact expectations). */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sim/cmp_sim.hh"

namespace gpm
{
namespace
{

using test::classicSyntheticProfile;
using test::syntheticProfile;

class CmpSimTest : public ::testing::Test
{
  protected:
    CmpSimTest() : dvfs(DvfsTable::classic3()) {}

    SimConfig
    quietConfig()
    {
        SimConfig cfg;
        cfg.recordTimeline = true;
        return cfg;
    }

    GlobalManager
    manager(const std::string &policy)
    {
        return GlobalManager(dvfs, makePolicy(policy), 500.0, 2.0);
    }

    DvfsTable dvfs;
};

TEST_F(CmpSimTest, StaticTurboRunMatchesProfileMath)
{
    // 200 chunks x 10 us = 2000 us at Turbo; first-done at the next
    // 50 us boundary.
    auto p = classicSyntheticProfile(200, 10.0, 1e-4);
    CmpSim sim({&p, &p}, dvfs, quietConfig());
    auto r = sim.runStatic({modes::Turbo, modes::Turbo});
    EXPECT_NEAR(r.endUs, 2000.0, 50.1);
    EXPECT_NEAR(r.coreInstructions[0], 2'000'000, 10);
    EXPECT_NEAR(r.coreEnergyJ[0], 200 * 1e-4, 1e-6);
    EXPECT_TRUE(r.finished[0]);
    EXPECT_TRUE(r.finished[1]);
}

TEST_F(CmpSimTest, StaticEff2RunsSlower)
{
    auto p = classicSyntheticProfile(200, 10.0, 1e-4);
    CmpSim sim({&p}, dvfs, quietConfig());
    auto turbo = sim.runStatic({modes::Turbo});
    auto eff2 = sim.runStatic({modes::Eff2});
    EXPECT_NEAR(eff2.endUs / turbo.endUs, 1.0 / 0.85, 0.03);
    EXPECT_LT(eff2.avgCorePowerW(), turbo.avgCorePowerW());
}

TEST_F(CmpSimTest, FirstDoneStopsAtShortestWorkload)
{
    auto p_long = classicSyntheticProfile(400, 10.0, 1e-4);
    auto p_short = classicSyntheticProfile(100, 10.0, 1e-4);
    CmpSim sim({&p_long, &p_short}, dvfs, quietConfig());
    auto r = sim.runStatic({modes::Turbo, modes::Turbo});
    EXPECT_NEAR(r.endUs, 1000.0, 50.1);
    EXPECT_FALSE(r.finished[0]);
    EXPECT_TRUE(r.finished[1]);
}

TEST_F(CmpSimTest, AllDoneRunsToLongestWorkload)
{
    auto p_long = classicSyntheticProfile(400, 10.0, 1e-4);
    auto p_short = classicSyntheticProfile(100, 10.0, 1e-4);
    SimConfig cfg = quietConfig();
    cfg.termination = SimConfig::Termination::AllDone;
    CmpSim sim({&p_long, &p_short}, dvfs, cfg);
    auto r = sim.runStatic({modes::Turbo, modes::Turbo});
    EXPECT_NEAR(r.endUs, 4000.0, 50.1);
    EXPECT_TRUE(r.finished[0]);
}

TEST_F(CmpSimTest, FixedTimeTermination)
{
    auto p = classicSyntheticProfile(1000, 10.0, 1e-4);
    SimConfig cfg = quietConfig();
    cfg.termination = SimConfig::Termination::FixedTime;
    cfg.maxTimeUs = 1234.0;
    CmpSim sim({&p}, dvfs, cfg);
    auto r = sim.runStatic({modes::Turbo});
    EXPECT_NEAR(r.endUs, 1250.0, 50.1); // rounded up to delta grid
}

TEST_F(CmpSimTest, ReferencePowerIsAllTurboCorePower)
{
    auto p = classicSyntheticProfile(200, 10.0, 1e-4);
    CmpSim sim({&p, &p}, dvfs, quietConfig());
    // Each core: 1e-4 J / 10 us = 10 W; two cores = 20 W.
    EXPECT_NEAR(sim.referencePowerW(), 20.0, 0.2);
}

TEST_F(CmpSimTest, MaxBipsMeetsBudget)
{
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    CmpSim sim({&p, &p, &p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("MaxBIPS");
    BudgetSchedule budget(0.8);
    auto r = sim.run(mgr, budget, ref);
    EXPECT_NEAR(r.avgCorePowerW() / (0.8 * ref), 1.0, 0.05);
    // Budget 80% with cubic modes: some throttling, bounded by Eff2.
    EXPECT_GT(r.endUs, 4000.0 / 1.01);
    EXPECT_LT(r.endUs, 4000.0 / 0.84);
}

TEST_F(CmpSimTest, TimelineRecordsBudgetAndModes)
{
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    CmpSim sim({&p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("MaxBIPS");
    BudgetSchedule budget(0.75);
    auto r = sim.run(mgr, budget, ref);
    ASSERT_FALSE(r.timeline.empty());
    for (const auto &tp : r.timeline) {
        EXPECT_EQ(tp.corePowerW.size(), 2u);
        EXPECT_EQ(tp.modes.size(), 2u);
        EXPECT_NEAR(tp.budgetW, 0.75 * ref, 1e-9);
    }
}

TEST_F(CmpSimTest, TimelineEnergyConsistentWithTotals)
{
    auto p = classicSyntheticProfile(200, 10.0, 1e-4);
    SimConfig cfg = quietConfig();
    CmpSim sim({&p, &p}, dvfs, cfg);
    auto r = sim.runStatic({modes::Turbo, modes::Eff2});
    double timeline_j = 0.0;
    for (const auto &tp : r.timeline)
        for (double w : tp.corePowerW)
            timeline_j += w * cfg.deltaSimUs * 1e-6;
    double total_j = r.coreEnergyJ[0] + r.coreEnergyJ[1];
    EXPECT_NEAR(timeline_j, total_j, total_j * 0.01);
}

TEST_F(CmpSimTest, BudgetDropIsFollowed)
{
    auto p = classicSyntheticProfile(600, 10.0, 1e-4);
    CmpSim sim({&p, &p, &p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("MaxBIPS");
    BudgetSchedule budget({{0.0, 0.95}, {2000.0, 0.70}});
    auto r = sim.run(mgr, budget, ref);
    // Compare average power in the two regions.
    double e1 = 0.0, t1 = 0.0, e2 = 0.0, t2 = 0.0;
    for (const auto &tp : r.timeline) {
        double w = 0.0;
        for (double c : tp.corePowerW)
            w += c;
        if (tp.tUs < 2000.0) {
            e1 += w;
            t1 += 1;
        } else if (tp.tUs > 2500.0) {
            e2 += w;
            t2 += 1;
        }
    }
    ASSERT_GT(t1, 0.0);
    ASSERT_GT(t2, 0.0);
    EXPECT_LT(e2 / t2, 0.76 * ref);
    EXPECT_GT(e1 / t1, 0.80 * ref);
}

TEST_F(CmpSimTest, TransitionStallsExtendRuntime)
{
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    SimConfig with = quietConfig();
    SimConfig without = quietConfig();
    without.stallDuringTransitions = false;
    // Oscillating budget forces mode switches at every explore.
    std::vector<std::pair<MicroSec, double>> steps;
    for (int i = 0; i < 40; i++)
        steps.push_back({i * 500.0, i % 2 ? 0.7 : 1.0});
    CmpSim sim_a({&p}, dvfs, with);
    CmpSim sim_b({&p}, dvfs, without);
    Watts ref = sim_a.referencePowerW();
    auto mgr_a = manager("MaxBIPS");
    auto mgr_b = manager("MaxBIPS");
    auto ra = sim_a.run(mgr_a, BudgetSchedule(steps), ref);
    auto rb = sim_b.run(mgr_b, BudgetSchedule(steps), ref);
    EXPECT_GT(ra.endUs, rb.endUs);
    EXPECT_GT(ra.managerStats.modeSwitches, 4u);
}

TEST_F(CmpSimTest, ContentionSlowsMemoryHeavyCores)
{
    // Profiles with substantial per-chunk miss traffic.
    auto p = syntheticProfile(300, 10'000, 10.0, 1e-4,
                              {1.0, 1.0 / 0.95, 1.0 / 0.85},
                              {1.0, 0.857, 0.614}, 2'000);
    SimConfig base = quietConfig();
    SimConfig cont = quietConfig();
    cont.contention = true;
    CmpSim sim_a({&p, &p, &p, &p}, dvfs, base);
    CmpSim sim_b({&p, &p, &p, &p}, dvfs, cont);
    auto ra = sim_a.runStatic(std::vector<PowerMode>(4, 0));
    auto rb = sim_b.runStatic(std::vector<PowerMode>(4, 0));
    EXPECT_GT(rb.endUs, ra.endUs * 1.02);
    // Power drops when the same energy spreads over more time.
    EXPECT_LT(rb.avgCorePowerW(), ra.avgCorePowerW());
}

TEST_F(CmpSimTest, PredictionsExactWhenModesSettle)
{
    // Stationary profile and a budget that admits all-Turbo: after
    // the bootstrap decision the modes never change, the measured
    // windows are stall-free, and the cubic/linear predictions are
    // exact.
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    CmpSim sim({&p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("MaxBIPS");
    auto r = sim.run(mgr, BudgetSchedule(1.05), ref);
    EXPECT_EQ(r.managerStats.modeSwitches, 0u);
    EXPECT_LT(r.predPowerError, 1e-6);
    EXPECT_LT(r.predBipsError, 1e-6);
}

TEST_F(CmpSimTest, PredictionErrorsBoundedUnderOscillation)
{
    // With identical cores and a budget forcing an asymmetric
    // assignment, the chosen core can rotate each interval; the
    // global stall (longest transition, all cores) then leaks a
    // small mode-blend error into the scored windows. It must stay
    // a few percent (transition/explore-scale), far below the
    // inter-mode power gaps the policies act on.
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    CmpSim sim({&p, &p, &p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("MaxBIPS");
    auto r = sim.run(mgr, BudgetSchedule(0.85), ref);
    EXPECT_LT(r.predPowerError, 0.06);
    EXPECT_LT(r.predBipsError, 0.08);
}

TEST_F(CmpSimTest, ChipBipsSumsCores)
{
    auto p = classicSyntheticProfile(100, 10.0, 1e-4);
    CmpSim sim({&p, &p}, dvfs, quietConfig());
    auto r = sim.runStatic({modes::Turbo, modes::Turbo});
    auto per_core = r.coreBips();
    EXPECT_NEAR(r.chipBips(), per_core[0] + per_core[1], 1e-9);
}

TEST_F(CmpSimTest, SensorNoisePerturbsDecisions)
{
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    SimConfig clean = quietConfig();
    SimConfig noisy = quietConfig();
    noisy.sensorNoise = 0.10;
    CmpSim sim_a({&p, &p, &p, &p}, dvfs, clean);
    CmpSim sim_b({&p, &p, &p, &p}, dvfs, noisy);
    Watts ref = sim_a.referencePowerW();
    auto mgr_a = manager("MaxBIPS");
    auto mgr_b = manager("MaxBIPS");
    auto ra = sim_a.run(mgr_a, BudgetSchedule(0.85), ref);
    auto rb = sim_b.run(mgr_b, BudgetSchedule(0.85), ref);
    // Noise induces extra mode switches on a perfectly stationary
    // profile, where the clean controller settles immediately.
    EXPECT_GT(rb.managerStats.modeSwitches,
              ra.managerStats.modeSwitches);
    // True accounting is unaffected: energy is still physical and
    // the run still roughly fits the budget.
    EXPECT_LT(rb.avgCorePowerW(), 0.85 * ref * 1.1);
}

TEST_F(CmpSimTest, SensorNoiseDeterministicPerSeed)
{
    auto p = classicSyntheticProfile(200, 10.0, 1e-4);
    SimConfig cfg = quietConfig();
    cfg.sensorNoise = 0.05;
    CmpSim sim({&p, &p}, dvfs, cfg);
    Watts ref = sim.referencePowerW();
    auto mgr_a = manager("MaxBIPS");
    auto mgr_b = manager("MaxBIPS");
    auto ra = sim.run(mgr_a, BudgetSchedule(0.8), ref);
    auto rb = sim.run(mgr_b, BudgetSchedule(0.8), ref);
    EXPECT_DOUBLE_EQ(ra.coreInstructions[0],
                     rb.coreInstructions[0]);
    EXPECT_EQ(ra.managerStats.modeSwitches,
              rb.managerStats.modeSwitches);
}

TEST_F(CmpSimTest, OraclePolicyRunsAndMeetsBudget)
{
    auto p = classicSyntheticProfile(400, 10.0, 1e-4);
    CmpSim sim({&p, &p, &p, &p}, dvfs, quietConfig());
    Watts ref = sim.referencePowerW();
    auto mgr = manager("Oracle");
    auto r = sim.run(mgr, BudgetSchedule(0.8), ref);
    EXPECT_LE(r.avgCorePowerW(), 0.8 * ref * 1.02);
}

} // namespace
} // namespace gpm
