/** @file Unit tests for the set-associative LRU cache model. */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

namespace gpm
{
namespace
{

CacheConfig
smallConfig()
{
    // 1 KB, 2-way, 64 B blocks: 8 sets.
    return CacheConfig{1024, 2, 64};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13F, false).hit); // same 64 B block
    EXPECT_FALSE(c.access(0x140, false).hit); // next block
}

TEST(Cache, StatsTrackAccessesAndMisses)
{
    Cache c(smallConfig());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(smallConfig()); // 2-way, 8 sets, 64 B blocks
    // Three blocks mapping to set 0: addresses stride 8*64 = 512.
    c.access(0x0000, false);
    c.access(0x0200, false);
    // Touch first again so 0x0200 is LRU.
    c.access(0x0000, false);
    c.access(0x0400, false); // evicts 0x0200
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0200));
    EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallConfig());
    c.access(0x0000, true); // dirty
    c.access(0x0200, false);
    auto r = c.access(0x0400, false); // evicts dirty 0x0000
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallConfig());
    c.access(0x0000, false);
    c.access(0x0200, false);
    auto r = c.access(0x0400, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallConfig());
    c.access(0x0000, false);
    c.access(0x0000, true); // hit, mark dirty
    c.access(0x0200, false);
    auto r = c.access(0x0400, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallConfig());
    c.access(0x0, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(Cache, ContainsDoesNotTouchState)
{
    Cache c(smallConfig());
    c.access(0x0000, false);
    c.access(0x0200, false);
    // Probing 0x0000 must not refresh its LRU position.
    EXPECT_TRUE(c.contains(0x0000));
    std::uint64_t misses = c.stats().misses;
    EXPECT_EQ(c.stats().accesses, 2u);
    c.access(0x0400, false); // evicts LRU = 0x0000
    EXPECT_FALSE(c.contains(0x0000));
    EXPECT_EQ(c.stats().misses, misses + 1);
}

TEST(Cache, GeometryAccessors)
{
    Cache c(CacheConfig{32 * 1024, 2, 128});
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.blockSize(), 128u);
}

TEST(Cache, Table1Geometries)
{
    // Paper Table 1 caches must construct cleanly.
    Cache l1d(CacheConfig{32 * 1024, 2, 128});
    Cache l1i(CacheConfig{64 * 1024, 2, 128});
    Cache l2(CacheConfig{2 * 1024 * 1024, 4, 128});
    EXPECT_EQ(l2.numSets(), 4096u);
}

TEST(Cache, CapacityRespected)
{
    Cache c(smallConfig()); // 16 blocks total
    for (std::uint64_t b = 0; b < 16; b++)
        c.access(b * 64, false);
    // All 16 distinct blocks fit (16 blocks capacity).
    c.resetStats();
    for (std::uint64_t b = 0; b < 16; b++)
        c.access(b * 64, false);
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, ThrashingBeyondCapacity)
{
    Cache c(smallConfig());
    // 32 distinct blocks cycled: every access misses after warmup.
    for (int rep = 0; rep < 3; rep++)
        for (std::uint64_t b = 0; b < 32; b++)
            c.access(b * 64, false);
    EXPECT_GT(c.stats().missRate(), 0.9);
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallConfig());
    c.access(0x0, false);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.access(0x0, false).hit);
}

struct CacheGeom
{
    std::uint64_t size;
    std::uint32_t ways;
    std::uint32_t block;
};

class CacheGeometrySweep
    : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometrySweep, SequentialFillThenRehitWithinCapacity)
{
    auto g = GetParam();
    Cache c(CacheConfig{g.size, g.ways, g.block});
    std::uint64_t blocks = g.size / g.block;
    for (std::uint64_t b = 0; b < blocks; b++)
        c.access(b * g.block, false);
    EXPECT_EQ(c.stats().misses, blocks);
    for (std::uint64_t b = 0; b < blocks; b++)
        c.access(b * g.block, false);
    EXPECT_EQ(c.stats().misses, blocks); // all re-hits
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(CacheGeom{1024, 1, 64}, CacheGeom{1024, 2, 64},
                      CacheGeom{4096, 4, 128},
                      CacheGeom{32 * 1024, 2, 128},
                      CacheGeom{2 * 1024 * 1024, 4, 128},
                      CacheGeom{8192, 8, 64}));

} // namespace
} // namespace gpm
