/** @file Tests for the ExperimentRunner harness (caching, curves,
 *  static evaluation wiring). Uses a small shared profile scale. */

#include <gtest/gtest.h>

#include "metrics/experiment.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

class ExperimentTest : public ::testing::Test
{
  protected:
    static ProfileLibrary &
    lib()
    {
        static DvfsTable dvfs = DvfsTable::classic3();
        static ProfileLibrary l(dvfs, 0.03);
        return l;
    }

    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }
};

TEST_F(ExperimentTest, ReferenceIsCachedAndStable)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"mcf", "crafty"};
    const SimResult &a = r.reference(combo);
    const SimResult &b = r.reference(combo);
    EXPECT_EQ(&a, &b);
    EXPECT_GT(r.referencePowerW(combo), 0.0);
}

TEST_F(ExperimentTest, ProfilesForValidatesAndBuilds)
{
    ExperimentRunner r(lib(), dvfs());
    auto ps = r.profilesFor({"ammp", "ammp"});
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_EQ(ps[0], ps[1]); // same underlying profile object
}

TEST_F(ExperimentTest, CurveCoversAllBudgets)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"mcf", "crafty"};
    auto evs = r.curve(combo, "MaxBIPS", {0.7, 0.85, 1.0});
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_DOUBLE_EQ(evs[0].budgetFrac, 0.7);
    EXPECT_DOUBLE_EQ(evs[2].budgetFrac, 1.0);
    for (const auto &ev : evs)
        EXPECT_EQ(ev.policy, "MaxBIPS");
}

TEST_F(ExperimentTest, CurveDispatchesStatic)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"mcf", "crafty"};
    auto evs = r.curve(combo, "Static", {0.85});
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].policy, "Static");
}

TEST_F(ExperimentTest, StaticPeakFitNeverBeatsAverageFit)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"ammp", "crafty"};
    for (double b : {0.75, 0.9}) {
        auto peak =
            r.evaluateStatic(combo, b, StaticFit::Peak);
        auto avg =
            r.evaluateStatic(combo, b, StaticFit::Average);
        EXPECT_GE(peak.metrics.perfDegradation + 1e-9,
                  avg.metrics.perfDegradation)
            << "budget " << b;
    }
}

TEST_F(ExperimentTest, MinPowerPolicyRunsUnderHarness)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"ammp", "crafty"};
    auto ev = r.evaluate(combo, "MinPower90", 1.0);
    // Delivers roughly the targeted fraction of all-Turbo BIPS
    // (prediction noise at tiny scales allowed for).
    EXPECT_LT(ev.metrics.perfDegradation, 0.15);
    EXPECT_GT(ev.metrics.powerSavings, 0.0);
}

TEST_F(ExperimentTest, TimelineHonoursSchedule)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"ammp", "crafty"};
    BudgetSchedule sched({{0.0, 1.0}, {300.0, 0.7}});
    auto res = r.timeline(combo, "MaxBIPS", sched);
    ASSERT_FALSE(res.timeline.empty());
    Watts ref = r.referencePowerW(combo);
    for (const auto &tp : res.timeline) {
        double expect = tp.tUs < 300.0 ? 1.0 : 0.7;
        EXPECT_NEAR(tp.budgetW / ref, expect, 1e-9);
    }
}

TEST_F(ExperimentTest, UniformBudgetWorseOrEqualToMaxBips)
{
    ExperimentRunner r(lib(), dvfs());
    std::vector<std::string> combo{"ammp", "mcf", "crafty", "art"};
    double uni = 0.0, mb = 0.0;
    for (double b : {0.75, 0.85}) {
        uni += r.evaluate(combo, "UniformBudget", b)
                   .metrics.perfDegradation;
        mb += r.evaluate(combo, "MaxBIPS", b)
                  .metrics.perfDegradation;
    }
    EXPECT_GE(uni + 1e-9, mb);
}

} // namespace
} // namespace gpm
