/** @file Determinism contract of ExperimentRunner::sweep: results
 *  are bitwise-identical to a serial evaluate()/evaluateStatic()
 *  loop over the spec, at every concurrency. Uses a small shared
 *  profile scale like the other experiment tests. */

#include <gtest/gtest.h>

#include "metrics/experiment.hh"
#include "trace/workload.hh"
#include "util/thread_pool.hh"

namespace gpm
{
namespace
{

class SweepTest : public ::testing::Test
{
  protected:
    static ProfileLibrary &
    lib()
    {
        static DvfsTable dvfs = DvfsTable::classic3();
        static ProfileLibrary l(dvfs, 0.03);
        return l;
    }

    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    /** The spec used throughout: two combos, dynamic policies and a
     *  Static point, several budgets. */
    static SweepSpec
    spec()
    {
        SweepSpec s;
        s.addGrid({{"mcf", "crafty"}, {"ammp", "art"}},
                  {"MaxBIPS", "ChipWideDVFS"}, {0.75, 0.9});
        s.add({"mcf", "crafty"}, "Static", 0.85);
        s.add({"ammp", "art"}, "Oracle", 0.8);
        return s;
    }

    /** Bitwise equality of every PolicyEval field ("==" on doubles
     *  is exactly the determinism contract under test). */
    static void
    expectIdentical(const std::vector<PolicyEval> &a,
                    const std::vector<PolicyEval> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); i++) {
            SCOPED_TRACE("point " + std::to_string(i));
            EXPECT_EQ(a[i].policy, b[i].policy);
            EXPECT_EQ(a[i].budgetFrac, b[i].budgetFrac);
            EXPECT_EQ(a[i].metrics.perfDegradation,
                      b[i].metrics.perfDegradation);
            EXPECT_EQ(a[i].metrics.weightedSlowdown,
                      b[i].metrics.weightedSlowdown);
            EXPECT_EQ(a[i].metrics.weightedSpeedupLoss,
                      b[i].metrics.weightedSpeedupLoss);
            EXPECT_EQ(a[i].metrics.powerSavings,
                      b[i].metrics.powerSavings);
            EXPECT_EQ(a[i].metrics.powerOverBudget,
                      b[i].metrics.powerOverBudget);
            EXPECT_EQ(a[i].metrics.avgChipPowerW,
                      b[i].metrics.avgChipPowerW);
            EXPECT_EQ(a[i].metrics.chipBips, b[i].metrics.chipBips);
            EXPECT_EQ(a[i].predPowerError, b[i].predPowerError);
            EXPECT_EQ(a[i].predBipsError, b[i].predBipsError);
            EXPECT_EQ(a[i].managerStats.decisions,
                      b[i].managerStats.decisions);
            EXPECT_EQ(a[i].managerStats.overshoots,
                      b[i].managerStats.overshoots);
            EXPECT_EQ(a[i].managerStats.modeSwitches,
                      b[i].managerStats.modeSwitches);
        }
    }
};

TEST_F(SweepTest, SpecHelpersBuildExpectedGrid)
{
    SweepSpec s = spec();
    ASSERT_EQ(s.size(), 2u * 2u * 2u + 2u);
    // Row-major: combo outermost, budget innermost.
    EXPECT_EQ(s.points[0].policy, "MaxBIPS");
    EXPECT_EQ(s.points[0].budgetFrac, 0.75);
    EXPECT_EQ(s.points[1].budgetFrac, 0.9);
    EXPECT_EQ(s.points[2].policy, "ChipWideDVFS");
    EXPECT_EQ(s.points[4].combo,
              (std::vector<std::string>{"ammp", "art"}));
    EXPECT_EQ(s.points[8].policy, "Static");
    EXPECT_EQ(s.points[9].policy, "Oracle");
}

TEST_F(SweepTest, MatchesSerialLoopAtEveryConcurrency)
{
    SweepSpec s = spec();

    // The serial ground truth, on its own runner.
    ExperimentRunner serial_runner(lib(), dvfs());
    std::vector<PolicyEval> serial;
    for (const auto &p : s.points)
        serial.push_back(p.policy == "Static"
                             ? serial_runner.evaluateStatic(
                                   p.combo, p.budgetFrac, p.staticFit)
                             : serial_runner.evaluate(
                                   p.combo, p.policy, p.budgetFrac));

    for (std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("concurrency " + std::to_string(threads));
        // A fresh runner per concurrency so cache population order
        // is also exercised under contention.
        ExperimentRunner r(lib(), dvfs());
        expectIdentical(serial, r.sweep(s, threads));
    }
}

TEST_F(SweepTest, RepeatedSweepOnOneRunnerIsStable)
{
    SweepSpec s = spec();
    ExperimentRunner r(lib(), dvfs());
    auto first = r.sweep(s, 4);
    auto second = r.sweep(s, 4);
    expectIdentical(first, second);
}

TEST_F(SweepTest, EmptySpecYieldsEmptyResult)
{
    ExperimentRunner r(lib(), dvfs());
    EXPECT_TRUE(r.sweep(SweepSpec{}, 4).empty());
}

TEST_F(SweepTest, TrySweepRejectsBadSpecsWithPointIndex)
{
    ExperimentRunner r(lib(), dvfs());

    SweepSpec bad_policy;
    bad_policy.add({"mcf"}, "MaxBIPS", 0.8);
    bad_policy.add({"mcf"}, "NoSuchPolicy", 0.8);
    auto e1 = r.trySweep(bad_policy, 2);
    ASSERT_FALSE(e1.ok());
    EXPECT_EQ(e1.error().pointIndex, 1u);
    EXPECT_NE(e1.error().message.find("NoSuchPolicy"),
              std::string::npos);

    SweepSpec bad_combo;
    bad_combo.add({"mcf", "nosuchbench"}, "MaxBIPS", 0.8);
    auto e2 = r.trySweep(bad_combo, 2);
    ASSERT_FALSE(e2.ok());
    EXPECT_EQ(e2.error().pointIndex, 0u);
    EXPECT_NE(e2.error().message.find("nosuchbench"),
              std::string::npos);

    SweepSpec empty_combo;
    empty_combo.add({}, "MaxBIPS", 0.8);
    EXPECT_FALSE(r.trySweep(empty_combo, 2).ok());

    SweepSpec bad_budget;
    bad_budget.add({"mcf"}, "MaxBIPS", 0.0);
    EXPECT_FALSE(r.trySweep(bad_budget, 2).ok());

    // Pure validation agrees without a runner.
    EXPECT_TRUE(ExperimentRunner::validate(bad_policy).has_value());
    EXPECT_FALSE(ExperimentRunner::validate(SweepSpec{}).has_value());
}

TEST_F(SweepTest, TrySweepMatchesSweepOnValidSpecs)
{
    SweepSpec s;
    s.add({"mcf", "crafty"}, "MaxBIPS", 0.8);
    s.add({"mcf", "crafty"}, "Static", 0.85);
    ExperimentRunner r(lib(), dvfs());
    auto tried = r.trySweep(s, 2);
    ASSERT_TRUE(tried.ok());
    expectIdentical(r.sweep(s, 2), tried.value());
}

TEST_F(SweepTest, CancelTokenStopsSweepBetweenPoints)
{
    SweepSpec s = spec();
    ExperimentRunner r(lib(), dvfs());

    // A pre-cancelled token: the sweep abandons the spec at its
    // first checkpoint and returns a truncated result.
    CancelToken cancelled;
    cancelled.cancel();
    EXPECT_LT(r.sweep(s, 2, &cancelled).size(), s.size());

    auto tried = r.trySweep(s, 2, &cancelled);
    ASSERT_FALSE(tried.ok());
    EXPECT_TRUE(tried.error().cancelled);
    EXPECT_NE(tried.error().message.find("cancelled"),
              std::string::npos);

    // An expired deadline behaves exactly like cancel().
    CancelToken expired;
    expired.setDeadlineAfterMs(0.0);
    EXPECT_TRUE(expired.cancelled());
    EXPECT_FALSE(r.trySweep(s, 2, &expired).ok());

    // A live token (and a far-future deadline) is a no-op: same
    // bytes as an uncancelled sweep.
    CancelToken live;
    live.setDeadlineAfterMs(600000.0);
    auto ok = r.trySweep(s, 2, &live);
    ASSERT_TRUE(ok.ok());
    EXPECT_FALSE(live.cancelled());
    expectIdentical(r.sweep(s, 2), ok.value());
}

TEST_F(SweepTest, ConcurrentRunnersShareOneProfileLibrary)
{
    // Two runners sweeping through the same ProfileLibrary at once:
    // the library's internal locking must keep profiles consistent.
    SweepSpec s;
    s.addGrid({{"mcf", "art"}}, {"MaxBIPS"}, {0.8, 0.9});
    ExperimentRunner a(lib(), dvfs());
    ExperimentRunner b(lib(), dvfs());
    std::vector<PolicyEval> ra, rb;
    ThreadPool pool(2);
    pool.parallelFor(2, [&](std::size_t i) {
        (i == 0 ? ra : rb) = (i == 0 ? a : b).sweep(s, 2);
    });
    expectIdentical(ra, rb);
}

} // namespace
} // namespace gpm
