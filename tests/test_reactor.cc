/** @file The epoll reactor transport: LineScanner framing (split
 *  reads, CRLF, overflow, fuzz vs the old rdbuf reader), the
 *  /metrics + /healthz HTTP surface, multi-reactor serving, and
 *  pipelined bursts over real loopback sockets. */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "service/line_scanner.hh"
#include "service/server.hh"

namespace gpm
{
namespace
{

// ---------------------------------------------------------------
// LineScanner unit tests
// ---------------------------------------------------------------

/** Feed @p chunk and collect every complete line framed so far. */
std::vector<std::string>
scanFeed(LineScanner &sc, std::string_view chunk,
         std::size_t maxLine = 1 << 20)
{
    char *p = sc.writePtr(chunk.size() ? chunk.size() : 1);
    std::memcpy(p, chunk.data(), chunk.size());
    sc.commit(chunk.size());
    std::vector<std::string> lines;
    std::string_view v;
    while (sc.next(v, maxLine) == LineScanner::Scan::Line)
        lines.emplace_back(v);
    return lines;
}

/**
 * The old TcpStream::readLine framing, verbatim: append to a
 * string rdbuf, find('\n'), erase(0, nl + 1), strip one trailing
 * '\r'. The fuzz test below asserts the zero-copy scanner yields a
 * byte-identical request stream.
 */
struct RdbufReader
{
    std::string rdbuf;

    std::vector<std::string>
    feed(std::string_view chunk)
    {
        rdbuf.append(chunk);
        std::vector<std::string> lines;
        for (;;) {
            std::size_t nl = rdbuf.find('\n');
            if (nl == std::string::npos)
                break;
            std::string line = rdbuf.substr(0, nl);
            rdbuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            lines.push_back(std::move(line));
        }
        return lines;
    }
};

TEST(LineScannerTest, SplitAcrossEveryReadBoundary)
{
    const std::string stream = "alpha\nbeta gamma\n\ndelta\n";
    const std::vector<std::string> want = {"alpha", "beta gamma",
                                           "", "delta"};
    for (std::size_t cut = 0; cut <= stream.size(); cut++) {
        LineScanner sc;
        std::vector<std::string> got =
            scanFeed(sc, std::string_view(stream).substr(0, cut));
        for (auto &l :
             scanFeed(sc, std::string_view(stream).substr(cut)))
            got.push_back(std::move(l));
        EXPECT_EQ(got, want) << "split at " << cut;
        EXPECT_EQ(sc.buffered(), 0u);
    }
}

TEST(LineScannerTest, CrlfIsTolerated)
{
    LineScanner sc;
    auto got = scanFeed(sc, "crlf\r\nbare\ninner\rkept\r\n");
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], "crlf");
    EXPECT_EQ(got[1], "bare");
    // Only ONE trailing '\r' is stripped; an interior '\r' is data.
    EXPECT_EQ(got[2], "inner\rkept");
}

TEST(LineScannerTest, CrLfSplitBetweenReads)
{
    LineScanner sc;
    EXPECT_TRUE(scanFeed(sc, "line\r").empty());
    auto got = scanFeed(sc, "\nnext\n");
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "line");
    EXPECT_EQ(got[1], "next");
}

TEST(LineScannerTest, ManyLinesInOneRead)
{
    LineScanner sc;
    std::string burst;
    for (int i = 0; i < 1000; i++)
        burst += "line-" + std::to_string(i) + "\n";
    auto got = scanFeed(sc, burst);
    ASSERT_EQ(got.size(), 1000u);
    EXPECT_EQ(got[0], "line-0");
    EXPECT_EQ(got[999], "line-999");
    EXPECT_EQ(sc.buffered(), 0u);
    EXPECT_GE(sc.highWater(), burst.size());
}

TEST(LineScannerTest, OverflowMidBufferAndRecoveryViaReset)
{
    const std::size_t kMax = 64;
    LineScanner sc;
    std::string_view v;

    // A good line followed by the head of a monster one, arriving
    // in the same read: the good line frames, then the partial
    // overrun reports Overflow once enough is buffered.
    auto got = scanFeed(sc, "good\n" + std::string(50, 'x'), kMax);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], "good");
    EXPECT_EQ(sc.next(v, kMax), LineScanner::Scan::NeedMore);

    std::string more(40, 'x'); // 90 buffered > 64, still no '\n'
    std::memcpy(sc.writePtr(more.size()), more.data(),
                more.size());
    sc.commit(more.size());
    EXPECT_EQ(sc.next(v, kMax), LineScanner::Scan::Overflow);

    // The caller answers once, closes, and resets; the scanner is
    // reusable for a fresh connection.
    sc.reset();
    EXPECT_EQ(sc.buffered(), 0u);
    auto after = scanFeed(sc, "back\n", kMax);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], "back");
}

TEST(LineScannerTest, CompleteLineOverCapIsOverflowToo)
{
    const std::size_t kMax = 16;
    LineScanner sc;
    std::string_view v;
    std::string line = std::string(100, 'y') + "\n";
    std::memcpy(sc.writePtr(line.size()), line.data(),
                line.size());
    sc.commit(line.size());
    EXPECT_EQ(sc.next(v, kMax), LineScanner::Scan::Overflow);
}

TEST(LineScannerTest, FuzzRandomChunkingMatchesRdbufReader)
{
    std::mt19937 rng(20260808);
    for (int round = 0; round < 20; round++) {
        // A stream of lines of wildly varying length, with empty
        // lines, CRLF endings and interior '\r' bytes mixed in.
        std::string stream;
        std::uniform_int_distribution<int> lenDist(0, 300);
        std::uniform_int_distribution<int> chDist(32, 126);
        std::uniform_int_distribution<int> coin(0, 3);
        int nLines = 50 + static_cast<int>(rng() % 100);
        for (int i = 0; i < nLines; i++) {
            int len = lenDist(rng);
            for (int j = 0; j < len; j++) {
                char ch = static_cast<char>(chDist(rng));
                if (coin(rng) == 0)
                    ch = '\r'; // interior CR is data
                stream += ch;
            }
            stream += coin(rng) == 0 ? "\r\n" : "\n";
        }

        LineScanner sc;
        RdbufReader ref;
        std::vector<std::string> got, want;
        std::size_t pos = 0;
        while (pos < stream.size()) {
            std::uniform_int_distribution<std::size_t> cut(
                1, std::min<std::size_t>(stream.size() - pos,
                                         round % 2 ? 4096 : 7));
            std::size_t n = cut(rng);
            std::string_view chunk(stream.data() + pos, n);
            pos += n;
            for (auto &l : scanFeed(sc, chunk))
                got.push_back(std::move(l));
            for (auto &l : ref.feed(chunk))
                want.push_back(std::move(l));
        }
        ASSERT_EQ(got, want) << "round " << round;
        EXPECT_EQ(sc.buffered(), ref.rdbuf.size());
    }
}

// ---------------------------------------------------------------
// Reactor server end-to-end
// ---------------------------------------------------------------

class ReactorServerTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    void
    startServer(ServerOptions opts, bool withMetrics)
    {
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        ASSERT_TRUE(listener.ok()) << listener.error();
        svc = std::make_unique<ScenarioService>(lib(), dvfs());
        server = std::make_unique<GpmServer>(
            *svc, std::move(listener.value()), opts);
        if (withMetrics) {
            auto ml = TcpListener::listenOn("127.0.0.1", 0);
            ASSERT_TRUE(ml.ok()) << ml.error();
            server->attachMetricsListener(std::move(ml.value()));
            metricsPort = server->metricsPort();
            ASSERT_NE(metricsPort, 0);
        }
        port = server->port();
        ASSERT_NE(port, 0);
        acceptThread = std::thread([this] { server->run(); });
    }

    void
    TearDown() override
    {
        if (!server)
            return;
        server->requestStop();
        if (acceptThread.joinable())
            acceptThread.join();
        server->stopAndDrain();
        server.reset();
        svc.reset();
    }

    TcpStream
    connect(std::uint16_t p)
    {
        auto conn = TcpStream::connectTo("127.0.0.1", p);
        EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
        return conn.ok() ? std::move(conn.value()) : TcpStream();
    }

    std::string
    roundTrip(TcpStream &stream, const std::string &line)
    {
        EXPECT_TRUE(stream.writeAll(line + "\n"));
        std::string response;
        EXPECT_EQ(stream.readLine(response),
                  TcpStream::ReadStatus::Line);
        return response;
    }

    /** One HTTP exchange: request @p target, return status line +
     *  headers + body (readLine-framed, CR stripped). */
    std::string
    httpGet(const std::string &target,
            const std::string &method = "GET")
    {
        TcpStream s = connect(metricsPort);
        EXPECT_TRUE(s.writeAll(method + " " + target +
                               " HTTP/1.0\r\n"
                               "Host: test\r\n\r\n"));
        std::string all, line;
        for (;;) {
            auto st = s.readLine(line);
            if (st != TcpStream::ReadStatus::Line)
                break;
            all += line;
            all += '\n';
        }
        return all;
    }

    std::unique_ptr<ScenarioService> svc;
    std::unique_ptr<GpmServer> server;
    std::thread acceptThread;
    std::uint16_t port = 0;
    std::uint16_t metricsPort = 0;
};

TEST_F(ReactorServerTest, HealthzAnswersOk)
{
    startServer(ServerOptions{}, /*withMetrics=*/true);
    std::string resp = httpGet("/healthz");
    EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\nok\n"), std::string::npos) << resp;
}

TEST_F(ReactorServerTest, MetricsExposesEveryServiceCounter)
{
    startServer(ServerOptions{}, /*withMetrics=*/true);

    // Generate a little traffic first so the transport counters
    // are non-trivially populated.
    TcpStream c = connect(port);
    roundTrip(c, R"({"id":1,"verb":"ping"})");

    std::string resp = httpGet("/metrics");
    EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
    // Every ServiceStats field, as rendered by prom.cc.
    for (const char *name : {
             "gpm_served_total", "gpm_cache_hits_total",
             "gpm_cache_misses_total", "gpm_rejected_busy_total",
             "gpm_invalid_total", "gpm_shed_deadline_total",
             "gpm_worker_crashes_total",
             "gpm_batch_requests_total", "gpm_disk_hits_total",
             "gpm_disk_evictions_total",
             "gpm_disk_quarantined_total",
             "gpm_cancelled_mid_sweep_total",
             "gpm_cluster_requests_total",
             "gpm_cluster_epochs_total", "gpm_chip_sims_total",
             "gpm_profile_builds_total",
             "gpm_profile_disk_hits_total",
             "gpm_profile_build_ms_total", "gpm_profile_ready",
             "gpm_profile_quarantined_total",
             "gpm_shed_overload_total",
             "gpm_degraded_requests_total",
             "gpm_disk_breaker_refusals_total",
             "gpm_disk_breaker_opens_total",
             "gpm_profile_breaker_refusals_total",
             "gpm_profile_breaker_opens_total",
             "gpm_breaker_state", "gpm_workers_alive",
             "gpm_queue_depth", "gpm_in_flight", "gpm_cache_size",
             "gpm_disk_entries", "gpm_disk_bytes",
             "gpm_uptime_seconds", "gpm_cache_hit_rate",
             // reactor transport
             "gpm_connections_total", "gpm_requests_total",
             "gpm_idle_reaped_total", "gpm_line_too_long_total",
             "gpm_epoll_wakeups_total", "gpm_bytes_in_total",
             "gpm_bytes_out_total", "gpm_accept_sheds_total",
             "gpm_open_connections",
             "gpm_ring_buffer_high_water",
             "gpm_reactor_threads",
         })
        EXPECT_NE(resp.find(name), std::string::npos)
            << "missing metric " << name;

    // The ping above must be visible in the transport counters.
    EXPECT_NE(resp.find("gpm_requests_total 1"),
              std::string::npos)
        << resp;
    // Exactly one state sample per breaker is 1.
    EXPECT_NE(
        resp.find("gpm_breaker_state{breaker=\"disk\","
                  "state=\"closed\"} 1"),
        std::string::npos);
}

TEST_F(ReactorServerTest, MetricsSurfaceRejectsOtherRequests)
{
    startServer(ServerOptions{}, /*withMetrics=*/true);
    EXPECT_NE(httpGet("/nope").find("HTTP/1.0 404"),
              std::string::npos);
    EXPECT_NE(httpGet("/metrics", "POST").find("HTTP/1.0 405"),
              std::string::npos);
}

TEST_F(ReactorServerTest, RequestSplitAcrossManyWritesFrames)
{
    startServer(ServerOptions{}, /*withMetrics=*/false);
    TcpStream c = connect(port);
    const std::string req = R"({"id":7,"verb":"ping"})"
                            "\n";
    // Dribble the request one byte at a time: the reactor must
    // frame it exactly once, whenever the '\n' finally lands.
    for (char ch : req)
        ASSERT_TRUE(c.writeAll(std::string_view(&ch, 1)));
    std::string response;
    ASSERT_EQ(c.readLine(response), TcpStream::ReadStatus::Line);
    EXPECT_NE(response.find("\"pong\":true"), std::string::npos);
    EXPECT_NE(response.find("\"id\":7"), std::string::npos);
}

TEST_F(ReactorServerTest, PipelinedBurstAnswersEveryRequest)
{
    startServer(ServerOptions{}, /*withMetrics=*/false);
    TcpStream c = connect(port);
    const int kPings = 500;
    std::string burst;
    for (int i = 0; i < kPings; i++)
        burst += "{\"id\":" + std::to_string(i) +
                 ",\"verb\":\"ping\"}\n";
    ASSERT_TRUE(c.writeAll(burst));
    for (int i = 0; i < kPings; i++) {
        std::string response;
        ASSERT_EQ(c.readLine(response),
                  TcpStream::ReadStatus::Line)
            << "response " << i;
        EXPECT_NE(response.find("\"pong\":true"),
                  std::string::npos);
    }
    EXPECT_GE(server->requestCount(),
              static_cast<std::uint64_t>(kPings));
}

TEST_F(ReactorServerTest, MultipleReactorThreadsServeConcurrently)
{
    ServerOptions opts;
    opts.reactorThreads = 3;
    startServer(opts, /*withMetrics=*/true);

    const int kConns = 12;
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int i = 0; i < kConns; i++)
        clients.emplace_back([&, i] {
            auto conn = TcpStream::connectTo("127.0.0.1", port);
            if (!conn.ok())
                return;
            TcpStream s = std::move(conn.value());
            std::string req = "{\"id\":" + std::to_string(i) +
                              ",\"verb\":\"ping\"}\n";
            if (!s.writeAll(req))
                return;
            std::string response;
            if (s.readLine(response) !=
                    TcpStream::ReadStatus::Line ||
                response.find("\"pong\":true") ==
                    std::string::npos)
                return;
            ok++;
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), kConns);
    EXPECT_GE(server->connectionCount(),
              static_cast<std::uint64_t>(kConns));

    // The gauge must agree that the threads exist.
    std::string resp = httpGet("/metrics");
    EXPECT_NE(resp.find("gpm_reactor_threads 3"),
              std::string::npos)
        << resp;
}

} // namespace
} // namespace gpm
