/** @file End-to-end invariants over real (scaled-down) workloads:
 *  the paper's qualitative results must hold on small inputs. */

#include <gtest/gtest.h>

#include "metrics/experiment.hh"
#include "trace/workload.hh"

namespace gpm
{
namespace
{

/** Shared scaled-down profile library (built once per process). */
class E2eTest : public ::testing::Test
{
  protected:
    static constexpr double scale = 0.05;

    static ProfileLibrary &
    lib()
    {
        static DvfsTable dvfs = DvfsTable::classic3();
        static ProfileLibrary l(dvfs, scale);
        return l;
    }

    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    ExperimentRunner
    runner()
    {
        return ExperimentRunner(lib(), dvfs());
    }
};

TEST_F(E2eTest, AllPoliciesMeetFeasibleBudgets)
{
    auto r = runner();
    auto combo = combination("4way1");
    for (const char *pol :
         {"MaxBIPS", "Priority", "PullHiPushLo", "ChipWideDVFS"}) {
        for (double b : {0.7, 0.85, 1.0}) {
            auto ev = r.evaluate(combo, pol, b);
            EXPECT_LE(ev.metrics.powerOverBudget, 1.06)
                << pol << " @ " << b;
        }
    }
}

TEST_F(E2eTest, DegradationDecreasesWithBudget)
{
    auto r = runner();
    auto combo = combination("4way1");
    double prev = 1.0;
    for (double b : {0.65, 0.75, 0.85, 0.95}) {
        auto ev = r.evaluate(combo, "MaxBIPS", b);
        EXPECT_LE(ev.metrics.perfDegradation, prev + 0.01);
        prev = ev.metrics.perfDegradation;
    }
    // Near-unlimited budget: negligible degradation.
    auto ev = r.evaluate(combo, "MaxBIPS", 1.1);
    EXPECT_LT(ev.metrics.perfDegradation, 0.01);
}

TEST_F(E2eTest, MaxBipsBeatsChipWideOnHeterogeneousMix)
{
    auto r = runner();
    auto combo = combination("4way1"); // ammp mcf crafty art
    double mb = 0.0, cw = 0.0;
    for (double b : {0.7, 0.8, 0.9}) {
        mb += r.evaluate(combo, "MaxBIPS", b).metrics
                  .perfDegradation;
        cw += r.evaluate(combo, "ChipWideDVFS", b).metrics
                  .perfDegradation;
    }
    EXPECT_LT(mb, cw);
}

TEST_F(E2eTest, OracleWithinNoiseOfOrBetterThanMaxBips)
{
    auto r = runner();
    auto combo = combination("4way1");
    for (double b : {0.7, 0.8, 0.9}) {
        auto mb = r.evaluate(combo, "MaxBIPS", b);
        auto orc = r.evaluate(combo, "Oracle", b);
        // Paper: MaxBIPS within ~1% of the oracle. Allow noise in
        // both directions at this tiny scale.
        EXPECT_NEAR(mb.metrics.perfDegradation,
                    orc.metrics.perfDegradation, 0.03)
            << "budget " << b;
    }
}

TEST_F(E2eTest, MaxBipsBeatsStaticOnPhasedWorkloads)
{
    auto r = runner();
    auto combo = combination("4way1");
    double mb = 0.0, st = 0.0;
    for (double b : {0.7, 0.8, 0.9}) {
        mb += r.evaluate(combo, "MaxBIPS", b).metrics
                  .perfDegradation;
        st += r.evaluateStatic(combo, b).metrics.perfDegradation;
    }
    // Dynamic management must not lose to static overall; the gap
    // may be small at tiny scales.
    EXPECT_LT(mb, st + 0.01);
}

TEST_F(E2eTest, MemoryBoundComboDegradesLessThanCpuBound)
{
    auto r = runner();
    // Very memory-bound combination vs very CPU-bound combination.
    auto mem = r.evaluate(combination("4way4"), "MaxBIPS", 0.7);
    auto cpu = r.evaluate(combination("4way3"), "MaxBIPS", 0.7);
    EXPECT_LT(mem.metrics.perfDegradation,
              cpu.metrics.perfDegradation);
}

TEST_F(E2eTest, SavingsToDegradationBeats3To1ForMaxBips)
{
    auto r = runner();
    auto combo = combination("4way1");
    auto ev = r.evaluate(combo, "MaxBIPS", 0.8);
    ASSERT_GT(ev.metrics.perfDegradation, 0.0);
    double ratio =
        ev.metrics.powerSavings / ev.metrics.perfDegradation;
    EXPECT_GT(ratio, 3.0);
}

TEST_F(E2eTest, WeightedSlowdownTracksDegradation)
{
    auto r = runner();
    auto combo = combination("4way1");
    auto lo = r.evaluate(combo, "MaxBIPS", 0.7);
    auto hi = r.evaluate(combo, "MaxBIPS", 0.95);
    EXPECT_GT(lo.metrics.weightedSlowdown,
              hi.metrics.weightedSlowdown - 0.005);
    EXPECT_GE(lo.metrics.weightedSlowdown, -0.02);
}

TEST_F(E2eTest, TwoWayAndEightWayRun)
{
    auto r = runner();
    auto ev2 = r.evaluate(combination("2way4"), "MaxBIPS", 0.8);
    auto ev8 = r.evaluate(combination("8way1"), "MaxBIPS", 0.8);
    EXPECT_LE(ev2.metrics.powerOverBudget, 1.08);
    EXPECT_LE(ev8.metrics.powerOverBudget, 1.08);
}

TEST_F(E2eTest, PredictionErrorsReasonable)
{
    auto r = runner();
    auto ev = r.evaluate(combination("4way1"), "MaxBIPS", 0.8);
    // Power predictions should be much tighter than BIPS ones
    // (paper: 0.1-0.3% vs 2-4%); tolerances widened for the tiny
    // test scale where phases churn faster.
    EXPECT_LT(ev.predPowerError, 0.10);
    EXPECT_LT(ev.predBipsError, 0.30);
    EXPECT_GT(ev.predBipsError, ev.predPowerError);
}

TEST_F(E2eTest, TimelineBudgetDropScenario)
{
    auto r = runner();
    BudgetSchedule sched({{0.0, 0.9}, {500.0, 0.7}});
    auto res =
        r.timeline(combination("4way1"), "MaxBIPS", sched);
    ASSERT_GT(res.timeline.size(), 15u);
    Watts ref = r.referencePowerW(combination("4way1"));
    double late_power = 0.0;
    int late_n = 0;
    for (const auto &tp : res.timeline) {
        if (tp.tUs > 700.0) {
            late_power += tp.totalPowerW;
            late_n++;
        }
    }
    ASSERT_GT(late_n, 0);
    EXPECT_LT(late_power / late_n, 0.78 * ref);
}

} // namespace
} // namespace gpm
