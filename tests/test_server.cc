/** @file gpmd's protocol layer over real loopback sockets: an
 *  in-process GpmServer on an ephemeral port driven with TcpStream —
 *  ping/stats/submit verbs, byte-identical cached resubmits,
 *  malformed-line rejection, and graceful stop. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "service/server.hh"

namespace gpm
{
namespace
{

class ServerTest : public ::testing::Test
{
  protected:
    static DvfsTable &
    dvfs()
    {
        static DvfsTable d = DvfsTable::classic3();
        return d;
    }

    static ProfileLibrary &
    lib()
    {
        static ProfileLibrary l(dvfs(), 0.03);
        return l;
    }

    void
    SetUp() override
    {
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        ASSERT_TRUE(listener.ok()) << listener.error();
        svc = std::make_unique<ScenarioService>(lib(), dvfs());
        server = std::make_unique<GpmServer>(
            *svc, std::move(listener.value()));
        port = server->port();
        ASSERT_NE(port, 0);
        acceptThread = std::thread([this] { server->run(); });
    }

    void
    TearDown() override
    {
        server->requestStop();
        if (acceptThread.joinable())
            acceptThread.join();
        server->stopAndDrain();
        server.reset();
        svc.reset();
    }

    /** Open a connection, send one line, return the response line. */
    std::string
    roundTrip(TcpStream &stream, const std::string &line)
    {
        EXPECT_TRUE(stream.writeAll(line + "\n"));
        std::string response;
        EXPECT_EQ(stream.readLine(response),
                  TcpStream::ReadStatus::Line);
        return response;
    }

    TcpStream
    connect()
    {
        auto conn = TcpStream::connectTo("127.0.0.1", port);
        EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
        return conn.ok() ? std::move(conn.value()) : TcpStream();
    }

    static json::Value
    parseOk(const std::string &text)
    {
        auto r = json::parse(text);
        EXPECT_TRUE(r.ok()) << text;
        return r.ok() ? r.value() : json::Value();
    }

    std::unique_ptr<ScenarioService> svc;
    std::unique_ptr<GpmServer> server;
    std::uint16_t port = 0;
    std::thread acceptThread;
};

TEST_F(ServerTest, PingEchoesIdAndPongs)
{
    TcpStream c = connect();
    json::Value r =
        parseOk(roundTrip(c, R"({"id": 7, "verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("id")->asNumber(), 7.0);
    EXPECT_TRUE(r.find("result")->find("pong")->asBool());
}

TEST_F(ServerTest, SubmitThenCachedResubmitIsByteIdentical)
{
    const std::string submit =
        R"({"id": "a", "verb": "submit", "scenario": )"
        R"({"combo": ["mcf"], "policy": "MaxBIPS", )"
        R"("budget": 0.8}})";

    TcpStream c = connect();
    std::string first_line = roundTrip(c, submit);
    json::Value first = parseOk(first_line);
    ASSERT_TRUE(first.find("ok")->asBool()) << first_line;
    EXPECT_FALSE(first.find("cached")->asBool());
    const json::Value *result = first.find("result");
    ASSERT_TRUE(result);
    EXPECT_TRUE(result->find("results")->isArray());

    // Resubmit on a second connection: served from cache with an
    // identical "result" field (the line differs only in "cached").
    TcpStream c2 = connect();
    json::Value second = parseOk(roundTrip(c2, submit));
    ASSERT_TRUE(second.find("ok")->asBool());
    EXPECT_TRUE(second.find("cached")->asBool());
    EXPECT_EQ(second.find("result")->canonical(),
              result->canonical());

    // The stats verb sees the hit.
    json::Value stats = parseOk(
        roundTrip(c, R"({"verb": "stats"})"));
    const json::Value *sr = stats.find("result");
    ASSERT_TRUE(sr);
    EXPECT_EQ(sr->find("cacheHits")->asNumber(), 1.0);
    EXPECT_EQ(sr->find("cacheMisses")->asNumber(), 1.0);
    EXPECT_EQ(sr->find("served")->asNumber(), 2.0);
    EXPECT_GE(sr->find("uptimeSec")->asNumber(), 0.0);
    EXPECT_GE(sr->find("connections")->asNumber(), 2.0);
}

TEST_F(ServerTest, MalformedAndInvalidLinesGetStructuredErrors)
{
    TcpStream c = connect();

    json::Value r = parseOk(roundTrip(c, "{nonsense"));
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("error")->find("code")->asString(), "parse");

    r = parseOk(roundTrip(c, R"({"verb": "frobnicate"})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    r = parseOk(roundTrip(c, R"({"verb": "submit"})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    r = parseOk(roundTrip(
        c, R"({"verb": "submit", "scenario": )"
           R"({"combo": ["mcf"], "policy": "Nope", )"
           R"("budget": 0.8}})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");
    EXPECT_NE(r.find("error")->find("message")->asString().find(
                  "Nope"),
              std::string::npos);

    r = parseOk(roundTrip(c, R"({"verb": "ping", "extra": 1})"));
    EXPECT_EQ(r.find("error")->find("code")->asString(),
              "invalid");

    // The connection survives every error and still pings.
    r = parseOk(roundTrip(c, R"({"verb": "ping"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
}

TEST_F(ServerTest, MultipleRequestsPerConnectionAndCounters)
{
    TcpStream c = connect();
    for (int i = 0; i < 3; i++) {
        json::Value r =
            parseOk(roundTrip(c, R"({"verb": "ping"})"));
        EXPECT_TRUE(r.find("ok")->asBool());
    }
    EXPECT_GE(server->requestCount(), 3u);
    EXPECT_GE(server->connectionCount(), 1u);
}

TEST_F(ServerTest, DrainDeliversInFlightResponseAndClosesIdleConn)
{
    // One connection that goes silent...
    TcpStream idle = connect();
    // ...while another holds a submit in flight.
    TcpStream busy = connect();
    ASSERT_TRUE(busy.writeAll(
        R"({"id": "inflight", "verb": "submit", "scenario": )"
        R"({"combo": ["mcf"], "policy": "MaxBIPS", )"
        R"("budget": 0.8}})"
        "\n"));
    // Wait until the request is queued or being computed, so the
    // drain genuinely races live work.
    for (int i = 0; i < 5000; i++) {
        ServiceStats s = svc->stats();
        if (s.inFlight > 0 || s.queueDepth > 0 || s.served > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // The SIGTERM path: stop accepting, then drain.
    server->requestStop();
    if (acceptThread.joinable())
        acceptThread.join();
    server->stopAndDrain();

    // The in-flight submit was answered before its socket closed.
    std::string response;
    ASSERT_EQ(busy.readLine(response),
              TcpStream::ReadStatus::Line);
    json::Value r = parseOk(response);
    EXPECT_TRUE(r.find("ok")->asBool()) << response;

    // The idle connection was shut down, not left hanging.
    std::string none;
    EXPECT_EQ(idle.readLine(none), TcpStream::ReadStatus::Eof);
}

TEST_F(ServerTest, ShutdownVerbStopsAcceptLoop)
{
    TcpStream c = connect();
    json::Value r =
        parseOk(roundTrip(c, R"({"verb": "shutdown"})"));
    EXPECT_TRUE(r.find("ok")->asBool());
    EXPECT_TRUE(r.find("result")->find("stopping")->asBool());
    // The accept loop exits on its own; TearDown joins it.
    if (acceptThread.joinable())
        acceptThread.join();
}

} // namespace
} // namespace gpm
