/** @file Unit tests for DVFS operating points and budget schedules
 *  (validates paper Tables 3, 4 and 5 quantities). */

#include <gtest/gtest.h>

#include "power/dvfs.hh"

namespace gpm
{
namespace
{

TEST(DvfsTable, Classic3ModeCount)
{
    auto t = DvfsTable::classic3();
    EXPECT_EQ(t.numModes(), 3u);
    EXPECT_EQ(t.slowest(), modes::Eff2);
}

TEST(DvfsTable, Classic3Voltages)
{
    // Paper Section 5.1: nominal 1.300 V; Eff1 1.235 V; Eff2 1.105 V.
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.voltage(modes::Turbo), 1.300, 1e-9);
    EXPECT_NEAR(t.voltage(modes::Eff1), 1.235, 1e-9);
    EXPECT_NEAR(t.voltage(modes::Eff2), 1.105, 1e-9);
}

TEST(DvfsTable, Classic3Frequencies)
{
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.frequency(modes::Turbo), 1.0e9, 1);
    EXPECT_NEAR(t.frequency(modes::Eff1), 0.95e9, 1);
    EXPECT_NEAR(t.frequency(modes::Eff2), 0.85e9, 1);
}

TEST(DvfsTable, PowerScaleIsCubic)
{
    // Paper Table 4: Eff1 saves ~14.3%, Eff2 saves ~38.6% (ideal).
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.powerScale(modes::Turbo), 1.0, 1e-12);
    EXPECT_NEAR(t.powerScale(modes::Eff1), 0.857375, 1e-9);
    EXPECT_NEAR(t.powerScale(modes::Eff2), 0.614125, 1e-9);
}

TEST(DvfsTable, PerfScaleIsLinear)
{
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.perfScale(modes::Eff1), 0.95, 1e-12);
    EXPECT_NEAR(t.perfScale(modes::Eff2), 0.85, 1e-12);
}

TEST(DvfsTable, Table5TransitionOverheads)
{
    // Paper Table 5: 65 mV -> 6.5 us; 130 mV -> 13 us;
    // 195 mV -> 19.5 us at 10 mV/us.
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.transitionUs(modes::Turbo, modes::Eff1), 6.5, 1e-9);
    EXPECT_NEAR(t.transitionUs(modes::Eff1, modes::Eff2), 13.0, 1e-9);
    EXPECT_NEAR(t.transitionUs(modes::Turbo, modes::Eff2), 19.5,
                1e-9);
}

TEST(DvfsTable, TransitionsSymmetric)
{
    auto t = DvfsTable::classic3();
    for (PowerMode a = 0; a < 3; a++)
        for (PowerMode b = 0; b < 3; b++)
            EXPECT_DOUBLE_EQ(t.transitionUs(a, b),
                             t.transitionUs(b, a));
}

TEST(DvfsTable, TransitionToSelfIsFree)
{
    auto t = DvfsTable::classic3();
    for (PowerMode m = 0; m < 3; m++)
        EXPECT_DOUBLE_EQ(t.transitionUs(m, m), 0.0);
}

TEST(DvfsTable, MaxTransition)
{
    auto t = DvfsTable::classic3();
    EXPECT_NEAR(t.maxTransitionUs(), 19.5, 1e-9);
}

TEST(DvfsTable, LinearTableSpansRange)
{
    auto t = DvfsTable::linear(5, 0.85);
    EXPECT_EQ(t.numModes(), 5u);
    EXPECT_NEAR(t.point(0).fScale, 1.0, 1e-12);
    EXPECT_NEAR(t.point(4).fScale, 0.85, 1e-12);
    // Evenly spaced.
    EXPECT_NEAR(t.point(2).fScale, 0.925, 1e-12);
}

TEST(DvfsTable, LinearSingleMode)
{
    auto t = DvfsTable::linear(1);
    EXPECT_EQ(t.numModes(), 1u);
    EXPECT_NEAR(t.point(0).fScale, 1.0, 1e-12);
}

TEST(DvfsTable, ValidChecksRange)
{
    auto t = DvfsTable::classic3();
    EXPECT_TRUE(t.valid(0));
    EXPECT_TRUE(t.valid(2));
    EXPECT_FALSE(t.valid(3));
}

class DvfsModeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DvfsModeSweep, LinearTablesMonotone)
{
    int n = GetParam();
    auto t = DvfsTable::linear(static_cast<std::size_t>(n), 0.7);
    for (int m = 1; m < n; m++) {
        auto lo = static_cast<PowerMode>(m);
        auto hi = static_cast<PowerMode>(m - 1);
        EXPECT_LT(t.frequency(lo), t.frequency(hi));
        EXPECT_LT(t.powerScale(lo), t.powerScale(hi));
        EXPECT_LT(t.perfScale(lo), t.perfScale(hi));
        EXPECT_GT(t.transitionUs(0, lo), t.transitionUs(0, hi));
    }
}

INSTANTIATE_TEST_SUITE_P(ModeCounts, DvfsModeSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(BudgetSchedule, ConstantBudget)
{
    BudgetSchedule b(0.8);
    EXPECT_DOUBLE_EQ(b.at(0.0), 0.8);
    EXPECT_DOUBLE_EQ(b.at(1e9), 0.8);
    EXPECT_DOUBLE_EQ(b.initial(), 0.8);
}

TEST(BudgetSchedule, StepSchedule)
{
    // The Figure 6 scenario: 90% dropping to 70% mid-run.
    BudgetSchedule b({{0.0, 0.9}, {5000.0, 0.7}});
    EXPECT_DOUBLE_EQ(b.at(0.0), 0.9);
    EXPECT_DOUBLE_EQ(b.at(4999.0), 0.9);
    EXPECT_DOUBLE_EQ(b.at(5000.0), 0.7);
    EXPECT_DOUBLE_EQ(b.at(1e7), 0.7);
}

TEST(BudgetSchedule, MultiStep)
{
    BudgetSchedule b({{0.0, 1.0}, {100.0, 0.8}, {200.0, 0.6}});
    EXPECT_DOUBLE_EQ(b.at(150.0), 0.8);
    EXPECT_DOUBLE_EQ(b.at(250.0), 0.6);
}

} // namespace
} // namespace gpm
