/** @file Integration tests for the full-CMP (shared L2, multiple
 *  clock domain) model. Uses small length scales. */

#include <gtest/gtest.h>

#include "fullsim/cmp_system.hh"

namespace gpm
{
namespace
{

class FullSimTest : public ::testing::Test
{
  protected:
    FullSimTest() : dvfs(DvfsTable::classic3()) {}

    FullSimConfig
    smallCfg(double scale = 0.005)
    {
        FullSimConfig cfg;
        cfg.lengthScale = scale;
        return cfg;
    }

    DvfsTable dvfs;
};

TEST_F(FullSimTest, TwoCoreStaticRunCompletes)
{
    CmpSystem sys({"mcf", "crafty"}, dvfs, smallCfg());
    auto r = sys.runStatic({modes::Turbo, modes::Turbo});
    EXPECT_GT(r.endUs, 0.0);
    EXPECT_GT(r.coreInstructions[0], 0.0);
    EXPECT_GT(r.coreInstructions[1], 0.0);
    EXPECT_GT(r.avgCorePowerW(), 0.0);
}

TEST_F(FullSimTest, SharedL2SeesTrafficFromBothCores)
{
    CmpSystem sys({"art", "mcf"}, dvfs, smallCfg());
    auto r = sys.runStatic({modes::Turbo, modes::Turbo});
    EXPECT_GT(r.coreL2Accesses[0], 0u);
    EXPECT_GT(r.coreL2Accesses[1], 0u);
    EXPECT_GT(r.coreL2Misses[0], 0u);
    EXPECT_GT(sys.sharedL2().cacheStats().accesses, 0u);
}

TEST_F(FullSimTest, BusQueueingNonZeroWithMemoryHogs)
{
    CmpSystem sys({"art", "art", "mcf", "mcf"}, dvfs, smallCfg());
    auto r = sys.runStatic(std::vector<PowerMode>(4, modes::Turbo));
    EXPECT_GT(r.avgBusQueueNs, 0.0);
}

TEST_F(FullSimTest, CapacityContentionRaisesMissRate)
{
    // mcf co-run with three memory hogs vs with compute-bound
    // crafty: the shared L2 must show more misses per access.
    auto miss_rate = [&](const std::vector<std::string> &combo) {
        CmpSystem sys(combo, dvfs, smallCfg());
        auto r = sys.runStatic(
            std::vector<PowerMode>(combo.size(), modes::Turbo));
        return static_cast<double>(r.coreL2Misses[0]) /
            static_cast<double>(std::max<std::uint64_t>(
                r.coreL2Accesses[0], 1));
    };
    double hogs = miss_rate({"mcf", "art", "art", "ammp"});
    double calm = miss_rate({"mcf", "crafty", "mesa", "perlbmk"});
    EXPECT_GT(hogs, calm);
}

TEST_F(FullSimTest, Eff2StaticSlowerThanTurbo)
{
    auto run_at = [&](PowerMode m) {
        CmpSystem sys({"crafty", "mesa"}, dvfs, smallCfg());
        return sys.runStatic({m, m});
    };
    auto turbo = run_at(modes::Turbo);
    auto eff2 = run_at(modes::Eff2);
    EXPECT_GT(eff2.endUs, turbo.endUs * 1.08);
    EXPECT_LT(eff2.avgCorePowerW(), turbo.avgCorePowerW() * 0.72);
}

TEST_F(FullSimTest, ManagedRunMeetsBudget)
{
    // Short workloads: use a fast 50 us explore loop so several
    // decisions land inside the run.
    FullSimConfig cfg = smallCfg(0.01);
    cfg.exploreUs = 50.0;
    CmpSystem ref_sys({"crafty", "mesa"}, dvfs, cfg);
    auto ref = ref_sys.runStatic({modes::Turbo, modes::Turbo});
    Watts ref_w = ref.avgCorePowerW();

    CmpSystem sys({"crafty", "mesa"}, dvfs, cfg);
    GlobalManager mgr(dvfs, makePolicy("MaxBIPS"), cfg.exploreUs,
                      2.0);
    auto r = sys.run(mgr, BudgetSchedule(0.8), ref_w);
    // The first 50 us run at Turbo before the first decision, so
    // allow some headroom over the budget on this short window.
    EXPECT_LT(r.avgCorePowerW(), 0.8 * ref_w * 1.15);
    EXPECT_GT(mgr.stats().decisions, 0u);
}

TEST_F(FullSimTest, PerCoreDvfsChangesClockDomains)
{
    // Mixed static modes: the Eff2 core must retire fewer
    // instructions over the common window than at Turbo.
    auto with_modes = [&](PowerMode m1) {
        CmpSystem sys({"mesa", "mesa"}, dvfs, smallCfg());
        auto r = sys.runStatic({modes::Turbo, m1});
        return r;
    };
    auto even = with_modes(modes::Turbo);
    auto uneven = with_modes(modes::Eff2);
    double ratio_even =
        even.coreInstructions[1] / even.coreInstructions[0];
    double ratio_uneven =
        uneven.coreInstructions[1] / uneven.coreInstructions[0];
    EXPECT_NEAR(ratio_even, 1.0, 0.05);
    EXPECT_LT(ratio_uneven, 0.92);
}

} // namespace
} // namespace gpm
