#!/usr/bin/env bash
# Launch a sharded gpmd fleet: N backends on ephemeral ports over a
# shared cache/profile directory tree, fronted by one gpm-router.
# Prints the router address, then waits; Ctrl-C (or SIGTERM) drains
# the router and stops the backends.
#
# Usage: scripts/fleet.sh [N] [build-dir]
#   N          backends to launch (default 2)
#   build-dir  cmake build directory (default build)
#
# Knobs (env): GPM_FLEET_PORT (router port, default 7420; 0 =
# ephemeral), GPM_FLEET_CACHE_DIR (shared result-cache directory,
# default a fresh mktemp -d), GPM_FLEET_PROFILE_DIR (shared
# profile store, default <cache>/profiles), GPM_FLEET_SCALE
# (passed as gpmd --scale), GPM_FLEET_GPMD_ARGS (extra gpmd
# flags), GPM_FLEET_ROUTER_ARGS (extra gpm-router flags).
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-2}"
BUILD="${2:-build}"
GPMD="$BUILD/src/service/gpmd"
ROUTER="$BUILD/src/router/gpm-router"

[ -x "$GPMD" ] && [ -x "$ROUTER" ] ||
    { echo "fleet: build $GPMD and $ROUTER first" >&2; exit 1; }
[ "$N" -ge 1 ] 2>/dev/null ||
    { echo "fleet: N must be a positive integer" >&2; exit 1; }

ROUTER_PORT="${GPM_FLEET_PORT:-7420}"
CACHE_DIR="${GPM_FLEET_CACHE_DIR:-$(mktemp -d /tmp/gpm_fleet_XXXXXX)}"
PROFILE_DIR="${GPM_FLEET_PROFILE_DIR:-$CACHE_DIR/profiles}"
mkdir -p "$CACHE_DIR" "$PROFILE_DIR"

LOG_DIR=$(mktemp -d /tmp/gpm_fleet_logs_XXXXXX)
PIDS=()

cleanup() {
    # Router first (drains in-flight work), then the backends.
    [ -n "${RPID:-}" ] && kill -TERM "$RPID" 2>/dev/null || true
    [ -n "${RPID:-}" ] && wait "$RPID" 2>/dev/null || true
    for pid in "${PIDS[@]}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]}"; do
        wait "$pid" 2>/dev/null || true
    done
    echo "fleet: stopped (logs in $LOG_DIR)"
}
trap cleanup EXIT INT TERM

wait_port() { # $1 = pid, $2 = log, $3 = line prefix
    local port="" i
    for i in $(seq 1 600); do
        port=$(sed -n "s/^$3: listening on .*:\([0-9]*\)$/\1/p" \
            "$2")
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$1" 2>/dev/null ||
            { echo "fleet: $3 exited early:" >&2; cat "$2" >&2
              return 1; }
        sleep 0.5
    done
    echo "fleet: $3 never listened:" >&2
    cat "$2" >&2
    return 1
}

BACKENDS=""
for i in $(seq 1 "$N"); do
    LOG="$LOG_DIR/gpmd-$i.log"
    # shellcheck disable=SC2086
    "$GPMD" --port 0 \
        --cache-dir "$CACHE_DIR" \
        --profile-cache-dir "$PROFILE_DIR" \
        ${GPM_FLEET_SCALE:+--scale "$GPM_FLEET_SCALE"} \
        ${GPM_FLEET_GPMD_ARGS:-} >"$LOG" 2>&1 &
    PIDS+=($!)
    PORT=$(wait_port "${PIDS[-1]}" "$LOG" gpmd)
    BACKENDS="${BACKENDS:+$BACKENDS,}127.0.0.1:$PORT"
    echo "fleet: backend $i on 127.0.0.1:$PORT (pid ${PIDS[-1]})"
done

RLOG="$LOG_DIR/router.log"
# shellcheck disable=SC2086
"$ROUTER" --port "$ROUTER_PORT" --backends "$BACKENDS" \
    ${GPM_FLEET_ROUTER_ARGS:-} >"$RLOG" 2>&1 &
RPID=$!
RPORT=$(wait_port "$RPID" "$RLOG" gpm-router)

echo "fleet: $N backends behind 127.0.0.1:$RPORT (router pid $RPID)"
echo "fleet: shared cache dir $CACHE_DIR"
echo "fleet: try: $BUILD/src/service/gpmctl --port $RPORT ping"
echo "fleet: Ctrl-C to drain and stop"
wait "$RPID"
