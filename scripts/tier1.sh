#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests
# (thread pool + sweep determinism). The TSan stage can be skipped
# with GPM_SKIP_TSAN=1 (e.g. on toolchains without libtsan).
#
# Usage: scripts/tier1.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: standard build + ctest =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

if [ "${GPM_SKIP_TSAN:-0}" = "1" ]; then
    echo "== tier-1: TSan stage skipped (GPM_SKIP_TSAN=1) =="
    exit 0
fi

echo "== tier-1: ThreadSanitizer build (pool + sweep tests) =="
cmake -B "$BUILD-tsan" -S . -DGPM_SANITIZE=thread
cmake --build "$BUILD-tsan" -j --target gpm_tests
# Profile building under TSan is slow; the sweep tests rebuild their
# small-scale profiles on first use, so give them a large timeout.
"$BUILD-tsan/tests/gpm_tests" \
    --gtest_filter='ThreadPool.*:SweepTest.*'

echo "== tier-1: all stages passed =="
