#!/usr/bin/env bash
# Tier-1 verification: the standard build (with GPM_WERROR=ON, so
# library warnings fail the stage) + full test suite, a
# policy-kernel smoke (many-core bench at 64 cores emitting
# well-formed NDJSON; p99 latencies reported, not gated), a gpmd
# end-to-end smoke (ephemeral port, gpmctl ping + submit + cluster
# submit + batch submit, graceful SIGTERM shutdown, then a restart
# over the same --cache-dir asserting disk-tier persistence and LRU
# eviction), a
# profile-store smoke (cold start populates --profile-cache-dir;
# a restart over the warm store must perform zero profile builds
# and serve bitwise-identical submit payloads), a chaos smoke (fault-injected daemon: worker crashes + stalled
# connections, gpmctl retries converging under a deadline,
# supervisor-restored workers, clean drain — see docs/ROBUSTNESS.md),
# a deadline smoke (worker-stall outliving a request deadline must
# cancel the sweep mid-computation), an overload smoke (a 1-worker
# daemon under a pipelined burst must shed with structured
# rejected_overload + retryAfterMs, serve at least one request a
# ladder rung down, and drain cleanly), a metrics smoke (raw-TCP
# GETs against --metrics-port: /healthz answers ok, /metrics is
# Prometheus text carrying the service counters — no curl
# dependency), a throughput smoke (the serving-path bench at small
# scale under a raised fd limit: every transport phase must finish
# with zero request errors), a shard smoke (gpm-router over two
# gpmd backends sharing a --cache-dir: submits and cache-hit
# resubmits through the router, a SIGKILLed backend failing over
# to the survivor with zero gpmctl failures, clean router drain),
# then a ThreadSanitizer build
# running the concurrency-sensitive tests (thread pool + sweep
# determinism) and the same smokes under TSan. The TSan stage can be
# skipped with GPM_SKIP_TSAN=1 (e.g. on toolchains without libtsan).
#
# Usage: scripts/tier1.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# Drive one gpmd build end to end. Both builds share the scaled
# profile cache (the fingerprint is build-type independent), so the
# TSan daemon does not re-profile.
SMOKE_SCALE=0.03
SMOKE_CACHE="$PWD/$BUILD/gpm_profiles_smoke.bin"

# Wait until the daemon ($1 = pid, $2 = log) prints
# "gpmd: listening on HOST:PORT" (profile building first runs at
# most once per cache file) and echo the port.
wait_gpmd_port() {
    local pid=$1 log=$2 port="" i
    for i in $(seq 1 600); do
        port=$(sed -n 's/^gpmd: listening on .*:\([0-9]*\)$/\1/p' \
            "$log")
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null ||
            { echo "gpmd exited early:" >&2; cat "$log" >&2
              return 1; }
        sleep 0.5
    done
    echo "gpmd never listened:" >&2
    cat "$log" >&2
    return 1
}

# Echo the HTTP metrics port once the daemon ($1 = pid, $2 = log)
# prints "gpmd: metrics on HOST:PORT".
wait_gpmd_metrics_port() {
    local pid=$1 log=$2 port="" i
    for i in $(seq 1 600); do
        port=$(sed -n 's/^gpmd: metrics on .*:\([0-9]*\)$/\1/p' \
            "$log")
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null ||
            { echo "gpmd exited early:" >&2; cat "$log" >&2
              return 1; }
        sleep 0.5
    done
    echo "gpmd never exposed metrics:" >&2
    cat "$log" >&2
    return 1
}

# Raw-TCP HTTP/1.0 GET ($1 = port, $2 = path) over /dev/tcp — the
# metrics surface must be scrapeable without curl on the box.
http_get() {
    local port=$1 path=$2
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
    timeout 30 cat <&3
    exec 3<&- 3>&-
}

# Graceful shutdown ($1 = pid, $2 = log): SIGTERM must drain and
# exit 0 with a clean shutdown line.
stop_gpmd() {
    local pid=$1 log=$2 rc=0
    kill -TERM "$pid"
    wait "$pid" || rc=$?
    [ "$rc" -eq 0 ] ||
        { echo "gpmd exit code $rc:"; cat "$log"; return 1; }
    grep -q 'gpmd: shutdown complete' "$log" ||
        { echo "no clean shutdown:"; cat "$log"; return 1; }
}

# Poll stats until the background prewarm has every suite profile
# Ready ($1 = gpmctl, $2 = port): submits would work earlier (they
# wait per entry), but build-counter assertions need a settled
# library.
wait_profiles_ready() {
    local gpmctl=$1 port=$2 i
    for i in $(seq 1 600); do
        "$gpmctl" --port "$port" stats 2>/dev/null |
            grep -q '"profileReady":12' && return 0
        sleep 0.5
    done
    echo "profiles never became ready" >&2
    return 1
}

# Cold start over an empty --profile-cache-dir must build and
# populate the store; a restart over the warm store must perform
# zero detailed-core builds (profileBuilds:0, profileDiskHits:12)
# and serve a bitwise-identical payload for the same scenario.
gpmd_profile_smoke() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log store_dir
    log=$(mktemp)
    store_dir=$(mktemp -d)

    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache-dir "$store_dir" >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port
    port=$(wait_gpmd_port "$pid" "$log") || return 1
    wait_profiles_ready "$gpmctl" "$port" || return 1

    local stats
    stats=$("$gpmctl" --port "$port" stats)
    echo "$stats" | grep -q '"profileBuilds":12' ||
        { echo "cold start did not build the suite: $stats"
          return 1; }
    [ "$(ls "$store_dir"/*.gpmp 2>/dev/null | wc -l)" -eq 12 ] ||
        { echo "store not populated:"; ls "$store_dir"; return 1; }

    local out1
    out1=$("$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy MaxBIPS --budget 0.8)
    stop_gpmd "$pid" "$log" || return 1

    # Restart over the warm store: zero rebuilds, identical payload.
    : >"$log"
    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache-dir "$store_dir" >"$log" 2>&1 &
    pid=$!
    port=$(wait_gpmd_port "$pid" "$log") || return 1
    wait_profiles_ready "$gpmctl" "$port" || return 1

    stats=$("$gpmctl" --port "$port" stats)
    echo "$stats" | grep -q '"profileBuilds":0' ||
        { echo "restart rebuilt profiles: $stats"; return 1; }
    echo "$stats" | grep -q '"profileDiskHits":12' ||
        { echo "restart did not hit the store: $stats"; return 1; }

    local out2
    out2=$("$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy MaxBIPS --budget 0.8)
    [ "$out1" = "$out2" ] ||
        { echo "payload changed across restart:"
          echo "  first:   $out1"; echo "  restart: $out2"
          return 1; }

    stop_gpmd "$pid" "$log" || return 1
    rm -rf "$store_dir"
    rm -f "$log"
}

gpmd_smoke() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log cache_dir batch
    log=$(mktemp)
    cache_dir=$(mktemp -d)
    batch=$(mktemp)

    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" \
        --cache-dir "$cache_dir" >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port
    port=$(wait_gpmd_port "$pid" "$log") || return 1

    "$gpmctl" --port "$port" ping ||
        { echo "ping failed"; return 1; }
    "$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy MaxBIPS --budget 0.8 \
        >/dev/null ||
        { echo "MaxBIPS submit failed"; return 1; }
    # The many-core approximate engine is reachable end to end: a
    # WaterFill submit must produce a real sweep result.
    "$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy WaterFill --budget 0.8 |
        grep -q '"ok":true' ||
        { echo "WaterFill submit failed"; return 1; }
    # The repeat must be served from cache; assert via stats.
    "$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy MaxBIPS --budget 0.8 |
        grep -q '"cached":true' ||
        { echo "repeat submit not served from cache"; return 1; }
    "$gpmctl" --port "$port" stats |
        grep -q '"cacheHits":1' ||
        { echo "cache hit not counted"; return 1; }

    # The cluster arbiter is reachable end to end: a two-chip
    # hierarchical scenario sweeps, the resubmit comes back from the
    # result cache, and the cluster counters tick.
    "$gpmctl" --port "$port" submit \
        --cluster-chip mcf,crafty:MaxBIPS \
        --cluster-chip gcc,mesa:WaterFill \
        --policy GreedyTurbo --epochs 2 --epoch-us 1000 \
        --levels 8 --budget 0.8 |
        grep -q '"ok":true' ||
        { echo "cluster submit failed"; return 1; }
    "$gpmctl" --port "$port" submit \
        --cluster-chip mcf,crafty:MaxBIPS \
        --cluster-chip gcc,mesa:WaterFill \
        --policy GreedyTurbo --epochs 2 --epoch-us 1000 \
        --levels 8 --budget 0.8 |
        grep -q '"cached":true' ||
        { echo "cluster resubmit not served from cache"; return 1; }
    "$gpmctl" --port "$port" stats |
        grep -q '"clusterRequests":1' ||
        { echo "cluster request not counted"; return 1; }

    # Batch submit: one request, one NDJSON result line per scenario
    # in input order; exit 0 means every scenario succeeded. The
    # first entry repeats the earlier submit, so it comes back
    # cached.
    cat >"$batch" <<'EOF'
{"combo": ["mcf", "crafty"], "policy": "MaxBIPS", "budget": 0.8}
{"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.7}
{"combo": ["mcf"], "policy": "MaxBIPS", "budget": 0.9}
EOF
    local out
    out=$("$gpmctl" --port "$port" submit-batch @"$batch")
    [ "$(echo "$out" | wc -l)" -eq 3 ] ||
        { echo "batch: expected 3 result lines:"; echo "$out"
          return 1; }
    echo "$out" | head -1 | grep -q '"cached":true' ||
        { echo "batch: first entry not served from cache:"
          echo "$out"; return 1; }
    "$gpmctl" --port "$port" stats |
        grep -q '"batchRequests":1' ||
        { echo "batch request not counted"; return 1; }

    stop_gpmd "$pid" "$log" || return 1

    # Restart over the same --cache-dir: the disk tier must serve
    # the earlier scenario without recomputation. The 1-byte disk
    # budget does not purge restored entries at startup (budget is
    # enforced on writes), but the next computed scenario triggers
    # LRU eviction.
    : >"$log"
    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" \
        --cache-dir "$cache_dir" --cache-disk-bytes 1 \
        >"$log" 2>&1 &
    pid=$!
    port=$(wait_gpmd_port "$pid" "$log") || return 1

    "$gpmctl" --port "$port" submit \
        --combo mcf,crafty --policy MaxBIPS --budget 0.8 |
        grep -q '"cached":true' ||
        { echo "restart: disk tier did not serve the scenario"
          return 1; }
    "$gpmctl" --port "$port" submit \
        --combo mcf --policy MaxBIPS --budget 0.65 >/dev/null
    local stats
    stats=$("$gpmctl" --port "$port" stats)
    echo "$stats" | grep -q '"diskHits":1' ||
        { echo "restart: no disk hit counted: $stats"; return 1; }
    echo "$stats" | grep -q '"diskEvictions":[1-9]' ||
        { echo "restart: no disk eviction at budget: $stats"
          return 1; }

    stop_gpmd "$pid" "$log" || return 1
    rm -rf "$cache_dir"
    rm -f "$log" "$batch"
}

# Policy-kernel smoke: the many-core bench at 64 cores, one timed
# iteration, must emit one well-formed NDJSON record per approximate
# policy into its bench log. The p99 decision latencies are echoed
# for trend-watching but NOT gated — CI boxes are too noisy for a
# hard microsecond bound (the recorded BENCH_sweep.json numbers from
# quiet machines are the reference; see docs/PERF.md).
policy_kernel_smoke() {
    local bdir=$1
    local out
    out=$(mktemp)
    GPM_MANYCORE_N=64 GPM_MANYCORE_ITERS=1 \
        GPM_SCALE="$SMOKE_SCALE" \
        GPM_PROFILE_CACHE="$SMOKE_CACHE" \
        GPM_BENCH_JSON="$out" \
        "$bdir/bench/bench_manycore_policies" >/dev/null ||
        { echo "bench_manycore_policies failed"; return 1; }
    [ "$(wc -l <"$out")" -eq 3 ] ||
        { echo "expected 3 NDJSON records:"; cat "$out"; return 1; }
    local line
    while IFS= read -r line; do
        case $line in
        '{ "bench": "manycore_policies",'*'"p99_us":'*'}') ;;
        *) echo "malformed NDJSON record: $line"; return 1 ;;
        esac
    done <"$out"
    echo "policy-kernel p99 decision latencies (informational):"
    sed 's/.*"policy": "\([^"]*\)".*"p99_us": \([0-9.]*\).*/  \1: \2 us/' \
        "$out"
    rm -f "$out"
}

# A deterministic mid-sweep deadline: the armed worker stall (400 ms,
# probability 1) outlives the request's 100 ms deadline, so the sweep
# must cancel cooperatively between budget points and answer
# deadline_exceeded — the worker is freed without finishing the
# sweep.
gpmd_deadline() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log
    log=$(mktemp)

    GPMD_FAULT="worker-stall:1:400,seed:3" \
        "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port
    port=$(wait_gpmd_port "$pid" "$log") || return 1

    # gpmctl exits 2 on the (expected) server-side error.
    local out rc=0
    out=$("$gpmctl" --port "$port" submit \
        --combo mcf --policy MaxBIPS --budget 0.8 \
        --deadline-ms 100) || rc=$?
    [ "$rc" -eq 2 ] ||
        { echo "deadline: expected exit 2, got $rc: $out"
          return 1; }
    echo "$out" | grep -q 'deadline_exceeded' ||
        { echo "deadline: wrong error: $out"; return 1; }
    "$gpmctl" --port "$port" stats |
        grep -q '"cancelledMidSweep":1' ||
        { echo "deadline: cancellation not counted"; return 1; }

    stop_gpmd "$pid" "$log" || return 1
    rm -f "$log"
}

# Drive one gpmd build through the chaos smoke: a daemon with armed
# fault points must degrade gracefully, never die. worker-throw
# crashes real workers (the supervisor respawns them), conn-stall
# slows every request, read-drop silently swallows a fraction of
# request lines inside the reactor; gpmctl's seeded backoff retries
# (with a per-attempt timeout so dropped requests do not hang an
# attempt forever) must converge inside its deadline anyway.
gpmd_chaos() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log
    log=$(mktemp)

    GPMD_FAULT="worker-throw:0.8,conn-stall:1:20,read-drop:0.3,seed:5" \
        "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port
    port=$(wait_gpmd_port "$pid" "$log") || return 1
    grep -q 'FAULT INJECTION ARMED' "$log" ||
        { echo "faults not armed:"; cat "$log"; return 1; }

    # Pings survive the stalled-connection and dropped-read faults.
    "$gpmctl" --port "$port" --retries 10 --retry-base-ms 20 \
        --timeout-ms 3000 --seed 6 ping |
        grep -q '"pong":true' ||
        { echo "ping did not survive conn-stall"; return 1; }

    # Submits crash workers with probability 0.8 and lose their
    # request line with probability 0.3, yet a retrying client
    # converges well inside its deadline — and the payload it
    # finally gets is the real sweep result. Three distinct
    # scenarios (cache misses all) so the worker-throw fault gets
    # enough rolls that at least one crash is near-certain.
    local budget
    for budget in 0.8 0.7 0.75; do
        "$gpmctl" --port "$port" --retries 30 --retry-base-ms 20 \
            --timeout-ms 5000 --deadline 60000 --seed 7 submit \
            --combo mcf --policy MaxBIPS --budget "$budget" |
            grep -q '"ok":true' ||
            { echo "retrying submit did not converge"; return 1; }
    done

    # The daemon contained every crash: workers restored, crashes
    # counted, and it still serves.
    local stats
    stats=$("$gpmctl" --port "$port" --retries 10 \
        --retry-base-ms 20 --timeout-ms 3000 --seed 8 stats)
    echo "$stats" | grep -q '"faultsArmed":true' ||
        { echo "bad stats: $stats"; return 1; }
    echo "$stats" | grep -q '"workersAlive":2' ||
        { echo "workers not restored: $stats"; return 1; }
    echo "$stats" | grep -q '"workerCrashes":[1-9]' ||
        { echo "no crashes injected: $stats"; return 1; }

    # And SIGTERM still drains cleanly with faults armed.
    stop_gpmd "$pid" "$log" || return 1
    rm -f "$log"
}


# Overload smoke: a 1-worker daemon with a tiny queue, a low
# overload threshold and an armed worker stall, fed 12 pipelined
# distinct submits down ONE connection, must shed part of the burst
# with structured rejected_overload (+ retryAfterMs backoff hints),
# serve at least one admitted request a ladder rung down (the
# response carries the "degraded" marker), answer zero
# internal_errors, expose the shedOverload / degradedRequests
# counters and the sorted breaker-state lines through gpmctl stats,
# and still drain cleanly on SIGTERM.
gpmd_overload() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log resp
    log=$(mktemp)
    resp=$(mktemp)

    GPMD_FAULT="worker-stall:1:100,seed:11" \
        "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" \
        --workers 1 --queue 8 --overload-degrade-depth 0.3 \
        >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port
    port=$(wait_gpmd_port "$pid" "$log") || return 1

    # One pipelined burst: 12 distinct scenarios down one socket,
    # then exactly 12 response lines back.
    local i
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    for i in $(seq 1 12); do
        printf '{"id":"b%s","verb":"submit","scenario":{"combo":["mcf"],"policy":"MaxBIPS","budget":0.%02d}}\n' \
            "$i" $((60 + i)) >&3
    done
    timeout 120 head -n 12 <&3 >"$resp" || true
    exec 3<&- 3>&-

    [ "$(wc -l <"$resp")" -eq 12 ] ||
        { echo "overload: expected 12 responses:"; cat "$resp"
          return 1; }
    grep -q 'rejected_overload' "$resp" ||
        { echo "overload: nothing shed:"; cat "$resp"; return 1; }
    grep 'rejected_overload' "$resp" | grep -q 'retryAfterMs' ||
        { echo "overload: rejection without retry hint:"
          cat "$resp"; return 1; }
    grep -q '"degraded"' "$resp" ||
        { echo "overload: no degraded response:"; cat "$resp"
          return 1; }
    ! grep -q 'internal_error' "$resp" ||
        { echo "overload: internal errors:"; cat "$resp"
          return 1; }

    # Counters in the raw stats JSON, breaker states in the sorted
    # pretty-printed stderr lines.
    local stats
    stats=$("$gpmctl" --port "$port" stats 2>&1)
    echo "$stats" | grep -q '"shedOverload":[1-9]' ||
        { echo "overload: shedOverload not counted: $stats"
          return 1; }
    echo "$stats" | grep -q '"degradedRequests":[1-9]' ||
        { echo "overload: degradedRequests not counted: $stats"
          return 1; }
    echo "$stats" | grep -q 'gpmctl: breakerStateDisk: closed' ||
        { echo "overload: disk breaker state not reported: $stats"
          return 1; }
    echo "$stats" | grep -q 'gpmctl: breakerStateProfile: closed' ||
        { echo "overload: profile breaker state not reported: $stats"
          return 1; }

    stop_gpmd "$pid" "$log" || return 1
    rm -f "$log" "$resp"
}

# Metrics smoke: a daemon with --metrics-port 0 must answer raw-TCP
# HTTP GETs — /healthz with "ok", /metrics with Prometheus text
# (version 0.0.4) carrying the service counters, the reactor gauges
# and the breaker states, with request traffic visible in
# gpm_requests_total; unknown paths get 404 and the NDJSON port
# keeps serving gpmctl on the side.
gpmd_metrics_smoke() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local log body
    log=$(mktemp)

    "$gpmd" --port 0 --metrics-port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" >"$log" 2>&1 &
    local pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN

    local port mport
    port=$(wait_gpmd_port "$pid" "$log") || return 1
    mport=$(wait_gpmd_metrics_port "$pid" "$log") || return 1

    body=$(http_get "$mport" /healthz)
    echo "$body" | grep -q '^HTTP/1.0 200 ' ||
        { echo "healthz: no 200:"; echo "$body"; return 1; }
    echo "$body" | grep -q '^ok$' ||
        { echo "healthz: no ok body:"; echo "$body"; return 1; }

    # Generate traffic so the counters have something to say.
    "$gpmctl" --port "$port" ping >/dev/null ||
        { echo "metrics: ping failed"; return 1; }
    "$gpmctl" --port "$port" submit \
        --combo mcf --policy MaxBIPS --budget 0.8 >/dev/null ||
        { echo "metrics: submit failed"; return 1; }

    body=$(http_get "$mport" /metrics)
    echo "$body" | grep -q '^HTTP/1.0 200 ' ||
        { echo "metrics: no 200:"; echo "$body"; return 1; }
    echo "$body" | grep -q 'version=0.0.4' ||
        { echo "metrics: wrong content type:"; echo "$body"
          return 1; }
    local name
    for name in gpm_served_total gpm_cache_hits_total \
        gpm_worker_crashes_total gpm_shed_overload_total \
        gpm_workers_alive gpm_open_connections \
        gpm_epoll_wakeups_total gpm_bytes_in_total \
        gpm_ring_buffer_high_water gpm_uptime_seconds; do
        echo "$body" | grep -q "^$name " ||
            { echo "metrics: $name missing:"; echo "$body"
              return 1; }
    done
    echo "$body" |
        grep -q '^gpm_breaker_state{breaker="disk",state="closed"} 1$' ||
        { echo "metrics: no disk breaker state:"; echo "$body"
          return 1; }
    echo "$body" | grep -q '^gpm_requests_total [1-9]' ||
        { echo "metrics: no request traffic counted:"
          echo "$body"; return 1; }

    body=$(http_get "$mport" /nonsense)
    echo "$body" | grep -q '^HTTP/1.0 404 ' ||
        { echo "metrics: unknown path not 404:"; echo "$body"
          return 1; }

    # The NDJSON plane is unaffected by scrapes.
    "$gpmctl" --port "$port" ping | grep -q '"pong":true' ||
        { echo "metrics: NDJSON plane broken after scrapes"
          return 1; }

    stop_gpmd "$pid" "$log" || return 1
    rm -f "$log"
}

# Throughput smoke: the serving-path bench at small scale — cache
# phases plus the transport comparison (thread-per-connection
# baseline vs reactor, plus connection churn). The bench enforces
# zero request errors on the transport phases itself; the speedup
# ratio is only gated at full scale (>= 5000 connections), not
# here. Runs in a subshell with the fd soft limit raised to the
# hard limit — hundreds of sockets terminate in one process.
service_throughput_smoke() {
    local bdir=$1
    local out
    out=$(mktemp)
    (
        ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
        GPM_SCALE="$SMOKE_SCALE" \
            GPM_PROFILE_CACHE="$SMOKE_CACHE" \
            GPM_BENCH_JSON="$out" \
            GPM_BENCH_CLIENTS=2 GPM_BENCH_SCENARIOS=4 \
            GPM_BENCH_TPC_CONNS=40 GPM_BENCH_REACTOR_CONNS=200 \
            GPM_BENCH_CONN_SCENARIOS=4 GPM_BENCH_CHURN_CONNS=100 \
            "$bdir/bench/bench_service_throughput" >/dev/null
    ) || { echo "bench_service_throughput failed"; return 1; }
    [ "$(wc -l <"$out")" -eq 6 ] ||
        { echo "expected 6 NDJSON records:"; cat "$out"; return 1; }
    grep -q '"phase": "reactor-sustained"' "$out" ||
        { echo "no reactor-sustained record:"; cat "$out"
          return 1; }
    rm -f "$out"
}

# Wait until the router ($1 = pid, $2 = log) prints
# "gpm-router: listening on HOST:PORT" and echo the port.
wait_router_port() {
    local pid=$1 log=$2 port="" i
    for i in $(seq 1 600); do
        port=$(sed -n \
            's/^gpm-router: listening on .*:\([0-9]*\)$/\1/p' \
            "$log")
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null ||
            { echo "gpm-router exited early:" >&2; cat "$log" >&2
              return 1; }
        sleep 0.5
    done
    echo "gpm-router never listened:" >&2
    cat "$log" >&2
    return 1
}

# Shard smoke: gpm-router over two gpmd backends sharing one
# --cache-dir. gpmctl pointed at the router must behave exactly as
# against a single gpmd: submits succeed, resubmits are cache hits.
# Then one backend is SIGKILLed mid-fleet and a retrying gpmctl
# must converge with zero failures — the dead backend's shard
# re-resolves onto the survivor, which answers byte-identically
# from the shared disk tier. Finally the router must drain clean
# on SIGTERM, leaving the surviving backend running.
gpmd_shard_smoke() {
    local bdir=$1
    local gpmd="$bdir/src/service/gpmd"
    local gpmctl="$bdir/src/service/gpmctl"
    local router="$bdir/src/router/gpm-router"
    local log1 log2 rlog cache_dir b
    log1=$(mktemp); log2=$(mktemp); rlog=$(mktemp)
    cache_dir=$(mktemp -d)

    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" \
        --cache-dir "$cache_dir" >"$log1" 2>&1 &
    local pid1=$!
    "$gpmd" --port 0 --scale "$SMOKE_SCALE" \
        --profile-cache "$SMOKE_CACHE" \
        --cache-dir "$cache_dir" >"$log2" 2>&1 &
    local pid2=$!
    trap 'kill -9 "$pid1" "$pid2" "${rpid:-}" 2>/dev/null || true' \
        RETURN

    local port1 port2
    port1=$(wait_gpmd_port "$pid1" "$log1") || return 1
    port2=$(wait_gpmd_port "$pid2" "$log2") || return 1

    # Fast-failover breaker tuning: the smoke's handful of
    # post-kill submits must be enough samples to open the dead
    # backend's breaker.
    "$router" --port 0 \
        --backends "127.0.0.1:$port1,127.0.0.1:$port2" \
        --breaker-window 4 --breaker-min-samples 2 \
        --breaker-cooldown-ms 100 \
        >"$rlog" 2>&1 &
    local rpid=$!
    local rport
    rport=$(wait_router_port "$rpid" "$rlog") || return 1

    "$gpmctl" --port "$rport" ping ||
        { echo "shard: ping via router failed"; return 1; }
    "$gpmctl" --port "$rport" stats |
        grep -q '"backendsLive":2' ||
        { echo "shard: router does not see 2 live backends"
          return 1; }

    # Four distinct budgets spread over both shards: every submit
    # computes once, the resubmit must be a cache hit whichever
    # backend owns it.
    for b in 0.60 0.66 0.72 0.78; do
        "$gpmctl" --port "$rport" submit \
            --combo mcf,crafty --policy MaxBIPS --budget "$b" |
            grep -q '"ok":true' ||
            { echo "shard: submit budget=$b via router failed"
              return 1; }
    done
    for b in 0.60 0.66 0.72 0.78; do
        "$gpmctl" --port "$rport" submit \
            --combo mcf,crafty --policy MaxBIPS --budget "$b" |
            grep -q '"cached":true' ||
            { echo "shard: resubmit budget=$b not a cache hit"
              return 1; }
    done

    # SIGKILL a backend that actually received traffic (the ring
    # may put every smoke budget on one shard; connection pools
    # are lazy, so killing the idle backend would never feed the
    # breaker). The router's breaker opens, the dead shard
    # re-resolves onto the survivor, and a retrying gpmctl
    # converges with zero failures — served from the shared disk
    # tier, so still cached:true.
    local victim_port
    victim_port=$("$gpmctl" --port "$rport" stats | tr '{' '\n' |
        sed -n 's/.*"name":"127\.0\.0\.1:\([0-9]*\)".*"routed":[1-9].*/\1/p' |
        head -1)
    [ -n "$victim_port" ] ||
        { echo "shard: no backend with routed traffic found"
          return 1; }
    local victim_pid surv_pid surv_log
    if [ "$victim_port" = "$port1" ]; then
        victim_pid=$pid1; surv_pid=$pid2; surv_log=$log2
    else
        victim_pid=$pid2; surv_pid=$pid1; surv_log=$log1
    fi
    kill -9 "$victim_pid"
    wait "$victim_pid" 2>/dev/null || true
    for b in 0.60 0.66 0.72 0.78; do
        "$gpmctl" --port "$rport" --retries 8 submit \
            --combo mcf,crafty --policy MaxBIPS --budget "$b" |
            grep -q '"cached":true' ||
            { echo "shard: post-kill submit budget=$b failed"
              cat "$rlog"; return 1; }
    done
    "$gpmctl" --port "$rport" stats |
        grep -q '"backendsLive":1' ||
        { echo "shard: router still counts the dead backend live"
          return 1; }

    # Router drains clean on SIGTERM; the survivor keeps running.
    local rc=0
    kill -TERM "$rpid"
    wait "$rpid" || rc=$?
    [ "$rc" -eq 0 ] ||
        { echo "gpm-router exit code $rc:"; cat "$rlog"
          return 1; }
    grep -q 'gpm-router: shutdown complete' "$rlog" ||
        { echo "shard: no clean router shutdown:"; cat "$rlog"
          return 1; }
    kill -0 "$surv_pid" 2>/dev/null ||
        { echo "shard: surviving backend died with the router"
          cat "$surv_log"; return 1; }

    stop_gpmd "$surv_pid" "$surv_log" || return 1
    rm -rf "$cache_dir"
    rm -f "$log1" "$log2" "$rlog"
}

echo "== tier-1: standard build + ctest =="
cmake -B "$BUILD" -S . -DGPM_WERROR=ON
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== tier-1: policy-kernel smoke (many-core bench NDJSON) =="
policy_kernel_smoke "$BUILD"

echo "== tier-1: gpmd smoke (ping / submit / batch / restart) =="
gpmd_smoke "$BUILD"

echo "== tier-1: gpmd profile-store smoke (cold / warm restart) =="
gpmd_profile_smoke "$BUILD"

echo "== tier-1: gpmd chaos smoke (faults / retries / recovery) =="
gpmd_chaos "$BUILD"

echo "== tier-1: gpmd deadline smoke (mid-sweep cancellation) =="
gpmd_deadline "$BUILD"

echo "== tier-1: gpmd overload smoke (shed / degrade / drain) =="
gpmd_overload "$BUILD"

echo "== tier-1: gpmd metrics smoke (/healthz + /metrics scrape) =="
gpmd_metrics_smoke "$BUILD"

echo "== tier-1: serving-path throughput smoke (reactor vs tpc) =="
service_throughput_smoke "$BUILD"

echo "== tier-1: shard smoke (router / failover / shared cache) =="
gpmd_shard_smoke "$BUILD"

if [ "${GPM_SKIP_TSAN:-0}" = "1" ]; then
    echo "== tier-1: TSan stage skipped (GPM_SKIP_TSAN=1) =="
    exit 0
fi

echo "== tier-1: ThreadSanitizer build (pool + sweep tests) =="
cmake -B "$BUILD-tsan" -S . -DGPM_SANITIZE=thread -DGPM_WERROR=ON
cmake --build "$BUILD-tsan" -j --target gpm_tests gpmd gpmctl gpm-router
# Profile building under TSan is slow; the sweep tests rebuild their
# small-scale profiles on first use, so give them a large timeout.
"$BUILD-tsan/tests/gpm_tests" \
    --gtest_filter='ThreadPool.*:SweepTest.*:ProfileStoreTest.*'

echo "== tier-1: gpmd smoke under TSan =="
gpmd_smoke "$BUILD-tsan"

echo "== tier-1: gpmd profile-store smoke under TSan =="
gpmd_profile_smoke "$BUILD-tsan"

echo "== tier-1: gpmd chaos smoke under TSan =="
gpmd_chaos "$BUILD-tsan"

echo "== tier-1: gpmd deadline smoke under TSan =="
gpmd_deadline "$BUILD-tsan"

echo "== tier-1: gpmd overload smoke under TSan =="
gpmd_overload "$BUILD-tsan"

echo "== tier-1: gpmd metrics smoke under TSan =="
gpmd_metrics_smoke "$BUILD-tsan"

echo "== tier-1: shard smoke under TSan =="
gpmd_shard_smoke "$BUILD-tsan"

echo "== tier-1: all stages passed =="
