file(REMOVE_RECURSE
  "libgpm_trace.a"
)
