# Empty compiler generated dependencies file for gpm_trace.
# This may be replaced when dependencies are built.
