
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/phase_profile.cc" "src/trace/CMakeFiles/gpm_trace.dir/phase_profile.cc.o" "gcc" "src/trace/CMakeFiles/gpm_trace.dir/phase_profile.cc.o.d"
  "/root/repo/src/trace/profiler.cc" "src/trace/CMakeFiles/gpm_trace.dir/profiler.cc.o" "gcc" "src/trace/CMakeFiles/gpm_trace.dir/profiler.cc.o.d"
  "/root/repo/src/trace/synth_generator.cc" "src/trace/CMakeFiles/gpm_trace.dir/synth_generator.cc.o" "gcc" "src/trace/CMakeFiles/gpm_trace.dir/synth_generator.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/trace/CMakeFiles/gpm_trace.dir/workload.cc.o" "gcc" "src/trace/CMakeFiles/gpm_trace.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gpm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/gpm_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
