file(REMOVE_RECURSE
  "CMakeFiles/gpm_trace.dir/phase_profile.cc.o"
  "CMakeFiles/gpm_trace.dir/phase_profile.cc.o.d"
  "CMakeFiles/gpm_trace.dir/profiler.cc.o"
  "CMakeFiles/gpm_trace.dir/profiler.cc.o.d"
  "CMakeFiles/gpm_trace.dir/synth_generator.cc.o"
  "CMakeFiles/gpm_trace.dir/synth_generator.cc.o.d"
  "CMakeFiles/gpm_trace.dir/workload.cc.o"
  "CMakeFiles/gpm_trace.dir/workload.cc.o.d"
  "libgpm_trace.a"
  "libgpm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
