# Empty dependencies file for gpm_power.
# This may be replaced when dependencies are built.
