file(REMOVE_RECURSE
  "libgpm_power.a"
)
