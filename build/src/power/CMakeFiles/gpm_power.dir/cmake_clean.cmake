file(REMOVE_RECURSE
  "CMakeFiles/gpm_power.dir/dvfs.cc.o"
  "CMakeFiles/gpm_power.dir/dvfs.cc.o.d"
  "CMakeFiles/gpm_power.dir/power_model.cc.o"
  "CMakeFiles/gpm_power.dir/power_model.cc.o.d"
  "CMakeFiles/gpm_power.dir/thermal.cc.o"
  "CMakeFiles/gpm_power.dir/thermal.cc.o.d"
  "libgpm_power.a"
  "libgpm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
