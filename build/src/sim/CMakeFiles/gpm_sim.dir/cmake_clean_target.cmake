file(REMOVE_RECURSE
  "libgpm_sim.a"
)
