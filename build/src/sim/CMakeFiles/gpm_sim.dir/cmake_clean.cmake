file(REMOVE_RECURSE
  "CMakeFiles/gpm_sim.dir/cmp_sim.cc.o"
  "CMakeFiles/gpm_sim.dir/cmp_sim.cc.o.d"
  "libgpm_sim.a"
  "libgpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
