# Empty compiler generated dependencies file for gpm_sim.
# This may be replaced when dependencies are built.
