# Empty compiler generated dependencies file for gpm_util.
# This may be replaced when dependencies are built.
