file(REMOVE_RECURSE
  "libgpm_util.a"
)
