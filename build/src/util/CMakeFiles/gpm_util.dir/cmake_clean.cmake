file(REMOVE_RECURSE
  "CMakeFiles/gpm_util.dir/logging.cc.o"
  "CMakeFiles/gpm_util.dir/logging.cc.o.d"
  "CMakeFiles/gpm_util.dir/rng.cc.o"
  "CMakeFiles/gpm_util.dir/rng.cc.o.d"
  "CMakeFiles/gpm_util.dir/stats.cc.o"
  "CMakeFiles/gpm_util.dir/stats.cc.o.d"
  "CMakeFiles/gpm_util.dir/table.cc.o"
  "CMakeFiles/gpm_util.dir/table.cc.o.d"
  "libgpm_util.a"
  "libgpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
