file(REMOVE_RECURSE
  "CMakeFiles/gpm_metrics.dir/experiment.cc.o"
  "CMakeFiles/gpm_metrics.dir/experiment.cc.o.d"
  "CMakeFiles/gpm_metrics.dir/metrics.cc.o"
  "CMakeFiles/gpm_metrics.dir/metrics.cc.o.d"
  "libgpm_metrics.a"
  "libgpm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
