file(REMOVE_RECURSE
  "libgpm_metrics.a"
)
