# Empty compiler generated dependencies file for gpm_metrics.
# This may be replaced when dependencies are built.
