# Empty compiler generated dependencies file for gpm_core.
# This may be replaced when dependencies are built.
