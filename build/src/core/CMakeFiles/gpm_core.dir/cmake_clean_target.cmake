file(REMOVE_RECURSE
  "libgpm_core.a"
)
