
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/global_manager.cc" "src/core/CMakeFiles/gpm_core.dir/global_manager.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/global_manager.cc.o.d"
  "/root/repo/src/core/mode_predictor.cc" "src/core/CMakeFiles/gpm_core.dir/mode_predictor.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/mode_predictor.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/gpm_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy.cc.o.d"
  "/root/repo/src/core/policy_alternatives.cc" "src/core/CMakeFiles/gpm_core.dir/policy_alternatives.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_alternatives.cc.o.d"
  "/root/repo/src/core/policy_chipwide.cc" "src/core/CMakeFiles/gpm_core.dir/policy_chipwide.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_chipwide.cc.o.d"
  "/root/repo/src/core/policy_maxbips.cc" "src/core/CMakeFiles/gpm_core.dir/policy_maxbips.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_maxbips.cc.o.d"
  "/root/repo/src/core/policy_minpower.cc" "src/core/CMakeFiles/gpm_core.dir/policy_minpower.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_minpower.cc.o.d"
  "/root/repo/src/core/policy_priority.cc" "src/core/CMakeFiles/gpm_core.dir/policy_priority.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_priority.cc.o.d"
  "/root/repo/src/core/policy_pullhipushlo.cc" "src/core/CMakeFiles/gpm_core.dir/policy_pullhipushlo.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_pullhipushlo.cc.o.d"
  "/root/repo/src/core/policy_uniform.cc" "src/core/CMakeFiles/gpm_core.dir/policy_uniform.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/policy_uniform.cc.o.d"
  "/root/repo/src/core/static_planner.cc" "src/core/CMakeFiles/gpm_core.dir/static_planner.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/static_planner.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/gpm_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/gpm_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gpm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
