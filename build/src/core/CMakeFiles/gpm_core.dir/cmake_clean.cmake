file(REMOVE_RECURSE
  "CMakeFiles/gpm_core.dir/global_manager.cc.o"
  "CMakeFiles/gpm_core.dir/global_manager.cc.o.d"
  "CMakeFiles/gpm_core.dir/mode_predictor.cc.o"
  "CMakeFiles/gpm_core.dir/mode_predictor.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy.cc.o"
  "CMakeFiles/gpm_core.dir/policy.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_alternatives.cc.o"
  "CMakeFiles/gpm_core.dir/policy_alternatives.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_chipwide.cc.o"
  "CMakeFiles/gpm_core.dir/policy_chipwide.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_maxbips.cc.o"
  "CMakeFiles/gpm_core.dir/policy_maxbips.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_minpower.cc.o"
  "CMakeFiles/gpm_core.dir/policy_minpower.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_priority.cc.o"
  "CMakeFiles/gpm_core.dir/policy_priority.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_pullhipushlo.cc.o"
  "CMakeFiles/gpm_core.dir/policy_pullhipushlo.cc.o.d"
  "CMakeFiles/gpm_core.dir/policy_uniform.cc.o"
  "CMakeFiles/gpm_core.dir/policy_uniform.cc.o.d"
  "CMakeFiles/gpm_core.dir/static_planner.cc.o"
  "CMakeFiles/gpm_core.dir/static_planner.cc.o.d"
  "CMakeFiles/gpm_core.dir/types.cc.o"
  "CMakeFiles/gpm_core.dir/types.cc.o.d"
  "libgpm_core.a"
  "libgpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
