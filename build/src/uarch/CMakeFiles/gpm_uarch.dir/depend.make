# Empty dependencies file for gpm_uarch.
# This may be replaced when dependencies are built.
