file(REMOVE_RECURSE
  "CMakeFiles/gpm_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/gpm_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/gpm_uarch.dir/cache.cc.o"
  "CMakeFiles/gpm_uarch.dir/cache.cc.o.d"
  "CMakeFiles/gpm_uarch.dir/core.cc.o"
  "CMakeFiles/gpm_uarch.dir/core.cc.o.d"
  "CMakeFiles/gpm_uarch.dir/memory.cc.o"
  "CMakeFiles/gpm_uarch.dir/memory.cc.o.d"
  "libgpm_uarch.a"
  "libgpm_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
