
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/uarch/CMakeFiles/gpm_uarch.dir/branch_predictor.cc.o" "gcc" "src/uarch/CMakeFiles/gpm_uarch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/gpm_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/gpm_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/gpm_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/gpm_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/memory.cc" "src/uarch/CMakeFiles/gpm_uarch.dir/memory.cc.o" "gcc" "src/uarch/CMakeFiles/gpm_uarch.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gpm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
