file(REMOVE_RECURSE
  "libgpm_uarch.a"
)
