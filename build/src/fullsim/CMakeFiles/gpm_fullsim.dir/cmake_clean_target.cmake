file(REMOVE_RECURSE
  "libgpm_fullsim.a"
)
