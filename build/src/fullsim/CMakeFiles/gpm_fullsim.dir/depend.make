# Empty dependencies file for gpm_fullsim.
# This may be replaced when dependencies are built.
