file(REMOVE_RECURSE
  "CMakeFiles/gpm_fullsim.dir/cmp_system.cc.o"
  "CMakeFiles/gpm_fullsim.dir/cmp_system.cc.o.d"
  "CMakeFiles/gpm_fullsim.dir/dram.cc.o"
  "CMakeFiles/gpm_fullsim.dir/dram.cc.o.d"
  "CMakeFiles/gpm_fullsim.dir/shared_l2.cc.o"
  "CMakeFiles/gpm_fullsim.dir/shared_l2.cc.o.d"
  "libgpm_fullsim.a"
  "libgpm_fullsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_fullsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
