# Empty dependencies file for cooling_failure.
# This may be replaced when dependencies are built.
