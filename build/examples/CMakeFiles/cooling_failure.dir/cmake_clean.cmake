file(REMOVE_RECURSE
  "CMakeFiles/cooling_failure.dir/cooling_failure.cpp.o"
  "CMakeFiles/cooling_failure.dir/cooling_failure.cpp.o.d"
  "cooling_failure"
  "cooling_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooling_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
