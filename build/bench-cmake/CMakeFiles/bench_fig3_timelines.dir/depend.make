# Empty dependencies file for bench_fig3_timelines.
# This may be replaced when dependencies are built.
