file(REMOVE_RECURSE
  "../bench/bench_fig3_timelines"
  "../bench/bench_fig3_timelines.pdb"
  "CMakeFiles/bench_fig3_timelines.dir/bench_fig3_timelines.cc.o"
  "CMakeFiles/bench_fig3_timelines.dir/bench_fig3_timelines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
