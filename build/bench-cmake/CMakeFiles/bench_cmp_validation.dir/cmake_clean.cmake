file(REMOVE_RECURSE
  "../bench/bench_cmp_validation"
  "../bench/bench_cmp_validation.pdb"
  "CMakeFiles/bench_cmp_validation.dir/bench_cmp_validation.cc.o"
  "CMakeFiles/bench_cmp_validation.dir/bench_cmp_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
