# Empty dependencies file for bench_cmp_validation.
# This may be replaced when dependencies are built.
