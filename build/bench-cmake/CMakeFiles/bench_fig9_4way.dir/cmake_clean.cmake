file(REMOVE_RECURSE
  "../bench/bench_fig9_4way"
  "../bench/bench_fig9_4way.pdb"
  "CMakeFiles/bench_fig9_4way.dir/bench_scaling_curves.cc.o"
  "CMakeFiles/bench_fig9_4way.dir/bench_scaling_curves.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_4way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
