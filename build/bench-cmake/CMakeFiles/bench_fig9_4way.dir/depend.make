# Empty dependencies file for bench_fig9_4way.
# This may be replaced when dependencies are built.
