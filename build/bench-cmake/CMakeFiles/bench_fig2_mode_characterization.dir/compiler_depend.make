# Empty compiler generated dependencies file for bench_fig2_mode_characterization.
# This may be replaced when dependencies are built.
