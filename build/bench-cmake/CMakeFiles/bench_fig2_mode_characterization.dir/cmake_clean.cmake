file(REMOVE_RECURSE
  "../bench/bench_fig2_mode_characterization"
  "../bench/bench_fig2_mode_characterization.pdb"
  "CMakeFiles/bench_fig2_mode_characterization.dir/bench_fig2_mode_characterization.cc.o"
  "CMakeFiles/bench_fig2_mode_characterization.dir/bench_fig2_mode_characterization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mode_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
