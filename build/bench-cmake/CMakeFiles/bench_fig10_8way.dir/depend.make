# Empty dependencies file for bench_fig10_8way.
# This may be replaced when dependencies are built.
