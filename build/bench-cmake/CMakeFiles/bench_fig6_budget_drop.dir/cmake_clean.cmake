file(REMOVE_RECURSE
  "../bench/bench_fig6_budget_drop"
  "../bench/bench_fig6_budget_drop.pdb"
  "CMakeFiles/bench_fig6_budget_drop.dir/bench_fig6_budget_drop.cc.o"
  "CMakeFiles/bench_fig6_budget_drop.dir/bench_fig6_budget_drop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_budget_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
