# Empty dependencies file for bench_fig6_budget_drop.
# This may be replaced when dependencies are built.
