# Empty compiler generated dependencies file for bench_prediction_alternatives.
# This may be replaced when dependencies are built.
