file(REMOVE_RECURSE
  "../bench/bench_prediction_alternatives"
  "../bench/bench_prediction_alternatives.pdb"
  "CMakeFiles/bench_prediction_alternatives.dir/bench_prediction_alternatives.cc.o"
  "CMakeFiles/bench_prediction_alternatives.dir/bench_prediction_alternatives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
