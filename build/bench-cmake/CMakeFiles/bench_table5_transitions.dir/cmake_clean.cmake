file(REMOVE_RECURSE
  "../bench/bench_table5_transitions"
  "../bench/bench_table5_transitions.pdb"
  "CMakeFiles/bench_table5_transitions.dir/bench_table5_transitions.cc.o"
  "CMakeFiles/bench_table5_transitions.dir/bench_table5_transitions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
