# Empty dependencies file for bench_table5_transitions.
# This may be replaced when dependencies are built.
