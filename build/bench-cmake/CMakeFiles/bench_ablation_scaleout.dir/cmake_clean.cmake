file(REMOVE_RECURSE
  "../bench/bench_ablation_scaleout"
  "../bench/bench_ablation_scaleout.pdb"
  "CMakeFiles/bench_ablation_scaleout.dir/bench_ablation_scaleout.cc.o"
  "CMakeFiles/bench_ablation_scaleout.dir/bench_ablation_scaleout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
