# Empty compiler generated dependencies file for bench_minpower.
# This may be replaced when dependencies are built.
