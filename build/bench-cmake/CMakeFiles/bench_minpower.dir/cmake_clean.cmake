file(REMOVE_RECURSE
  "../bench/bench_minpower"
  "../bench/bench_minpower.pdb"
  "CMakeFiles/bench_minpower.dir/bench_minpower.cc.o"
  "CMakeFiles/bench_minpower.dir/bench_minpower.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
