file(REMOVE_RECURSE
  "../bench/bench_ablation_sensors"
  "../bench/bench_ablation_sensors.pdb"
  "CMakeFiles/bench_ablation_sensors.dir/bench_ablation_sensors.cc.o"
  "CMakeFiles/bench_ablation_sensors.dir/bench_ablation_sensors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
