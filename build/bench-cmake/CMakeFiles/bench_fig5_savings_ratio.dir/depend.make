# Empty dependencies file for bench_fig5_savings_ratio.
# This may be replaced when dependencies are built.
