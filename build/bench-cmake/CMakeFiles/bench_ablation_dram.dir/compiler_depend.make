# Empty compiler generated dependencies file for bench_ablation_dram.
# This may be replaced when dependencies are built.
