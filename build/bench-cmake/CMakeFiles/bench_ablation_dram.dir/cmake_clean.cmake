file(REMOVE_RECURSE
  "../bench/bench_ablation_dram"
  "../bench/bench_ablation_dram.pdb"
  "CMakeFiles/bench_ablation_dram.dir/bench_ablation_dram.cc.o"
  "CMakeFiles/bench_ablation_dram.dir/bench_ablation_dram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
