# Empty dependencies file for bench_ablation_transitions.
# This may be replaced when dependencies are built.
