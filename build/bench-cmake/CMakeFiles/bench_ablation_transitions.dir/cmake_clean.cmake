file(REMOVE_RECURSE
  "../bench/bench_ablation_transitions"
  "../bench/bench_ablation_transitions.pdb"
  "CMakeFiles/bench_ablation_transitions.dir/bench_ablation_transitions.cc.o"
  "CMakeFiles/bench_ablation_transitions.dir/bench_ablation_transitions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
