# Empty dependencies file for bench_fig8_2way.
# This may be replaced when dependencies are built.
