# Empty dependencies file for bench_prediction_error.
# This may be replaced when dependencies are built.
