
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_prediction_error.cc" "bench-cmake/CMakeFiles/bench_prediction_error.dir/bench_prediction_error.cc.o" "gcc" "bench-cmake/CMakeFiles/bench_prediction_error.dir/bench_prediction_error.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/gpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fullsim/CMakeFiles/gpm_fullsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/gpm_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gpm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
