file(REMOVE_RECURSE
  "../bench/bench_prediction_error"
  "../bench/bench_prediction_error.pdb"
  "CMakeFiles/bench_prediction_error.dir/bench_prediction_error.cc.o"
  "CMakeFiles/bench_prediction_error.dir/bench_prediction_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
