file(REMOVE_RECURSE
  "../bench/bench_thermal"
  "../bench/bench_thermal.pdb"
  "CMakeFiles/bench_thermal.dir/bench_thermal.cc.o"
  "CMakeFiles/bench_thermal.dir/bench_thermal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
