# Empty dependencies file for bench_fig7_bounds.
# This may be replaced when dependencies are built.
