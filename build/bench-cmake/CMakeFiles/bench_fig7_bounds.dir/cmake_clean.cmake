file(REMOVE_RECURSE
  "../bench/bench_fig7_bounds"
  "../bench/bench_fig7_bounds.pdb"
  "CMakeFiles/bench_fig7_bounds.dir/bench_fig7_bounds.cc.o"
  "CMakeFiles/bench_fig7_bounds.dir/bench_fig7_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
