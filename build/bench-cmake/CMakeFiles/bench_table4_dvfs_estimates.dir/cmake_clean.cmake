file(REMOVE_RECURSE
  "../bench/bench_table4_dvfs_estimates"
  "../bench/bench_table4_dvfs_estimates.pdb"
  "CMakeFiles/bench_table4_dvfs_estimates.dir/bench_table4_dvfs_estimates.cc.o"
  "CMakeFiles/bench_table4_dvfs_estimates.dir/bench_table4_dvfs_estimates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dvfs_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
