# Empty dependencies file for bench_table4_dvfs_estimates.
# This may be replaced when dependencies are built.
