file(REMOVE_RECURSE
  "../bench/bench_policy_compute"
  "../bench/bench_policy_compute.pdb"
  "CMakeFiles/bench_policy_compute.dir/bench_policy_compute.cc.o"
  "CMakeFiles/bench_policy_compute.dir/bench_policy_compute.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
