# Empty compiler generated dependencies file for bench_policy_compute.
# This may be replaced when dependencies are built.
