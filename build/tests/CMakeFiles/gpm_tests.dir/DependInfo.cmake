
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/gpm_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/gpm_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cmp_sim.cc" "tests/CMakeFiles/gpm_tests.dir/test_cmp_sim.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_cmp_sim.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/gpm_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/gpm_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_dvfs.cc" "tests/CMakeFiles/gpm_tests.dir/test_dvfs.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_dvfs.cc.o.d"
  "/root/repo/tests/test_e2e.cc" "tests/CMakeFiles/gpm_tests.dir/test_e2e.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_e2e.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/gpm_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_fullsim.cc" "tests/CMakeFiles/gpm_tests.dir/test_fullsim.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_fullsim.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/gpm_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_manager.cc" "tests/CMakeFiles/gpm_tests.dir/test_manager.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_manager.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/gpm_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/gpm_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/gpm_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_policy_alternatives.cc" "tests/CMakeFiles/gpm_tests.dir/test_policy_alternatives.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_policy_alternatives.cc.o.d"
  "/root/repo/tests/test_policy_minpower.cc" "tests/CMakeFiles/gpm_tests.dir/test_policy_minpower.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_policy_minpower.cc.o.d"
  "/root/repo/tests/test_policy_uniform.cc" "tests/CMakeFiles/gpm_tests.dir/test_policy_uniform.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_policy_uniform.cc.o.d"
  "/root/repo/tests/test_power_model.cc" "tests/CMakeFiles/gpm_tests.dir/test_power_model.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_power_model.cc.o.d"
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/gpm_tests.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_predictor.cc.o.d"
  "/root/repo/tests/test_profile.cc" "tests/CMakeFiles/gpm_tests.dir/test_profile.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_profile.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/gpm_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/gpm_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/gpm_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_shared_l2.cc" "tests/CMakeFiles/gpm_tests.dir/test_shared_l2.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_shared_l2.cc.o.d"
  "/root/repo/tests/test_static_planner.cc" "tests/CMakeFiles/gpm_tests.dir/test_static_planner.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_static_planner.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/gpm_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/gpm_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_thermal.cc" "tests/CMakeFiles/gpm_tests.dir/test_thermal.cc.o" "gcc" "tests/CMakeFiles/gpm_tests.dir/test_thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/gpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fullsim/CMakeFiles/gpm_fullsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/gpm_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gpm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
