# Empty compiler generated dependencies file for gpm_tests.
# This may be replaced when dependencies are built.
