/**
 * @file
 * Cluster-level budget arbitration: the paper's global manager
 * lifted one level up. A rack holds M chips × N cores under one
 * facility power budget; each epoch the cluster manager collapses
 * every chip into a chip-level "mode column" — the chip's achievable
 * BIPS-vs-power frontier, derived from the MCKP upper-left hulls of
 * its cores' mode columns (core/mckp.hh) — and solves the facility
 * allocation across chips with the very policy kernels the per-chip
 * managers already trust (exact BnB for small M, MaxBIPS-DP /
 * WaterFill / GreedyTurbo for large M).
 *
 * This header holds the specs and the pure decision kernels:
 *
 *  - collapseChipFrontier(): chip ModeMatrix → the chip's concave
 *    achievable (power, BIPS) frontier. Every frontier point is the
 *    exact integer MCKP optimum at its own power level (the greedy
 *    hull-increment prefix coincides with the LP vertex there), so
 *    the collapse loses nothing the chip policy could have won.
 *  - quantizeFrontier(): bound a frontier to K levels (the chip's
 *    "mode column" at the cluster level).
 *  - allocateFacilityBudget(): M chip frontiers + a facility budget
 *    → per-chip watt awards, via the named policy kernel over an
 *    M × K ModeMatrix of frontier points. Honors the policy
 *    contract at the cluster level: a budget-feasible award vector
 *    whenever one exists, every-chip-at-its-floor otherwise.
 *
 * The epoch loop and the per-chip simulations live in
 * cluster_manager.hh.
 */

#ifndef GPM_CLUSTER_CLUSTER_HH
#define GPM_CLUSTER_CLUSTER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/mckp.hh"
#include "core/types.hh"
#include "util/units.hh"

namespace gpm
{

/** One chip of a cluster: a scenario-like per-chip spec. */
struct ChipSpec
{
    /** Benchmark names run together (one per core). */
    std::vector<std::string> combo;
    /** Inner per-chip policy (any dynamic policy name). */
    std::string policy;
    /** Per-core phase-shift stride in [0, 1); 0 = off. */
    double phaseShiftStride = 0.0;
    /** Base phase shift of every core in [0, 1); decorrelates chips
     *  that replicate the same spec. */
    double phaseOffset = 0.0;
};

/** A rack: M chips arbitrated by one facility-level policy. */
struct ClusterSpec
{
    std::vector<ChipSpec> chips;
    /** Facility-level arbitration kernel: "MaxBIPS" /
     *  "MaxBIPS-BnB" (exact, small M), "MaxBIPS-DP[G]",
     *  "WaterFill" or "GreedyTurbo" (large M). */
    std::string policy;
    /** Outer reallocation epochs per run. */
    unsigned epochs = 8;
    /** Epoch length [us]; must be >= the explore interval. */
    MicroSec epochUs = 2000.0;
    /** Frontier quantization levels (the chip mode-column width). */
    unsigned levels = 16;

    /** Hard caps on cluster shape (service admission). */
    static constexpr std::size_t maxChips = 64;
    static constexpr std::size_t maxTotalCores = 4096;
    static constexpr unsigned maxEpochs = 64;
    static constexpr unsigned maxLevels = 64;

    /** Sum of every chip's core count. */
    std::size_t totalCores() const;
};

/**
 * A chip collapsed to its achievable BIPS-vs-power frontier:
 * power-ascending, BIPS-ascending, concave. pts[0] is the chip
 * floor (every core at its cheapest mode); the last point is the
 * chip's unconstrained best (every core at its hull top). The
 * HullPoint mode field is unused here (a frontier point aggregates
 * many per-core modes).
 */
struct ChipFrontier
{
    std::vector<HullPoint> pts;

    /** Cheapest achievable chip power [W]. */
    Watts floorPowerW() const { return pts.front().powerW; }
};

/**
 * Collapse @p m into its chip-level frontier: start from the
 * all-cheapest assignment, then apply per-core hull increments in
 * globally decreasing BIPS-per-watt order (ties toward the lower
 * core index), recording every cumulative (power, BIPS) prefix.
 * Each prefix is the integer MCKP optimum at its own power level.
 */
ChipFrontier collapseChipFrontier(const ModeMatrix &m);

/**
 * Bound @p f to at most @p levels points (>= 2), index-spaced with
 * both endpoints kept. A frontier already within the bound is
 * returned unchanged.
 */
ChipFrontier quantizeFrontier(const ChipFrontier &f, unsigned levels);

/** Outcome of one facility-budget allocation across chips. */
struct ClusterAllocation
{
    /** Awarded budget per chip [W]; sums to <= the facility budget
     *  when feasible, to the chip floors otherwise. */
    std::vector<Watts> awardsW;
    /** False when even every-chip-at-its-floor busts the budget
     *  (awards are then the floors — the all-slowest analog). */
    bool feasible = false;
    /** Total BIPS of the selected frontier points. */
    double predictedBips = 0.0;
    /** Total power of the selected points, before the leftover
     *  slack was spread across the awards [W]. */
    Watts selectedPowerW = 0.0;
};

/**
 * Solve the facility allocation: build an M × K ModeMatrix whose
 * row i holds chip i's (quantized) frontier points fastest-first —
 * mode 0 is the chip's top point, the last mode its floor, shorter
 * frontiers padded with their floor so the all-slowest fallback is
 * exactly "every chip at its floor" — and run the named policy
 * kernel over it. Feasible leftover slack is spread evenly across
 * the awards (the inner managers cap themselves at their chip's
 * achievable top, so an over-award is never harmful), then the
 * vector is renormalized so the sum never exceeds @p facility_w.
 */
ClusterAllocation
allocateFacilityBudget(const std::vector<ChipFrontier> &chips,
                       Watts facility_w, const std::string &policy);

/** True when @p name is a facility-level arbitration kernel
 *  allocateFacilityBudget() accepts. */
bool isClusterPolicyName(const std::string &name);

} // namespace gpm

#endif // GPM_CLUSTER_CLUSTER_HH
