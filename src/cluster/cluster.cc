#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::size_t
ClusterSpec::totalCores() const
{
    std::size_t n = 0;
    for (const auto &chip : chips)
        n += chip.combo.size();
    return n;
}

ChipFrontier
collapseChipFrontier(const ModeMatrix &m)
{
    FrontierSet f = buildFrontiers(m);
    const std::size_t n = f.numCores();

    // Merge every core's hull increments by BIPS-per-watt ratio,
    // ties toward the lower core index — the same discipline as
    // greedyUpgradeHeap, so a frontier prefix and a greedy fill at
    // that prefix's budget pick identical assignments. Within a
    // core the hull keeps marginal ratios strictly decreasing, so
    // the k-way heap merge greedyUpgradeHeap performs is exactly a
    // global sort by (ratio desc, core asc, hull position asc) —
    // one cache-friendly sort instead of 4n heap operations.
    struct Inc
    {
        double ratio;
        double dPowerW;
        double dBips;
        std::uint32_t core;
        std::uint32_t pos; ///< hull position the increment reaches
    };
    std::vector<Inc> incs;
    incs.reserve(f.pts.size() - n);
    for (std::uint32_t c = 0; c < n; c++) {
        const std::size_t sz = f.sizeOf(c);
        for (std::uint32_t h = 1; h < sz; h++) {
            double dp = f.at(c, h).powerW - f.at(c, h - 1).powerW;
            double db = f.at(c, h).bips - f.at(c, h - 1).bips;
            incs.push_back({db / dp, dp, db, c, h});
        }
    }
    std::sort(incs.begin(), incs.end(),
              [](const Inc &a, const Inc &b) {
                  if (a.ratio != b.ratio)
                      return a.ratio > b.ratio;
                  if (a.core != b.core)
                      return a.core < b.core;
                  return a.pos < b.pos;
              });

    ChipFrontier out;
    out.pts.reserve(incs.size() + 1);
    double power = f.minTotalPowerW;
    double bips = f.baseTotalBips;
    out.pts.push_back({power, bips, 0});
    for (const Inc &inc : incs) {
        power += inc.dPowerW;
        bips += inc.dBips;
        out.pts.push_back({power, bips, 0});
    }
    return out;
}

ChipFrontier
quantizeFrontier(const ChipFrontier &f, unsigned levels)
{
    GPM_ASSERT(levels >= 2);
    GPM_ASSERT(!f.pts.empty());
    const std::size_t n = f.pts.size();
    if (n <= levels)
        return f;
    ChipFrontier out;
    out.pts.reserve(levels);
    // Index-spaced sampling keeps both endpoints; with n > levels
    // the stride exceeds 1, so the rounded indices are distinct.
    for (unsigned j = 0; j < levels; j++) {
        auto idx = static_cast<std::size_t>(std::llround(
            static_cast<double>(j) * static_cast<double>(n - 1) /
            static_cast<double>(levels - 1)));
        out.pts.push_back(f.pts[idx]);
    }
    return out;
}

namespace
{

/** Dispatch a facility-level solve to the named policy kernel. */
std::vector<PowerMode>
solveClusterLevel(const std::string &policy, const ModeMatrix &m,
                  Watts budget_w)
{
    if (policy == "MaxBIPS")
        return MaxBipsPolicy::solve(m, budget_w,
                                    MaxBipsPolicy::Search::Auto);
    if (policy == "MaxBIPS-BnB")
        return MaxBipsPolicy::solve(
            m, budget_w, MaxBipsPolicy::Search::BranchAndBound);
    if (policy.rfind("MaxBIPS-DP", 0) == 0) {
        const std::string suffix = policy.substr(10);
        unsigned grid = MaxBipsDpPolicy::defaultGrid;
        if (!suffix.empty())
            grid = static_cast<unsigned>(
                std::strtoul(suffix.c_str(), nullptr, 10));
        return MaxBipsDpPolicy::solve(m, budget_w, grid);
    }
    if (policy == "WaterFill")
        return WaterFillPolicy::solve(m, budget_w);
    if (policy == "GreedyTurbo")
        return GreedyTurboPolicy::solve(m, budget_w);
    fatal("'%s' is not a cluster arbitration policy",
          policy.c_str());
}

} // namespace

bool
isClusterPolicyName(const std::string &name)
{
    if (name == "MaxBIPS" || name == "MaxBIPS-BnB" ||
        name == "WaterFill" || name == "GreedyTurbo")
        return true;
    // "MaxBIPS-DP" with an optional grid suffix; reuse the policy
    // factory's name validation for the suffix shape.
    return name.rfind("MaxBIPS-DP", 0) == 0 && isPolicyName(name);
}

ClusterAllocation
allocateFacilityBudget(const std::vector<ChipFrontier> &chips,
                       Watts facility_w, const std::string &policy)
{
    const std::size_t m = chips.size();
    GPM_ASSERT(m > 0);
    std::size_t k = 0;
    Watts floor_w = 0.0;
    for (const auto &c : chips) {
        GPM_ASSERT(!c.pts.empty());
        k = std::max(k, c.pts.size());
        floor_w += c.floorPowerW();
    }

    ClusterAllocation out;
    out.awardsW.resize(m);
    out.feasible = floor_w <= facility_w;
    if (!out.feasible) {
        // The cluster-level all-slowest contract: every chip at its
        // floor. The inner managers will make the same fallback
        // when the floor award cannot cover their cheapest modes.
        for (std::size_t i = 0; i < m; i++) {
            out.awardsW[i] = chips[i].floorPowerW();
            out.predictedBips += chips[i].pts.front().bips;
        }
        out.selectedPowerW = floor_w;
        return out;
    }

    // Row i = chip i's frontier, fastest first; pad short frontiers
    // with their floor so mode k-1 is always the floor and the
    // kernels' all-slowest fallback stays "every chip at its
    // floor".
    ModeMatrix mat(m, k);
    for (std::size_t i = 0; i < m; i++) {
        const auto &pts = chips[i].pts;
        const std::size_t f = pts.size();
        for (std::size_t j = 0; j < k; j++) {
            const HullPoint &p = j < f ? pts[f - 1 - j] : pts[0];
            mat.powerW(i, static_cast<PowerMode>(j)) = p.powerW;
            mat.bips(i, static_cast<PowerMode>(j)) = p.bips;
        }
    }

    std::vector<PowerMode> pick =
        solveClusterLevel(policy, mat, facility_w);
    for (std::size_t i = 0; i < m; i++) {
        out.awardsW[i] = mat.powerW(i, pick[i]);
        out.predictedBips += mat.bips(i, pick[i]);
        out.selectedPowerW += mat.powerW(i, pick[i]);
    }

    // Spread the leftover slack evenly: the quantized frontier
    // rarely lands exactly on the budget, and an inner manager
    // given a few extra watts simply uses (or caps) them. The
    // renormalization guards the <= contract against fp rounding
    // in the redistribution sums.
    double slack = facility_w - out.selectedPowerW;
    if (slack > 0.0) {
        const double share = slack / static_cast<double>(m);
        double total = 0.0;
        for (std::size_t i = 0; i < m; i++) {
            out.awardsW[i] += share;
            total += out.awardsW[i];
        }
        if (total > facility_w) {
            const double scale = facility_w / total;
            for (std::size_t i = 0; i < m; i++)
                out.awardsW[i] *= scale;
        }
    }
    return out;
}

} // namespace gpm
