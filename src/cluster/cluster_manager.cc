#include "cluster/cluster_manager.hh"

#include <cmath>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/policies.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gpm
{

namespace
{

/** Dedup key: chips with identical workloads and phase geometry
 *  share one reference-power simulation. */
std::string
chipKey(const ChipSpec &chip)
{
    std::string key;
    for (const auto &w : chip.combo) {
        key += w;
        key += ',';
    }
    key += '|';
    key += std::to_string(chip.phaseShiftStride);
    key += '|';
    key += std::to_string(chip.phaseOffset);
    return key;
}

double
frac(double f)
{
    return f - std::floor(f);
}

} // namespace

ClusterManager::ClusterManager(ProfileLibrary &lib,
                               const DvfsTable &dvfs,
                               const SimConfig &base, ClusterSpec spec)
    : lib(lib), dvfs(dvfs), base(base), spec_(std::move(spec))
{
    GPM_ASSERT(!spec_.chips.empty());
    GPM_ASSERT(spec_.epochs >= 1);
    // Per-chip shifts come from the ChipSpecs; a base shift would
    // silently double-apply under the per-chip config.
    GPM_ASSERT(base.phaseShiftStride == 0.0 &&
               base.phaseShiftBase == 0.0);
}

SimConfig
ClusterManager::chipConfig(const ChipSpec &chip) const
{
    SimConfig cfg = base;
    cfg.phaseShiftStride = chip.phaseShiftStride;
    cfg.phaseShiftBase = chip.phaseOffset;
    cfg.recordTimeline = false;
    return cfg;
}

Expected<ClusterRunResult, ClusterError>
ClusterManager::run(double budget_frac, std::size_t concurrency,
                    const CancelToken *cancel)
{
    const std::size_t m = spec_.chips.size();
    const unsigned epochs = spec_.epochs;
    const std::size_t modes = dvfs.numModes();

    auto cancelledErr = [] {
        ClusterError e;
        e.message = "cluster run cancelled";
        e.cancelled = true;
        return e;
    };

    // --- Profiles: resolve serially through the library (get()
    // handles build-once-per-workload internally; the suite is tiny
    // next to the simulations that follow).
    std::vector<std::vector<const WorkloadProfile *>> profs(m);
    for (std::size_t i = 0; i < m; i++) {
        profs[i].reserve(spec_.chips[i].combo.size());
        for (const auto &w : spec_.chips[i].combo)
            profs[i].push_back(&lib.get(w));
    }
    if (cancel && cancel->cancelled())
        return Expected<ClusterRunResult, ClusterError>::failure(
            cancelledErr());

    std::vector<std::unique_ptr<CmpSim>> sims(m);
    for (std::size_t i = 0; i < m; i++)
        sims[i] = std::make_unique<CmpSim>(
            profs[i], dvfs, chipConfig(spec_.chips[i]));

    // --- Reference powers, deduplicated across identical chips and
    // fanned over the pool. Containment: a throwing reference sim
    // surfaces as a per-chip error, not a pool rethrow.
    std::vector<Watts> refW(m, 0.0);
    std::vector<std::string> errs(m);
    {
        std::map<std::string, std::size_t> reps;
        std::vector<std::size_t> owner(m); // chip -> representative
        std::vector<std::size_t> uniq;
        for (std::size_t i = 0; i < m; i++) {
            auto [it, fresh] =
                reps.emplace(chipKey(spec_.chips[i]), i);
            owner[i] = it->second;
            if (fresh)
                uniq.push_back(i);
        }
        parallelFor(concurrency, uniq.size(), [&](std::size_t u) {
            const std::size_t i = uniq[u];
            try {
                refW[i] = sims[i]->referencePowerW();
            } catch (const std::exception &e) {
                errs[i] = e.what();
            } catch (...) {
                errs[i] = "unknown exception";
            }
        });
        for (std::size_t i = 0; i < m; i++) {
            if (!errs[owner[i]].empty() && errs[i].empty())
                errs[i] = errs[owner[i]];
            refW[i] = refW[owner[i]];
        }
        for (std::size_t i = 0; i < m; i++)
            if (!errs[i].empty()) {
                ClusterError e;
                e.chipIndex = i;
                e.message = "reference sim failed: " + errs[i];
                return Expected<ClusterRunResult,
                                ClusterError>::failure(e);
            }
    }

    Watts ref_total = 0.0;
    for (std::size_t i = 0; i < m; i++)
        ref_total += refW[i];
    const Watts facility_w = budget_frac * ref_total;

    if (cancel && cancel->cancelled())
        return Expected<ClusterRunResult, ClusterError>::failure(
            cancelledErr());

    // --- Planning: predict every chip's frontier at every epoch
    // start. Cursors advance at Turbo rate between epochs — a
    // deterministic progress model independent of the awards, so
    // the whole plan is computed up front and the per-chip planners
    // parallelize freely.
    std::vector<std::vector<ChipFrontier>> fr(
        epochs, std::vector<ChipFrontier>(m));
    parallelFor(concurrency, m, [&](std::size_t i) {
        const ChipSpec &chip = spec_.chips[i];
        const std::size_t n = profs[i].size();
        std::vector<ProfileCursor> cursors;
        cursors.reserve(n);
        for (std::size_t c = 0; c < n; c++) {
            cursors.emplace_back(*profs[i][c]);
            double f = chip.phaseOffset +
                static_cast<double>(c) * chip.phaseShiftStride;
            if (f > 0.0)
                cursors[c].seekFraction(frac(f));
        }
        for (unsigned e = 0; e < epochs; e++) {
            // Deadline-aware planning: a cancelled run abandons the
            // remaining epochs on every chip instead of finishing a
            // plan nobody will wait for (the post-loop check turns
            // the partial plan into a structured cancellation).
            if (cancel && cancel->cancelled())
                return;
            ModeMatrix mat(n, modes);
            for (std::size_t c = 0; c < n; c++) {
                for (std::size_t md = 0; md < modes; md++) {
                    auto pm = static_cast<PowerMode>(md);
                    auto d = cursors[c].peek(base.exploreUs, pm);
                    if (d.usedUs <= 0.0)
                        continue; // finished: zero row
                    mat.powerW(c, pm) =
                        d.energyJ / (d.usedUs * 1e-6);
                    mat.bips(c, pm) =
                        d.instructions / (d.usedUs * 1000.0);
                }
            }
            fr[e][i] = quantizeFrontier(collapseChipFrontier(mat),
                                        spec_.levels);
            for (std::size_t c = 0; c < n; c++)
                cursors[c].advance(spec_.epochUs, modes::Turbo);
        }
    });
    if (cancel && cancel->cancelled())
        return Expected<ClusterRunResult, ClusterError>::failure(
            cancelledErr());

    // --- Per-epoch facility arbitration (serial: M x levels is
    // tiny) and the resulting per-chip budget schedules.
    ClusterRunResult out;
    out.facilityBudgetW = facility_w;
    out.epochs.reserve(epochs);
    std::vector<std::vector<std::pair<MicroSec, double>>> steps(m);
    for (std::size_t i = 0; i < m; i++)
        steps[i].reserve(epochs);
    for (unsigned e = 0; e < epochs; e++) {
        ClusterAllocation a =
            allocateFacilityBudget(fr[e], facility_w, spec_.policy);
        EpochTrace t;
        t.feasible = a.feasible;
        t.predictedBips = a.predictedBips;
        t.awardsW = a.awardsW;
        out.epochs.push_back(std::move(t));
        for (std::size_t i = 0; i < m; i++) {
            // CmpSim budgets are fractions of the chip reference.
            double f = refW[i] > 0.0
                ? out.epochs.back().awardsW[i] / refW[i]
                : 0.0;
            steps[i].emplace_back(
                static_cast<MicroSec>(e) * spec_.epochUs, f);
        }
    }

    if (cancel && cancel->cancelled())
        return Expected<ClusterRunResult, ClusterError>::failure(
            cancelledErr());

    // --- Execution: full per-chip simulations under the awarded
    // schedules, fanned over the pool into pre-sized slots. A chip
    // that throws is contained to its slot and reported as a
    // structured error after the fan-in.
    std::vector<SimResult> results(m);
    std::vector<char> done(m, 0);
    parallelFor(concurrency, m, [&](std::size_t i) {
        try {
            if (cancel && cancel->cancelled())
                return;
            if (fault::armed() &&
                fault::fire(fault::Point::ChipSimThrow))
                throw std::runtime_error(
                    "injected chip-sim-throw fault");
            GlobalManager mgr(dvfs,
                              makePolicy(spec_.chips[i].policy),
                              base.exploreUs);
            BudgetSchedule sched(steps[i]);
            results[i] = sims[i]->run(mgr, sched, refW[i], false);
            done[i] = 1;
        } catch (const std::exception &e) {
            errs[i] = e.what();
        } catch (...) {
            errs[i] = "unknown exception";
        }
    });
    for (std::size_t i = 0; i < m; i++)
        if (!errs[i].empty()) {
            ClusterError e;
            e.chipIndex = i;
            e.message = "chip sim failed: " + errs[i];
            return Expected<ClusterRunResult, ClusterError>::failure(
                e);
        }
    if (cancel && cancel->cancelled())
        return Expected<ClusterRunResult, ClusterError>::failure(
            cancelledErr());
    for (std::size_t i = 0; i < m; i++)
        GPM_ASSERT(done[i]);

    // --- Assembly, in spec order.
    out.chips.reserve(m);
    for (std::size_t i = 0; i < m; i++) {
        ChipOutcome c;
        c.bips = results[i].chipBips();
        c.avgCorePowerW = results[i].avgCorePowerW();
        Watts award_sum = 0.0;
        for (const auto &t : out.epochs)
            award_sum += t.awardsW[i];
        c.awardedMeanW = award_sum / static_cast<double>(epochs);
        c.refPowerW = refW[i];
        c.managerStats = results[i].managerStats;
        out.clusterBips += c.bips;
        out.clusterPowerW += c.avgCorePowerW;
        out.chips.push_back(std::move(c));
    }
    out.budgetUtilization =
        facility_w > 0.0 ? out.clusterPowerW / facility_w : 0.0;
    return out;
}

} // namespace gpm
