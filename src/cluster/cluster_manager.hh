/**
 * @file
 * ClusterManager — the outer epoch loop over a rack of chips.
 *
 * One run, at one facility budget fraction, proceeds in three
 * phases:
 *
 *  1. Reference: each distinct chip spec's all-Turbo average core
 *     power (CmpSim::referencePowerW, deduplicated across identical
 *     chips). The facility budget is the fraction times the sum of
 *     the chip references — the same convention the single-chip
 *     scenarios use.
 *  2. Planning: for every epoch, every chip is collapsed into its
 *     achievable BIPS-vs-power frontier predicted from profile
 *     peeks at the epoch's start (cursors advance at Turbo rate
 *     between epochs — the planner's progress model), quantized to
 *     the spec's level count, and the facility allocation is solved
 *     per epoch with the cluster policy kernel. The per-epoch
 *     awards form each chip's piecewise-constant BudgetSchedule and
 *     the reallocation trace the result reports.
 *  3. Execution: every chip runs its full simulation under its
 *     awarded schedule with its own GlobalManager/policy, fanned
 *     over the thread pool with spec-order assembly — results land
 *     in pre-sized slots, so a run is bitwise-identical at any
 *     thread count.
 *
 * A chip simulation that throws is contained: the exception becomes
 * a structured ClusterError naming the chip, never a crash of the
 * serving worker.
 */

#ifndef GPM_CLUSTER_CLUSTER_MANAGER_HH
#define GPM_CLUSTER_CLUSTER_MANAGER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "sim/cmp_sim.hh"
#include "trace/phase_profile.hh"
#include "util/cancel.hh"
#include "util/expected.hh"

namespace gpm
{

/** Per-chip outcome of a cluster run. */
struct ChipOutcome
{
    /** Chip throughput over its measured window [BIPS]. */
    double bips = 0.0;
    /** Average core power over the window [W]. */
    Watts avgCorePowerW = 0.0;
    /** Mean awarded budget across the epochs [W]. */
    Watts awardedMeanW = 0.0;
    /** The chip's all-Turbo reference power [W]. */
    Watts refPowerW = 0.0;
    /** Inner manager statistics. */
    ManagerStats managerStats;
};

/** One epoch of the reallocation trace. */
struct EpochTrace
{
    /** False when the facility budget cannot cover the chip floors
     *  (awards are then the floors). */
    bool feasible = false;
    /** Total BIPS of the selected frontier points. */
    double predictedBips = 0.0;
    /** Award per chip [W]. */
    std::vector<Watts> awardsW;
};

/** Outcome of one cluster run at one facility budget fraction. */
struct ClusterRunResult
{
    Watts facilityBudgetW = 0.0;
    /** Sum of the chips' measured throughputs [BIPS]. */
    double clusterBips = 0.0;
    /** Sum of the chips' measured average core powers [W]. */
    Watts clusterPowerW = 0.0;
    /** clusterPowerW / facilityBudgetW (0 when the budget is 0). */
    double budgetUtilization = 0.0;
    std::vector<ChipOutcome> chips;
    std::vector<EpochTrace> epochs;
};

/** Why a cluster run failed. */
struct ClusterError
{
    /** Offending chip, or npos for a cluster-level failure. */
    static constexpr std::size_t npos =
        static_cast<std::size_t>(-1);
    std::size_t chipIndex = npos;
    std::string message;
    /** Abandoned by a CancelToken rather than failed. */
    bool cancelled = false;
};

class ClusterManager
{
  public:
    /**
     * @param lib  shared profile library (chips resolve their
     *             workloads through it; must outlive the manager)
     * @param dvfs mode table shared by every chip
     * @param base sim knobs shared by every chip; per-chip phase
     *             shifts come from the ChipSpecs, so base's
     *             phaseShiftStride/phaseShiftBase must be 0
     * @param spec the rack
     */
    ClusterManager(ProfileLibrary &lib, const DvfsTable &dvfs,
                   const SimConfig &base, ClusterSpec spec);

    /**
     * One full cluster run at @p budget_frac of the summed chip
     * references. Deterministic for any @p concurrency (0 = the
     * GPM_THREADS / hardware default). @p cancel, when non-null, is
     * polled between phases and before every chip simulation.
     */
    Expected<ClusterRunResult, ClusterError>
    run(double budget_frac, std::size_t concurrency = 0,
        const CancelToken *cancel = nullptr);

    const ClusterSpec &spec() const { return spec_; }

  private:
    SimConfig chipConfig(const ChipSpec &chip) const;

    ProfileLibrary &lib;
    const DvfsTable &dvfs;
    SimConfig base;
    ClusterSpec spec_;
};

} // namespace gpm

#endif // GPM_CLUSTER_CLUSTER_MANAGER_HH
