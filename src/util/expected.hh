/**
 * @file
 * Minimal std::expected stand-in (the toolchain targets C++20, so
 * the C++23 original is unavailable): a tagged union holding either
 * a success value T or an error E. Used where failure is part of the
 * interface contract rather than a fatal() — e.g. the scenario
 * service turns these into structured "invalid scenario" responses
 * instead of killing the daemon.
 */

#ifndef GPM_UTIL_EXPECTED_HH
#define GPM_UTIL_EXPECTED_HH

#include <utility>
#include <variant>

#include "util/logging.hh"

namespace gpm
{

template <typename T, typename E>
class Expected
{
  public:
    /** Implicit success wrapper. */
    Expected(T value) : v(std::in_place_index<0>, std::move(value)) {}

    /** Build the error alternative. */
    static Expected
    failure(E error)
    {
        return Expected(std::in_place_index<1>, std::move(error));
    }

    bool ok() const { return v.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        GPM_ASSERT(ok());
        return std::get<0>(v);
    }

    const T &
    value() const
    {
        GPM_ASSERT(ok());
        return std::get<0>(v);
    }

    E &
    error()
    {
        GPM_ASSERT(!ok());
        return std::get<1>(v);
    }

    const E &
    error() const
    {
        GPM_ASSERT(!ok());
        return std::get<1>(v);
    }

  private:
    template <std::size_t I, typename U>
    Expected(std::in_place_index_t<I> tag, U &&u)
        : v(tag, std::forward<U>(u))
    {
    }

    std::variant<T, E> v;
};

} // namespace gpm

#endif // GPM_UTIL_EXPECTED_HH
