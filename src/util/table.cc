#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace gpm
{

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> w(headers.size(), 0);
    for (std::size_t c = 0; c < headers.size(); c++)
        w[c] = headers[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); c++)
            w[c] = std::max(w[c], r[c].size());

    auto renderRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t c = 0; c < headers.size(); c++) {
            const std::string &cell = c < r.size() ? r[c] : "";
            line += "| " + cell;
            line.append(w[c] - cell.size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string sep;
    for (std::size_t c = 0; c < headers.size(); c++) {
        sep += "+";
        sep.append(w[c] + 2, '-');
    }
    sep += "+\n";

    std::string out = sep + renderRow(headers) + sep;
    for (const auto &r : rows)
        out += renderRow(r);
    out += sep;
    return out;
}

std::string
Table::csv() const
{
    auto join = [](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t c = 0; c < r.size(); c++) {
            if (c)
                line += ",";
            line += r[c];
        }
        return line + "\n";
    };
    std::string out = join(headers);
    for (const auto &r : rows)
        out += join(r);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

CsvWriter::CsvWriter(const std::string &path)
    : f(std::fopen(path.c_str(), "w"))
{
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
}

CsvWriter::~CsvWriter()
{
    std::fclose(f);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t c = 0; c < cells.size(); c++) {
        if (c)
            std::fputc(',', f);
        std::fputs(cells[c].c_str(), f);
    }
    std::fputc('\n', f);
}

void
CsvWriter::rowNums(const std::vector<double> &cells)
{
    for (std::size_t c = 0; c < cells.size(); c++) {
        if (c)
            std::fputc(',', f);
        std::fprintf(f, "%.6g", cells[c]);
    }
    std::fputc('\n', f);
}

} // namespace gpm
