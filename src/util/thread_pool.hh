/**
 * @file
 * A small fixed-size thread pool with a parallel-for primitive —
 * the engine behind ExperimentRunner::sweep and the parallel bench
 * harnesses.
 *
 * Design points (kept deliberately simple — the sweep workload is a
 * modest number of coarse, independent simulation runs, so a plain
 * mutex-protected queue beats work stealing on clarity and is far
 * from being the bottleneck):
 *
 *  - ThreadPool(n) provides a *concurrency* of n: it spawns n - 1
 *    worker threads and the calling thread participates in every
 *    parallelFor, so ThreadPool(1) degrades to a plain serial loop
 *    with no thread traffic at all.
 *  - parallelFor(n, fn) dispatches fn(0) .. fn(n - 1) across the
 *    pool. Indices are handed out through an atomic counter, so
 *    completion order is nondeterministic but any output written to
 *    slot i of a presized array lands in deterministic position.
 *  - Exceptions thrown by fn are captured; the first one is
 *    rethrown on the calling thread after all workers have drained
 *    (remaining indices are abandoned once an exception is seen).
 *  - parallelFor called from inside a pool worker (nested
 *    parallelism) runs the loop inline on that worker instead of
 *    deadlocking on the pool's own queue.
 *  - submit(fn) enqueues a one-off task and returns a
 *    std::future<void>; the destructor drains outstanding tasks
 *    before joining.
 */

#ifndef GPM_UTIL_THREAD_POOL_HH
#define GPM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gpm
{

/** Concurrency to use when the caller passes 0: GPM_THREADS when
 *  set (and > 0), otherwise std::thread::hardware_concurrency(). */
std::size_t defaultConcurrency();

class ThreadPool
{
  public:
    /**
     * @param concurrency total parallelism including the calling
     *        thread; 0 means defaultConcurrency().
     */
    explicit ThreadPool(std::size_t concurrency = 0);

    /** Drains queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    std::size_t concurrency() const { return workers.size() + 1; }

    /**
     * Run fn(0) .. fn(n - 1) across the pool; the calling thread
     * participates. Returns when every index has completed (or been
     * abandoned after an exception); rethrows the first exception
     * on the calling thread.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Enqueue one task; the future reports completion/exception. */
    std::future<void> submit(std::function<void()> fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    mutable std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

/**
 * One-shot convenience: run fn(0) .. fn(n - 1) with the given
 * concurrency (0 = defaultConcurrency()). Builds a transient pool
 * only when concurrency > 1 and n > 1.
 */
void parallelFor(std::size_t concurrency, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace gpm

#endif // GPM_UTIL_THREAD_POOL_HH
