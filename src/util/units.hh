/**
 * @file
 * Unit conventions used across gpm.
 *
 * We standardize on a small set of plain typedefs plus conversion
 * helpers rather than heavyweight unit wrappers:
 *
 *   - time:       microseconds (double) at the CMP-analysis level,
 *                 picoseconds (std::uint64_t) inside the multi-clock
 *                 full-CMP model, cycles (std::uint64_t) inside a core
 *   - frequency:  hertz (double)
 *   - voltage:    volts (double)
 *   - power:      watts (double)
 *   - energy:     joules (double)
 */

#ifndef GPM_UTIL_UNITS_HH
#define GPM_UTIL_UNITS_HH

#include <cstdint>

namespace gpm
{

/** Core clock cycles. */
using Cycles = std::uint64_t;

/** Global wall-clock time in picoseconds (full-CMP model). */
using Picoseconds = std::uint64_t;

/** Wall-clock time in microseconds (trace-based CMP tool). */
using MicroSec = double;

/** Frequency in hertz. */
using Hertz = double;

/** Supply voltage in volts. */
using Volts = double;

/** Power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Picoseconds per second. */
constexpr double psPerSecond = 1e12;

/** Microseconds per second. */
constexpr double usPerSecond = 1e6;

/** Convert a core-cycle count at frequency f to microseconds. */
constexpr MicroSec
cyclesToUs(double cycles, Hertz f)
{
    return cycles / f * usPerSecond;
}

/** Convert microseconds at frequency f to (fractional) cycles. */
constexpr double
usToCycles(MicroSec us, Hertz f)
{
    return us / usPerSecond * f;
}

/** Clock period in picoseconds for frequency f. */
constexpr double
periodPs(Hertz f)
{
    return psPerSecond / f;
}

} // namespace gpm

#endif // GPM_UTIL_UNITS_HH
