/**
 * @file
 * Deterministic exponential backoff with jitter, for clients
 * retrying against a loaded or faulty service (gpmctl's connect /
 * "busy" / timeout retries). The classic capped-exponential
 * schedule, multiplied by a jitter factor in [0.5, 1) drawn from
 * the repo's PCG32 Rng — so retry storms decorrelate across
 * clients, yet any given seed replays the exact same delays
 * (reproducible chaos tests).
 */

#ifndef GPM_UTIL_BACKOFF_HH
#define GPM_UTIL_BACKOFF_HH

#include <algorithm>
#include <cstdint>

#include "util/rng.hh"

namespace gpm
{

class BackoffSchedule
{
  public:
    /**
     * @param base_ms  delay scale for the first retry
     * @param cap_ms   ceiling on the un-jittered delay
     * @param seed     jitter RNG seed (same seed → same delays)
     */
    BackoffSchedule(double base_ms, double cap_ms,
                    std::uint64_t seed)
        : baseMs(base_ms), capMs(cap_ms), rng(seed)
    {
    }

    /**
     * Delay before the next attempt [ms]:
     * min(cap, base * 2^n) * U[0.5, 1), where n counts calls made
     * so far.
     */
    double
    nextMs()
    {
        double raw = baseMs;
        for (std::size_t i = 0; i < attempt && raw < capMs; i++)
            raw *= 2.0;
        attempt++;
        return std::min(raw, capMs) * rng.uniform(0.5, 1.0);
    }

    /** Calls to nextMs() so far. */
    std::size_t attempts() const { return attempt; }

  private:
    double baseMs;
    double capMs;
    std::size_t attempt = 0;
    Rng rng;
};

} // namespace gpm

#endif // GPM_UTIL_BACKOFF_HH
