/**
 * @file
 * Deterministic exponential backoff with jitter, for clients
 * retrying against a loaded or faulty service (gpmctl's connect /
 * "busy" / timeout retries). The classic capped-exponential
 * schedule, multiplied by a jitter factor in [0.5, 1) drawn from
 * the repo's PCG32 Rng — so retry storms decorrelate across
 * clients, yet any given seed replays the exact same delays
 * (reproducible chaos tests).
 */

#ifndef GPM_UTIL_BACKOFF_HH
#define GPM_UTIL_BACKOFF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.hh"

namespace gpm
{

class BackoffSchedule
{
  public:
    /**
     * @param base_ms  delay scale for the first retry
     * @param cap_ms   ceiling on the un-jittered delay
     * @param seed     jitter RNG seed (same seed → same delays)
     */
    BackoffSchedule(double base_ms, double cap_ms,
                    std::uint64_t seed)
        : baseMs(base_ms), capMs(cap_ms), rng(seed)
    {
    }

    /**
     * Delay before the next attempt [ms]:
     * min(cap, base * 2^n) * U[0.5, 1), where n counts calls made
     * so far. The exponent is clamped at 62 — by then base * 2^n
     * dwarfs any sane cap, and an unclamped doubling of a huge cap
     * would run the un-jittered delay into infinity at absurd
     * attempt counts (a long-lived client retrying for days).
     */
    double
    nextMs()
    {
        int n = static_cast<int>(
            std::min<std::size_t>(attempt, 62));
        attempt++;
        double raw = std::ldexp(baseMs, n);
        return std::min(raw, capMs) * rng.uniform(0.5, 1.0);
    }

    /** Calls to nextMs() so far. */
    std::size_t attempts() const { return attempt; }

  private:
    double baseMs;
    double capMs;
    std::size_t attempt = 0;
    Rng rng;
};

} // namespace gpm

#endif // GPM_UTIL_BACKOFF_HH
