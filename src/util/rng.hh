/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * synthetic workloads. Implements the PCG32 generator (O'Neill) plus
 * the handful of distributions the workload generators need. We avoid
 * <random> distributions because their outputs are not guaranteed to
 * be identical across standard library implementations, and trace
 * reproducibility is a hard requirement.
 */

#ifndef GPM_UTIL_RNG_HH
#define GPM_UTIL_RNG_HH

#include <cstdint>

namespace gpm
{

/**
 * PCG32 pseudo-random generator with stream selection.
 * Deterministic across platforms for a given (seed, stream).
 */
class Rng
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) using rejection (unbiased). */
    std::uint32_t below(std::uint32_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Geometric distribution: number of failures before first success
     * with success probability p (p in (0, 1]). Mean (1-p)/p.
     */
    std::uint32_t geometric(double p);

    /** Standard normal via Box-Muller (deterministic pairing). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Zipf-like selection of an index in [0, n) with exponent s.
     * Uses inverse-power rejection sampling; deterministic.
     */
    std::uint32_t zipf(std::uint32_t n, double s);

  private:
    std::uint64_t state;
    std::uint64_t inc;
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace gpm

#endif // GPM_UTIL_RNG_HH
