/**
 * @file
 * Fault injection for the scenario service and the profile pipeline
 * — the chaos-testing backbone. A small set of *named fault points*
 * is compiled into the serving path permanently; each point is
 * disarmed by default and costs exactly one relaxed atomic load at
 * its call site until a test (or an operator, via `gpmd --fault` /
 * the GPMD_FAULT environment variable) arms it.
 *
 * (Lives in util/ so every layer can host a fault point: the profile
 * store in trace/ sits below the service library in the link order.)
 *
 * Fault points:
 *
 *   accept-delay    sleep before handing an accepted connection to
 *                   its thread (slow accept loop)
 *   conn-stall      sleep between reading a request line and
 *                   handling it (a stalled/slow connection)
 *   read-drop       silently discard a received request line (lost
 *                   request; the client sees no response and must
 *                   time out and retry)
 *   worker-throw    throw from inside worker sweep execution
 *                   (exercises crash containment + the supervisor)
 *   worker-stall    sleep inside worker sweep execution before
 *                   computing (a deterministically long-running
 *                   request — pins the worker and its inFlight slot)
 *   response-delay  sleep between computing a response and writing
 *                   it (slow response path)
 *   disk-read-corrupt  treat a disk-cache entry as CRC-corrupt on
 *                   read (exercises quarantine + recompute)
 *   disk-write-fail    fail a disk-cache write (the entry is simply
 *                   not persisted; serving is unaffected)
 *   profile-read-corrupt  treat a profile-store entry as CRC-corrupt
 *                   on read (exercises quarantine + rebuild)
 *   profile-write-fail    fail a profile-store write (the profile is
 *                   rebuilt next cold start; serving is unaffected)
 *   chip-sim-throw  throw from inside a per-chip cluster simulation
 *                   (exercises the ClusterManager's containment: the
 *                   error surfaces as a structured per-chip failure,
 *                   not a worker crash)
 *   disk-read-stall    stall a disk-cache read for delay-ms and
 *                   treat it as an I/O failure (a sick disk: the
 *                   read-path circuit breaker must open and serve
 *                   memory-only)
 *   profile-read-stall stall a profile-store read for delay-ms and
 *                   treat it as an I/O failure (same, for the
 *                   profile store's breaker)
 *   clock-skew      jump a circuit breaker's internal clock forward
 *                   by delay-ms per fire (breaker cooldowns must
 *                   stay correct under time jumps — never crash or
 *                   wedge)
 *
 * Spec grammar (comma-separated, whitespace-free):
 *
 *   spec  := item (',' item)*
 *   item  := "seed" ':' N
 *          | name [':' probability [':' delay-ms]]
 *
 * e.g. "worker-throw:0.5,conn-stall:1:150,seed:42". Probability
 * defaults to 1, delay to 0 ms. Triggering is driven by one shared
 * PCG32 stream seeded from the spec (default seed 1), so a given
 * binary + spec + request sequence always fires the same faults —
 * chaos runs are reproducible.
 *
 * Thread-safety: arm()/disarm() must not race the serving path (arm
 * before serving starts, disarm after it stops — what gpmd and the
 * tests do); fire()/maybeDelay() are safe from any thread.
 */

#ifndef GPM_UTIL_FAULT_HH
#define GPM_UTIL_FAULT_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gpm::fault
{

enum class Point : std::size_t
{
    AcceptDelay,
    ConnStall,
    ReadDrop,
    WorkerThrow,
    WorkerStall,
    ResponseDelay,
    DiskReadCorrupt,
    DiskWriteFail,
    ProfileReadCorrupt,
    ProfileWriteFail,
    ChipSimThrow,
    DiskReadStall,
    ProfileReadStall,
    ClockSkew,
    kCount
};

constexpr std::size_t kPoints =
    static_cast<std::size_t>(Point::kCount);

namespace detail
{
extern std::atomic<bool> g_armed;
} // namespace detail

/** True when any fault point is armed. The only cost a disarmed
 *  call site pays — guard every hook with it. */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Parse @p spec (see grammar above) and arm the named points,
 * replacing any previous arming. Returns the parse-rejection
 * reason, or nullopt on success (an empty spec just disarms).
 */
std::optional<std::string> arm(const std::string &spec);

/** Disarm every point and reset fire counters and the RNG. */
void disarm();

/**
 * Roll the dice for @p p: false unless the point is armed and its
 * seeded Bernoulli trial fires. Fires are counted (see fires()).
 */
bool fire(Point p);

/** fire(p) and, when it fires, sleep the point's configured
 *  delay-ms. Returns whether it fired. */
bool maybeDelay(Point p);

/** The delay-ms configured for @p p (0 when disarmed or no delay
 *  was given). For fault points that consume the delay as a value
 *  instead of sleeping it — e.g. clock-skew's jump size. */
int configuredDelayMs(Point p);

/** Times @p p has fired since the last arm()/disarm(). */
std::uint64_t fires(Point p);

/** The spec-string name of @p p ("accept-delay", ...). */
const char *name(Point p);

/** Reverse of name(); nullopt for unknown names. */
std::optional<Point> pointByName(std::string_view name);

} // namespace gpm::fault

#endif // GPM_UTIL_FAULT_HH
