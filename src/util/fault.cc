#include "util/fault.hh"

#include <array>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/rng.hh"

namespace gpm::fault
{

namespace detail
{
std::atomic<bool> g_armed{false};
} // namespace detail

namespace
{

struct PointConfig
{
    bool on = false;
    double probability = 1.0;
    int delayMs = 0;
};

constexpr std::uint64_t kDefaultSeed = 1;

struct State
{
    std::mutex mtx;
    std::array<PointConfig, kPoints> points{};
    std::array<std::atomic<std::uint64_t>, kPoints> fired{};
    Rng rng{kDefaultSeed};
};

State &
state()
{
    static State s;
    return s;
}

constexpr const char *kNames[kPoints] = {
    "accept-delay",      "conn-stall",   "read-drop",
    "worker-throw",      "worker-stall", "response-delay",
    "disk-read-corrupt", "disk-write-fail",
    "profile-read-corrupt", "profile-write-fail",
    "chip-sim-throw",     "disk-read-stall",
    "profile-read-stall", "clock-skew",
};

void
resetLocked(State &s, std::uint64_t seed)
{
    for (auto &p : s.points)
        p = PointConfig{};
    for (auto &f : s.fired)
        f.store(0, std::memory_order_relaxed);
    s.rng = Rng(seed);
}

} // namespace

const char *
name(Point p)
{
    return kNames[static_cast<std::size_t>(p)];
}

std::optional<Point>
pointByName(std::string_view n)
{
    for (std::size_t i = 0; i < kPoints; i++)
        if (n == kNames[i])
            return static_cast<Point>(i);
    return std::nullopt;
}

std::optional<std::string>
arm(const std::string &spec)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    detail::g_armed.store(false, std::memory_order_relaxed);

    // Two passes: pick up the seed first so arming order does not
    // depend on where "seed:N" appears in the spec.
    std::uint64_t seed = kDefaultSeed;
    std::array<PointConfig, kPoints> parsed{};
    bool any = false;

    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        std::string item = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        start = comma == std::string::npos ? spec.size() + 1
                                           : comma + 1;
        if (item.empty())
            continue;

        // Split "name[:a[:b]]".
        std::string fields[3];
        std::size_t nfields = 0, fstart = 0;
        while (nfields < 3) {
            std::size_t colon = item.find(':', fstart);
            if (colon == std::string::npos) {
                fields[nfields++] = item.substr(fstart);
                break;
            }
            fields[nfields++] = item.substr(fstart, colon - fstart);
            fstart = colon + 1;
            if (nfields == 3 && fstart <= item.size())
                return "too many ':' fields in '" + item + "'";
        }

        if (fields[0] == "seed") {
            if (nfields != 2 || fields[1].empty())
                return "seed needs exactly one value";
            char *end = nullptr;
            seed = std::strtoull(fields[1].c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                return "bad seed '" + fields[1] + "'";
            continue;
        }

        auto point = pointByName(fields[0]);
        if (!point)
            return "unknown fault point '" + fields[0] + "'";
        PointConfig cfg;
        cfg.on = true;
        if (nfields >= 2 && !fields[1].empty()) {
            char *end = nullptr;
            cfg.probability = std::strtod(fields[1].c_str(), &end);
            if (end == nullptr || *end != '\0' ||
                cfg.probability < 0.0 || cfg.probability > 1.0)
                return "bad probability '" + fields[1] + "' in '" +
                    item + "'";
        }
        if (nfields >= 3 && !fields[2].empty()) {
            char *end = nullptr;
            long ms = std::strtol(fields[2].c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || ms < 0 ||
                ms > 600000)
                return "bad delay-ms '" + fields[2] + "' in '" +
                    item + "'";
            cfg.delayMs = static_cast<int>(ms);
        }
        parsed[static_cast<std::size_t>(*point)] = cfg;
        any = true;
    }

    resetLocked(s, seed);
    s.points = parsed;
    detail::g_armed.store(any, std::memory_order_relaxed);
    return std::nullopt;
}

void
disarm()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    detail::g_armed.store(false, std::memory_order_relaxed);
    resetLocked(s, kDefaultSeed);
}

bool
fire(Point p)
{
    if (!armed())
        return false;
    State &s = state();
    std::size_t i = static_cast<std::size_t>(p);
    bool fired;
    {
        std::lock_guard<std::mutex> lock(s.mtx);
        if (!s.points[i].on)
            return false;
        fired = s.rng.chance(s.points[i].probability);
    }
    if (fired)
        s.fired[i].fetch_add(1, std::memory_order_relaxed);
    return fired;
}

bool
maybeDelay(Point p)
{
    if (!fire(p))
        return false;
    int ms;
    {
        State &s = state();
        std::lock_guard<std::mutex> lock(s.mtx);
        ms = s.points[static_cast<std::size_t>(p)].delayMs;
    }
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return true;
}

int
configuredDelayMs(Point p)
{
    if (!armed())
        return 0;
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    const PointConfig &cfg =
        s.points[static_cast<std::size_t>(p)];
    return cfg.on ? cfg.delayMs : 0;
}

std::uint64_t
fires(Point p)
{
    return state()
        .fired[static_cast<std::size_t>(p)]
        .load(std::memory_order_relaxed);
}

} // namespace gpm::fault
