/**
 * @file
 * Status-message and error helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a gpm bug); aborts.
 * fatal()  — the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits with 1.
 * warn()   — something may not behave as the user expects.
 * inform() — normal operating status.
 */

#ifndef GPM_UTIL_LOGGING_HH
#define GPM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace gpm
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global log verbosity (default: Inform). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Abort with a message; use for violated internal invariants.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit(1) with a message; use for unrecoverable user errors.
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning (suppressed below LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (suppressed below LogLevel::Inform). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (only at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like check that survives release builds.
 * Panics with location info when cond is false.
 */
#define GPM_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::gpm::panic("assertion '%s' failed at %s:%d", #cond,        \
                         __FILE__, __LINE__);                            \
        }                                                                \
    } while (0)

} // namespace gpm

#endif // GPM_UTIL_LOGGING_HH
