/**
 * @file
 * CancelToken — cooperative cancellation for long-running
 * computations. A token is either cancelled explicitly (cancel())
 * or implicitly by an attached wall-clock deadline; workers poll
 * cancelled() at natural checkpoints (the sweep engine checks
 * between budget points) and abandon remaining work.
 *
 * Thread-safety: cancel() and cancelled() may race freely from any
 * thread. setDeadline() must happen-before the token is shared
 * (it is a setup-time call, not a control channel).
 */

#ifndef GPM_UTIL_CANCEL_HH
#define GPM_UTIL_CANCEL_HH

#include <atomic>
#include <chrono>

namespace gpm
{

class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation. Idempotent, callable from any thread. */
    void
    cancel()
    {
        flag.store(true, std::memory_order_release);
    }

    /** Cancel automatically once @p deadline passes. Call before
     *  sharing the token with workers. */
    void
    setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadlineAt = deadline;
        hasDeadline = true;
    }

    /** setDeadline(now + ms), for callers holding a relative QoS
     *  budget. */
    void
    setDeadlineAfterMs(double ms)
    {
        setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        static_cast<std::int64_t>(ms * 1000.0)));
    }

    /** True once cancel() was called or the deadline passed. The
     *  deadline check latches into the flag, so later calls are one
     *  atomic load. */
    bool
    cancelled() const
    {
        if (flag.load(std::memory_order_acquire))
            return true;
        if (hasDeadline &&
            std::chrono::steady_clock::now() >= deadlineAt) {
            flag.store(true, std::memory_order_release);
            return true;
        }
        return false;
    }

  private:
    mutable std::atomic<bool> flag{false};
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadlineAt{};
};

} // namespace gpm

#endif // GPM_UTIL_CANCEL_HH
