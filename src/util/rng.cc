#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace gpm
{

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    next32();
    state += seed;
    next32();
}

std::uint32_t
Rng::next32()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

double
Rng::uniform()
{
    // 53-bit mantissa from a 64-bit draw.
    return static_cast<double>(next64() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint32_t
Rng::below(std::uint32_t n)
{
    GPM_ASSERT(n > 0);
    // Lemire-style rejection to stay unbiased.
    std::uint32_t threshold = (-n) % n;
    for (;;) {
        std::uint32_t r = next32();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    GPM_ASSERT(lo <= hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next64());
    std::uint64_t r = next64() % span;
    return lo + static_cast<std::int64_t>(r);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint32_t
Rng::geometric(double p)
{
    GPM_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Inverse CDF; clamp to avoid log(0).
    if (u <= 0.0)
        u = 1e-18;
    double v = std::log(u) / std::log1p(-p);
    if (v > 4.0e9)
        v = 4.0e9;
    return static_cast<std::uint32_t>(v);
}

double
Rng::gaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 1e-18;
    double mag = std::sqrt(-2.0 * std::log(u1));
    double z0 = mag * std::cos(2.0 * M_PI * u2);
    spare = mag * std::sin(2.0 * M_PI * u2);
    haveSpare = true;
    return z0;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

std::uint32_t
Rng::zipf(std::uint32_t n, double s)
{
    GPM_ASSERT(n > 0);
    if (n == 1)
        return 0;
    // Rejection-inversion (simplified for moderate n).
    for (;;) {
        double u = uniform();
        // Inverse of the continuous approximation of the Zipf CDF.
        double x;
        if (s == 1.0) {
            x = std::exp(u * std::log(static_cast<double>(n)));
        } else {
            double t = std::pow(static_cast<double>(n), 1.0 - s);
            x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
        }
        std::uint32_t k = static_cast<std::uint32_t>(x) - 1;
        if (k < n)
            return k;
    }
}

} // namespace gpm
