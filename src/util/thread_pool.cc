#include "thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace gpm
{

namespace
{

/** Set while a pool worker is executing, to detect nesting. */
thread_local bool inside_pool_worker = false;

} // namespace

std::size_t
defaultConcurrency()
{
    if (const char *s = std::getenv("GPM_THREADS")) {
        long v = std::atol(s);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t concurrency)
{
    if (concurrency == 0)
        concurrency = defaultConcurrency();
    workers.reserve(concurrency - 1);
    for (std::size_t i = 0; i + 1 < concurrency; i++)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    inside_pool_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::move(fn));
    std::future<void> fut = task->get_future();
    {
        std::lock_guard<std::mutex> lock(mtx);
        tasks.emplace([task] { (*task)(); });
    }
    cv.notify_one();
    return fut;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Nested call from a worker, or nothing to share: run inline.
    if (inside_pool_worker || workers.empty() || n == 1) {
        for (std::size_t i = 0; i < n; i++)
            fn(i);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMtx;
    };
    auto shared = std::make_shared<Shared>();

    auto drain = [shared, &fn, n] {
        for (;;) {
            if (shared->failed.load(std::memory_order_relaxed))
                return;
            std::size_t i =
                shared->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared->errorMtx);
                if (!shared->error)
                    shared->error = std::current_exception();
                shared->failed.store(true,
                                     std::memory_order_relaxed);
            }
        }
    };

    // One helper task per worker; each grabs indices until the range
    // is exhausted. fn and the index counter outlive the futures
    // because we wait on every one before returning.
    std::vector<std::future<void>> helpers;
    std::size_t n_helpers = std::min(workers.size(), n - 1);
    helpers.reserve(n_helpers);
    for (std::size_t w = 0; w < n_helpers; w++)
        helpers.push_back(submit(drain));

    drain(); // the calling thread participates

    for (auto &h : helpers)
        h.get();

    if (shared->error)
        std::rethrow_exception(shared->error);
}

void
parallelFor(std::size_t concurrency, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (concurrency == 0)
        concurrency = defaultConcurrency();
    if (concurrency <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    ThreadPool pool(concurrency);
    pool.parallelFor(n, fn);
}

} // namespace gpm
