/**
 * @file
 * Small formatted-table and CSV writers used by the benchmark
 * harnesses to print the paper's tables and figure series.
 */

#ifndef GPM_UTIL_TABLE_HH
#define GPM_UTIL_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace gpm
{

/**
 * Column-aligned ASCII table builder. Collects rows of strings and
 * renders with per-column widths. Used for the paper-table benches.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells (padded to column count). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double cell with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** Convenience: format a percentage cell ("12.3%"). */
    static std::string pct(double fraction, int decimals = 1);

    /** Render the table with separators. */
    std::string render() const;

    /** Render as CSV (no alignment). */
    std::string csv() const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Minimal CSV file writer for exporting figure series that a plotting
 * script can consume.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row of cells. */
    void row(const std::vector<std::string> &cells);

    /** Write one row of doubles. */
    void rowNums(const std::vector<double> &cells);

  private:
    std::FILE *f;
};

} // namespace gpm

#endif // GPM_UTIL_TABLE_HH
