#ifndef GPM_UTIL_BINIO_HH
#define GPM_UTIL_BINIO_HH

/**
 * @file
 * Small binary-file I/O helpers shared by the on-disk stores (the
 * result disk cache in service/ and the profile store in trace/):
 * little-endian integer framing, IEEE CRC32, whole-file reads, and
 * atomic temp+rename writes. Everything here is header-only and
 * dependency-free so any layer can use it.
 *
 * Framing convention (both stores follow it): an 8-byte magic that
 * doubles as a format version, a little-endian u64 payload length, a
 * little-endian u32 CRC32 of the payload, then the payload bytes.
 * Integers are little-endian unconditionally — the only hosts this
 * targets.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

namespace gpm
{
namespace binio
{

/** Plain table-driven CRC32 (IEEE 802.3 polynomial). */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; i++)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

inline void
putLe(std::string &out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; i++)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

inline std::uint64_t
getLe(const char *p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; i++)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
            << (8 * i);
    return v;
}

inline bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char chunk[1 << 14];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, got);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

/**
 * Write `blob` to `path` atomically: a process-unique temp name in
 * the same directory, flushed and fsync()d, then rename()d over the
 * target. The rename is the commit point — a crash mid-write leaves
 * only the temp file, never a truncated target, and two processes
 * sharing the directory can never interleave bytes. The fsync makes
 * the blob's pages durable before the rename can commit, so even
 * after a power loss the target holds either the old or the
 * complete new contents (the directory entry itself is not synced:
 * a power loss immediately after can drop the rename, which
 * resurfaces the old file — never a torn one). Returns false (and
 * removes the temp file) on any failure.
 */
inline bool
writeFileAtomic(const std::string &path, const std::string &blob)
{
    std::string tmp = path + ".tmp." +
        std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    ok = std::fflush(f) == 0 && ok;
    ok = ::fsync(::fileno(f)) == 0 && ok;
    std::fclose(f);
    if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

/**
 * Frame a payload per the store convention: magic (8 bytes), LE u64
 * payload length, LE u32 CRC32(payload), payload.
 */
inline std::string
frame(const char (&magic)[8], const std::string &payload)
{
    std::string blob;
    blob.reserve(8 + 8 + 4 + payload.size());
    blob.append(magic, 8);
    putLe(blob, payload.size(), 8);
    putLe(blob, crc32(payload.data(), payload.size()), 4);
    blob += payload;
    return blob;
}

/**
 * Validate a framed blob against `magic` and its CRC; on success
 * set `payload` to the unframed bytes and return true. Any size,
 * magic, length, or checksum mismatch returns false.
 */
inline bool
unframe(const char (&magic)[8], const std::string &raw,
        std::string &payload)
{
    constexpr std::size_t kHeaderBytes = 8 + 8 + 4;
    if (raw.size() < kHeaderBytes ||
        std::memcmp(raw.data(), magic, 8) != 0)
        return false;
    std::uint64_t len = getLe(raw.data() + 8, 8);
    auto crc = static_cast<std::uint32_t>(getLe(raw.data() + 16, 4));
    if (raw.size() != kHeaderBytes + len ||
        crc32(raw.data() + kHeaderBytes, len) != crc)
        return false;
    payload.assign(raw, kHeaderBytes, len);
    return true;
}

} // namespace binio
} // namespace gpm

#endif // GPM_UTIL_BINIO_HH
