#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace gpm
{

void
RunningStat::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStat::addWeighted(double x, double w)
{
    GPM_ASSERT(w >= 0.0);
    if (w == 0.0)
        return;
    n++;
    wSum += w;
    xwSum += x * w;
    double delta = x - meanV;
    meanV += (w / wSum) * delta;
    m2 += w * delta * (x - meanV);
    minV = std::min(minV, x);
    maxV = std::max(maxV, x);
}

double
RunningStat::mean() const
{
    return wSum > 0.0 ? meanV : 0.0;
}

double
RunningStat::variance() const
{
    if (n < 2 || wSum <= 0.0)
        return 0.0;
    return m2 / wSum;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
HarmonicMean::add(double x)
{
    GPM_ASSERT(x > 0.0);
    n++;
    invSum += 1.0 / x;
}

double
HarmonicMean::value() const
{
    if (n == 0 || invSum <= 0.0)
        return 0.0;
    return static_cast<double>(n) / invSum;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins_)
    : lo(lo_), hi(hi_), counts(bins_, 0)
{
    GPM_ASSERT(hi_ > lo_ && bins_ > 0);
}

void
Histogram::add(double x)
{
    double f = (x - lo) / (hi - lo);
    auto i = static_cast<std::int64_t>(f * static_cast<double>(bins()));
    i = std::clamp<std::int64_t>(i, 0,
                                 static_cast<std::int64_t>(bins()) - 1);
    counts[static_cast<std::size_t>(i)]++;
    n++;
}

double
Histogram::binLo(std::size_t i) const
{
    return lo + (hi - lo) * static_cast<double>(i) /
        static_cast<double>(bins());
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (auto c : counts)
        peak = std::max(peak, c);
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < bins(); i++) {
        std::snprintf(buf, sizeof(buf), "%10.3f | ", binLo(i));
        out += buf;
        std::size_t stars = static_cast<std::size_t>(
            static_cast<double>(counts[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        out.append(stars, '*');
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(counts[i]));
        out += buf;
    }
    return out;
}

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
harmonicMeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        GPM_ASSERT(x > 0.0);
        s += 1.0 / x;
    }
    return static_cast<double>(v.size()) / s;
}

double
geometricMeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        GPM_ASSERT(x > 0.0);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace gpm
