#include "util/breaker.hh"

#include <chrono>

#include "util/fault.hh"

namespace gpm
{

CircuitBreaker::CircuitBreaker(BreakerOptions opts_)
    : opts(opts_), rng(opts_.seed)
{
    if (opts.window == 0)
        opts.window = 1;
    if (opts.minSamples == 0)
        opts.minSamples = 1;
    if (opts.minSamples > opts.window)
        opts.minSamples = opts.window;
    ring.assign(opts.window, 0);
}

double
CircuitBreaker::nowMs()
{
    // The clock-skew fault advances this breaker's private clock by
    // its delay-ms per fire: a forward jump can end a cooldown
    // early (the probe just happens sooner) but can never push
    // reopenAtMs out of reach — the offset is monotonic.
    if (fault::armed() && fault::fire(fault::Point::ClockSkew))
        skewMs += static_cast<double>(
            fault::configuredDelayMs(fault::Point::ClockSkew));
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
               .count() +
        skewMs;
}

void
CircuitBreaker::pushOutcomeLocked(bool failure)
{
    if (samples == opts.window) {
        // Window full: the slot at head is the oldest — retire it.
        failures -= ring[ringHead] != 0;
    } else {
        samples++;
    }
    ring[ringHead] = failure ? 1 : 0;
    failures += failure ? 1 : 0;
    ringHead = (ringHead + 1) % opts.window;
}

void
CircuitBreaker::openLocked(double now)
{
    st = State::Open;
    openCount++;
    probeInFlight = false;
    reopenAtMs =
        now + opts.cooldownMs * rng.uniform(1.0, 1.5);
}

bool
CircuitBreaker::allow()
{
    std::lock_guard<std::mutex> lock(mtx);
    switch (st) {
    case State::Closed:
        return true;
    case State::Open:
        if (nowMs() < reopenAtMs)
            return false;
        st = State::HalfOpen;
        probeInFlight = true;
        return true;
    case State::HalfOpen:
        if (probeInFlight)
            return false;
        probeInFlight = true;
        return true;
    }
    return true; // unreachable
}

void
CircuitBreaker::recordSuccess()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (st == State::HalfOpen) {
        // The probe came back healthy: close with a clean slate so
        // pre-outage failures cannot immediately re-trip.
        st = State::Closed;
        probeInFlight = false;
        ring.assign(opts.window, 0);
        ringHead = samples = failures = 0;
        return;
    }
    if (st == State::Closed)
        pushOutcomeLocked(false);
}

void
CircuitBreaker::recordFailure()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (st == State::HalfOpen) {
        openLocked(nowMs());
        return;
    }
    if (st != State::Closed)
        return;
    pushOutcomeLocked(true);
    if (samples >= opts.minSamples &&
        static_cast<double>(failures) >=
            opts.failureThreshold *
                static_cast<double>(samples))
        openLocked(nowMs());
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return st;
}

const char *
CircuitBreaker::stateName(State s)
{
    switch (s) {
    case State::Closed:
        return "closed";
    case State::Open:
        return "open";
    case State::HalfOpen:
        return "half-open";
    }
    return "?";
}

const char *
CircuitBreaker::stateName() const
{
    return stateName(state());
}

std::uint64_t
CircuitBreaker::opens() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return openCount;
}

} // namespace gpm
