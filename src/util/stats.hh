/**
 * @file
 * Lightweight statistics accumulators used throughout the simulator:
 * running mean/min/max/stddev, weighted means (arithmetic and
 * harmonic), and fixed-bin histograms.
 */

#ifndef GPM_UTIL_STATS_HH
#define GPM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpm
{

/**
 * Streaming accumulator for mean / variance / extrema (Welford).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Add a sample with a weight (e.g. time-weighted power). */
    void addWeighted(double x, double w);

    /** Number of samples added. */
    std::uint64_t count() const { return n; }

    /** Total weight added (== count() when unweighted). */
    double weight() const { return wSum; }

    /** Weighted mean of the samples; 0 if empty. */
    double mean() const;

    /** Population variance; 0 if fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf if empty. */
    double min() const { return minV; }

    /** Largest sample; -inf if empty. */
    double max() const { return maxV; }

    /** Sum of x * w over all samples. */
    double sum() const { return xwSum; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t n = 0;
    double wSum = 0.0;
    double xwSum = 0.0;
    double meanV = 0.0;
    double m2 = 0.0;
    double minV = 1.0e300;
    double maxV = -1.0e300;
};

/**
 * Harmonic mean accumulator; used for weighted-slowdown metrics
 * (harmonic mean of per-thread speedups, Luo et al. style).
 */
class HarmonicMean
{
  public:
    /** Add one strictly positive sample. */
    void add(double x);

    /** Harmonic mean of the samples; 0 if empty. */
    double value() const;

    /** Number of samples. */
    std::size_t count() const { return n; }

  private:
    std::size_t n = 0;
    double invSum = 0.0;
};

/**
 * Fixed-width-bin histogram over [lo, hi); values outside are
 * clamped into the first / last bin.
 */
class Histogram
{
  public:
    /** Create a histogram of @p bins equal bins spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Count in bin i. */
    std::uint64_t bin(std::size_t i) const { return counts.at(i); }

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Inclusive lower edge of bin i. */
    double binLo(std::size_t i) const;

    /** Total samples recorded. */
    std::uint64_t total() const { return n; }

    /** Render a short one-line-per-bin ASCII summary. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
};

/** Arithmetic mean of a vector; 0 if empty. */
double meanOf(const std::vector<double> &v);

/** Harmonic mean of a vector of positive values; 0 if empty. */
double harmonicMeanOf(const std::vector<double> &v);

/** Geometric mean of a vector of positive values; 0 if empty. */
double geometricMeanOf(const std::vector<double> &v);

} // namespace gpm

#endif // GPM_UTIL_STATS_HH
