/**
 * @file
 * CircuitBreaker — failure-domain isolation for flaky dependencies
 * (the disk result cache, the profile store). The classic three
 * states:
 *
 *     closed ──(failure rate over the sample window crosses the
 *       ▲       threshold)──▶ open
 *       │                      │ cooldown (jittered) elapses
 *       │                      ▼
 *       └──(probe succeeds)─ half-open ──(probe fails)──▶ open
 *
 * Closed: every call is allowed; outcomes feed a sliding window of
 * the last `window` samples. Once at least `minSamples` outcomes
 * are in the window and the failure fraction reaches
 * `failureThreshold`, the breaker opens.
 *
 * Open: every call is refused (the caller degrades — e.g. a cache
 * treats the refusal as a miss) until `cooldownMs`, multiplied by a
 * seeded jitter factor in [1, 1.5) so breakers across a fleet do
 * not probe in lockstep, has elapsed.
 *
 * Half-open: exactly ONE caller is allowed through as a probe; the
 * rest keep being refused. The probe's success closes the breaker
 * (window cleared); its failure re-opens it for another cooldown.
 *
 * Time: an internal monotonic clock, offset by the `clock-skew`
 * fault point — each fire jumps the clock forward by the point's
 * delay-ms, so chaos tests can prove cooldowns survive time jumps
 * (a jump can only ever end a cooldown early, never wedge it).
 *
 * Thread-safety: all methods are safe from any thread (one internal
 * mutex; the critical sections are a few loads and stores).
 */

#ifndef GPM_UTIL_BREAKER_HH
#define GPM_UTIL_BREAKER_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.hh"

namespace gpm
{

/** CircuitBreaker tuning knobs. */
struct BreakerOptions
{
    /** Sliding outcome window (samples). */
    std::size_t window = 16;
    /** Outcomes required in the window before the failure rate can
     *  trip the breaker (a single early failure must not). */
    std::size_t minSamples = 8;
    /** Failure fraction at/over which the breaker opens. */
    double failureThreshold = 0.5;
    /** Base open -> half-open cooldown [ms]; the actual cooldown is
     *  this times a seeded jitter factor in [1, 1.5). */
    double cooldownMs = 250.0;
    /** Jitter RNG seed (same seed, same probe schedule). */
    std::uint64_t seed = 1;
};

class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen
    };

    explicit CircuitBreaker(BreakerOptions opts = BreakerOptions{});

    CircuitBreaker(const CircuitBreaker &) = delete;
    CircuitBreaker &operator=(const CircuitBreaker &) = delete;

    /**
     * Gate a call to the guarded dependency. True = proceed (and
     * report the outcome via recordSuccess()/recordFailure());
     * false = refused, degrade without touching the dependency.
     * An open breaker whose cooldown has elapsed transitions to
     * half-open here and admits the caller as the probe.
     */
    bool allow();

    /** Report a guarded call's outcome. A half-open probe's success
     *  closes the breaker; its failure re-opens it. */
    void recordSuccess();
    void recordFailure();

    State state() const;
    /** "closed" | "open" | "half-open". */
    const char *stateName() const;
    static const char *stateName(State s);

    /** Times the breaker transitioned closed/half-open -> open. */
    std::uint64_t opens() const;

    const BreakerOptions &options() const { return opts; }

  private:
    double nowMs();
    void pushOutcomeLocked(bool failure);
    void openLocked(double now);

    BreakerOptions opts;

    mutable std::mutex mtx;
    State st = State::Closed;
    /** Ring buffer of the last `window` outcomes (1 = failure). */
    std::vector<char> ring;
    std::size_t ringHead = 0;
    std::size_t samples = 0;
    std::size_t failures = 0;
    /** Half-open: the single probe slot is taken. */
    bool probeInFlight = false;
    double reopenAtMs = 0.0;
    double skewMs = 0.0;
    std::uint64_t openCount = 0;
    Rng rng;
};

} // namespace gpm

#endif // GPM_UTIL_BREAKER_HH
