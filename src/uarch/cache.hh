/**
 * @file
 * Generic set-associative cache with true-LRU replacement. Models
 * tag state only (no data): enough for hit/miss timing, writeback
 * traffic and capacity-contention behaviour in the shared L2.
 */

#ifndef GPM_UARCH_CACHE_HH
#define GPM_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "uarch/core_config.hh"

namespace gpm
{

/** Outcome of one cache access. */
struct CacheAccessResult
{
    /** The block was present. */
    bool hit = false;
    /** A dirty block was evicted (writeback traffic). */
    bool writeback = false;
};

/** Cumulative cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    /** Miss rate in [0, 1]; 0 when no accesses. */
    double missRate() const;
};

/**
 * Tag-only set-associative cache with true LRU.
 *
 * Thread-unsafe by design (one per core, or one shared L2 accessed
 * from the serialized CMP loop).
 */
class Cache
{
  public:
    /** Build from geometry; all fields must be powers of two. */
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the block containing @p addr.
     *
     * @param addr     byte address
     * @param is_write marks the block dirty on hit/fill
     * @return hit/miss and writeback information
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write);

    /** Probe without updating state: is the block resident? */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything (keeps statistics). */
    void flush();

    /** Statistics since construction or resetStats(). */
    const CacheStats &stats() const { return stats_; }

    /** Clear statistics only. */
    void resetStats() { stats_ = CacheStats(); }

    /** Number of sets. */
    std::uint32_t numSets() const { return sets; }

    /** Associativity. */
    std::uint32_t numWays() const { return ways; }

    /** Block size in bytes. */
    std::uint32_t blockSize() const { return blockBytes; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint32_t lru = 0; ///< 0 = most recently used
        bool valid = false;
        bool dirty = false;
    };

    Line *set(std::uint64_t addr);
    const Line *set(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
    void touch(Line *line_array, Line &used);

    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t blockBytes;
    std::uint32_t blockShift;
    std::vector<Line> lines;
    CacheStats stats_;
};

} // namespace gpm

#endif // GPM_UARCH_CACHE_HH
