#include "memory.hh"

namespace gpm
{

PrivateL2::PrivateL2(const CoreConfig &cfg)
    : l2(cfg.l2), l2LatNs(cfg.l2LatNs), memLatNs(cfg.memLatNs)
{
}

L2Outcome
PrivateL2::access(std::uint32_t /*core_id*/, std::uint64_t addr,
                  bool is_write, double /*time_ns*/)
{
    auto r = l2.access(addr, is_write);
    if (r.hit)
        return {l2LatNs, false};
    return {memLatNs, true};
}

MemorySystem::MemorySystem(const CoreConfig &cfg, L2Service &l2_,
                           std::uint32_t core_id)
    : l1i(cfg.l1i), l1d(cfg.l1d), l2(l2_), coreId(core_id)
{
}

std::uint64_t
MemorySystem::disambiguate(std::uint64_t addr) const
{
    return addr | (static_cast<std::uint64_t>(coreId) << 44);
}

MemorySystem::DataResult
MemorySystem::dataAccess(std::uint64_t addr, bool is_write,
                         double time_ns)
{
    stats_.l1dAccesses++;
    auto l1r = l1d.access(addr, is_write);
    if (l1r.hit)
        return {0.0, true, false};

    stats_.l1dMisses++;
    stats_.l2Accesses++;
    auto l2r = l2.access(coreId, disambiguate(addr), is_write, time_ns);
    if (l2r.miss)
        stats_.l2Misses++;
    return {l2r.latencyNs, false, l2r.miss};
}

MemorySystem::DataResult
MemorySystem::instFetch(std::uint64_t pc, double time_ns)
{
    stats_.l1iAccesses++;
    auto l1r = l1i.access(pc, false);
    DataResult result{0.0, true, false};
    if (!l1r.hit) {
        stats_.l1iMisses++;
        stats_.l2Accesses++;
        // Tag instruction space away from data space.
        std::uint64_t addr = disambiguate(pc) | (1ULL << 43);
        auto l2r = l2.access(coreId, addr, false, time_ns);
        if (l2r.miss)
            stats_.l2Misses++;
        result = {l2r.latencyNs, false, l2r.miss};
    }

    // Next-line instruction prefetch (POWER4-style sequential
    // I-prefetcher): ensure the following block is resident so
    // straight-line code does not pay a miss per 128 B block. The
    // fill's latency is hidden; its L2 traffic is accounted.
    std::uint64_t next = pc + l1i.blockSize();
    if (!l1i.contains(next)) {
        stats_.l1iPrefetches++;
        l1i.access(next, false);
        stats_.l2Accesses++;
        std::uint64_t addr = disambiguate(next) | (1ULL << 43);
        auto l2r = l2.access(coreId, addr, false, time_ns);
        if (l2r.miss)
            stats_.l2Misses++;
    }
    return result;
}

} // namespace gpm
