/**
 * @file
 * Combining (tournament) branch predictor per paper Table 1:
 * 16K-entry bimodal + 16K-entry gshare + 16K-entry selector.
 */

#ifndef GPM_UARCH_BRANCH_PREDICTOR_HH
#define GPM_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace gpm
{

/**
 * Tournament predictor: a bimodal table indexed by PC, a gshare table
 * indexed by PC xor global history, and a selector table (indexed by
 * PC) of 2-bit counters choosing between them. All tables use 2-bit
 * saturating counters.
 */
class BranchPredictor
{
  public:
    /** Build with @p entries entries per table (power of two). */
    explicit BranchPredictor(std::uint32_t entries = 16 * 1024);

    /**
     * Predict and update for one branch.
     *
     * Combines prediction and (immediate) update: the one-pass core
     * timing model resolves outcomes in program order, which is the
     * standard trace-driven simplification (no wrong-path predictor
     * pollution).
     *
     * @param pc     branch address
     * @param taken  actual outcome
     * @retval true when the prediction was correct
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

    /** Branches observed. */
    std::uint64_t lookups() const { return nLookups; }

    /** Mispredictions observed. */
    std::uint64_t mispredicts() const { return nMispredicts; }

    /** Misprediction rate in [0, 1]; 0 when no lookups. */
    double mispredictRate() const;

    /** Reset tables and statistics. */
    void reset();

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool taken);

    std::uint32_t mask;
    std::vector<std::uint8_t> bimodal;
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> selector; ///< >=2 selects gshare
    std::uint64_t history = 0;
    std::uint64_t nLookups = 0;
    std::uint64_t nMispredicts = 0;
};

} // namespace gpm

#endif // GPM_UARCH_BRANCH_PREDICTOR_HH
