#include "cache.hh"

#include <bit>

#include "util/logging.hh"

namespace gpm
{

double
CacheStats::missRate() const
{
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(misses) / static_cast<double>(accesses);
}

namespace
{
bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}
} // namespace

Cache::Cache(const CacheConfig &cfg)
    : ways(cfg.ways), blockBytes(cfg.blockBytes)
{
    if (!isPow2(cfg.sizeBytes) || !isPow2(cfg.blockBytes))
        fatal("Cache: size and block size must be powers of two");
    std::uint64_t n_blocks = cfg.sizeBytes / cfg.blockBytes;
    if (cfg.ways == 0 || n_blocks % cfg.ways != 0)
        fatal("Cache: capacity not divisible into %u ways", cfg.ways);
    sets = static_cast<std::uint32_t>(n_blocks / cfg.ways);
    if (!isPow2(sets))
        fatal("Cache: set count must be a power of two");
    blockShift =
        static_cast<std::uint32_t>(std::countr_zero(
            static_cast<std::uint64_t>(blockBytes)));
    lines.resize(static_cast<std::size_t>(sets) * ways);
    // Seed LRU ordering within each set.
    for (std::uint32_t s = 0; s < sets; s++)
        for (std::uint32_t w = 0; w < ways; w++)
            lines[static_cast<std::size_t>(s) * ways + w].lru = w;
}

Cache::Line *
Cache::set(std::uint64_t addr)
{
    std::uint64_t block = addr >> blockShift;
    std::uint32_t s = static_cast<std::uint32_t>(block) & (sets - 1);
    return &lines[static_cast<std::size_t>(s) * ways];
}

const Cache::Line *
Cache::set(std::uint64_t addr) const
{
    std::uint64_t block = addr >> blockShift;
    std::uint32_t s = static_cast<std::uint32_t>(block) & (sets - 1);
    return &lines[static_cast<std::size_t>(s) * ways];
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return (addr >> blockShift) / sets;
}

void
Cache::touch(Line *line_array, Line &used)
{
    std::uint32_t old = used.lru;
    for (std::uint32_t w = 0; w < ways; w++) {
        Line &l = line_array[w];
        if (l.lru < old)
            l.lru++;
    }
    used.lru = 0;
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool is_write)
{
    stats_.accesses++;
    Line *s = set(addr);
    std::uint64_t tag = tagOf(addr);

    for (std::uint32_t w = 0; w < ways; w++) {
        Line &l = s[w];
        if (l.valid && l.tag == tag) {
            touch(s, l);
            if (is_write)
                l.dirty = true;
            return {true, false};
        }
    }

    // Miss: fill into LRU victim.
    stats_.misses++;
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < ways; w++) {
        Line &l = s[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lru > victim->lru)
            victim = &l;
    }
    bool wb = victim->valid && victim->dirty;
    if (wb)
        stats_.writebacks++;
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    touch(s, *victim);
    return {false, wb};
}

bool
Cache::contains(std::uint64_t addr) const
{
    const Line *s = set(addr);
    std::uint64_t tag = tagOf(addr);
    for (std::uint32_t w = 0; w < ways; w++)
        if (s[w].valid && s[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
    }
}

} // namespace gpm
