#include "core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpm
{

OooCore::OooCore(const CoreConfig &cfg_, MemorySystem &mem_,
                 OpSource &src_, Hertz freq_)
    : cfg(cfg_), mem(mem_), src(src_), bpred(cfg_.bpredEntries),
      freq(freq_),
      periodPs(static_cast<std::uint64_t>(psPerSecond / freq_ + 0.5)),
      fetchRing(cfg_.fetchWidth), dispRing(cfg_.dispatchWidth),
      commitWidthRing(cfg_.dispatchWidth), windowRing(cfg_.windowSize),
      rsRings{TimeRing(cfg_.rsMem), TimeRing(cfg_.rsFix),
              TimeRing(cfg_.rsFp)},
      regRings{TimeRing(cfg_.physGpr - cfg_.archGpr),
               TimeRing(cfg_.physFpr - cfg_.archFpr)},
      mshrRing(cfg_.mshrs)
{
    GPM_ASSERT(cfg.windowSize == completeHist.size());
    fuFree[FuLsu].assign(cfg.numLsu, 0);
    fuFree[FuFxu].assign(cfg.numFxu, 0);
    fuFree[FuFpu].assign(cfg.numFpu, 0);
    fuFree[FuBru].assign(cfg.numBru, 0);
}

void
OooCore::setFrequency(Hertz f)
{
    GPM_ASSERT(f > 0.0);
    freq = f;
    periodPs = static_cast<std::uint64_t>(psPerSecond / f + 0.5);
}

OooCore::Cluster
OooCore::clusterOf(OpClass c)
{
    switch (c) {
      case OpClass::Load:
      case OpClass::Store:
        return ClMem;
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return ClFp;
      default:
        return ClFix;
    }
}

OooCore::FuGroup
OooCore::groupOf(OpClass c)
{
    switch (c) {
      case OpClass::Load:
      case OpClass::Store:
        return FuLsu;
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return FuFpu;
      case OpClass::Branch:
        return FuBru;
      default:
        return FuFxu;
    }
}

OooCore::RegClass
OooCore::destClassOf(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::Load:
        return RegGpr;
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return RegFpr;
      default:
        return RegNone;
    }
}

bool
OooCore::step()
{
    MicroOp op;
    if (!src.next(op)) {
        exhausted = true;
        return false;
    }

    const std::uint64_t p = periodPs;
    std::uint64_t i = seq++;

    // ---- Fetch --------------------------------------------------
    std::uint64_t ft =
        std::max(fetchRing.oldest() + p, redirectPs);
    std::uint64_t block = op.pc / mem.blockBytes();
    if (block != curFetchBlock) {
        curFetchBlock = block;
        auto r = mem.instFetch(op.pc, ps2ns(ft));
        act.l1iAccesses++;
        if (!r.l1Hit) {
            ft += ns2ps(r.beyondL1Ns);
            if (r.offChip)
                act.l2Misses++;
            act.l2Accesses++;
        }
    }
    fetchRing.push(ft);
    act.fetched++;

    // ---- Dispatch -----------------------------------------------
    std::uint64_t dt = ft + cfg.frontendDelay * p;
    dt = std::max(dt, dispRing.oldest() + p);
    dt = std::max(dt, lastDispatch);
    dt = std::max(dt, windowRing.oldest());
    Cluster cl = clusterOf(op.cls);
    dt = std::max(dt, rsRings[cl].oldest());
    RegClass rc = destClassOf(op.cls);
    if (rc != RegNone)
        dt = std::max(dt, regRings[rc].oldest());
    lastDispatch = dt;
    dispRing.push(dt);
    act.dispatched++;

    // ---- Ready (register dependences) ---------------------------
    std::uint64_t rt = dt + p;
    if (op.depA) {
        std::uint64_t j = (i - op.depA) & (cfg.windowSize - 1);
        rt = std::max(rt, completeHist[j]);
    }
    if (op.depB) {
        std::uint64_t j = (i - op.depB) & (cfg.windowSize - 1);
        rt = std::max(rt, completeHist[j]);
    }

    // ---- Issue --------------------------------------------------
    FuGroup g = groupOf(op.cls);
    auto &frees = fuFree[g];
    std::size_t k = 0;
    for (std::size_t u = 1; u < frees.size(); u++)
        if (frees[u] < frees[k])
            k = u;
    std::uint64_t it = std::max(rt, frees[k]);

    std::uint64_t lat = 0;
    std::uint64_t occupancy = p;
    switch (op.cls) {
      case OpClass::IntAlu:
        lat = cfg.latIntAlu * p;
        act.fxuOps++;
        break;
      case OpClass::IntMul:
        lat = cfg.latIntMul * p;
        act.fxuOps++;
        break;
      case OpClass::FpAlu:
        lat = cfg.latFpAlu * p;
        act.fpuOps++;
        break;
      case OpClass::FpMul:
        lat = cfg.latFpMul * p;
        act.fpuOps++;
        break;
      case OpClass::FpDiv:
        lat = cfg.latFpDiv * p;
        occupancy = lat;
        act.fpuOps++;
        break;
      case OpClass::Branch:
        lat = cfg.latBranch * p;
        act.branches++;
        break;
      case OpClass::Load: {
        act.lsuOps++;
        act.l1dAccesses++;
        auto r = mem.dataAccess(op.addr, false, ps2ns(it));
        if (r.l1Hit) {
            lat = (cfg.latAgen + cfg.l1LatCycles) * p;
        } else {
            it = std::max(it, mshrRing.oldest());
            lat = cfg.latAgen * p + ns2ps(r.beyondL1Ns);
            mshrRing.push(it + lat);
            act.l2Accesses++;
            if (r.offChip)
                act.l2Misses++;
        }
        break;
      }
      case OpClass::Store: {
        act.lsuOps++;
        act.l1dAccesses++;
        auto r = mem.dataAccess(op.addr, true, ps2ns(it));
        // Stores retire through the store queue: short completion,
        // but a miss still occupies an MSHR and generates traffic.
        lat = p;
        if (!r.l1Hit) {
            it = std::max(it, mshrRing.oldest());
            mshrRing.push(it + ns2ps(r.beyondL1Ns));
            act.l2Accesses++;
            if (r.offChip)
                act.l2Misses++;
        }
        break;
      }
      default:
        panic("OooCore: bad op class %d", static_cast<int>(op.cls));
    }

    frees[k] = it + occupancy;
    rsRings[cl].push(it);
    act.issued++;

    // ---- Complete -----------------------------------------------
    std::uint64_t ct = it + lat;
    completeHist[i & (cfg.windowSize - 1)] = ct;

    if (op.cls == OpClass::Branch) {
        bool correct = bpred.predictAndUpdate(op.pc, op.taken);
        if (!correct) {
            redirectPs =
                std::max(redirectPs, ct + cfg.redirectPenalty * p);
            // Wrong-path fetch activity (power only).
            act.fetched += 6;
        }
    }

    // ---- Commit -------------------------------------------------
    std::uint64_t cmt = std::max(ct, lastCommit);
    cmt = std::max(cmt, commitWidthRing.oldest() + p);
    lastCommit = cmt;
    commitWidthRing.push(cmt);
    windowRing.push(cmt);
    if (rc != RegNone)
        regRings[rc].push(cmt);
    act.committed++;
    totalInsts++;
    return true;
}

CoreRunResult
OooCore::run(std::uint64_t max_insts)
{
    CoreRunResult res;
    act.reset();
    runStartPs = lastCommit;
    std::uint64_t n = 0;
    while (n < max_insts && step())
        n++;
    res.instructions = n;
    res.elapsedPs = lastCommit - runStartPs;
    act.cycles = res.elapsedPs / periodPs;
    res.activity = act;
    res.streamEnded = exhausted;
    return res;
}

CoreRunResult
OooCore::runUntilPs(std::uint64_t t_ps)
{
    CoreRunResult res;
    act.reset();
    runStartPs = lastCommit;
    std::uint64_t n = 0;
    while (lastCommit < t_ps && step())
        n++;
    res.instructions = n;
    res.elapsedPs = lastCommit - runStartPs;
    act.cycles = res.elapsedPs / periodPs;
    res.activity = act;
    res.streamEnded = exhausted;
    return res;
}

void
OooCore::stallUntilPs(std::uint64_t t_ps)
{
    if (t_ps <= lastCommit)
        return;
    redirectPs = std::max(redirectPs, t_ps);
    lastCommit = t_ps;
    lastDispatch = std::max(lastDispatch, t_ps);
}

} // namespace gpm
