/**
 * @file
 * Memory hierarchy: per-core L1I/L1D in the core clock domain, and an
 * L2Service abstraction for everything behind them. The L2 + memory
 * live in a fixed (asynchronous) clock domain, so their latencies are
 * expressed in nanoseconds; the core converts to cycles at its current
 * frequency — this is what makes memory-bound code degrade less under
 * DVFS, the paper's central performance effect.
 *
 * Two L2Service implementations exist:
 *   - PrivateL2: uncontended 2 MB L2, used when profiling one core
 *     (the paper's single-threaded Turandot runs), and
 *   - SharedL2 (cmp_system.hh): one L2 + bus shared by N cores with
 *     arbitration, used by the full-CMP validation model.
 */

#ifndef GPM_UARCH_MEMORY_HH
#define GPM_UARCH_MEMORY_HH

#include <cstdint>

#include "uarch/cache.hh"
#include "uarch/core_config.hh"

namespace gpm
{

/** Result of a request that missed the L1 and went to the L2 level. */
struct L2Outcome
{
    /** Total latency beyond the L1, in nanoseconds. */
    double latencyNs = 0.0;
    /** The request also missed in the L2 (went to memory). */
    bool miss = false;
};

/**
 * Interface to the shared side of the hierarchy (L2 + memory).
 * Implementations are responsible for L2 tag state, latency, and any
 * bus/queueing delays.
 */
class L2Service
{
  public:
    virtual ~L2Service() = default;

    /**
     * Service an L1 miss.
     *
     * @param core_id  requesting core
     * @param addr     block address (already core-disambiguated)
     * @param is_write whether the L1 miss was for a store
     * @param time_ns  wall-clock request time (for arbitration)
     */
    virtual L2Outcome access(std::uint32_t core_id, std::uint64_t addr,
                             bool is_write, double time_ns) = 0;
};

/**
 * Uncontended private L2 + flat memory: the single-threaded profiling
 * configuration.
 */
class PrivateL2 : public L2Service
{
  public:
    /** Build from the core configuration's L2 geometry/latencies. */
    explicit PrivateL2(const CoreConfig &cfg);

    L2Outcome access(std::uint32_t core_id, std::uint64_t addr,
                     bool is_write, double time_ns) override;

    /** L2 statistics. */
    const CacheStats &stats() const { return l2.stats(); }

  private:
    Cache l2;
    double l2LatNs;
    double memLatNs;
};

/** Per-core memory-side statistics. */
struct MemoryStats
{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1iPrefetches = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
};

/**
 * Per-core memory system: L1 caches plus a reference to the L2
 * service. Converts nothing to cycles — that is the core's job.
 */
class MemorySystem
{
  public:
    /**
     * @param cfg     core configuration (cache geometries)
     * @param l2      L2 service (private or shared)
     * @param core_id id used for L2 arbitration and address
     *                disambiguation in shared configurations
     */
    MemorySystem(const CoreConfig &cfg, L2Service &l2,
                 std::uint32_t core_id = 0);

    /**
     * Data access from the LSU.
     * @return latency beyond the L1 in ns (0 on L1 hit), and whether
     *         the request left the chip.
     */
    struct DataResult
    {
        double beyondL1Ns = 0.0;
        bool l1Hit = true;
        bool offChip = false;
    };
    DataResult dataAccess(std::uint64_t addr, bool is_write,
                          double time_ns);

    /** Instruction fetch of the block containing @p pc. */
    DataResult instFetch(std::uint64_t pc, double time_ns);

    /** Running statistics. */
    const MemoryStats &stats() const { return stats_; }

    /** Clear statistics. */
    void resetStats() { stats_ = MemoryStats(); }

    /** L1D block size (for the core's block-crossing logic). */
    std::uint32_t blockBytes() const { return l1d.blockSize(); }

  private:
    /** Give each core a disjoint physical address range. */
    std::uint64_t disambiguate(std::uint64_t addr) const;

    Cache l1i;
    Cache l1d;
    L2Service &l2;
    std::uint32_t coreId;
    MemoryStats stats_;
};

} // namespace gpm

#endif // GPM_UARCH_MEMORY_HH
