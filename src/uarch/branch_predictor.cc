#include "branch_predictor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpm
{

BranchPredictor::BranchPredictor(std::uint32_t entries)
    : mask(entries - 1), bimodal(entries, 1), gshare(entries, 1),
      selector(entries, 1)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("BranchPredictor: entries must be a power of two");
}

void
BranchPredictor::bump(std::uint8_t &c, bool taken)
{
    if (taken) {
        if (c < 3)
            c++;
    } else {
        if (c > 0)
            c--;
    }
}

bool
BranchPredictor::predictAndUpdate(std::uint64_t pc, bool taken)
{
    // Branches are word-aligned; drop the low bits for indexing.
    std::uint64_t key = pc >> 2;
    std::uint32_t bi = static_cast<std::uint32_t>(key) & mask;
    std::uint32_t gi =
        static_cast<std::uint32_t>(key ^ history) & mask;
    std::uint32_t si = bi;

    bool p_bim = counterTaken(bimodal[bi]);
    bool p_gsh = counterTaken(gshare[gi]);
    bool use_gshare = selector[si] >= 2;
    bool pred = use_gshare ? p_gsh : p_bim;

    nLookups++;
    bool correct = (pred == taken);
    if (!correct)
        nMispredicts++;

    // Selector trains toward the component that was right.
    if (p_bim != p_gsh)
        bump(selector[si], p_gsh == taken);
    bump(bimodal[bi], taken);
    bump(gshare[gi], taken);
    history = ((history << 1) | (taken ? 1u : 0u)) & mask;
    return correct;
}

double
BranchPredictor::mispredictRate() const
{
    if (nLookups == 0)
        return 0.0;
    return static_cast<double>(nMispredicts) /
        static_cast<double>(nLookups);
}

void
BranchPredictor::reset()
{
    std::fill(bimodal.begin(), bimodal.end(), 1);
    std::fill(gshare.begin(), gshare.end(), 1);
    std::fill(selector.begin(), selector.end(), 1);
    history = 0;
    nLookups = 0;
    nMispredicts = 0;
}

} // namespace gpm
