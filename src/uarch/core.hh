/**
 * @file
 * One-pass out-of-order core timing model (the Turandot stand-in).
 *
 * The model processes micro-ops strictly in program order and computes
 * each op's fetch / dispatch / issue / complete / commit timestamps
 * from sliding histories of the structures that constrain them:
 *
 *   - fetch:    fetch width per cycle, I-cache misses, branch
 *               redirects (mispredict penalty after branch resolve)
 *   - dispatch: dispatch width, reorder-window occupancy (freed at
 *               commit), reservation-station occupancy per cluster
 *               (freed at issue), rename-register pools (freed at
 *               commit)
 *   - issue:    register dependences (distance-encoded), FU
 *               availability per class, MSHR occupancy for L1D misses
 *   - complete: FU latency; loads add cache/memory latency, where L2
 *               and memory latencies are fixed in *nanoseconds*
 *               (asynchronous uncore) and therefore shrink in core
 *               cycles as the core slows under DVFS
 *   - commit:   in order, commit width per cycle
 *
 * All event times are held in picoseconds, so the core frequency can
 * change between run() calls (per-core DVFS in the full-CMP model)
 * without rebasing state. This O(1)-per-instruction formulation
 * reproduces the throughput behaviour of a cycle-stepped OOO model
 * for the structures listed while being fast enough to profile the
 * whole workload suite in seconds — the property the paper's
 * trace-based methodology depends on.
 */

#ifndef GPM_UARCH_CORE_HH
#define GPM_UARCH_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "power/power_model.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/core_config.hh"
#include "uarch/isa.hh"
#include "uarch/memory.hh"
#include "util/units.hh"

namespace gpm
{

/** Result of one OooCore::run() call. */
struct CoreRunResult
{
    /** Micro-ops committed during the call. */
    std::uint64_t instructions = 0;
    /** Wall-clock time advanced, picoseconds. */
    std::uint64_t elapsedPs = 0;
    /** Activity counts for the power model (cycles at the core f). */
    ActivitySample activity;
    /** The op stream ended during this call. */
    bool streamEnded = false;
};

/**
 * The out-of-order core model. Owns its branch predictor; uses an
 * external MemorySystem (so the L2 can be shared) and an external
 * OpSource (the workload).
 */
class OooCore
{
  public:
    /**
     * @param cfg    design parameters (Table 1)
     * @param mem    this core's memory system
     * @param src    workload micro-op stream
     * @param freq   initial clock frequency [Hz]
     */
    OooCore(const CoreConfig &cfg, MemorySystem &mem, OpSource &src,
            Hertz freq = 1.0e9);

    /** Change the core clock (per-core DVFS). Takes effect for
     *  subsequently processed ops. */
    void setFrequency(Hertz f);

    /** Current clock frequency [Hz]. */
    Hertz frequency() const { return freq; }

    /**
     * Process up to @p max_insts micro-ops (or until the stream
     * ends).
     */
    CoreRunResult run(std::uint64_t max_insts);

    /**
     * Process micro-ops until local wall-clock time reaches
     * @p t_ps (or the stream ends). May overshoot by one op.
     */
    CoreRunResult runUntilPs(std::uint64_t t_ps);

    /** Local wall-clock time: commit time of the newest op [ps]. */
    std::uint64_t nowPs() const { return lastCommit; }

    /** Total micro-ops committed since construction. */
    std::uint64_t totalInstructions() const { return totalInsts; }

    /** Branch predictor statistics access. */
    const BranchPredictor &branchPredictor() const { return bpred; }

    /**
     * Inject a stall until absolute time @p t_ps (used for DVFS
     * transition stalls in the full-CMP model): no ops execute
     * before t_ps.
     */
    void stallUntilPs(std::uint64_t t_ps);

  private:
    /** Sliding ring of the last N event times; oldest() is the value
     *  N pushes back (0 until warmed up). */
    class TimeRing
    {
      public:
        explicit TimeRing(std::size_t cap) : buf(cap, 0) {}
        std::uint64_t oldest() const { return buf[pos]; }
        void
        push(std::uint64_t t)
        {
            buf[pos] = t;
            pos = pos + 1 == buf.size() ? 0 : pos + 1;
        }

      private:
        std::vector<std::uint64_t> buf;
        std::size_t pos = 0;
    };

    /** FU clusters for reservation-station accounting. */
    enum Cluster { ClMem = 0, ClFix, ClFp, NumClusters };
    /** FU groups for issue-port accounting. */
    enum FuGroup { FuLsu = 0, FuFxu, FuFpu, FuBru, NumFuGroups };
    /** Rename destination classes. */
    enum RegClass { RegGpr = 0, RegFpr, RegNone };

    static Cluster clusterOf(OpClass c);
    static FuGroup groupOf(OpClass c);
    static RegClass destClassOf(OpClass c);

    /** Process exactly one op; returns false at stream end. */
    bool step();

    std::uint64_t ns2ps(double ns) const
    {
        return static_cast<std::uint64_t>(ns * 1e3 + 0.5);
    }
    double ps2ns(std::uint64_t ps) const
    {
        return static_cast<double>(ps) * 1e-3;
    }

    CoreConfig cfg;
    MemorySystem &mem;
    OpSource &src;
    BranchPredictor bpred;

    Hertz freq;
    std::uint64_t periodPs;

    // Event-time state (all picoseconds).
    std::uint64_t seq = 0;
    std::array<std::uint64_t, 256> completeHist{};
    TimeRing fetchRing;
    TimeRing dispRing;
    TimeRing commitWidthRing;
    TimeRing windowRing;
    std::array<TimeRing, NumClusters> rsRings;
    std::array<TimeRing, 2> regRings;
    TimeRing mshrRing;
    std::vector<std::uint64_t> fuFree[NumFuGroups];
    std::uint64_t lastDispatch = 0;
    std::uint64_t lastCommit = 0;
    std::uint64_t redirectPs = 0;
    std::uint64_t curFetchBlock = ~0ULL;

    // Accumulated per-run() activity.
    ActivitySample act;
    std::uint64_t runStartPs = 0;
    std::uint64_t totalInsts = 0;
    bool exhausted = false;
};

} // namespace gpm

#endif // GPM_UARCH_CORE_HH
