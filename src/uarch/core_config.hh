/**
 * @file
 * Core and memory-hierarchy design parameters (paper Table 1).
 */

#ifndef GPM_UARCH_CORE_CONFIG_HH
#define GPM_UARCH_CORE_CONFIG_HH

#include <cstdint>

namespace gpm
{

/** Parameters of one set-associative cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes;
    /** Associativity (ways). */
    std::uint32_t ways;
    /** Line size in bytes. */
    std::uint32_t blockBytes;
};

/**
 * Design parameters for the POWER4/5-class out-of-order core model
 * (paper Table 1) plus a few microarchitectural constants the paper
 * leaves implicit (we use POWER4-typical values and document them).
 */
struct CoreConfig
{
    /** Dispatch (and commit) width in micro-ops per cycle. */
    std::uint32_t dispatchWidth = 5;
    /** Fetch width in micro-ops per cycle. */
    std::uint32_t fetchWidth = 8;
    /** Instruction queue / reorder window entries. */
    std::uint32_t windowSize = 256;
    /** Reservation-station entries, memory cluster (2 x 18). */
    std::uint32_t rsMem = 36;
    /** Reservation-station entries, fixed-point cluster (2 x 20). */
    std::uint32_t rsFix = 40;
    /** Reservation-station entries, floating-point cluster (2 x 5). */
    std::uint32_t rsFp = 10;
    /** Physical general-purpose registers. */
    std::uint32_t physGpr = 80;
    /** Physical floating-point registers. */
    std::uint32_t physFpr = 72;
    /** Architected GPRs (rename pool = phys - arch). */
    std::uint32_t archGpr = 36;
    /** Architected FPRs. */
    std::uint32_t archFpr = 32;
    /** Load/store units. */
    std::uint32_t numLsu = 2;
    /** Fixed-point units. */
    std::uint32_t numFxu = 2;
    /** Floating-point units. */
    std::uint32_t numFpu = 2;
    /** Branch units. */
    std::uint32_t numBru = 1;
    /** Outstanding L1D misses (MSHRs). */
    std::uint32_t mshrs = 8;
    /** Front-end depth: fetch-to-dispatch delay in cycles. */
    std::uint32_t frontendDelay = 5;
    /** Branch-mispredict redirect penalty in cycles. */
    std::uint32_t redirectPenalty = 12;

    /** Branch predictor table entries (bimodal/gshare/selector). */
    std::uint32_t bpredEntries = 16 * 1024;

    /** L1 D-cache: 32 KB, 2-way, 128 B blocks, 1-cycle latency. */
    CacheConfig l1d{32 * 1024, 2, 128};
    /** L1 I-cache: 64 KB, 2-way, 128 B blocks, 1-cycle latency. */
    CacheConfig l1i{64 * 1024, 2, 128};
    /** Shared L2: 2 MB, 4-way LRU, 128 B blocks, 9-cycle latency. */
    CacheConfig l2{2 * 1024 * 1024, 4, 128};

    /** L1 hit latency in core cycles (frequency-independent). */
    std::uint32_t l1LatCycles = 1;
    /**
     * L2 hit latency in *nanoseconds* (9 Turbo cycles at 1 GHz).
     * The uncore is a fixed clock domain: core-cycle latency scales
     * with core frequency.
     */
    double l2LatNs = 9.0;
    /** Memory latency in nanoseconds (77 Turbo cycles at 1 GHz). */
    double memLatNs = 77.0;

    /** FXU ALU latency [cycles]. */
    std::uint32_t latIntAlu = 1;
    /** FXU multiply latency [cycles]. */
    std::uint32_t latIntMul = 7;
    /** FPU add latency [cycles]. */
    std::uint32_t latFpAlu = 6;
    /** FPU multiply latency [cycles]. */
    std::uint32_t latFpMul = 6;
    /** FPU divide latency [cycles] (unpipelined). */
    std::uint32_t latFpDiv = 30;
    /** Branch resolve latency [cycles]. */
    std::uint32_t latBranch = 1;
    /** Load address-generation cycles before cache access. */
    std::uint32_t latAgen = 1;
};

} // namespace gpm

#endif // GPM_UARCH_CORE_CONFIG_HH
