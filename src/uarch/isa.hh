/**
 * @file
 * Synthetic micro-op representation.
 *
 * gpm does not execute a real ISA: the policies under study only
 * depend on the *timing and activity* of the instruction stream, so
 * workloads are streams of micro-ops carrying operation class,
 * register-dependence distances, memory addresses and branch
 * outcomes. This mirrors trace-driven use of Turandot where the
 * functional path is pre-resolved.
 */

#ifndef GPM_UARCH_ISA_HH
#define GPM_UARCH_ISA_HH

#include <cstdint>

namespace gpm
{

/** Operation classes, mapped onto the POWER4-like FU clusters. */
enum class OpClass : std::uint8_t
{
    IntAlu = 0, ///< 1-cycle FXU op
    IntMul,     ///< pipelined multiply on FXU
    FpAlu,      ///< pipelined FPU add/sub
    FpMul,      ///< pipelined FPU multiply (FMA-class)
    FpDiv,      ///< unpipelined FPU divide/sqrt
    Load,       ///< LSU load
    Store,      ///< LSU store
    Branch,     ///< conditional branch on BRU
    NumClasses,
};

constexpr std::size_t numOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** True for FPU-executed classes. */
constexpr bool
isFp(OpClass c)
{
    return c == OpClass::FpAlu || c == OpClass::FpMul ||
        c == OpClass::FpDiv;
}

/** True for LSU-executed classes. */
constexpr bool
isMem(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

/**
 * One synthetic micro-op.
 *
 * Register dependences are encoded as *distances*: depA == k means
 * this op reads the result of the op k positions earlier in program
 * order (0 = no dependence). Distances are bounded by the reorder
 * window so a sliding history suffices for timing.
 */
struct MicroOp
{
    /** Program counter (byte address in the synthetic code space). */
    std::uint64_t pc = 0;
    /** Data address for loads/stores. */
    std::uint64_t addr = 0;
    /** Operation class. */
    OpClass cls = OpClass::IntAlu;
    /** First source dependence distance (0 = none). */
    std::uint8_t depA = 0;
    /** Second source dependence distance (0 = none). */
    std::uint8_t depB = 0;
    /** Branch outcome (valid when cls == Branch). */
    bool taken = false;
};

/**
 * Abstract producer of a micro-op stream. Implemented by the
 * synthetic workload generators.
 */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /**
     * Produce the next op in program order.
     * @retval false when the stream is exhausted.
     */
    virtual bool next(MicroOp &op) = 0;
};

} // namespace gpm

#endif // GPM_UARCH_ISA_HH
