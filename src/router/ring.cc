#include "router/ring.hh"

#include <algorithm>

namespace gpm
{

namespace
{

/** FNV-1a over the backend name — the per-backend seed. Keyed on
 *  the name (not the config position) so reordering the backend
 *  list never moves a key. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** splitmix64 finalizer: a full-avalanche 64-bit mix, so scores
 *  from adjacent keys or similar names are uncorrelated (the
 *  balance bound in the tests depends on this). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

RendezvousRing::RendezvousRing(std::vector<std::string> names)
    : names_(std::move(names))
{
    seeds_.reserve(names_.size());
    for (const auto &n : names_)
        seeds_.push_back(fnv1a(n));
}

std::uint64_t
RendezvousRing::score(std::uint64_t key, std::size_t i) const
{
    return mix64(key ^ seeds_[i]);
}

std::size_t
RendezvousRing::owner(std::uint64_t key) const
{
    std::size_t best = npos;
    std::uint64_t bestScore = 0;
    for (std::size_t i = 0; i < seeds_.size(); i++) {
        std::uint64_t s = score(key, i);
        // Ties (astronomically unlikely) break toward the smaller
        // seed so the winner is still order-independent.
        if (best == npos || s > bestScore ||
            (s == bestScore && seeds_[i] < seeds_[best])) {
            best = i;
            bestScore = s;
        }
    }
    return best;
}

std::size_t
RendezvousRing::owner(std::uint64_t key,
                      const std::vector<char> &eligible) const
{
    std::size_t best = npos;
    std::uint64_t bestScore = 0;
    for (std::size_t i = 0; i < seeds_.size(); i++) {
        if (!eligible[i])
            continue;
        std::uint64_t s = score(key, i);
        if (best == npos || s > bestScore ||
            (s == bestScore && seeds_[i] < seeds_[best])) {
            best = i;
            bestScore = s;
        }
    }
    return best;
}

std::vector<std::size_t>
RendezvousRing::rank(std::uint64_t key) const
{
    std::vector<std::size_t> order(seeds_.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  std::uint64_t sa = score(key, a);
                  std::uint64_t sb = score(key, b);
                  if (sa != sb)
                      return sa > sb;
                  return seeds_[a] < seeds_[b];
              });
    return order;
}

} // namespace gpm
