#include "router/router.hh"

#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

#include "service/prom.hh"
#include "service/scenario.hh"
#include "util/logging.hh"

namespace gpm
{

using json::Value;

// ---------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------

/** One forward unit: a single submit, or one shard of a client
 *  batch, in flight against one backend. Owned by the backend's
 *  inflight map; whoever removes it from the map owns answering
 *  (or re-dispatching) its items — responses are exactly-once. */
struct GpmRouter::Pending
{
    std::shared_ptr<ReactorConn> conn;
    /** The client's id, as JSON text, spliced into responses. */
    std::string idDump;
    /** Client request was submit_batch: forwarded as a sub-batch,
     *  responses carry remapped indices. */
    bool batch = false;
    std::vector<RouterItem> items;
    /** Items not yet answered. */
    std::size_t remaining = 0;
    /** Which pooled connection carried it (for orphan sweeps). */
    std::size_t channel = 0;
    std::uint64_t gen = 0;
    /** Dispatch attempts so far (re-route cap). */
    int attempts = 0;
};

/** One pooled connection to a backend. The fd is written under
 *  mtx (serializing request lines); a dedicated reader thread
 *  owns the receive side and the close. */
struct GpmRouter::Channel
{
    std::mutex mtx;
    std::condition_variable cv;
    int fd = -1;
    /** Bumped per (re)connect so a sweep only claims pendings
     *  written to the connection that actually died. */
    std::uint64_t gen = 0;
    std::thread reader;
};

struct GpmRouter::Backend
{
    std::string host;
    std::uint16_t port;
    std::string name;
    CircuitBreaker breaker;
    std::vector<std::unique_ptr<Channel>> channels;
    std::atomic<std::uint64_t> rr{0};

    std::mutex mtx;
    std::unordered_map<std::uint64_t, std::shared_ptr<Pending>>
        inflight;

    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> rehashes{0};
    std::atomic<std::uint64_t> inflightCount{0};

    Backend(const RouterEndpoint &ep, const BreakerOptions &bo,
            std::size_t conns)
        : host(ep.host), port(ep.port), name(ep.name()),
          breaker(bo)
    {
        for (std::size_t i = 0; i < conns; i++)
            channels.push_back(std::make_unique<Channel>());
    }
};

namespace
{

// ---------------------------------------------------------------
// Socket helpers (raw fds: the pooled connections are shared
// between writer threads and a reader thread, which TcpStream's
// owning model does not fit)
// ---------------------------------------------------------------

/** Blocking-mode connected socket, or -1. The connect itself is
 *  bounded by @p timeoutMs so one unreachable backend cannot
 *  stall a dispatch. */
int
connectFd(const std::string &host, std::uint16_t port,
          int timeoutMs, int sendTimeoutMs)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        return -1;
    }
    if (rc != 0) {
        pollfd p{fd, POLLOUT, 0};
        if (::poll(&p, 1, timeoutMs > 0 ? timeoutMs : 1000) <= 0) {
            ::close(fd);
            return -1;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) !=
                0 ||
            err != 0) {
            ::close(fd);
            return -1;
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (sendTimeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = sendTimeoutMs / 1000;
        tv.tv_usec = (sendTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    return fd;
}

bool
writeAllFd(int fd, std::string_view data)
{
    while (!data.empty()) {
        ssize_t n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

// ---------------------------------------------------------------
// Response-line builders (mirror server.cc's wire shapes)
// ---------------------------------------------------------------

std::string
errorResponse(const Value &id, const std::string &code,
              const std::string &message,
              double retryAfterMs = 0.0)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", false);
    Value err = Value::object();
    err.set("code", code);
    err.set("message", message);
    if (retryAfterMs > 0.0)
        err.set("retryAfterMs", retryAfterMs);
    root.set("error", std::move(err));
    return root.dump();
}

std::string
okResponse(const Value &id, Value result)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", true);
    root.set("result", std::move(result));
    return root.dump();
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** The serialized "error" object of a retryable shed. */
std::string
busyErrorDump(const std::string &message, double retryAfterMs)
{
    Value err = Value::object();
    err.set("code", "busy");
    err.set("message", message);
    if (retryAfterMs > 0.0)
        err.set("retryAfterMs", retryAfterMs);
    return err.dump();
}

std::string
httpResponse(int code, const char *status, const char *ctype,
             std::string body)
{
    std::string r = "HTTP/1.0 ";
    r += std::to_string(code);
    r += ' ';
    r += status;
    r += "\r\nContent-Type: ";
    r += ctype;
    r += "\r\nContent-Length: ";
    r += std::to_string(body.size());
    r += "\r\nConnection: close\r\n\r\n";
    r += body;
    return r;
}

void
sendLine(const std::shared_ptr<ReactorConn> &conn,
         std::string line)
{
    line.push_back('\n');
    conn->send(std::move(line));
}

} // namespace

// ---------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------

namespace
{
std::vector<std::string>
endpointNames(const std::vector<RouterEndpoint> &eps)
{
    std::vector<std::string> names;
    names.reserve(eps.size());
    for (const auto &ep : eps)
        names.push_back(ep.name());
    return names;
}
} // namespace

GpmRouter::GpmRouter(std::vector<RouterEndpoint> endpoints,
                     TcpListener listener_, RouterOptions opts_)
    : ring(endpointNames(endpoints)),
      listener(std::move(listener_)), opts(opts_),
      startTime(std::chrono::steady_clock::now())
{
    if (endpoints.empty())
        fatal("gpm-router: no backends configured");
    if (opts.backendConns == 0)
        opts.backendConns = 1;
    for (const auto &ep : endpoints) {
        // Distinct breaker jitter per backend so a fleet-wide
        // outage does not re-probe in lockstep.
        BreakerOptions bo = opts.breaker;
        bo.seed += backends.size() + 1;
        backends.push_back(std::make_unique<Backend>(
            ep, bo, opts.backendConns));
    }

    ReactorOptions ropts;
    ropts.threads = opts.reactorThreads;
    ropts.idleTimeoutMs = opts.idleTimeoutMs;
    ropts.writeTimeoutMs = opts.writeTimeoutMs;
    ropts.maxLineBytes = opts.maxLineBytes;
    ReactorHandler &handler = *this;
    pool = std::make_unique<ReactorPool>(handler, ropts);
    pool->serveListener(listener.fd());

    for (std::size_t b = 0; b < backends.size(); b++)
        for (std::size_t c = 0; c < backends[b]->channels.size();
             c++)
            backends[b]->channels[c]->reader = std::thread(
                [this, b, c] { readerLoop(b, c); });
    prober = std::thread([this] { proberLoop(); });
}

GpmRouter::~GpmRouter() { stopAndDrain(); }

void
GpmRouter::attachMetricsListener(TcpListener l)
{
    metricsListener = std::move(l);
    pool->serveHttpListener(metricsListener.fd());
}

void
GpmRouter::run()
{
    pool->start();
    std::unique_lock<std::mutex> lock(stopMtx);
    stopCv.wait(lock, [&] { return acceptClosed; });
}

void
GpmRouter::requestStop()
{
    listener.shutdownListener();
}

void
GpmRouter::onAcceptDone()
{
    std::lock_guard<std::mutex> lock(stopMtx);
    acceptClosed = true;
    stopCv.notify_all();
}

void
GpmRouter::stopAndDrain()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(stopMtx);
        if (drained)
            return;
        drained = true;
    }
    // Let in-flight scenarios complete: backends are still being
    // read, responses still flow to clients. Bounded so a wedged
    // backend cannot stall shutdown forever.
    {
        std::unique_lock<std::mutex> lock(drainMtx);
        drainCv.wait_for(lock, std::chrono::seconds(30), [&] {
            return unanswered.load(std::memory_order_acquire) == 0;
        });
    }
    stopping.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(proberMtx);
        proberCv.notify_all();
    }
    for (auto &b : backends)
        for (auto &ch : b->channels) {
            std::lock_guard<std::mutex> lock(ch->mtx);
            if (ch->fd >= 0)
                ::shutdown(ch->fd, SHUT_RDWR);
            ch->cv.notify_all();
        }
    if (prober.joinable())
        prober.join();
    for (auto &b : backends)
        for (auto &ch : b->channels)
            if (ch->reader.joinable())
                ch->reader.join();
    for (auto &b : backends)
        for (auto &ch : b->channels) {
            std::lock_guard<std::mutex> lock(ch->mtx);
            if (ch->fd >= 0) {
                ::close(ch->fd);
                ch->fd = -1;
            }
        }
    pool->shutdownAndJoin();
    listener.close();
    metricsListener.close();
}

void
GpmRouter::oneAnswered(std::size_t n)
{
    if (unanswered.fetch_sub(n, std::memory_order_acq_rel) == n) {
        std::lock_guard<std::mutex> lock(drainMtx);
        drainCv.notify_all();
    }
}

// ---------------------------------------------------------------
// Routing
// ---------------------------------------------------------------

std::vector<char>
GpmRouter::eligibleMask() const
{
    std::vector<char> mask(backends.size(), 0);
    bool any = false;
    for (std::size_t i = 0; i < backends.size(); i++) {
        if (backends[i]->breaker.state() ==
            CircuitBreaker::State::Closed) {
            mask[i] = 1;
            any = true;
        }
    }
    if (!any) {
        // Whole fleet non-closed: let traffic through to half-open
        // backends rather than shedding everything (their outcomes
        // close or re-open the breaker either way).
        for (std::size_t i = 0; i < backends.size(); i++)
            if (backends[i]->breaker.state() ==
                CircuitBreaker::State::HalfOpen)
                mask[i] = 1;
    }
    return mask;
}

void
GpmRouter::shedItems(const std::shared_ptr<ReactorConn> &conn,
                     const std::string &idDump, bool batch,
                     const std::vector<RouterItem> &items)
{
    shedNoBackend += items.size();
    std::string errDump = busyErrorDump(
        "no live backend replica", opts.breaker.cooldownMs);
    for (const auto &it : items) {
        std::string out;
        if (batch) {
            out = "{\"id\":" + idDump +
                  ",\"ok\":false,\"index\":" +
                  std::to_string(it.origIndex) + ",\"hash\":\"" +
                  hashHex(it.hash) + "\",\"error\":" + errDump +
                  "}";
        } else {
            out = "{\"id\":" + idDump +
                  ",\"ok\":false,\"error\":" + errDump + "}";
        }
        sendLine(conn, std::move(out));
        conn->decPending();
        oneAnswered();
    }
}

bool
GpmRouter::sendUnit(std::size_t bIdx,
                    const std::shared_ptr<Pending> &p)
{
    Backend &b = *backends[bIdx];
    std::uint64_t s = seq.fetch_add(1, std::memory_order_relaxed);
    std::string wire = "{\"id\":\"r" + std::to_string(s) + "\"";
    if (p->batch) {
        wire += ",\"verb\":\"submit_batch\",\"scenarios\":[";
        for (std::size_t i = 0; i < p->items.size(); i++) {
            if (i)
                wire += ',';
            wire += p->items[i].scenario;
        }
        wire += "]}\n";
    } else {
        wire += ",\"verb\":\"submit\",\"scenario\":" +
                p->items[0].scenario + "}\n";
    }

    std::size_t cIdx = b.rr.fetch_add(1, std::memory_order_relaxed) %
                       b.channels.size();
    Channel &ch = *b.channels[cIdx];
    std::lock_guard<std::mutex> wlock(ch.mtx);
    if (ch.fd < 0) {
        int fd = connectFd(b.host, b.port,
                           opts.backendConnectTimeoutMs,
                           opts.backendWriteTimeoutMs);
        if (fd < 0) {
            b.breaker.recordFailure();
            backendFailures++;
            return false;
        }
        ch.fd = fd;
        ch.gen++;
        ch.cv.notify_all();
        b.breaker.recordSuccess();
    }
    p->channel = cIdx;
    p->gen = ch.gen;
    p->remaining = p->items.size();
    {
        // Register before the write: the response may race the
        // send() return. Lock order is always channel -> backend.
        std::lock_guard<std::mutex> block(b.mtx);
        b.inflight[s] = p;
    }
    if (!writeAllFd(ch.fd, wire)) {
        // Leave the close to the reader (it owns the fd); shutdown
        // wakes it into the orphan sweep, which will no longer
        // find this pending — we answer for it by failing here.
        ::shutdown(ch.fd, SHUT_RDWR);
        {
            std::lock_guard<std::mutex> block(b.mtx);
            b.inflight.erase(s);
        }
        b.breaker.recordFailure();
        backendFailures++;
        return false;
    }
    b.routed += p->items.size();
    b.inflightCount += p->items.size();
    return true;
}

void
GpmRouter::dispatchItems(
    const std::shared_ptr<ReactorConn> &conn,
    const std::string &idDump, bool batch,
    std::vector<RouterItem> items, int attempts,
    std::size_t exclude)
{
    if (attempts > opts.maxReroutes) {
        shedItems(conn, idDump, batch, items);
        return;
    }
    std::vector<char> mask = eligibleMask();
    if (exclude != RendezvousRing::npos) {
        // Skip the backend that just failed us — unless it is the
        // only candidate left (it may have just restarted).
        bool others = false;
        for (std::size_t i = 0; i < mask.size(); i++)
            if (mask[i] && i != exclude)
                others = true;
        if (others)
            mask[exclude] = 0;
    }

    std::vector<std::vector<RouterItem>> groups(backends.size());
    std::vector<RouterItem> unroutable;
    for (auto &it : items) {
        std::size_t owner = ring.owner(it.hash, mask);
        if (owner == RendezvousRing::npos) {
            unroutable.push_back(std::move(it));
            continue;
        }
        if (owner != ring.owner(it.hash))
            backends[owner]->rehashes++;
        groups[owner].push_back(std::move(it));
    }
    if (!unroutable.empty())
        shedItems(conn, idDump, batch, unroutable);

    for (std::size_t bIdx = 0; bIdx < groups.size(); bIdx++) {
        if (groups[bIdx].empty())
            continue;
        auto p = std::make_shared<Pending>();
        p->conn = conn;
        p->idDump = idDump;
        p->batch = batch;
        p->items = std::move(groups[bIdx]);
        p->attempts = attempts;
        if (!sendUnit(bIdx, p)) {
            rerouted += p->items.size();
            dispatchItems(conn, idDump, batch,
                          std::move(p->items), attempts + 1,
                          bIdx);
        }
    }
}

// ---------------------------------------------------------------
// Backend response path
// ---------------------------------------------------------------

void
GpmRouter::onBackendLine(std::size_t bIdx, std::string_view line)
{
    Backend &b = *backends[bIdx];
    b.breaker.recordSuccess();

    // Fast path: our own gpmd builds response heads id-first, so
    // every line starts {"id":"r<seq>". Splice, never re-parse.
    static constexpr std::string_view kPrefix = "{\"id\":\"r";
    if (line.substr(0, kPrefix.size()) != kPrefix) {
        fallbackBackendLine(bIdx, line);
        return;
    }
    std::size_t pos = kPrefix.size();
    std::uint64_t s = 0;
    std::size_t digitsStart = pos;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
        s = s * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        pos++;
    }
    if (pos == digitsStart || pos >= line.size() ||
        line[pos] != '"') {
        fallbackBackendLine(bIdx, line);
        return;
    }
    std::size_t afterId = pos + 1;

    enum class Kind
    {
        Single,
        BatchItem,
        BatchError,
        Unmatched
    };
    Kind kind = Kind::Unmatched;
    std::shared_ptr<Pending> p;
    std::size_t origIndex = 0;
    std::size_t idxDigitsStart = 0, idxDigitsEnd = 0;
    std::size_t undone = 0;

    {
        std::lock_guard<std::mutex> lock(b.mtx);
        auto it = b.inflight.find(s);
        if (it == b.inflight.end())
            return; // already rerouted or answered: drop
        p = it->second;
        if (!p->batch) {
            b.inflight.erase(it);
            kind = Kind::Single;
        } else {
            std::string_view rest = line.substr(afterId);
            std::size_t skip = 0;
            if (rest.rfind(",\"ok\":true,", 0) == 0)
                skip = 11;
            else if (rest.rfind(",\"ok\":false,", 0) == 0)
                skip = 12;
            std::string_view after =
                skip ? rest.substr(skip) : std::string_view{};
            if (skip && after.rfind("\"index\":", 0) == 0) {
                idxDigitsStart = afterId + skip + 8;
                std::size_t q = idxDigitsStart;
                std::size_t sub = 0;
                while (q < line.size() &&
                       std::isdigit(static_cast<unsigned char>(
                           line[q]))) {
                    sub = sub * 10 +
                          static_cast<std::size_t>(line[q] - '0');
                    q++;
                }
                idxDigitsEnd = q;
                if (q > idxDigitsStart &&
                    sub < p->items.size() &&
                    !p->items[sub].done) {
                    p->items[sub].done = true;
                    p->remaining--;
                    origIndex = p->items[sub].origIndex;
                    if (p->remaining == 0)
                        b.inflight.erase(it);
                    kind = Kind::BatchItem;
                }
            } else if (skip &&
                       after.rfind("\"error\":", 0) == 0) {
                undone = p->remaining;
                b.inflight.erase(it);
                kind = Kind::BatchError;
            }
        }
    }

    switch (kind) {
    case Kind::Single: {
        std::string out;
        out.reserve(line.size() + p->idDump.size() + 8);
        out += "{\"id\":";
        out += p->idDump;
        out += line.substr(afterId);
        sendLine(p->conn, std::move(out));
        p->conn->decPending();
        b.inflightCount--;
        oneAnswered();
        return;
    }
    case Kind::BatchItem: {
        std::string out;
        out.reserve(line.size() + p->idDump.size() + 16);
        out += "{\"id\":";
        out += p->idDump;
        out += line.substr(afterId, idxDigitsStart - afterId);
        out += std::to_string(origIndex);
        out += line.substr(idxDigitsEnd);
        sendLine(p->conn, std::move(out));
        p->conn->decPending();
        b.inflightCount--;
        oneAnswered();
        return;
    }
    case Kind::BatchError:
        b.inflightCount -= undone;
        emitShardError(p, line);
        return;
    case Kind::Unmatched:
        fallbackBackendLine(bIdx, line);
        return;
    }
}

/**
 * Defensive slow path: a backend response whose head did not match
 * the expected shape. Full-parse, re-do the bookkeeping with JSON
 * operations. With our own gpmd backends this never runs; counted
 * so drift would show in metrics immediately.
 */
void
GpmRouter::fallbackBackendLine(std::size_t bIdx,
                               std::string_view line)
{
    spliceFallbacks++;
    Backend &b = *backends[bIdx];
    auto parsed = json::parse(line);
    if (!parsed.ok() || !parsed.value().isObject()) {
        warn("gpm-router: unparseable line from %s dropped",
             b.name.c_str());
        return;
    }
    Value &root = parsed.value();
    const Value *rid = root.find("id");
    if (!rid || !rid->isString() || rid->asString().empty() ||
        rid->asString()[0] != 'r') {
        warn("gpm-router: uncorrelated line from %s dropped",
             b.name.c_str());
        return;
    }
    std::uint64_t s = std::strtoull(rid->asString().c_str() + 1,
                                    nullptr, 10);

    std::shared_ptr<Pending> p;
    bool isBatchItem = false, isBatchError = false;
    std::size_t origIndex = 0, undone = 0;
    {
        std::lock_guard<std::mutex> lock(b.mtx);
        auto it = b.inflight.find(s);
        if (it == b.inflight.end())
            return;
        p = it->second;
        if (!p->batch) {
            b.inflight.erase(it);
        } else {
            const Value *idx = root.find("index");
            if (idx && idx->isNumber()) {
                std::size_t sub = static_cast<std::size_t>(
                    idx->asNumber());
                if (sub >= p->items.size() ||
                    p->items[sub].done)
                    return;
                p->items[sub].done = true;
                p->remaining--;
                origIndex = p->items[sub].origIndex;
                if (p->remaining == 0)
                    b.inflight.erase(it);
                isBatchItem = true;
            } else {
                undone = p->remaining;
                b.inflight.erase(it);
                isBatchError = true;
            }
        }
    }
    if (isBatchError) {
        b.inflightCount -= undone;
        emitShardError(p, line);
        return;
    }
    auto origId = json::parse(p->idDump);
    root.set("id", origId.ok() ? origId.value() : Value(nullptr));
    if (isBatchItem)
        root.set("index", origIndex);
    sendLine(p->conn, root.dump());
    p->conn->decPending();
    b.inflightCount--;
    oneAnswered();
}

void
GpmRouter::emitShardError(const std::shared_ptr<Pending> &p,
                          std::string_view errorLine)
{
    // Shard-level rejection (busy / rejected_overload / draining):
    // translate into one per-scenario line per un-answered item,
    // original code, message and retryAfterMs preserved so the
    // backend's admission control composes through the router.
    std::string code = "busy";
    std::string message = "backend rejected the shard";
    double retryAfterMs = 0.0;
    auto parsed = json::parse(errorLine);
    if (parsed.ok() && parsed.value().isObject()) {
        if (const Value *err = parsed.value().find("error")) {
            if (const Value *c = err->find("code");
                c && c->isString())
                code = c->asString();
            if (const Value *m = err->find("message");
                m && m->isString())
                message = m->asString();
            if (const Value *r = err->find("retryAfterMs");
                r && r->isNumber())
                retryAfterMs = r->asNumber();
        }
    }
    Value err = Value::object();
    err.set("code", code);
    err.set("message", message);
    if (retryAfterMs > 0.0)
        err.set("retryAfterMs", retryAfterMs);
    std::string errDump = err.dump();

    std::size_t n = 0;
    for (const auto &it : p->items) {
        if (it.done)
            continue;
        std::string out = "{\"id\":" + p->idDump +
                          ",\"ok\":false,\"index\":" +
                          std::to_string(it.origIndex) +
                          ",\"hash\":\"" + hashHex(it.hash) +
                          "\",\"error\":" + errDump + "}";
        sendLine(p->conn, std::move(out));
        p->conn->decPending();
        n++;
    }
    oneAnswered(n);
}

// ---------------------------------------------------------------
// Backend reader threads / failure sweeps / prober
// ---------------------------------------------------------------

void
GpmRouter::readerLoop(std::size_t bIdx, std::size_t cIdx)
{
    Backend &b = *backends[bIdx];
    Channel &ch = *b.channels[cIdx];
    for (;;) {
        int fd;
        std::uint64_t gen;
        {
            std::unique_lock<std::mutex> lock(ch.mtx);
            ch.cv.wait(lock, [&] {
                return stopping.load(std::memory_order_acquire) ||
                       ch.fd >= 0;
            });
            if (stopping.load(std::memory_order_acquire))
                return;
            fd = ch.fd;
            gen = ch.gen;
        }
        LineScanner scanner;
        bool alive = true;
        while (alive) {
            char *dst = scanner.writePtr(4096);
            ssize_t n =
                ::recv(fd, dst, scanner.writeCapacity(), 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            scanner.commit(static_cast<std::size_t>(n));
            std::string_view line;
            for (;;) {
                auto st =
                    scanner.next(line, opts.maxLineBytes);
                if (st == LineScanner::Scan::Line) {
                    onBackendLine(bIdx, line);
                } else if (st == LineScanner::Scan::NeedMore) {
                    break;
                } else {
                    warn("gpm-router: over-long line from %s; "
                         "dropping connection",
                         b.name.c_str());
                    alive = false;
                    break;
                }
            }
        }
        channelDown(bIdx, cIdx, gen);
    }
}

void
GpmRouter::channelDown(std::size_t bIdx, std::size_t cIdx,
                       std::uint64_t gen)
{
    Backend &b = *backends[bIdx];
    Channel &ch = *b.channels[cIdx];
    {
        std::lock_guard<std::mutex> lock(ch.mtx);
        if (ch.gen != gen || ch.fd < 0)
            return; // already replaced
        ::close(ch.fd);
        ch.fd = -1;
    }
    b.breaker.recordFailure();
    backendFailures++;

    // Orphan sweep: claim every pending written to the dead
    // connection and re-resolve its un-answered scenarios onto
    // live replicas. Content-addressed results make this safe: a
    // re-routed miss recomputes byte-identically and write-throughs
    // the shared cache dir.
    std::vector<std::shared_ptr<Pending>> orphans;
    {
        std::lock_guard<std::mutex> lock(b.mtx);
        for (auto it = b.inflight.begin();
             it != b.inflight.end();) {
            if (it->second->channel == cIdx &&
                it->second->gen == gen) {
                orphans.push_back(it->second);
                it = b.inflight.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &p : orphans) {
        std::vector<RouterItem> left;
        for (auto &it : p->items)
            if (!it.done)
                left.push_back(std::move(it));
        b.inflightCount -= left.size();
        if (left.empty())
            continue;
        rerouted += left.size();
        if (stopping.load(std::memory_order_acquire)) {
            shedItems(p->conn, p->idDump, p->batch, left);
            continue;
        }
        dispatchItems(p->conn, p->idDump, p->batch,
                      std::move(left), p->attempts + 1, bIdx);
    }
}

void
GpmRouter::proberLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(proberMtx);
            proberCv.wait_for(
                lock,
                std::chrono::milliseconds(
                    opts.probeIntervalMs > 0 ? opts.probeIntervalMs
                                             : 50),
                [&] {
                    return stopping.load(
                        std::memory_order_acquire);
                });
        }
        if (stopping.load(std::memory_order_acquire))
            return;
        for (auto &bp : backends) {
            Backend &b = *bp;
            if (b.breaker.state() ==
                CircuitBreaker::State::Closed)
                continue;
            // allow() gates the probe on the breaker's jittered
            // cooldown and admits at most one probe per window.
            if (!b.breaker.allow())
                continue;
            probes++;
            if (probeBackend(b)) {
                b.breaker.recordSuccess();
                inform("gpm-router: backend %s is back",
                       b.name.c_str());
            } else {
                b.breaker.recordFailure();
            }
        }
    }
}

bool
GpmRouter::probeBackend(Backend &b)
{
    int fd = connectFd(b.host, b.port, opts.probeTimeoutMs,
                       opts.probeTimeoutMs);
    if (fd < 0)
        return false;
    timeval tv{};
    tv.tv_sec = opts.probeTimeoutMs / 1000;
    tv.tv_usec = (opts.probeTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    bool ok = false;
    if (writeAllFd(fd, "{\"id\":\"probe\",\"verb\":\"ping\"}\n")) {
        char buf[256];
        std::string resp;
        while (resp.find('\n') == std::string::npos &&
               resp.size() < sizeof(buf) * 4) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            resp.append(buf, static_cast<std::size_t>(n));
        }
        ok = resp.find("\"pong\":true") != std::string::npos;
    }
    ::close(fd);
    return ok;
}

// ---------------------------------------------------------------
// Client-facing protocol
// ---------------------------------------------------------------

std::string
GpmRouter::onLineTooLong()
{
    std::string line = errorResponse(
        Value(nullptr), "line_too_long",
        "request line exceeds " +
            std::to_string(opts.maxLineBytes) + " bytes");
    line.push_back('\n');
    return line;
}

std::string
GpmRouter::onHttpRequest(std::string_view method,
                         std::string_view path)
{
    if (method != "GET")
        return httpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "method not allowed\n");
    if (path == "/healthz")
        return httpResponse(200, "OK",
                            "text/plain; charset=utf-8", "ok\n");
    if (path == "/metrics")
        return httpResponse(
            200, "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            renderRouterPrometheus(stats(), pool->stats()));
    return httpResponse(404, "Not Found",
                        "text/plain; charset=utf-8",
                        "not found\n");
}

void
GpmRouter::handleSubmit(const std::shared_ptr<ReactorConn> &conn,
                        const std::string &idDump,
                        const json::Value &scenario)
{
    auto spec = parseScenario(scenario);
    auto origId = json::parse(idDump);
    if (!spec.ok()) {
        sendLine(conn, errorResponse(origId.value(), "invalid",
                                     spec.error()));
        return;
    }
    routedSubmits++;
    routedScenarios++;
    std::vector<RouterItem> items(1);
    items[0].scenario = scenario.dump();
    items[0].hash = spec.value().hash();
    conn->addPending(1);
    unanswered++;
    dispatchItems(conn, idDump, /*batch=*/false,
                  std::move(items), 0, RendezvousRing::npos);
}

void
GpmRouter::handleBatch(const std::shared_ptr<ReactorConn> &conn,
                       const std::string &idDump,
                       const json::Value &scenarios)
{
    auto origId = json::parse(idDump);
    const Value::Array &arr = scenarios.asArray();
    if (arr.empty()) {
        sendLine(conn,
                 errorResponse(origId.value(), "invalid",
                               "'scenarios' must not be empty"));
        return;
    }
    std::vector<RouterItem> items;
    items.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); i++) {
        auto spec = parseScenario(arr[i]);
        if (!spec.ok()) {
            sendLine(conn,
                     errorResponse(origId.value(), "invalid",
                                   "scenario " +
                                       std::to_string(i) + ": " +
                                       spec.error()));
            return;
        }
        RouterItem it;
        it.scenario = arr[i].dump();
        it.hash = spec.value().hash();
        it.origIndex = i;
        items.push_back(std::move(it));
    }
    // Batch contract parity with gpmd: when nothing can serve the
    // batch, answer ONE batch-level error line (no "index").
    std::vector<char> mask = eligibleMask();
    bool any = false;
    for (char m : mask)
        any = any || m;
    if (!any) {
        shedNoBackend += items.size();
        sendLine(conn, errorResponse(
                           origId.value(), "busy",
                           "no live backend replica",
                           opts.breaker.cooldownMs));
        return;
    }
    routedBatches++;
    routedScenarios += items.size();
    conn->addPending(items.size());
    unanswered += items.size();
    dispatchItems(conn, idDump, /*batch=*/true, std::move(items),
                  0, RendezvousRing::npos);
}

void
GpmRouter::onLine(const std::shared_ptr<ReactorConn> &conn,
                  std::string_view line)
{
    requests++;
    Value id(nullptr);

    auto parsed = json::parse(line);
    if (!parsed.ok()) {
        sendLine(conn,
                 errorResponse(id, "parse",
                               parsed.error().message +
                                   " at offset " +
                                   std::to_string(
                                       parsed.error().offset)));
        return;
    }
    const Value &req = parsed.value();
    if (!req.isObject()) {
        sendLine(conn,
                 errorResponse(id, "parse",
                               "request must be a JSON object"));
        return;
    }
    if (const Value *rid = req.find("id")) {
        if (!rid->isScalar()) {
            sendLine(conn, errorResponse(id, "invalid",
                                         "id must be a scalar"));
            return;
        }
        id = *rid;
    }
    for (const auto &[key, val] : req.asObject()) {
        (void)val;
        if (key != "id" && key != "verb" && key != "scenario" &&
            key != "scenarios") {
            sendLine(conn,
                     errorResponse(id, "invalid",
                                   "unknown request field '" +
                                       key + "'"));
            return;
        }
    }
    const Value *verb = req.find("verb");
    if (!verb || !verb->isString()) {
        sendLine(conn,
                 errorResponse(id, "invalid",
                               "missing or non-string 'verb'"));
        return;
    }
    const std::string &v = verb->asString();

    if (v == "ping") {
        Value result = Value::object();
        result.set("pong", true);
        sendLine(conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "stats") {
        RouterStats s = stats();
        Value result = Value::object();
        result.set("uptimeSec", s.uptimeSec);
        result.set("requests", s.requests);
        result.set("connections", s.connections);
        result.set("backendsTotal", s.backendsTotal);
        result.set("backendsLive", s.backendsLive);
        result.set("inflight", s.inflight);
        result.set("routedSubmits", s.routedSubmits);
        result.set("routedBatches", s.routedBatches);
        result.set("routedScenarios", s.routedScenarios);
        result.set("rerouted", s.rerouted);
        result.set("shedNoBackend", s.shedNoBackend);
        result.set("spliceFallbacks", s.spliceFallbacks);
        result.set("backendFailures", s.backendFailures);
        result.set("probes", s.probes);
        Value arr = Value::array();
        for (const auto &bs : s.backends) {
            Value o = Value::object();
            o.set("name", bs.name);
            o.set("state", bs.breakerState);
            o.set("opens", bs.breakerOpens);
            o.set("routed", bs.routed);
            o.set("rehashes", bs.rehashes);
            o.set("inflight", bs.inflight);
            o.set("live", bs.live);
            arr.push(std::move(o));
        }
        result.set("backends", std::move(arr));
        sendLine(conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "submit") {
        const Value *scenario = req.find("scenario");
        if (!scenario) {
            sendLine(conn,
                     errorResponse(id, "invalid",
                                   "submit needs a 'scenario'"));
            return;
        }
        handleSubmit(conn, id.dump(), *scenario);
        return;
    }

    if (v == "submit_batch") {
        const Value *scenarios = req.find("scenarios");
        if (!scenarios || !scenarios->isArray()) {
            sendLine(conn,
                     errorResponse(
                         id, "invalid",
                         "submit_batch needs a 'scenarios' array"));
            return;
        }
        handleBatch(conn, id.dump(), *scenarios);
        return;
    }

    if (v == "shutdown") {
        Value result = Value::object();
        result.set("stopping", true);
        sendLine(conn, okResponse(id, std::move(result)));
        requestStop();
        return;
    }

    sendLine(conn, errorResponse(id, "invalid",
                                 "unknown verb '" + v + "'"));
}

// ---------------------------------------------------------------
// Stats / metrics
// ---------------------------------------------------------------

RouterStats
GpmRouter::stats() const
{
    RouterStats s;
    s.uptimeSec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime)
            .count();
    s.requests = requests.load(std::memory_order_relaxed);
    s.connections = pool->stats().accepted;
    s.routedSubmits = routedSubmits.load(std::memory_order_relaxed);
    s.routedBatches = routedBatches.load(std::memory_order_relaxed);
    s.routedScenarios =
        routedScenarios.load(std::memory_order_relaxed);
    s.rerouted = rerouted.load(std::memory_order_relaxed);
    s.shedNoBackend =
        shedNoBackend.load(std::memory_order_relaxed);
    s.spliceFallbacks =
        spliceFallbacks.load(std::memory_order_relaxed);
    s.backendFailures =
        backendFailures.load(std::memory_order_relaxed);
    s.probes = probes.load(std::memory_order_relaxed);
    s.inflight = unanswered.load(std::memory_order_relaxed);
    s.backendsTotal = backends.size();
    for (const auto &bp : backends) {
        RouterBackendStats bs;
        bs.name = bp->name;
        bs.breakerState = bp->breaker.stateName();
        bs.breakerOpens = bp->breaker.opens();
        bs.routed = bp->routed.load(std::memory_order_relaxed);
        bs.rehashes =
            bp->rehashes.load(std::memory_order_relaxed);
        bs.inflight =
            bp->inflightCount.load(std::memory_order_relaxed);
        bs.live = bp->breaker.state() ==
                  CircuitBreaker::State::Closed;
        if (bs.live)
            s.backendsLive++;
        s.backends.push_back(std::move(bs));
    }
    return s;
}

std::string
renderRouterPrometheus(const RouterStats &s,
                       const ReactorStats &r)
{
    std::string out;
    out.reserve(4096);
    promBuildInfo(out);
    promCounter(out, "gpm_router_requests_total",
                "Request lines handled", s.requests);
    promCounter(out, "gpm_router_connections_total",
                "Client connections accepted", s.connections);
    promCounter(out, "gpm_router_routed_submits_total",
                "submit requests routed", s.routedSubmits);
    promCounter(out, "gpm_router_routed_batches_total",
                "submit_batch requests routed", s.routedBatches);
    promCounter(out, "gpm_router_routed_scenarios_total",
                "Scenarios routed to backends",
                s.routedScenarios);
    promCounter(out, "gpm_router_rerouted_total",
                "Scenarios re-dispatched after a backend "
                "transport failure",
                s.rerouted);
    promCounter(out, "gpm_router_shed_no_backend_total",
                "Scenarios answered busy with no live backend",
                s.shedNoBackend);
    promCounter(out, "gpm_router_splice_fallbacks_total",
                "Responses that took the full-parse path",
                s.spliceFallbacks);
    promCounter(out, "gpm_router_backend_failures_total",
                "Backend transport failures observed",
                s.backendFailures);
    promCounter(out, "gpm_router_probes_total",
                "Health probes sent to non-closed backends",
                s.probes);
    promCounter(out, "gpm_router_bytes_in_total",
                "Bytes received on client sockets", r.bytesIn);
    promCounter(out, "gpm_router_bytes_out_total",
                "Bytes written to client sockets", r.bytesOut);
    promGauge(out, "gpm_router_inflight",
              "Scenarios accepted but not yet answered",
              static_cast<double>(s.inflight));
    promGauge(out, "gpm_router_backends",
              "Configured backends",
              static_cast<double>(s.backendsTotal));
    promGauge(out, "gpm_router_backends_live",
              "Backends with a closed circuit breaker",
              static_cast<double>(s.backendsLive));
    promGauge(out, "gpm_router_open_connections",
              "Client sockets currently open",
              static_cast<double>(r.openConnections));
    promGauge(out, "gpm_router_uptime_seconds", "Router uptime",
              s.uptimeSec);

    char buf[256];
    out += "# HELP gpm_router_backend_routed_total Scenarios "
           "dispatched per backend\n"
           "# TYPE gpm_router_backend_routed_total counter\n";
    for (const auto &b : s.backends) {
        std::snprintf(
            buf, sizeof(buf),
            "gpm_router_backend_routed_total{backend=\"%s\"} "
            "%llu\n",
            b.name.c_str(),
            static_cast<unsigned long long>(b.routed));
        out += buf;
    }
    out += "# HELP gpm_router_backend_rehashes_total Scenarios "
           "placed off their all-alive ring owner\n"
           "# TYPE gpm_router_backend_rehashes_total counter\n";
    for (const auto &b : s.backends) {
        std::snprintf(
            buf, sizeof(buf),
            "gpm_router_backend_rehashes_total{backend=\"%s\"} "
            "%llu\n",
            b.name.c_str(),
            static_cast<unsigned long long>(b.rehashes));
        out += buf;
    }
    out += "# HELP gpm_router_backend_inflight Scenarios awaiting "
           "each backend's response\n"
           "# TYPE gpm_router_backend_inflight gauge\n";
    for (const auto &b : s.backends) {
        std::snprintf(
            buf, sizeof(buf),
            "gpm_router_backend_inflight{backend=\"%s\"} %llu\n",
            b.name.c_str(),
            static_cast<unsigned long long>(b.inflight));
        out += buf;
    }
    out += "# HELP gpm_router_breaker_opens_total Breaker open "
           "events per backend\n"
           "# TYPE gpm_router_breaker_opens_total counter\n";
    for (const auto &b : s.backends) {
        std::snprintf(
            buf, sizeof(buf),
            "gpm_router_breaker_opens_total{backend=\"%s\"} "
            "%llu\n",
            b.name.c_str(),
            static_cast<unsigned long long>(b.breakerOpens));
        out += buf;
    }
    out += "# HELP gpm_router_breaker_state Per-backend breaker "
           "state (exactly one state sample per backend is 1)\n"
           "# TYPE gpm_router_breaker_state gauge\n";
    static const char *const kStates[] = {"closed", "open",
                                          "half-open"};
    for (const auto &b : s.backends) {
        for (const char *st : kStates) {
            std::snprintf(buf, sizeof(buf),
                          "gpm_router_breaker_state{backend=\"%s\""
                          ",state=\"%s\"} %d\n",
                          b.name.c_str(), st,
                          b.breakerState == st ? 1 : 0);
            out += buf;
        }
    }
    return out;
}

} // namespace gpm
