/**
 * @file
 * GpmRouter — a thin sharding proxy in front of N gpmd backends.
 *
 * The router speaks the gpmd NDJSON protocol on both sides (see
 * docs/SERVICE.md): clients point gpmctl (or anything else that
 * talks to gpmd) at the router with no changes, and the router
 * consistent-hashes every scenario's canonical hash — the same
 * 64-bit key the result cache uses — onto a backend via a
 * rendezvous/HRW ring (ring.hh). A scenario therefore always lands
 * on the same backend, so each backend's memory LRU warms exactly
 * its shard of the keyspace, while the shared --cache-dir /
 * --profile-cache-dir directories make every result reusable
 * fleet-wide.
 *
 * Forwarding is line-oriented and near zero-copy: request lines
 * are re-tagged with an internal correlation id ("r<seq>") and the
 * scenario text is forwarded verbatim; response lines come back on
 * per-backend connection pools, are matched by the correlation id,
 * and the original client id (and, for batch shards, the original
 * scenario index) is spliced back into the line as string spans —
 * no parse/re-serialize on the hot path (a defensive full-parse
 * fallback covers any line that does not match the expected head
 * shape, counted in spliceFallbacks).
 *
 * submit_batch splits by shard: scenarios are grouped by owner,
 * each group forwarded as one sub-batch, and responses re-emitted
 * in completion order with indices remapped to the client's
 * request array. A shard-level rejection (busy /
 * rejected_overload / draining) is translated into one per-scenario
 * error line per affected scenario, original code and retryAfterMs
 * preserved — admission control composes through the router.
 *
 * Failure handling rides CircuitBreaker (util/breaker.hh), one per
 * backend: transport failures (connect refusal, write failure,
 * connection EOF) feed the breaker; an open breaker removes the
 * backend from the eligible set, which *re-resolves its shard
 * slice onto the live replicas* via the ring's per-key ranking.
 * This is correct for any scenario because results are
 * content-addressed: a re-routed miss recomputes and
 * write-throughs the shared cache dir, byte-identical. In-flight
 * requests orphaned by a dead connection are re-dispatched the
 * same way (never answered internal_error). A prober thread pings
 * non-closed backends on the breaker's jittered cooldown schedule
 * and closes the breaker when a backend comes back.
 *
 * Observability: `stats` answers a flat router stats object plus a
 * per-backend array; attachMetricsListener() serves aggregated
 * Prometheus metrics (gpm_router_* series with per-backend labels)
 * and /healthz on the same reactor.
 */

#ifndef GPM_ROUTER_ROUTER_HH
#define GPM_ROUTER_ROUTER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "router/ring.hh"
#include "service/json.hh"
#include "service/net.hh"
#include "service/reactor.hh"
#include "util/breaker.hh"

namespace gpm
{

/** One scenario inside a forward unit: the text forwarded
 *  verbatim, the shard key, and where the client expects it in a
 *  batch response. */
struct RouterItem
{
    std::string scenario;
    std::uint64_t hash = 0;
    std::size_t origIndex = 0;
    bool done = false;
};

/** One gpmd backend address. */
struct RouterEndpoint
{
    std::string host;
    std::uint16_t port = 0;

    std::string name() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** GpmRouter tuning knobs. */
struct RouterOptions
{
    /** Client-side transport (same semantics as ServerOptions). */
    int idleTimeoutMs = 60000;
    int writeTimeoutMs = 30000;
    std::size_t maxLineBytes = 1 << 20;
    std::size_t reactorThreads = 1;

    /** Pooled connections per backend. */
    std::size_t backendConns = 2;
    /** Backend connect() timeout. */
    int backendConnectTimeoutMs = 1000;
    /** Per-send progress timeout on backend sockets (wedged-backend
     *  guard); 0 = wait forever. */
    int backendWriteTimeoutMs = 30000;
    /** Prober sweep period; each sweep pings backends whose breaker
     *  allows a probe (the breaker's jittered cooldown gates how
     *  often a dead backend is actually poked). */
    int probeIntervalMs = 50;
    /** Probe connect/response timeout. */
    int probeTimeoutMs = 1000;
    /** Dispatch attempts per forward unit before its scenarios are
     *  answered with a retryable "busy" error. */
    int maxReroutes = 8;
    /** Per-backend circuit breaker tuning. */
    BreakerOptions breaker;
};

/** Per-backend slice of RouterStats. */
struct RouterBackendStats
{
    std::string name;
    std::string breakerState;
    std::uint64_t breakerOpens = 0;
    /** Scenarios dispatched to this backend (incl. re-routes). */
    std::uint64_t routed = 0;
    /** Scenarios routed here while NOT the all-alive ring owner
     *  (the rehash count: failover placements). */
    std::uint64_t rehashes = 0;
    /** Gauge: scenarios awaiting this backend's response. */
    std::uint64_t inflight = 0;
    bool live = false;
};

/** Aggregated router counters (monotonic unless noted). */
struct RouterStats
{
    double uptimeSec = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t connections = 0;
    std::uint64_t routedSubmits = 0;
    std::uint64_t routedBatches = 0;
    std::uint64_t routedScenarios = 0;
    /** Scenarios re-dispatched after a transport failure. */
    std::uint64_t rerouted = 0;
    /** Scenarios answered "busy" with no live backend. */
    std::uint64_t shedNoBackend = 0;
    /** Responses that took the defensive full-parse path. */
    std::uint64_t spliceFallbacks = 0;
    /** Backend transport failures observed. */
    std::uint64_t backendFailures = 0;
    /** Health probes sent. */
    std::uint64_t probes = 0;
    /** Gauge: scenarios accepted but not yet answered. */
    std::uint64_t inflight = 0;
    std::size_t backendsTotal = 0;
    std::size_t backendsLive = 0;
    std::vector<RouterBackendStats> backends;
};

/** Render the router /metrics body (gpm_router_* series plus
 *  gpm_build_info; no HTTP framing). */
std::string renderRouterPrometheus(const RouterStats &s,
                                   const ReactorStats &r);

class GpmRouter : private ReactorHandler
{
  public:
    GpmRouter(std::vector<RouterEndpoint> endpoints,
              TcpListener listener,
              RouterOptions opts = RouterOptions{});

    /** stopAndDrain() if the owner did not. */
    ~GpmRouter() override;

    GpmRouter(const GpmRouter &) = delete;
    GpmRouter &operator=(const GpmRouter &) = delete;

    std::uint16_t port() const { return listener.port(); }
    int listenerFd() const { return listener.fd(); }

    /** Serve GET /metrics and /healthz on @p l (same reactor).
     *  Call before run(). */
    void attachMetricsListener(TcpListener l);
    std::uint16_t metricsPort() const
    {
        return metricsListener.valid() ? metricsListener.port()
                                       : 0;
    }

    /** Serve; blocks until requestStop(). */
    void run();

    /** Unblock run(). Safe from signal handlers and other
     *  threads. */
    void requestStop();

    /**
     * Graceful teardown: stop accepting, wait (bounded) for every
     * accepted scenario to be answered, stop the probers and
     * backend readers, flush and close client connections, join
     * the reactors. Backends are left running — `shutdown` through
     * the router stops the router only. Idempotent.
     */
    void stopAndDrain();

    RouterStats stats() const;

  private:
    struct Pending;
    struct Channel;
    struct Backend;

    // ---- ReactorHandler ----
    void onLine(const std::shared_ptr<ReactorConn> &conn,
                std::string_view line) override;
    std::string onLineTooLong() override;
    std::string onHttpRequest(std::string_view method,
                              std::string_view path) override;
    void onAcceptDone() override;

    void handleSubmit(const std::shared_ptr<ReactorConn> &conn,
                      const std::string &idDump,
                      const json::Value &scenario);
    void handleBatch(const std::shared_ptr<ReactorConn> &conn,
                     const std::string &idDump,
                     const json::Value &scenarios);

    /** Eligible-backend mask: breaker closed, or (when none is)
     *  half-open. All-false when the whole fleet is down. */
    std::vector<char> eligibleMask() const;

    /**
     * Route @p items (grouped by ring owner over the eligible
     * mask, excluding @p exclude when possible), register and
     * forward each group. Items that cannot be placed after
     * opts.maxReroutes attempts are answered with retryable
     * errors.
     */
    void dispatchItems(const std::shared_ptr<ReactorConn> &conn,
                       const std::string &idDump, bool batch,
                       std::vector<RouterItem> items,
                       int attempts, std::size_t exclude);

    /** Register @p p under a fresh correlation id and write it to
     *  one of @p b's pooled connections. False = transport
     *  failure (breaker fed, pending deregistered). */
    bool sendUnit(std::size_t bIdx,
                  const std::shared_ptr<Pending> &p);

    /** Answer every item with a retryable "busy" error. */
    void shedItems(const std::shared_ptr<ReactorConn> &conn,
                   const std::string &idDump, bool batch,
                   const std::vector<RouterItem> &items);

    void onBackendLine(std::size_t bIdx, std::string_view line);
    void fallbackBackendLine(std::size_t bIdx,
                             std::string_view line);
    /** Translate a shard-level backend error into per-scenario
     *  error lines (original code/message/retryAfterMs). */
    void emitShardError(const std::shared_ptr<Pending> &p,
                        std::string_view errorLine);

    void readerLoop(std::size_t bIdx, std::size_t cIdx);
    void channelDown(std::size_t bIdx, std::size_t cIdx,
                     std::uint64_t gen);
    void proberLoop();
    bool probeBackend(Backend &b);

    void oneAnswered(std::size_t n = 1);

    std::vector<std::unique_ptr<Backend>> backends;
    RendezvousRing ring;
    TcpListener listener;
    TcpListener metricsListener;
    RouterOptions opts;
    std::unique_ptr<ReactorPool> pool;

    std::mutex stopMtx;
    std::condition_variable stopCv;
    bool acceptClosed = false;
    bool drained = false;

    std::atomic<bool> stopping{false};
    std::thread prober;
    std::mutex proberMtx;
    std::condition_variable proberCv;

    /** Scenarios accepted but not yet answered (drain gate). */
    std::atomic<std::uint64_t> unanswered{0};
    std::mutex drainMtx;
    std::condition_variable drainCv;

    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> routedSubmits{0};
    std::atomic<std::uint64_t> routedBatches{0};
    std::atomic<std::uint64_t> routedScenarios{0};
    std::atomic<std::uint64_t> rerouted{0};
    std::atomic<std::uint64_t> shedNoBackend{0};
    std::atomic<std::uint64_t> spliceFallbacks{0};
    std::atomic<std::uint64_t> backendFailures{0};
    std::atomic<std::uint64_t> probes{0};

    std::chrono::steady_clock::time_point startTime;
};

} // namespace gpm

#endif // GPM_ROUTER_ROUTER_HH
