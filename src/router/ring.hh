/**
 * @file
 * RendezvousRing — highest-random-weight (HRW) consistent hashing
 * for the sharding router.
 *
 * Each backend contributes a seed derived from its *name* (FNV-1a
 * of "host:port"), and a key's score against a backend is a 64-bit
 * mix of (key ^ seed). The key's owner is the highest-scoring
 * backend. Properties the router leans on:
 *
 *  - Determinism: the mapping is a pure function of (key, backend
 *    names) — every router process, restart, and replica computes
 *    the same placement with no coordination or persisted state.
 *  - Minimal remap: adding or removing one backend only moves the
 *    keys that backend wins (~1/N of the space); everything else
 *    keeps its owner, so fleet membership changes do not churn the
 *    per-backend memory caches.
 *  - Natural failover ranking: scores order ALL backends per key,
 *    so "the next replica" for a key is well-defined — owner()
 *    with an eligibility mask walks that ranking, skipping
 *    backends whose circuit breaker is open.
 *
 * Keys are canonical scenario hashes (ScenarioSpec::hash()), i.e.
 * exactly the result-cache key: a scenario always lands on the
 * same backend, so each backend's memory LRU only warms its own
 * shard of the keyspace.
 */

#ifndef GPM_ROUTER_RING_HH
#define GPM_ROUTER_RING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpm
{

class RendezvousRing
{
  public:
    static constexpr std::size_t npos =
        static_cast<std::size_t>(-1);

    /** Backend names ("host:port"); order does not affect
     *  placement — only the name bytes do. */
    explicit RendezvousRing(std::vector<std::string> names);

    std::size_t size() const { return names_.size(); }
    const std::string &name(std::size_t i) const
    {
        return names_[i];
    }

    /** The key's owner with every backend eligible. */
    std::size_t owner(std::uint64_t key) const;

    /**
     * The key's owner restricted to backends with
     * eligible[i] != 0 — the highest-scoring eligible backend,
     * or npos when none is. eligible.size() must equal size().
     */
    std::size_t owner(std::uint64_t key,
                      const std::vector<char> &eligible) const;

    /** All backends ordered by descending score for @p key (the
     *  per-key failover order). */
    std::vector<std::size_t> rank(std::uint64_t key) const;

    /** The HRW score of @p key against backend @p i. */
    std::uint64_t score(std::uint64_t key, std::size_t i) const;

  private:
    std::vector<std::string> names_;
    std::vector<std::uint64_t> seeds_;
};

} // namespace gpm

#endif // GPM_ROUTER_RING_HH
