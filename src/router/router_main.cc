/**
 * @file
 * gpm-router — the sharding proxy in front of N gpmd backends.
 *
 * Speaks the gpmd NDJSON protocol to clients and consistent-hashes
 * every scenario onto a backend (see router.hh and docs/SERVICE.md
 * "Scaling out"). SIGINT/SIGTERM trigger a clean draining shutdown:
 * accepted scenarios are answered, backends are left running, and
 * the process exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/socket.h>
#include <vector>

#include "router/router.hh"
#include "util/logging.hh"

namespace
{

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void
onSignal(int)
{
    g_stop = 1;
    if (g_listen_fd >= 0)
        ::shutdown(g_listen_fd, SHUT_RDWR);
}

struct RouterConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 7420;
    std::uint16_t metricsPort = 0;
    bool metricsPortSet = false;
    int listenBacklog = 1024;
    std::vector<gpm::RouterEndpoint> backends;
    gpm::RouterOptions opts;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --backends HOST:PORT[,HOST:PORT...] [options]\n"
        "  --backends LIST    gpmd backends to shard across "
        "(required)\n"
        "  --host ADDR        bind address (default 127.0.0.1)\n"
        "  --port N           TCP port; 0 = ephemeral (default "
        "7420)\n"
        "  --metrics-port N   serve GET /metrics and /healthz on\n"
        "                     this port; 0 = ephemeral (default:\n"
        "                     no metrics listener)\n"
        "  --reactor-threads N  epoll event loops for client\n"
        "                     sockets (default 1)\n"
        "  --backend-conns N  pooled connections per backend\n"
        "                     (default 2)\n"
        "  --listen-backlog N listen(2) backlog (default 1024)\n"
        "  --idle-timeout-ms N  reap idle client connections;\n"
        "                     0 = never (default 60000)\n"
        "  --write-timeout-ms N  per-write progress timeout;\n"
        "                     0 = none (default 30000)\n"
        "  --max-line-bytes N cap on a request line (default "
        "1 MiB)\n"
        "  --connect-timeout-ms N  backend connect() bound\n"
        "                     (default 1000)\n"
        "  --probe-interval-ms N  health-probe sweep period\n"
        "                     (default 50)\n"
        "  --probe-timeout-ms N  health-probe connect/read bound\n"
        "                     (default 1000)\n"
        "  --max-reroutes N   dispatch attempts per request before\n"
        "                     a retryable busy (default 8)\n"
        "  --breaker-window N backend breaker failure window\n"
        "                     (default 16)\n"
        "  --breaker-min-samples N  samples required before a\n"
        "                     breaker may open (default 8)\n"
        "  --breaker-threshold F  failure rate opening a backend\n"
        "                     breaker (default 0.5)\n"
        "  --breaker-cooldown-ms N  breaker open->half-open\n"
        "                     cooldown (default 250)\n",
        argv0);
}

std::vector<gpm::RouterEndpoint>
parseBackends(const std::string &list)
{
    std::vector<gpm::RouterEndpoint> eps;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::string tok = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!tok.empty()) {
            std::size_t colon = tok.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= tok.size())
                gpm::fatal("gpm-router: backend '%s' is not "
                           "HOST:PORT",
                           tok.c_str());
            int port = std::atoi(tok.c_str() + colon + 1);
            if (port <= 0 || port > 65535)
                gpm::fatal("gpm-router: backend '%s' has a bad "
                           "port",
                           tok.c_str());
            eps.push_back({tok.substr(0, colon),
                           static_cast<std::uint16_t>(port)});
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return eps;
}

RouterConfig
parseArgs(int argc, char **argv)
{
    RouterConfig cfg;
    auto need = [&](int i) -> const char * {
        if (i + 1 >= argc)
            gpm::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--backends")
            cfg.backends = parseBackends(need(i)), i++;
        else if (a == "--host")
            cfg.host = need(i), i++;
        else if (a == "--port")
            cfg.port =
                static_cast<std::uint16_t>(std::atoi(need(i))), i++;
        else if (a == "--metrics-port") {
            cfg.metricsPort =
                static_cast<std::uint16_t>(std::atoi(need(i)));
            cfg.metricsPortSet = true;
            i++;
        } else if (a == "--reactor-threads") {
            long v = std::atol(need(i));
            cfg.opts.reactorThreads =
                v > 0 ? static_cast<std::size_t>(v) : 1;
            i++;
        } else if (a == "--backend-conns") {
            long v = std::atol(need(i));
            cfg.opts.backendConns =
                v > 0 ? static_cast<std::size_t>(v) : 1;
            i++;
        } else if (a == "--listen-backlog") {
            int v = std::atoi(need(i));
            cfg.listenBacklog = v > 0 ? v : 1024;
            i++;
        } else if (a == "--idle-timeout-ms")
            cfg.opts.idleTimeoutMs = std::atoi(need(i)), i++;
        else if (a == "--write-timeout-ms")
            cfg.opts.writeTimeoutMs = std::atoi(need(i)), i++;
        else if (a == "--max-line-bytes")
            cfg.opts.maxLineBytes =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--connect-timeout-ms")
            cfg.opts.backendConnectTimeoutMs = std::atoi(need(i)),
            i++;
        else if (a == "--probe-interval-ms")
            cfg.opts.probeIntervalMs = std::atoi(need(i)), i++;
        else if (a == "--probe-timeout-ms")
            cfg.opts.probeTimeoutMs = std::atoi(need(i)), i++;
        else if (a == "--max-reroutes")
            cfg.opts.maxReroutes = std::atoi(need(i)), i++;
        else if (a == "--breaker-window")
            cfg.opts.breaker.window =
                static_cast<std::size_t>(std::atol(need(i))),
            i++;
        else if (a == "--breaker-min-samples")
            cfg.opts.breaker.minSamples =
                static_cast<std::size_t>(std::atol(need(i))),
            i++;
        else if (a == "--breaker-threshold")
            cfg.opts.breaker.failureThreshold = std::atof(need(i)),
            i++;
        else if (a == "--breaker-cooldown-ms")
            cfg.opts.breaker.cooldownMs = std::atof(need(i)), i++;
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else
            gpm::fatal("unknown option '%s' (try --help)",
                       a.c_str());
    }
    if (cfg.backends.empty())
        gpm::fatal("gpm-router: --backends is required (try "
                   "--help)");
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    RouterConfig cfg = parseArgs(argc, argv);

    auto listener = gpm::TcpListener::listenOn(
        cfg.host, cfg.port, cfg.listenBacklog);
    if (!listener.ok())
        gpm::fatal("gpm-router: %s", listener.error().c_str());

    gpm::GpmRouter router(cfg.backends,
                          std::move(listener.value()), cfg.opts);
    if (cfg.metricsPortSet) {
        auto mlistener = gpm::TcpListener::listenOn(
            cfg.host, cfg.metricsPort, 64);
        if (!mlistener.ok())
            gpm::fatal("gpm-router: metrics listener: %s",
                       mlistener.error().c_str());
        router.attachMetricsListener(
            std::move(mlistener.value()));
    }
    g_listen_fd = router.listenerFd();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("gpm-router: %zu backends\n", cfg.backends.size());
    std::printf("gpm-router: listening on %s:%u\n",
                cfg.host.c_str(),
                static_cast<unsigned>(router.port()));
    if (router.metricsPort() != 0)
        std::printf("gpm-router: metrics on %s:%u\n",
                    cfg.host.c_str(),
                    static_cast<unsigned>(router.metricsPort()));
    std::fflush(stdout);

    router.run();

    std::printf("gpm-router: draining\n");
    std::fflush(stdout);
    router.stopAndDrain();
    std::printf("gpm-router: shutdown complete\n");
    return 0;
}
