/**
 * @file
 * DiskCache — the persistent tier of the scenario service's result
 * cache. One file per entry under a cache directory, named by the
 * canonical scenario hash (`<16-hex>.gpmc`), holding a small header
 * (magic, payload length, CRC32) followed by the payload bytes.
 *
 * Durability and sharing: every write goes to a process-unique temp
 * file in the same directory and is rename()d into place, so the
 * rename is the commit point — a reader (this process, a restarted
 * daemon, or another daemon sharing the directory) either sees a
 * complete, checksummed entry or no entry at all, never a torn one.
 * Entries written by other processes are found by probing the
 * filesystem on an index miss, so a fleet sharing one directory
 * shares one served-scenario corpus.
 *
 * Integrity: a read whose magic, length or CRC does not match is
 * *quarantined* — renamed aside to `<name>.corrupt` (unlinked if
 * even that fails) and reported as a miss, so a damaged entry is
 * recomputed exactly once and never served.
 *
 * Capacity: an in-memory LRU (seeded from file mtimes at startup,
 * oldest first) bounds the directory's total bytes. The budget is
 * enforced on insertion only — put() evicts least-recently-used
 * entries until the directory fits — so a restart with a smaller
 * budget keeps existing entries readable until the next write.
 *
 * Fault injection (chaos testing, see fault.hh): `disk-read-corrupt`
 * makes a successful read behave as CRC-corrupt; `disk-write-fail`
 * fails a put before anything touches the disk; `disk-read-stall`
 * stalls a read for its delay-ms and counts it as an I/O failure.
 *
 * Failure-domain circuit breaker (see util/breaker.hh): read
 * outcomes feed a breaker — corrupt/stalled reads are failures,
 * verified reads and plain absences are successes. While the
 * breaker is open every get() is an immediate miss and every put()
 * is skipped (no per-request disk penalty; the service serves
 * memory-only); after the cooldown a single read probes the disk
 * and a healthy result closes the breaker again.
 *
 * Thread-safety: all methods are safe from any thread (one internal
 * mutex; file I/O happens under it — entries are small and the tier
 * sits behind the in-memory cache).
 */

#ifndef GPM_SERVICE_DISK_CACHE_HH
#define GPM_SERVICE_DISK_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/breaker.hh"

namespace gpm
{

/** Counters since construction (quarantines include real
 *  corruption and injected `disk-read-corrupt` fires). */
struct DiskCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t writeFailures = 0;
    std::size_t entries = 0;
    std::uint64_t bytes = 0; ///< tracked on-disk payload bytes
    /** Gets/puts refused by the open breaker (served memory-only). */
    std::uint64_t breakerRefusals = 0;
    /** Breaker transitions to open since construction. */
    std::uint64_t breakerOpens = 0;
    /** "closed" | "open" | "half-open". */
    const char *breakerState = "closed";
};

class DiskCache
{
  public:
    /**
     * @param dir       cache directory (created if missing)
     * @param maxBytes  LRU bound on tracked entry bytes; 0 means
     *                  unbounded
     * @param breakerOpts  read-path circuit breaker tuning
     */
    DiskCache(std::string dir, std::uint64_t maxBytes,
              BreakerOptions breakerOpts = BreakerOptions{});

    DiskCache(const DiskCache &) = delete;
    DiskCache &operator=(const DiskCache &) = delete;

    /**
     * Load the entry for @p hash into @p payload. Probes the
     * filesystem even on an index miss (another process may have
     * committed the entry), verifies the CRC, and quarantines
     * corrupt files. True only when a verified payload was read.
     */
    bool get(std::uint64_t hash, std::string &payload);

    /**
     * Persist @p payload under @p hash (write-temp-then-rename),
     * then evict least-recently-used entries until the tracked
     * bytes fit the budget. An entry already present just has its
     * recency bumped — payloads are content-deterministic per hash,
     * so rewriting would change nothing.
     */
    void put(std::uint64_t hash, const std::string &payload);

    DiskCacheStats stats() const;

    /** The read-path breaker (chaos tests poke its state). */
    const CircuitBreaker &readBreaker() const { return breaker; }

    const std::string &directory() const { return dir; }

    /** `<16-hex>.gpmc`, the entry file name for @p hash. */
    static std::string fileNameFor(std::uint64_t hash);

  private:
    struct Entry
    {
        std::uint64_t hash = 0;
        std::uint64_t bytes = 0;
    };

    void scanDirLocked();
    void touchLocked(std::uint64_t hash);
    void insertLocked(std::uint64_t hash, std::uint64_t bytes);
    void forgetLocked(std::uint64_t hash);
    void evictToBudgetLocked();
    void quarantineLocked(const std::string &path,
                          std::uint64_t hash);
    std::string pathFor(std::uint64_t hash) const;

    mutable std::mutex mtx;
    std::string dir;
    std::uint64_t maxBytes;

    /** Recency list, most recent at front. */
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index;
    std::uint64_t totalBytes = 0;

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t writeFailures = 0;
    std::uint64_t breakerRefusals = 0;

    CircuitBreaker breaker;
};

} // namespace gpm

#endif // GPM_SERVICE_DISK_CACHE_HH
