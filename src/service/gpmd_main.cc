/**
 * @file
 * gpmd — the global-power-management scenario daemon.
 *
 * Serves NDJSON scenario requests (see docs/SERVICE.md) over TCP on
 * top of one shared ProfileLibrary. SIGINT/SIGTERM trigger a clean
 * draining shutdown: the accept loop unblocks, queued scenario work
 * finishes, open connections are closed, and the process exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <sys/socket.h>
#include <thread>

#include "power/dvfs.hh"
#include "util/fault.hh"
#include "service/server.hh"
#include "service/service.hh"
#include "trace/phase_profile.hh"
#include "util/logging.hh"

namespace
{

/** Listener fd for the async-signal-safe shutdown handler. */
volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void
onSignal(int)
{
    g_stop = 1;
    if (g_listen_fd >= 0)
        ::shutdown(g_listen_fd, SHUT_RDWR);
}

struct DaemonConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 7421;
    /** Non-zero: serve GET /metrics and /healthz on this port
     *  (same reactor; 0 = no observability listener). */
    std::uint16_t metricsPort = 0;
    bool metricsPortSet = false;
    int listenBacklog = 1024;
    gpm::ServiceOptions service;
    gpm::ServerOptions server;
    double scale = 1.0;
    /** Non-empty: loadOrBuild() the whole suite against this
     *  legacy monolithic cache file at startup. Empty: build
     *  profiles lazily per combo. */
    std::string profileCache;
    /** Non-empty: per-workload content-addressed profile store
     *  directory; the suite is prewarmed into/from it in the
     *  background while the daemon serves. Wins over
     *  --profile-cache. */
    std::string profileCacheDir;
    /** Fault-injection spec (--fault / GPMD_FAULT); empty = off. */
    std::string faultSpec;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --host ADDR        bind address (default 127.0.0.1)\n"
        "  --port N           TCP port; 0 = ephemeral (default "
        "7421)\n"
        "  --metrics-port N   serve GET /metrics (Prometheus "
        "text)\n"
        "                     and /healthz on this port; 0 = "
        "ephemeral\n"
        "                     (default: no metrics listener)\n"
        "  --reactor-threads N  epoll event loops serving the\n"
        "                     sockets (default 1)\n"
        "  --listen-backlog N listen(2) backlog (default 1024,\n"
        "                     clamped by net.core.somaxconn)\n"
        "  --workers N        queue worker threads (default 2)\n"
        "  --queue N          queue high-water mark (default 64)\n"
        "  --cache N          LRU result-cache entries (default "
        "128)\n"
        "  --sweep-threads N  threads per sweep; 0 = auto\n"
        "  --cache-dir DIR    persistent result-cache directory\n"
        "                     (unset = memory-only caching)\n"
        "  --cache-disk-bytes N  disk-cache LRU byte budget\n"
        "                     (default 64 MiB; 0 = unbounded)\n"
        "  --scale S          workload length scale (default "
        "GPM_SCALE or 1.0)\n"
        "  --profile-cache P  prebuild all profiles into/from this\n"
        "                     file (default GPM_PROFILE_CACHE;\n"
        "                     unset = build lazily per request)\n"
        "  --profile-cache-dir DIR  per-workload content-addressed\n"
        "                     profile store (default\n"
        "                     GPM_PROFILE_CACHE_DIR); the suite is\n"
        "                     prewarmed in the background; wins\n"
        "                     over --profile-cache\n"
        "  --idle-timeout-ms N  reap connections idle this long;\n"
        "                     0 = never (default 60000)\n"
        "  --write-timeout-ms N  per-write progress timeout;\n"
        "                     0 = none (default 30000)\n"
        "  --max-line-bytes N cap on a request line (default 1 MiB;"
        "\n                     longer gets 'line_too_long')\n"
        "  --fault SPEC       arm fault injection (also GPMD_FAULT;"
        "\n                     e.g. worker-throw:0.5,seed:42 — see\n"
        "                     docs/ROBUSTNESS.md)\n"
        "  --overload-off     disable adaptive admission control\n"
        "                     (binary busy/accept only)\n"
        "  --overload-fair-share F  fraction of the queue one\n"
        "                     connection may hold (default 0.5)\n"
        "  --overload-headroom F  safety factor on predicted\n"
        "                     completion vs deadline (default 1.0)\n"
        "  --overload-degrade-depth F  queue-load fraction at/over\n"
        "                     which admissions are flagged\n"
        "                     overloaded (default 0.75)\n"
        "  --degrade-ladder B 1/0: substitute cheaper ladder\n"
        "                     solvers under overload or doomed\n"
        "                     deadlines (default 1)\n"
        "  --breaker-window N failure window of the disk/profile\n"
        "                     circuit breakers (default 16)\n"
        "  --breaker-threshold F  failure rate opening a breaker\n"
        "                     (default 0.5)\n"
        "  --breaker-cooldown-ms N  breaker open->half-open\n"
        "                     cooldown (default 250)\n",
        argv0);
}

DaemonConfig
parseArgs(int argc, char **argv)
{
    DaemonConfig cfg;
    cfg.server.idleTimeoutMs = 60000;
    cfg.server.writeTimeoutMs = 30000;
    if (const char *s = std::getenv("GPM_SCALE"); s && *s)
        cfg.scale = std::atof(s) > 0.0 ? std::atof(s) : 1.0;
    if (const char *s = std::getenv("GPM_PROFILE_CACHE"); s && *s)
        cfg.profileCache = s;
    if (const char *s = std::getenv("GPM_PROFILE_CACHE_DIR");
        s && *s)
        cfg.profileCacheDir = s;
    if (const char *s = std::getenv("GPMD_FAULT"); s && *s)
        cfg.faultSpec = s;

    auto need = [&](int i) -> const char * {
        if (i + 1 >= argc)
            gpm::fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--host")
            cfg.host = need(i), i++;
        else if (a == "--port")
            cfg.port =
                static_cast<std::uint16_t>(std::atoi(need(i))), i++;
        else if (a == "--metrics-port") {
            cfg.metricsPort =
                static_cast<std::uint16_t>(std::atoi(need(i)));
            cfg.metricsPortSet = true;
            i++;
        } else if (a == "--reactor-threads") {
            long v = std::atol(need(i));
            cfg.server.reactorThreads =
                v > 0 ? static_cast<std::size_t>(v) : 1;
            i++;
        } else if (a == "--listen-backlog") {
            int v = std::atoi(need(i));
            cfg.listenBacklog = v > 0 ? v : 1024;
            i++;
        }
        else if (a == "--workers")
            cfg.service.workers =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--queue")
            cfg.service.queueCapacity =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--cache")
            cfg.service.cacheCapacity =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--sweep-threads")
            cfg.service.sweepConcurrency =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--cache-dir")
            cfg.service.cacheDir = need(i), i++;
        else if (a == "--cache-disk-bytes")
            cfg.service.cacheDiskBytes = static_cast<std::uint64_t>(
                                             std::atoll(need(i))),
            i++;
        else if (a == "--scale") {
            double v = std::atof(need(i));
            cfg.scale = v > 0.0 ? v : 1.0;
            i++;
        } else if (a == "--profile-cache")
            cfg.profileCache = need(i), i++;
        else if (a == "--profile-cache-dir")
            cfg.profileCacheDir = need(i), i++;
        else if (a == "--idle-timeout-ms")
            cfg.server.idleTimeoutMs = std::atoi(need(i)), i++;
        else if (a == "--write-timeout-ms")
            cfg.server.writeTimeoutMs = std::atoi(need(i)), i++;
        else if (a == "--max-line-bytes")
            cfg.server.maxLineBytes =
                static_cast<std::size_t>(std::atol(need(i))), i++;
        else if (a == "--fault")
            cfg.faultSpec = need(i), i++;
        else if (a == "--overload-off")
            cfg.service.admission.enabled = false;
        else if (a == "--overload-fair-share")
            cfg.service.admission.fairShare = std::atof(need(i)),
            i++;
        else if (a == "--overload-headroom")
            cfg.service.admission.headroom = std::atof(need(i)),
            i++;
        else if (a == "--overload-degrade-depth")
            cfg.service.admission.degradeDepth =
                std::atof(need(i)),
            i++;
        else if (a == "--degrade-ladder")
            cfg.service.degradeLadder = std::atoi(need(i)) != 0,
            i++;
        else if (a == "--breaker-window")
            cfg.service.resultBreaker.window =
                static_cast<std::size_t>(std::atol(need(i))),
            i++;
        else if (a == "--breaker-threshold")
            cfg.service.resultBreaker.failureThreshold =
                std::atof(need(i)),
            i++;
        else if (a == "--breaker-cooldown-ms")
            cfg.service.resultBreaker.cooldownMs =
                std::atof(need(i)),
            i++;
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else
            gpm::fatal("unknown option '%s' (try --help)",
                       a.c_str());
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonConfig cfg = parseArgs(argc, argv);

    if (!cfg.faultSpec.empty()) {
        if (auto err = gpm::fault::arm(cfg.faultSpec))
            gpm::fatal("gpmd: --fault: %s", err->c_str());
        gpm::warn("gpmd: FAULT INJECTION ARMED (%s)",
                  cfg.faultSpec.c_str());
    }

    gpm::DvfsTable dvfs = gpm::DvfsTable::classic3();
    gpm::ProfileLibrary lib(dvfs, cfg.scale);
    // Prewarm in the background so the listener comes up
    // immediately: submits that need a still-building profile wait
    // on that profile's entry, not on the whole suite.
    std::thread prewarm;
    // A failed prewarm must not take the daemon down: catch
    // everything (parallelFor rethrows the first failed build) and
    // fall back to per-entry lazy builds in ProfileLibrary::get().
    auto prewarmThread = [&lib](auto warm) {
        return std::thread([&lib, warm] {
            try {
                warm(lib);
            } catch (const std::exception &e) {
                gpm::warn("gpmd: profile prewarm failed: %s "
                          "(profiles will build lazily per request)",
                          e.what());
            } catch (...) {
                gpm::warn("gpmd: profile prewarm failed (profiles "
                          "will build lazily per request)");
            }
        });
    };
    if (!cfg.profileCacheDir.empty()) {
        // The profile store shares the result cache's breaker
        // tuning: one --breaker-* knob set governs both failure
        // domains (they open and close independently).
        lib.attachStore(cfg.profileCacheDir,
                        cfg.service.resultBreaker);
        gpm::inform("gpmd: prewarming profiles (store %s)",
                    cfg.profileCacheDir.c_str());
        prewarm = prewarmThread(
            [](gpm::ProfileLibrary &l) { l.buildSuite(); });
    } else if (!cfg.profileCache.empty()) {
        std::string path = cfg.profileCache;
        if (cfg.scale != 1.0) {
            // Scaled runs get their own cache file (same naming as
            // the bench harnesses, so the caches are shared).
            char buf[64];
            std::snprintf(buf, sizeof(buf), ".s%g", cfg.scale);
            path += buf;
        }
        gpm::inform("gpmd: prewarming profiles (%s)", path.c_str());
        prewarm = prewarmThread([path](gpm::ProfileLibrary &l) {
            l.loadOrBuild(path);
        });
    }

    gpm::ScenarioService svc(lib, dvfs, cfg.service);
    auto listener = gpm::TcpListener::listenOn(
        cfg.host, cfg.port, cfg.listenBacklog);
    if (!listener.ok())
        gpm::fatal("gpmd: %s", listener.error().c_str());

    gpm::GpmServer server(svc, std::move(listener.value()),
                          cfg.server);
    if (cfg.metricsPortSet) {
        auto mlistener = gpm::TcpListener::listenOn(
            cfg.host, cfg.metricsPort, 64);
        if (!mlistener.ok())
            gpm::fatal("gpmd: metrics listener: %s",
                       mlistener.error().c_str());
        server.attachMetricsListener(std::move(mlistener.value()));
    }
    g_listen_fd = server.listenerFd();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("gpmd: listening on %s:%u\n", cfg.host.c_str(),
                static_cast<unsigned>(server.port()));
    if (server.metricsPort() != 0)
        std::printf("gpmd: metrics on %s:%u\n", cfg.host.c_str(),
                    static_cast<unsigned>(server.metricsPort()));
    std::fflush(stdout);

    server.run();

    std::printf("gpmd: draining\n");
    std::fflush(stdout);
    server.stopAndDrain();
    if (prewarm.joinable())
        prewarm.join();
    std::printf("gpmd: shutdown complete\n");
    return 0;
}
