/**
 * @file
 * Epoll reactor transport for gpmd — the 10k-connection accept/read
 * path underneath GpmServer.
 *
 * A ReactorPool runs N single-threaded event loops (default 1; see
 * ServerOptions::reactorThreads). Reactor 0 owns the listening
 * sockets and hands accepted connections round-robin to the pool;
 * every data socket is non-blocking and registered edge-triggered
 * (EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP). Each connection is a
 * small state machine:
 *
 *  - reads land straight in a LineScanner (line_scanner.hh), which
 *    frames NDJSON request lines in place and hands the protocol
 *    handler zero-copy string_view slices;
 *  - responses are appended (from any thread — worker completions
 *    included) to a per-connection output queue under one small
 *    mutex, preserving per-connection write sequencing, and flushed
 *    by the owning reactor with writev/sendmsg. A partial flush
 *    leaves the rest for the next EPOLLOUT edge — backpressure
 *    never blocks a thread;
 *  - idle reaping and write-progress deadlines are timer sweeps on
 *    the owning reactor (a connection owed responses is working,
 *    not idle — same contract as the old thread-per-connection
 *    reader).
 *
 * Cross-thread signalling is one eventfd per reactor: worker
 * threads completing a scenario enqueue the response and push the
 * connection onto the owner's wake queue; completions that fire
 * synchronously on a reactor thread (cache hits) short-circuit into
 * a local dirty list instead.
 *
 * Accept hardening: a transient EMFILE/ENFILE no longer kills the
 * accept loop — each accepting reactor holds a reserved spare fd
 * that is dropped to accept-and-shed the pending connection, then
 * reopened (the shed client sees a clean close and retries).
 *
 * The same pool can serve a second, HTTP-flavored listener for the
 * observability surface (/metrics, /healthz): those connections
 * parse a minimal request (request line + headers to the blank
 * line), get one handler-rendered response, and close after the
 * flush.
 *
 * Fault points (util/fault.hh) preserved from the threaded server:
 * accept-delay before adopting an accepted fd, read-drop and
 * conn-stall per framed request line, response-delay on every
 * enqueued response.
 */

#ifndef GPM_SERVICE_REACTOR_HH
#define GPM_SERVICE_REACTOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/line_scanner.hh"

namespace gpm
{

class Reactor;
class ReactorPool;

/** Reactor tuning; GpmServer maps ServerOptions onto this. */
struct ReactorOptions
{
    std::size_t threads = 1;
    /** Reap a connection with no received bytes and no pending or
     *  queued responses for this long; 0 = never. */
    int idleTimeoutMs = 0;
    /** Close a connection whose queued responses make no write
     *  progress for this long; 0 = wait forever. */
    int writeTimeoutMs = 0;
    /** Longest accepted NDJSON request line. */
    std::size_t maxLineBytes = 1 << 20;
};

/**
 * One connection's transport state. The owning reactor is the only
 * reader and the only thread that touches the socket; any thread
 * may send() a response line (sequenced by the out-queue mutex).
 */
class ReactorConn
    : public std::enable_shared_from_this<ReactorConn>
{
  public:
    enum class Kind
    {
        Ndjson, ///< request/response scenario protocol
        Http,   ///< one GET, one response, close (metrics surface)
    };

    /** Fairness identity: the 1-based accept ordinal (never 0 — 0
     *  is the exempt in-process caller). */
    std::uint64_t clientId() const { return clientId_; }

    /**
     * Queue one complete response line (terminating '\n' included)
     * and wake the owning reactor to flush it. Callable from any
     * thread; a line sent to a closed connection is dropped.
     */
    void send(std::string line);

    /** Responses dispatched but not yet enqueued via send(). */
    void addPending(std::size_t n);
    /** One dispatched response was enqueued (or abandoned). */
    void decPending(std::size_t n = 1);
    std::size_t pendingCount() const
    {
        return pending.load(std::memory_order_acquire);
    }

    /** A write failed; the reactor stops serving this connection. */
    bool isBroken() const
    {
        return broken.load(std::memory_order_relaxed);
    }

  private:
    friend class Reactor;
    friend class ReactorPool;

    /** Schedule a flush/close re-evaluation on the owner. */
    void wake();

    int fd = -1;
    Kind kind = Kind::Ndjson;
    std::uint64_t clientId_ = 0;
    Reactor *owner = nullptr;

    // ---- read side (owning reactor thread only) ----
    LineScanner in;
    bool readEof = false;
    bool stopReading = false;
    bool closeAfterFlush = false;
    bool httpGotRequestLine = false;
    std::string httpMethod, httpPath;
    std::chrono::steady_clock::time_point lastActivity{};
    std::chrono::steady_clock::time_point lastWriteOk{};

    // ---- write side (any thread, under mtx) ----
    std::mutex mtx;
    std::deque<std::string> out;
    std::size_t outHead = 0;   ///< bytes of out.front() sent
    bool closedForSend = false;
    bool flushQueued = false;  ///< already on the owner's dirty list

    std::atomic<std::size_t> pending{0};
    std::atomic<bool> broken{false};
};

/** What the protocol layer (GpmServer) plugs into the transport. */
class ReactorHandler
{
  public:
    virtual ~ReactorHandler() = default;

    /**
     * One framed NDJSON request line — a zero-copy view into the
     * connection's scan buffer, valid only for this call. Runs on a
     * reactor thread; dispatch long work and return.
     */
    virtual void onLine(const std::shared_ptr<ReactorConn> &conn,
                        std::string_view line) = 0;

    /** The one response line (with '\n') written before a
     *  connection that overran maxLineBytes is closed. */
    virtual std::string onLineTooLong() = 0;

    /**
     * Full HTTP response bytes (status line + headers + body) for
     * @p method @p path on the observability listener.
     */
    virtual std::string onHttpRequest(std::string_view method,
                                      std::string_view path) = 0;

    /** The NDJSON listener stopped accepting (shut down/closed). */
    virtual void onAcceptDone() = 0;
};

/** Aggregated transport counters (monotonic unless noted). */
struct ReactorStats
{
    std::uint64_t accepted = 0;      ///< connections ever accepted
    std::uint64_t openConnections = 0; ///< gauge: open right now
    std::uint64_t epollWakeups = 0;  ///< epoll_wait returns
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t ringHighWater = 0; ///< max scan-buffer fill seen
    std::uint64_t idleReaped = 0;
    std::uint64_t lineTooLong = 0;
    std::uint64_t emfileSheds = 0;   ///< conns shed via the spare fd
};

class ReactorPool
{
  public:
    ReactorPool(ReactorHandler &handler, ReactorOptions opts);
    /** shutdownAndJoin() if the owner did not. */
    ~ReactorPool();

    ReactorPool(const ReactorPool &) = delete;
    ReactorPool &operator=(const ReactorPool &) = delete;

    /** Register the NDJSON listening socket (not owned; made
     *  non-blocking). Call before start(). */
    void serveListener(int fd);
    /** Register the HTTP observability listener (not owned). */
    void serveHttpListener(int fd);

    /** Start the reactor threads. Idempotent. */
    void start();

    /**
     * Graceful teardown: stop reading new requests, flush every
     * queued response, close all connections, join the threads.
     * Idempotent. Callers drain the scenario service first so no
     * response is still being computed.
     */
    void shutdownAndJoin();

    ReactorStats stats() const;

  private:
    friend class Reactor;
    friend class ReactorConn;

    /** Round-robin home for a freshly accepted connection. */
    Reactor &reactorFor(std::uint64_t ordinal);

    /** Fire handler.onAcceptDone() exactly once. */
    void notifyAcceptDone();

    ReactorHandler &handler;
    ReactorOptions opts;
    std::vector<std::unique_ptr<Reactor>> reactors;
    std::atomic<std::uint64_t> acceptCounter{0};
    std::atomic<bool> acceptDoneFlag{false};
    bool started = false;
    bool joined = false;
    std::mutex lifecycleMtx;
};

} // namespace gpm

#endif // GPM_SERVICE_REACTOR_HH
