/**
 * @file
 * Thin POSIX TCP wrappers for the scenario service: a listener with
 * ephemeral-port support and a buffered line-oriented stream — just
 * enough socket surface for an NDJSON request/response protocol,
 * kept apart from the protocol logic (server.hh) so tests can drive
 * either side over loopback.
 *
 * Both types own their fd (move-only, closed on destruction).
 * shutdownListener()/shutdownBoth() only call ::shutdown(), which
 * is async-signal-safe — gpmd's SIGINT/SIGTERM handler uses that to
 * unblock the accept loop without touching non-reentrant state.
 *
 * Deadlines: a TcpStream carries optional poll()-based read/write
 * timeouts. The read timeout bounds the wait for the *next* byte
 * (so it measures peer idleness, not total line latency); the write
 * timeout bounds each wait for the socket to accept more bytes. A
 * stream with both at 0 (the default) blocks forever, exactly as
 * before.
 */

#ifndef GPM_SERVICE_NET_HH
#define GPM_SERVICE_NET_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "util/expected.hh"

namespace gpm
{

class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }
    TcpListener(TcpListener &&o) noexcept;
    TcpListener &operator=(TcpListener &&o) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind + listen on @p host:@p port (IPv4 dotted quad; port 0
     * picks an ephemeral port — read the outcome from port()).
     */
    static Expected<TcpListener, std::string>
    listenOn(const std::string &host, std::uint16_t port,
             int backlog = 64);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    std::uint16_t port() const { return port_; }

    /**
     * Block for the next connection; returns the connected fd, or
     * -1 once the listener has been shut down or closed.
     */
    int acceptFd();

    /** Unblock acceptFd() (async-signal-safe). */
    void shutdownListener();

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

class TcpStream
{
  public:
    TcpStream() = default;
    /** Adopt a connected fd (from acceptFd()). */
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream() { close(); }
    TcpStream(TcpStream &&o) noexcept;
    TcpStream &operator=(TcpStream &&o) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /** Connect to @p host:@p port (IPv4 dotted quad). */
    static Expected<TcpStream, std::string>
    connectTo(const std::string &host, std::uint16_t port);

    bool valid() const { return fd_ >= 0; }

    /** Why readLine() stopped — EOF, timeouts and framing overruns
     *  are distinct outcomes, not one conflated `false`. */
    enum class ReadStatus
    {
        Line,    ///< a complete line was read
        Eof,     ///< orderly close before a full line arrived
        Timeout, ///< read timeout expired waiting for bytes
        TooLong, ///< line exceeded max_len (buffer discarded; the
                 ///< connection can no longer be framed)
        Error,   ///< recv() failed
    };

    /** Bound the wait for each received byte; 0 = wait forever. */
    void setReadTimeoutMs(int ms) { readTimeoutMs = ms; }
    /** Bound each wait for send() readiness; 0 = wait forever. */
    void setWriteTimeoutMs(int ms) { writeTimeoutMs = ms; }

    /**
     * Read up to the next '\n' (consumed, not returned; a trailing
     * '\r' is stripped). Lines longer than @p max_len yield
     * TooLong, and the receive buffer is discarded — line framing
     * is lost, so the caller should answer once and close. Buffered
     * data never grows past max_len plus one receive chunk.
     */
    ReadStatus readLine(std::string &line,
                        std::size_t max_len = 1 << 20);

    /** Write all of @p data (SIGPIPE suppressed). False on error
     *  or write timeout. */
    bool writeAll(std::string_view data);

    /** Half-close both directions (async-signal-safe). */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
    int readTimeoutMs = 0;
    int writeTimeoutMs = 0;
    std::string rdbuf;
};

} // namespace gpm

#endif // GPM_SERVICE_NET_HH
