/**
 * @file
 * Minimal strict JSON layer for the scenario service — no external
 * dependencies.
 *
 * Value is a tagged tree (null/bool/number/string/array/object);
 * objects preserve insertion order and never hold duplicate keys
 * (set() replaces, the parser rejects). parse() is a strict RFC
 * 8259 recursive-descent parser: no comments, no trailing commas,
 * full string escapes including surrogate pairs, a nesting-depth
 * limit, and nothing but whitespace allowed after the value.
 *
 * Two serializers:
 *  - dump()      compact, members in insertion order;
 *  - canonical() compact, object keys byte-sorted at every level.
 * Both print numbers with formatDouble() — the shortest decimal
 * form that strtod()s back to the identical double — so equal
 * values always serialize to equal bytes and every number survives
 * a serialize/parse round trip bit-exactly. canonicalHash() (FNV-1a
 * over canonical()) is the scenario cache key.
 */

#ifndef GPM_SERVICE_JSON_HH
#define GPM_SERVICE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/expected.hh"

namespace gpm::json
{

class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    using Member = std::pair<std::string, Value>;
    using Array = std::vector<Value>;
    using Object = std::vector<Member>;

    Value() : v(nullptr) {}
    Value(std::nullptr_t) : v(nullptr) {}
    Value(bool b) : v(b) {}
    Value(double d) : v(d) {}
    Value(int i) : v(static_cast<double>(i)) {}
    Value(unsigned i) : v(static_cast<double>(i)) {}
    Value(long i) : v(static_cast<double>(i)) {}
    Value(unsigned long i) : v(static_cast<double>(i)) {}
    Value(long long i) : v(static_cast<double>(i)) {}
    Value(unsigned long long i) : v(static_cast<double>(i)) {}
    Value(const char *s) : v(std::string(s)) {}
    Value(std::string s) : v(std::move(s)) {}

    /** An empty array value. */
    static Value
    array()
    {
        Value x;
        x.v = Array{};
        return x;
    }

    /** An empty object value. */
    static Value
    object()
    {
        Value x;
        x.v = Object{};
        return x;
    }

    Type type() const;
    bool isNull() const { return type() == Type::Null; }
    bool isBool() const { return type() == Type::Bool; }
    bool isNumber() const { return type() == Type::Number; }
    bool isString() const { return type() == Type::String; }
    bool isArray() const { return type() == Type::Array; }
    bool isObject() const { return type() == Type::Object; }
    /** null, bool, number or string. */
    bool isScalar() const { return !isArray() && !isObject(); }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Array append (value must be an array). */
    void push(Value item);

    /** Object append-or-replace (value must be an object). */
    void set(std::string key, Value item);

    /** Object member lookup; nullptr when absent (or not an
     *  object). */
    const Value *find(std::string_view key) const;

    /** Compact serialization, insertion order. */
    std::string dump() const;

    /** Compact serialization with byte-sorted object keys. */
    std::string canonical() const;

    /** FNV-1a 64-bit hash of canonical(). */
    std::uint64_t canonicalHash() const;

  private:
    void write(std::string &out, bool sorted) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        v;
};

/** Where and why parsing failed. */
struct ParseError
{
    std::size_t offset = 0;
    std::string message;
};

/** Parse exactly one JSON value spanning all of @p text. */
Expected<Value, ParseError> parse(std::string_view text);

/**
 * Shortest "%.Ng" printf form of @p d that strtod()s back to the
 * bit-identical double; "null" for non-finite inputs (which valid
 * JSON cannot carry).
 */
std::string formatDouble(double d);

} // namespace gpm::json

#endif // GPM_SERVICE_JSON_HH
