/**
 * @file
 * LineScanner — the reactor's zero-copy NDJSON framing buffer.
 *
 * One growable contiguous byte buffer per connection: recv() lands
 * directly in writePtr()/commit() tail space, and next() scans for
 * '\n' *in place*, handing out std::string_view slices of the
 * buffer — no per-line std::string is materialized until a request
 * is actually admitted (the JSON parser reads the view directly).
 *
 * Layout is [head, tail) live bytes inside a vector; consuming a
 * line just advances head, and the buffer is compacted (one
 * memmove) only when the tail runs out of room — so a deeply
 * pipelined connection never pays the old rdbuf erase(0, n) shift
 * per line, and a quiet one never pays anything.
 *
 * A returned view is valid until the next writePtr()/commit()/
 * reset() call: the reactor fully drains the scan loop before it
 * reads again, which is exactly that window.
 *
 * Framing contract (mirrors the old TcpStream::readLine):
 *  - '\n' terminates a line and is consumed, never returned;
 *  - one trailing '\r' is stripped (CRLF tolerance);
 *  - a line longer than the maxLine passed to next() yields
 *    Overflow; the caller answers once and closes, then calls
 *    reset() — framing cannot be recovered past an overrun. Since
 *    the reactor reads in chunks and scans after every commit, the
 *    buffer never grows past maxLine plus one receive chunk.
 */

#ifndef GPM_SERVICE_LINE_SCANNER_HH
#define GPM_SERVICE_LINE_SCANNER_HH

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace gpm
{

class LineScanner
{
  public:
    explicit LineScanner(std::size_t initial_capacity = 4096)
        : buf(initial_capacity)
    {
    }

    enum class Scan
    {
        Line,     ///< a complete line is in `line`
        NeedMore, ///< no '\n' buffered yet
        Overflow, ///< the partial line exceeds maxLine
    };

    /**
     * Writable tail space of at least @p min bytes (compacting or
     * growing as needed). Call commit(n) after receiving n bytes
     * into it. Invalidates previously returned views.
     */
    char *
    writePtr(std::size_t min)
    {
        if (buf.size() - tail < min)
            makeRoom(min);
        return buf.data() + tail;
    }

    /** Bytes available at writePtr() without another makeRoom. */
    std::size_t
    writeCapacity() const
    {
        return buf.size() - tail;
    }

    /** Record @p n bytes received into writePtr(). */
    void
    commit(std::size_t n)
    {
        tail += n;
        if (tail - head > highWaterMark)
            highWaterMark = tail - head;
    }

    /**
     * Scan for the next complete line. On Scan::Line, @p line views
     * this buffer (valid until writePtr/commit/reset) with the
     * terminating '\n' — and one trailing '\r' — stripped.
     */
    Scan
    next(std::string_view &line, std::size_t maxLine)
    {
        // Resume scanning where the last NeedMore left off: bytes
        // in [head, scanned) are known '\n'-free.
        const char *base = buf.data();
        const char *nl = static_cast<const char *>(
            std::memchr(base + scanned, '\n', tail - scanned));
        if (!nl) {
            scanned = tail;
            return tail - head > maxLine ? Scan::Overflow
                                         : Scan::NeedMore;
        }
        std::size_t end = static_cast<std::size_t>(nl - base);
        if (end - head > maxLine) {
            // The line is complete but over the cap: same outcome
            // as a never-ending one.
            return Scan::Overflow;
        }
        std::size_t len = end - head;
        if (len > 0 && base[head + len - 1] == '\r')
            len--;
        line = std::string_view(base + head, len);
        head = end + 1;
        scanned = head;
        return Scan::Line;
    }

    /** Unconsumed bytes currently buffered. */
    std::size_t
    buffered() const
    {
        return tail - head;
    }

    /** Largest buffered() ever observed (ring high-water). */
    std::size_t
    highWater() const
    {
        return highWaterMark;
    }

    /** Discard everything (after an overflow) and release the
     *  oversized allocation. */
    void
    reset()
    {
        head = tail = scanned = 0;
        buf.clear();
        buf.shrink_to_fit();
        buf.resize(4096);
    }

  private:
    void
    makeRoom(std::size_t min)
    {
        std::size_t live = tail - head;
        if (head > 0) {
            // Compact: one memmove reclaims every consumed byte.
            std::memmove(buf.data(), buf.data() + head, live);
            scanned -= head;
            tail = live;
            head = 0;
        }
        if (buf.size() - tail < min) {
            std::size_t want = tail + min;
            std::size_t cap = buf.size() ? buf.size() : 4096;
            while (cap < want)
                cap *= 2;
            buf.resize(cap);
        }
    }

    std::vector<char> buf;
    std::size_t head = 0;    ///< first live byte
    std::size_t tail = 0;    ///< one past the last live byte
    std::size_t scanned = 0; ///< bytes [head, scanned) are '\n'-free
    std::size_t highWaterMark = 0;
};

} // namespace gpm

#endif // GPM_SERVICE_LINE_SCANNER_HH
