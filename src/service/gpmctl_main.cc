/**
 * @file
 * gpmctl — command-line client for gpmd.
 *
 *   gpmctl [--host H] [--port P] [retry options] ping
 *   gpmctl [--host H] [--port P] [retry options] stats
 *   gpmctl [--host H] [--port P] [retry options] shutdown
 *   gpmctl [--host H] [--port P] [retry options] submit \
 *       --combo mcf,crafty [or --combo-key 2way1] \
 *       --policy MaxBIPS \
 *       --budget 0.8 [or --budgets 0.7,0.85,1.0] \
 *       [--static-fit peak|average] [--explore-us X] \
 *       [--delta-us X] [--contention] [--sensor-noise X] \
 *       [--deadline-ms X]
 *   gpmctl submit --cluster-chip COMBO:POLICY[:COUNT] \
 *       [--cluster-chip ...] --policy MaxBIPS-DP --budget 0.75 \
 *       [--epochs N] [--epoch-us X] [--levels K]
 *   gpmctl submit --json '<scenario object>'
 *   gpmctl submit-batch @FILE.ndjson
 *
 * Cluster submits describe a rack: each --cluster-chip adds COUNT
 * chips (default 1) running COMBO (a combination key like "2way1",
 * a single benchmark, or a comma list) under the inner policy
 * POLICY; --policy then names the facility-level arbitration
 * kernel. See docs/SERVICE.md for the scenario schema.
 *
 * submit-batch reads one scenario object per line from FILE, sends
 * them as a single submit_batch request, and prints one result line
 * per scenario on stdout in input order (the server answers in
 * completion order; gpmctl reorders by "index"). Exit 0 only when
 * every scenario succeeded. Retries (below) re-send the whole
 * batch, never a subset, and nothing is printed until the full
 * response set arrived — a mid-stream retry cannot duplicate
 * output. --max-inflight N caps how many scenarios one request
 * keeps in flight: a larger file is sent as consecutive windows of
 * N, each retried as a unit, results still printed in input order
 * with every line's "index" shifted back to its input-file
 * position. This keeps one gpmctl from monopolizing the server's
 * per-client queue share.
 *
 * Retry options (see docs/ROBUSTNESS.md): --retries N (additional
 * attempts after the first, default 0), --retry-base-ms B (backoff
 * scale, default 50), --deadline MS (overall wall-clock budget
 * across all attempts, 0 = none), --timeout-ms T (per-attempt
 * response timeout, 0 = none), --seed S (backoff jitter seed,
 * default 1 — same seed, same delays). Retries fire on connect
 * failure, transport failure/timeout, and transient "busy" /
 * "rejected_overload" / "internal_error" responses, with
 * exponential backoff and jitter, all bounded by --deadline. A
 * --deadline by itself funds retries past the --retries count (so
 * a connection refused while the daemon is still starting keeps
 * backing off until the budget runs out, instead of dying on the
 * first attempt). A rejection carrying "retryAfterMs" raises the
 * next delay to at least that hint — the server knows its own
 * drain rate.
 *
 * Prints the server's one-line JSON response on stdout. Exit codes:
 * 0 = ok:true, 2 = server returned an error, 1 = usage or
 * transport failure (including deadline exhaustion).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/json.hh"
#include "service/net.hh"
#include "trace/workload.hh"
#include "util/backoff.hh"

namespace
{

using gpm::json::Value;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gpmctl [--host H[,H2[:P2],...]] [--port P] "
        "[retry options] "
        "<ping|stats|shutdown|submit|submit-batch> "
        "[submit options | @FILE.ndjson]\n"
        "  --host takes a comma-separated HOST[:PORT] list; "
        "retries rotate\n"
        "  through the endpoints (entries without :PORT use "
        "--port)\n"
        "retry options: [--retries N] [--retry-base-ms B] "
        "[--deadline MS]\n"
        "  [--timeout-ms T] [--seed S] [--max-inflight N]\n"
        "submit options: --combo a,b | --combo-key KEY; "
        "--policy NAME\n"
        "  --budget F | --budgets F1,F2,...\n"
        "  [--static-fit peak|average] [--explore-us X] "
        "[--delta-us X]\n"
        "  [--contention] [--sensor-noise X] [--deadline-ms X] "
        "| --json SCENARIO\n"
        "cluster submit: --cluster-chip COMBO:POLICY[:COUNT] "
        "(repeatable)\n"
        "  [--epochs N] [--epoch-us X] [--levels K]\n");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "gpmctl: %s\n", msg.c_str());
    std::exit(1);
}

/** A --cluster-chip COMBO's JSON form: a comma list becomes an
 *  explicit array, a known combination key passes through as a
 *  string for the server to resolve, and a bare benchmark name
 *  becomes a one-element array. */
Value
chipComboJson(const std::string &combo)
{
    std::vector<std::string> names = splitCommas(combo);
    if (names.size() == 1 && gpm::findCombination(names[0]))
        return Value(names[0]);
    Value arr = Value::array();
    for (const auto &n : names)
        arr.push(n);
    return arr;
}

/** Parse one --cluster-chip COMBO:POLICY[:COUNT] into a chip
 *  object. */
Value
parseChipArg(const std::string &arg)
{
    std::size_t p1 = arg.find(':');
    if (p1 == std::string::npos || p1 == 0)
        die("--cluster-chip needs COMBO:POLICY[:COUNT], got '" +
            arg + "'");
    std::size_t p2 = arg.find(':', p1 + 1);
    std::string combo = arg.substr(0, p1);
    std::string chip_policy = arg.substr(
        p1 + 1, p2 == std::string::npos ? std::string::npos
                                        : p2 - p1 - 1);
    if (chip_policy.empty())
        die("--cluster-chip needs COMBO:POLICY[:COUNT], got '" +
            arg + "'");
    Value chip = Value::object();
    chip.set("combo", chipComboJson(combo));
    chip.set("policy", chip_policy);
    if (p2 != std::string::npos) {
        long count = std::atol(arg.c_str() + p2 + 1);
        if (count < 1)
            die("--cluster-chip COUNT must be >= 1 in '" + arg +
                "'");
        chip.set("count", static_cast<double>(count));
    }
    return chip;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 7421;
    std::string command;

    // Endpoint rotation (--host a,b,c): each retryable failure
    // moves to the next endpoint, so a dead daemon or a router
    // answering only open-breaker refusals is routed around
    // client-side while the usual retry budget funds the attempts.
    struct Endpoint
    {
        std::string host;
        std::uint16_t port;
    };
    std::vector<Endpoint> endpoints;
    std::size_t ep_idx = 0;

    // Scenario pieces for `submit`.
    std::string combo_arg, combo_key, policy, budget_arg,
        budgets_arg;
    std::string static_fit, json_arg, batch_file;
    double explore_us = -1.0, delta_us = -1.0, sensor_noise = -1.0;
    double request_deadline_ms = -1.0;
    bool contention = false;
    std::vector<std::string> cluster_chips;
    long cluster_epochs = -1, cluster_levels = -1;
    double cluster_epoch_us = -1.0;

    // Retry policy.
    long retries = 0;
    double retry_base_ms = 50.0;
    double deadline_ms = 0.0;
    double timeout_ms = 0.0;
    unsigned long long seed = 1;
    long max_inflight = 0; // 0 = the whole batch in one request

    auto need = [&](int i) -> const char * {
        if (i + 1 >= argc)
            die(std::string(argv[i]) + " needs a value");
        return argv[i + 1];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--host")
            host = need(i), i++;
        else if (a == "--port")
            port = static_cast<std::uint16_t>(std::atoi(need(i))),
            i++;
        else if (a == "--combo")
            combo_arg = need(i), i++;
        else if (a == "--combo-key")
            combo_key = need(i), i++;
        else if (a == "--policy")
            policy = need(i), i++;
        else if (a == "--budget")
            budget_arg = need(i), i++;
        else if (a == "--budgets")
            budgets_arg = need(i), i++;
        else if (a == "--static-fit")
            static_fit = need(i), i++;
        else if (a == "--explore-us")
            explore_us = std::atof(need(i)), i++;
        else if (a == "--delta-us")
            delta_us = std::atof(need(i)), i++;
        else if (a == "--sensor-noise")
            sensor_noise = std::atof(need(i)), i++;
        else if (a == "--deadline-ms")
            request_deadline_ms = std::atof(need(i)), i++;
        else if (a == "--contention")
            contention = true;
        else if (a == "--cluster-chip")
            cluster_chips.push_back(need(i)), i++;
        else if (a == "--epochs")
            cluster_epochs = std::atol(need(i)), i++;
        else if (a == "--epoch-us")
            cluster_epoch_us = std::atof(need(i)), i++;
        else if (a == "--levels")
            cluster_levels = std::atol(need(i)), i++;
        else if (a == "--json")
            json_arg = need(i), i++;
        else if (a == "--retries")
            retries = std::atol(need(i)), i++;
        else if (a == "--retry-base-ms")
            retry_base_ms = std::atof(need(i)), i++;
        else if (a == "--deadline")
            deadline_ms = std::atof(need(i)), i++;
        else if (a == "--timeout-ms")
            timeout_ms = std::atof(need(i)), i++;
        else if (a == "--seed")
            seed = std::strtoull(need(i), nullptr, 10), i++;
        else if (a == "--max-inflight")
            max_inflight = std::atol(need(i)), i++;
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-')
            die("unknown option '" + a + "' (try --help)");
        else if (command.empty())
            command = a;
        else if (command == "submit-batch" && batch_file.empty() &&
                 a[0] == '@')
            batch_file = a.substr(1);
        else
            die("unexpected argument '" + a + "'");
    }

    if (command != "ping" && command != "stats" &&
        command != "shutdown" && command != "submit" &&
        command != "submit-batch") {
        usage();
        return 1;
    }

    // --host may be a comma-separated HOST[:PORT] list; entries
    // without a port inherit --port (parsed here, after the arg
    // loop, so --host and --port order does not matter).
    for (const auto &tok : splitCommas(host)) {
        if (tok.empty())
            continue;
        std::size_t colon = tok.rfind(':');
        if (colon != std::string::npos && colon != 0 &&
            colon + 1 < tok.size() &&
            tok.find_first_not_of("0123456789", colon + 1) ==
                std::string::npos) {
            int p = std::atoi(tok.c_str() + colon + 1);
            if (p <= 0 || p > 65535)
                die("bad port in endpoint '" + tok + "'");
            endpoints.push_back({tok.substr(0, colon),
                                 static_cast<std::uint16_t>(p)});
        } else {
            endpoints.push_back({tok, port});
        }
    }
    if (endpoints.empty())
        die("--host named no endpoints");

    Value request = Value::object();
    request.set("id", "gpmctl");
    request.set("verb", command == "submit-batch" ? "submit_batch"
                                                  : command);

    if (command == "submit") {
        Value scenario = Value::object();
        if (!json_arg.empty()) {
            auto parsed = gpm::json::parse(json_arg);
            if (!parsed.ok())
                die("--json: " + parsed.error().message +
                    " at offset " +
                    std::to_string(parsed.error().offset));
            scenario = parsed.value();
        } else {
            if ((combo_arg.empty() && combo_key.empty() &&
                 cluster_chips.empty()) ||
                policy.empty() ||
                (budget_arg.empty() && budgets_arg.empty()))
                die("submit needs --combo/--combo-key/"
                    "--cluster-chip, --policy and "
                    "--budget/--budgets (or --json)");
            if (!cluster_chips.empty()) {
                if (!combo_arg.empty() || !combo_key.empty())
                    die("--cluster-chip excludes --combo/"
                        "--combo-key");
                Value chips = Value::array();
                for (const auto &arg : cluster_chips)
                    chips.push(parseChipArg(arg));
                Value cluster = Value::object();
                cluster.set("chips", std::move(chips));
                if (cluster_epochs > 0)
                    cluster.set("epochs",
                                static_cast<double>(cluster_epochs));
                if (cluster_epoch_us > 0.0)
                    cluster.set("epochUs", cluster_epoch_us);
                if (cluster_levels > 0)
                    cluster.set("levels",
                                static_cast<double>(cluster_levels));
                scenario.set("cluster", std::move(cluster));
            } else if (!combo_key.empty()) {
                // Table 2 keys like "2way1" pass through as a
                // string for the server to resolve.
                scenario.set("combo", combo_key);
            } else {
                Value combo = Value::array();
                for (const auto &name : splitCommas(combo_arg))
                    combo.push(name);
                scenario.set("combo", std::move(combo));
            }
            scenario.set("policy", policy);
            if (!budget_arg.empty())
                scenario.set("budget", std::atof(budget_arg.c_str()));
            if (!budgets_arg.empty()) {
                Value budgets = Value::array();
                for (const auto &b : splitCommas(budgets_arg))
                    budgets.push(std::atof(b.c_str()));
                scenario.set("budgets", std::move(budgets));
            }
            if (!static_fit.empty())
                scenario.set("staticFit", static_fit);
            if (request_deadline_ms >= 0.0)
                scenario.set("deadlineMs", request_deadline_ms);
            Value sim = Value::object();
            if (explore_us > 0.0)
                sim.set("exploreUs", explore_us);
            if (delta_us > 0.0)
                sim.set("deltaSimUs", delta_us);
            if (sensor_noise >= 0.0)
                sim.set("sensorNoise", sensor_noise);
            if (contention)
                sim.set("contention", true);
            if (!sim.asObject().empty())
                scenario.set("sim", std::move(sim));
        }
        request.set("scenario", std::move(scenario));
    }

    std::vector<Value> batch_scenarios;
    std::size_t batch_count = 0;
    if (command == "submit-batch") {
        if (batch_file.empty())
            die("submit-batch needs an @FILE.ndjson argument");
        std::FILE *f = std::fopen(batch_file.c_str(), "rb");
        if (!f)
            die("cannot open '" + batch_file + "'");
        std::string text;
        char chunk[1 << 14];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            text.append(chunk, got);
        bool read_ok = !std::ferror(f);
        std::fclose(f);
        if (!read_ok)
            die("cannot read '" + batch_file + "'");
        // One scenario object per non-blank line; reject the whole
        // file on the first malformed line rather than sending a
        // batch the server will reject anyway.
        std::size_t line_no = 0, pos = 0;
        while (pos < text.size()) {
            std::size_t nl = text.find('\n', pos);
            std::string ln = text.substr(
                pos, nl == std::string::npos ? std::string::npos
                                             : nl - pos);
            pos = nl == std::string::npos ? text.size() : nl + 1;
            line_no++;
            if (!ln.empty() && ln.back() == '\r')
                ln.pop_back();
            if (ln.find_first_not_of(" \t") == std::string::npos)
                continue;
            auto parsed = gpm::json::parse(ln);
            if (!parsed.ok())
                die(batch_file + ":" + std::to_string(line_no) +
                    ": " + parsed.error().message);
            batch_scenarios.push_back(std::move(parsed.value()));
            batch_count++;
        }
        if (batch_count == 0)
            die("'" + batch_file + "' holds no scenarios");
    }

    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [&] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    gpm::BackoffSchedule backoff(retry_base_ms,
                                 /*cap_ms=*/2000.0, seed);
    auto transientCode = [](const std::string &code) {
        return code == "busy" || code == "rejected_overload" ||
            code == "internal_error";
    };
    // A transient failure is retried while either budget is open:
    // the --retries attempt count, or wall-clock left on
    // --deadline. The deadline alone funds retries so that e.g. a
    // connection refused during daemon startup rides the seeded
    // backoff instead of being permanently fatal.
    auto canRetry = [&](long attempt) {
        return attempt < retries ||
            (deadline_ms > 0.0 && elapsed_ms() < deadline_ms);
    };
    /** The server's retryAfterMs hint from an "error" object
     *  (0 = none). */
    auto retryHintOf = [](const Value *err) {
        const Value *h = err ? err->find("retryAfterMs") : nullptr;
        return h && h->isNumber() ? h->asNumber() : 0.0;
    };

    // One request's full send/retry cycle. For submit_batch
    // requests @p expect is the scenario count (responses are
    // buffered, sorted by index and printed together); 0 means a
    // single-response verb. Returns the exit code; transport
    // failures past the retry budget die(1) from inside.
    auto runWire = [&](const std::string &wire,
                       std::size_t expect,
                       std::size_t index_base) -> int {
        for (long attempt = 0;; attempt++) {
            double remaining_ms = deadline_ms > 0.0
                ? deadline_ms - elapsed_ms()
                : -1.0;
            if (deadline_ms > 0.0 && remaining_ms <= 0.0)
                die("deadline of " + std::to_string(deadline_ms) +
                    " ms exhausted after " +
                    std::to_string(attempt) + " attempt(s)");

            std::string failure;
            std::string response;
            bool got_response = false;
            double retry_floor_ms = 0.0;

            const Endpoint &ep =
                endpoints[ep_idx % endpoints.size()];
            auto conn = gpm::TcpStream::connectTo(ep.host, ep.port);
            if (!conn.ok()) {
                failure = conn.error();
            } else {
                gpm::TcpStream stream = std::move(conn.value());
                // Bound each attempt by --timeout-ms and what is
                // left of the overall --deadline, whichever is
                // tighter.
                double t = timeout_ms;
                if (remaining_ms > 0.0 &&
                    (t <= 0.0 || remaining_ms < t))
                    t = remaining_ms;
                if (t > 0.0) {
                    int ms = t < 1.0 ? 1 : static_cast<int>(t);
                    stream.setReadTimeoutMs(ms);
                    stream.setWriteTimeoutMs(ms);
                }
                if (!stream.writeAll(wire)) {
                    failure = "failed to send request";
                } else if (expect > 0) {
                    // Buffer the full response set before printing
                    // anything: a retry re-sends the whole batch,
                    // so partial output from a failed attempt would
                    // be duplicated.
                    std::vector<std::pair<std::size_t, std::string>>
                        results;
                    std::string batch_error;
                    while (results.size() < expect &&
                           failure.empty() && batch_error.empty()) {
                        std::string ln;
                        switch (stream.readLine(ln)) {
                        case gpm::TcpStream::ReadStatus::Line: {
                            auto parsed = gpm::json::parse(ln);
                            if (!parsed.ok()) {
                                failure =
                                    "unparseable response line";
                                break;
                            }
                            const Value *idx =
                                parsed.value().find("index");
                            if (!idx || !idx->isNumber()) {
                                // Batch-level line: the
                                // one-and-only response (admission
                                // error).
                                batch_error = ln;
                                break;
                            }
                            results.emplace_back(
                                static_cast<std::size_t>(
                                    idx->asNumber()),
                                ln);
                            break;
                        }
                        case gpm::TcpStream::ReadStatus::Timeout:
                            failure = "timed out waiting for "
                                      "batch responses";
                            break;
                        default:
                            failure = "connection closed mid-batch";
                        }
                    }
                    if (!batch_error.empty()) {
                        auto parsed = gpm::json::parse(batch_error);
                        const Value *err =
                            parsed.value().find("error");
                        std::string code;
                        if (err && err->find("code") &&
                            err->find("code")->isString())
                            code = err->find("code")->asString();
                        if (!transientCode(code) ||
                            !canRetry(attempt)) {
                            std::printf("%s\n",
                                        batch_error.c_str());
                            return 2;
                        }
                        retry_floor_ms = retryHintOf(err);
                        failure =
                            "server rejected the batch with '" +
                            code + "'";
                    } else if (failure.empty()) {
                        // Full set received: print in input order,
                        // exit non-zero if any scenario failed.
                        std::sort(results.begin(), results.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.first < b.first;
                                  });
                        int rc = 0;
                        for (const auto &r : results) {
                            auto parsed =
                                gpm::json::parse(r.second);
                            const Value *ok = parsed.ok()
                                ? parsed.value().find("ok")
                                : nullptr;
                            if (!(ok && ok->isBool() &&
                                  ok->asBool()))
                                rc = 2;
                            // The daemon indexes within *its*
                            // request; shift windowed responses
                            // back to input-file positions so
                            // callers can match lines by index.
                            if (index_base > 0 && parsed.ok()) {
                                parsed.value().set(
                                    "index",
                                    Value(index_base + r.first));
                                std::printf(
                                    "%s\n",
                                    parsed.value().dump().c_str());
                            } else {
                                std::printf("%s\n",
                                            r.second.c_str());
                            }
                        }
                        return rc;
                    }
                } else {
                    switch (stream.readLine(response)) {
                    case gpm::TcpStream::ReadStatus::Line:
                        got_response = true;
                        break;
                    case gpm::TcpStream::ReadStatus::Timeout:
                        failure =
                            "timed out waiting for a response";
                        break;
                    default:
                        failure = "connection closed before a "
                                  "response arrived";
                    }
                }
            }

            if (got_response) {
                auto parsed = gpm::json::parse(response);
                if (!parsed.ok())
                    die("unparseable response");
                // Transient server-side outcomes are retried;
                // anything else (including validation errors) is
                // final.
                const Value *err = parsed.value().find("error");
                std::string code;
                if (err && err->find("code") &&
                    err->find("code")->isString())
                    code = err->find("code")->asString();
                if (!transientCode(code) || !canRetry(attempt)) {
                    std::printf("%s\n", response.c_str());
                    const Value *ok = parsed.value().find("ok");
                    bool is_ok =
                        ok && ok->isBool() && ok->asBool();
                    // After the raw JSON line (which scripts
                    // grep), pretty-print every counter the server
                    // reported — generically and KEY-SORTED, so
                    // new counters show up without a client
                    // release and smoke greps see a stable order.
                    // Bare strings print unquoted (breaker states
                    // read as open/half-open/closed, not
                    // "\"open\"").
                    if (command == "stats" && is_ok) {
                        const Value *res =
                            parsed.value().find("result");
                        if (res && res->isObject()) {
                            std::vector<std::pair<std::string,
                                                  std::string>>
                                rows;
                            for (const auto &[key, val] :
                                 res->asObject())
                                rows.emplace_back(
                                    key,
                                    val.isString()
                                        ? val.asString()
                                        : val.dump());
                            std::sort(rows.begin(), rows.end());
                            for (const auto &[key, val] : rows)
                                std::fprintf(stderr,
                                             "gpmctl: %s: %s\n",
                                             key.c_str(),
                                             val.c_str());
                        }
                    }
                    return is_ok ? 0 : 2;
                }
                retry_floor_ms = retryHintOf(err);
                failure = "server reported '" + code + "'";
            } else if (!canRetry(attempt)) {
                die(failure);
            }

            // Any retried failure — transport or a transient
            // refusal — rotates to the next endpoint so the retry
            // budget is spent across the fleet, not on one dead
            // replica.
            if (endpoints.size() > 1) {
                ep_idx++;
                const Endpoint &next =
                    endpoints[ep_idx % endpoints.size()];
                failure += "; rotating to " + next.host + ":" +
                    std::to_string(next.port);
            }

            // The server's retryAfterMs hint is a floor under the
            // exponential backoff: never poke an overloaded daemon
            // sooner than it asked.
            double delay =
                std::max(backoff.nextMs(), retry_floor_ms);
            if (deadline_ms > 0.0) {
                double left = deadline_ms - elapsed_ms();
                if (left <= 0.0)
                    die("deadline of " +
                        std::to_string(deadline_ms) +
                        " ms exhausted after " +
                        std::to_string(attempt + 1) +
                        " attempt(s)");
                if (delay > left)
                    delay = left;
            }
            if (attempt < retries)
                std::fprintf(stderr,
                             "gpmctl: %s; retrying in %.0f ms "
                             "(attempt %ld of %ld)\n",
                             failure.c_str(), delay, attempt + 1,
                             retries + 1);
            else
                // Past the attempt budget, the --deadline is what
                // funds this retry.
                std::fprintf(stderr,
                             "gpmctl: %s; retrying in %.0f ms "
                             "(attempt %ld, %.0f ms of deadline "
                             "left)\n",
                             failure.c_str(), delay, attempt + 1,
                             deadline_ms - elapsed_ms());
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay));
        }
    };

    if (command != "submit-batch")
        return runWire(request.dump() + "\n", 0, 0);

    // Window the batch under --max-inflight: consecutive
    // submit_batch requests of at most N scenarios each, every
    // window retried as a unit. Sequential windows plus per-window
    // input-order printing preserves overall input order, and each
    // window's daemon-relative indices are shifted back to
    // input-file positions before printing.
    std::size_t window = max_inflight > 0
        ? static_cast<std::size_t>(max_inflight)
        : batch_count;
    int rc = 0;
    for (std::size_t off = 0; off < batch_count; off += window) {
        std::size_t n = std::min(window, batch_count - off);
        Value scenarios = Value::array();
        for (std::size_t i = 0; i < n; i++)
            scenarios.push(batch_scenarios[off + i]);
        Value req = Value::object();
        req.set("id", "gpmctl");
        req.set("verb", "submit_batch");
        req.set("scenarios", std::move(scenarios));
        int wrc = runWire(req.dump() + "\n", n, off);
        if (wrc != 0)
            rc = wrc;
    }
    return rc;
}
