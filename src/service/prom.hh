/**
 * @file
 * Prometheus text exposition for gpmd's /metrics endpoint: every
 * ServiceStats field plus the reactor transport gauges, rendered in
 * the text/plain; version=0.0.4 format scrapers expect. Kept apart
 * from server.cc so the rendering is unit-testable without a
 * socket.
 *
 * Naming: gpm_<noun>_total for monotonic counters, gpm_<noun> for
 * gauges. Circuit-breaker states are exposed as one labeled gauge,
 * gpm_breaker_state{breaker="disk",state="closed"} 1, with exactly
 * one sample per breaker set to 1 — the idiomatic enum encoding.
 */

#ifndef GPM_SERVICE_PROM_HH
#define GPM_SERVICE_PROM_HH

#include <cstdint>
#include <string>

#include "service/reactor.hh"
#include "service/service.hh"

namespace gpm
{

/** Protocol-layer counters GpmServer owns (the reactor owns the
 *  rest — see ReactorStats). */
struct ServerCounters
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t reactorThreads = 1;
};

/** Render the full /metrics body (no HTTP framing). */
std::string renderPrometheus(const ServiceStats &svc,
                             const ReactorStats &reactor,
                             const ServerCounters &server);

/** Append one HELP/TYPE/sample counter block to @p out. Shared
 *  with the router's exposition (gpm_router_* series). */
void promCounter(std::string &out, const char *name,
                 const char *help, std::uint64_t v);

/** Append one HELP/TYPE/sample gauge block to @p out. */
void promGauge(std::string &out, const char *name,
               const char *help, double v);

/**
 * Append the gpm_build_info series: the idiomatic always-1 gauge
 * whose labels carry the build's version (git describe) and
 * revision, so dashboards can join router and backend series per
 * build. Labels come from the GPM_BUILD_VERSION /
 * GPM_BUILD_REVISION compile definitions ("unknown" outside a git
 * checkout).
 */
void promBuildInfo(std::string &out);

} // namespace gpm

#endif // GPM_SERVICE_PROM_HH
