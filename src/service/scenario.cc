#include "service/scenario.hh"

#include <cmath>

#include "core/policies.hh"
#include "trace/workload.hh"

namespace gpm
{

using json::Value;

SimConfig
ScenarioSpec::simConfig() const
{
    SimConfig cfg;
    cfg.exploreUs = exploreUs;
    cfg.deltaSimUs = deltaSimUs;
    cfg.contention = contention;
    cfg.sensorNoise = sensorNoise;
    cfg.phaseShiftStride = phaseShiftStride;
    return cfg;
}

SweepSpec
ScenarioSpec::sweepSpec() const
{
    SweepSpec s;
    for (double b : budgets)
        s.add(combo, policy, b, staticFit);
    return s;
}

Value
ScenarioSpec::simJson() const
{
    Value sim = Value::object();
    sim.set("exploreUs", exploreUs);
    sim.set("deltaSimUs", deltaSimUs);
    sim.set("contention", contention);
    sim.set("sensorNoise", sensorNoise);
    // Only when non-zero: the default must serialize exactly as it
    // did before the knob existed, or every cached scenario hash
    // would be invalidated (same pattern as staticFit).
    if (phaseShiftStride != 0.0)
        sim.set("phaseShiftStride", phaseShiftStride);
    return sim;
}

Value
ScenarioSpec::canonicalJson() const
{
    Value o = Value::object();
    Value c = Value::array();
    for (const auto &name : combo)
        c.push(name);
    o.set("combo", std::move(c));
    o.set("policy", policy);
    Value bs = Value::array();
    for (double b : budgets)
        bs.push(b);
    o.set("budgets", std::move(bs));
    // staticFit only participates when it can change the result;
    // deadlineMs never does (QoS-only), so it is absent entirely.
    if (policy == "Static")
        o.set("staticFit",
              staticFit == StaticFit::Peak ? "peak" : "average");
    o.set("sim", simJson());
    return o;
}

std::uint64_t
ScenarioSpec::hash() const
{
    return canonicalJson().canonicalHash();
}

std::optional<std::string>
validateScenario(const ScenarioSpec &spec)
{
    if (spec.combo.empty())
        return "combo must name at least one benchmark";
    if (spec.combo.size() > ScenarioSpec::maxCores)
        return "combo exceeds " +
            std::to_string(ScenarioSpec::maxCores) + " benchmarks";
    for (const auto &name : spec.combo)
        if (!hasWorkload(name))
            return "unknown workload '" + name + "'";
    if (spec.policy != "Static" && !isPolicyName(spec.policy))
        return "unknown policy '" + spec.policy + "'";
    if (spec.budgets.empty())
        return "budgets must contain at least one fraction";
    if (spec.budgets.size() > ScenarioSpec::maxBudgets)
        return "budgets exceeds " +
            std::to_string(ScenarioSpec::maxBudgets) + " entries";
    for (double b : spec.budgets)
        if (!std::isfinite(b) || b <= 0.0 || b > 1.0)
            return "budget fractions must be in (0, 1]";
    if (!std::isfinite(spec.exploreUs) || spec.exploreUs <= 0.0 ||
        spec.exploreUs > 1e7)
        return "exploreUs must be in (0, 1e7]";
    if (!std::isfinite(spec.deltaSimUs) || spec.deltaSimUs <= 0.0 ||
        spec.deltaSimUs > spec.exploreUs)
        return "deltaSimUs must be in (0, exploreUs]";
    if (!std::isfinite(spec.sensorNoise) || spec.sensorNoise < 0.0 ||
        spec.sensorNoise > 1.0)
        return "sensorNoise must be in [0, 1]";
    if (!std::isfinite(spec.phaseShiftStride) ||
        spec.phaseShiftStride < 0.0 || spec.phaseShiftStride >= 1.0)
        return "phaseShiftStride must be in [0, 1)";
    if (!std::isfinite(spec.deadlineMs) || spec.deadlineMs < 0.0 ||
        spec.deadlineMs > 3.6e6)
        return "deadlineMs must be in [0, 3.6e6]";
    return std::nullopt;
}

namespace
{

using Fail = Expected<ScenarioSpec, std::string>;

std::optional<std::string>
parseSim(const Value &sim, ScenarioSpec &out)
{
    if (!sim.isObject())
        return "sim must be an object";
    for (const auto &[key, val] : sim.asObject()) {
        if (key == "exploreUs") {
            if (!val.isNumber())
                return "sim.exploreUs must be a number";
            out.exploreUs = val.asNumber();
        } else if (key == "deltaSimUs") {
            if (!val.isNumber())
                return "sim.deltaSimUs must be a number";
            out.deltaSimUs = val.asNumber();
        } else if (key == "contention") {
            if (!val.isBool())
                return "sim.contention must be a boolean";
            out.contention = val.asBool();
        } else if (key == "sensorNoise") {
            if (!val.isNumber())
                return "sim.sensorNoise must be a number";
            out.sensorNoise = val.asNumber();
        } else if (key == "phaseShiftStride") {
            if (!val.isNumber())
                return "sim.phaseShiftStride must be a number";
            out.phaseShiftStride = val.asNumber();
        } else {
            return "unknown sim field '" + key + "'";
        }
    }
    return std::nullopt;
}

} // namespace

Expected<ScenarioSpec, std::string>
parseScenario(const Value &scenario)
{
    if (!scenario.isObject())
        return Fail::failure("scenario must be a JSON object");

    ScenarioSpec out;
    bool saw_budget = false, saw_budgets = false,
         saw_static_fit = false;

    for (const auto &[key, val] : scenario.asObject()) {
        if (key == "combo") {
            if (val.isString()) {
                const auto *c = findCombination(val.asString());
                if (!c)
                    return Fail::failure(
                        "unknown benchmark combination '" +
                        val.asString() + "'");
                out.combo = *c;
            } else if (val.isArray()) {
                for (const auto &item : val.asArray()) {
                    if (!item.isString())
                        return Fail::failure(
                            "combo entries must be strings");
                    out.combo.push_back(item.asString());
                }
            } else {
                return Fail::failure(
                    "combo must be an array of benchmark names or "
                    "a combination key string");
            }
        } else if (key == "policy") {
            if (!val.isString())
                return Fail::failure("policy must be a string");
            out.policy = val.asString();
        } else if (key == "budget") {
            if (!val.isNumber())
                return Fail::failure("budget must be a number");
            out.budgets = {val.asNumber()};
            saw_budget = true;
        } else if (key == "budgets") {
            if (!val.isArray())
                return Fail::failure(
                    "budgets must be an array of numbers");
            for (const auto &item : val.asArray()) {
                if (!item.isNumber())
                    return Fail::failure(
                        "budgets entries must be numbers");
                out.budgets.push_back(item.asNumber());
            }
            saw_budgets = true;
        } else if (key == "staticFit") {
            if (!val.isString() || (val.asString() != "peak" &&
                                    val.asString() != "average"))
                return Fail::failure(
                    "staticFit must be \"peak\" or \"average\"");
            out.staticFit = val.asString() == "peak"
                ? StaticFit::Peak
                : StaticFit::Average;
            saw_static_fit = true;
        } else if (key == "sim") {
            if (auto err = parseSim(val, out))
                return Fail::failure(std::move(*err));
        } else if (key == "deadlineMs") {
            if (!val.isNumber())
                return Fail::failure("deadlineMs must be a number");
            out.deadlineMs = val.asNumber();
        } else {
            return Fail::failure("unknown scenario field '" + key +
                                 "'");
        }
    }

    if (out.combo.empty() && !scenario.find("combo"))
        return Fail::failure("missing required field 'combo'");
    if (out.policy.empty())
        return Fail::failure("missing required field 'policy'");
    if (saw_budget && saw_budgets)
        return Fail::failure(
            "give either 'budget' or 'budgets', not both");
    if (!saw_budget && !saw_budgets)
        return Fail::failure(
            "missing required field 'budget' or 'budgets'");
    if (saw_static_fit && out.policy != "Static")
        return Fail::failure(
            "staticFit only applies to policy \"Static\"");

    if (auto err = validateScenario(out))
        return Fail::failure(std::move(*err));
    return out;
}

std::string
serializeResults(const ScenarioSpec &spec,
                 const std::vector<PolicyEval> &evals)
{
    Value root = Value::object();
    root.set("scenario", spec.canonicalJson());

    Value results = Value::array();
    for (const auto &ev : evals) {
        Value r = Value::object();
        r.set("policy", ev.policy);
        r.set("budget", ev.budgetFrac);

        Value m = Value::object();
        m.set("perfDegradation", ev.metrics.perfDegradation);
        m.set("weightedSlowdown", ev.metrics.weightedSlowdown);
        m.set("weightedSpeedupLoss",
              ev.metrics.weightedSpeedupLoss);
        m.set("powerSavings", ev.metrics.powerSavings);
        m.set("powerOverBudget", ev.metrics.powerOverBudget);
        m.set("avgChipPowerW", ev.metrics.avgChipPowerW);
        m.set("chipBips", ev.metrics.chipBips);
        r.set("metrics", std::move(m));

        r.set("predPowerError", ev.predPowerError);
        r.set("predBipsError", ev.predBipsError);

        Value mgr = Value::object();
        mgr.set("decisions", ev.managerStats.decisions);
        mgr.set("overshoots", ev.managerStats.overshoots);
        mgr.set("modeSwitches", ev.managerStats.modeSwitches);
        r.set("manager", std::move(mgr));

        results.push(std::move(r));
    }
    root.set("results", std::move(results));
    return root.canonical();
}

} // namespace gpm
