#include "service/scenario.hh"

#include <cmath>

#include "core/policies.hh"
#include "trace/workload.hh"

namespace gpm
{

using json::Value;

SimConfig
ScenarioSpec::simConfig() const
{
    SimConfig cfg;
    cfg.exploreUs = exploreUs;
    cfg.deltaSimUs = deltaSimUs;
    cfg.contention = contention;
    cfg.sensorNoise = sensorNoise;
    cfg.phaseShiftStride = phaseShiftStride;
    return cfg;
}

SweepSpec
ScenarioSpec::sweepSpec() const
{
    SweepSpec s;
    for (double b : budgets)
        s.add(combo, policy, b, staticFit);
    return s;
}

ClusterSpec
ScenarioSpec::clusterSpec() const
{
    ClusterSpec s = *cluster;
    s.policy = policy;
    return s;
}

Value
ScenarioSpec::simJson() const
{
    Value sim = Value::object();
    sim.set("exploreUs", exploreUs);
    sim.set("deltaSimUs", deltaSimUs);
    sim.set("contention", contention);
    sim.set("sensorNoise", sensorNoise);
    // Only when non-zero: the default must serialize exactly as it
    // did before the knob existed, or every cached scenario hash
    // would be invalidated (same pattern as staticFit).
    if (phaseShiftStride != 0.0)
        sim.set("phaseShiftStride", phaseShiftStride);
    return sim;
}

Value
ScenarioSpec::canonicalJson() const
{
    Value o = Value::object();
    if (cluster) {
        // Cluster scenarios have a distinct canonical shape: a
        // "cluster" object and no "combo" key, every chip explicit
        // (replication counts are expanded at parse), per-chip
        // shifts only when non-zero, the cluster knobs always
        // explicit (new keys cannot collide with old hashes).
        Value cl = Value::object();
        Value chips = Value::array();
        for (const auto &chip : cluster->chips) {
            Value ch = Value::object();
            Value cc = Value::array();
            for (const auto &name : chip.combo)
                cc.push(name);
            ch.set("combo", std::move(cc));
            ch.set("policy", chip.policy);
            if (chip.phaseShiftStride != 0.0)
                ch.set("phaseShiftStride", chip.phaseShiftStride);
            if (chip.phaseOffset != 0.0)
                ch.set("phaseOffset", chip.phaseOffset);
            chips.push(std::move(ch));
        }
        cl.set("chips", std::move(chips));
        cl.set("epochs", static_cast<double>(cluster->epochs));
        cl.set("epochUs", cluster->epochUs);
        cl.set("levels", static_cast<double>(cluster->levels));
        o.set("cluster", std::move(cl));
    } else {
        Value c = Value::array();
        for (const auto &name : combo)
            c.push(name);
        o.set("combo", std::move(c));
    }
    o.set("policy", policy);
    Value bs = Value::array();
    for (double b : budgets)
        bs.push(b);
    o.set("budgets", std::move(bs));
    // staticFit only participates when it can change the result;
    // deadlineMs never does (QoS-only), so it is absent entirely.
    if (policy == "Static")
        o.set("staticFit",
              staticFit == StaticFit::Peak ? "peak" : "average");
    o.set("sim", simJson());
    return o;
}

std::uint64_t
ScenarioSpec::hash() const
{
    return canonicalJson().canonicalHash();
}

ScenarioSpec
degradeSpec(const ScenarioSpec &spec, const std::string &policy)
{
    ScenarioSpec out = spec;
    out.policy = policy;
    return out;
}

namespace
{

/** Cluster-specific half of validateScenario(). */
std::optional<std::string>
validateCluster(const ScenarioSpec &spec)
{
    const ClusterSpec &cl = *spec.cluster;
    if (!spec.combo.empty())
        return "give either 'combo' or 'cluster', not both";
    if (cl.chips.empty())
        return "cluster.chips must name at least one chip";
    if (cl.chips.size() > ClusterSpec::maxChips)
        return "cluster.chips exceeds " +
            std::to_string(ClusterSpec::maxChips) + " chips";
    if (cl.totalCores() > ClusterSpec::maxTotalCores)
        return "cluster exceeds " +
            std::to_string(ClusterSpec::maxTotalCores) +
            " total cores";
    for (const auto &chip : cl.chips) {
        if (chip.combo.empty())
            return "chip combo must name at least one benchmark";
        if (chip.combo.size() > ScenarioSpec::maxCores)
            return "chip combo exceeds " +
                std::to_string(ScenarioSpec::maxCores) +
                " benchmarks";
        for (const auto &name : chip.combo)
            if (!hasWorkload(name))
                return "unknown workload '" + name + "'";
        if (!isPolicyName(chip.policy))
            return "unknown chip policy '" + chip.policy + "'";
        if (!std::isfinite(chip.phaseShiftStride) ||
            chip.phaseShiftStride < 0.0 ||
            chip.phaseShiftStride >= 1.0)
            return "chip phaseShiftStride must be in [0, 1)";
        if (!std::isfinite(chip.phaseOffset) ||
            chip.phaseOffset < 0.0 || chip.phaseOffset >= 1.0)
            return "chip phaseOffset must be in [0, 1)";
    }
    if (!isClusterPolicyName(spec.policy))
        return "'" + spec.policy +
            "' is not a cluster arbitration policy";
    if (cl.epochs < 1 || cl.epochs > ClusterSpec::maxEpochs)
        return "cluster.epochs must be in [1, " +
            std::to_string(ClusterSpec::maxEpochs) + "]";
    if (cl.levels < 2 || cl.levels > ClusterSpec::maxLevels)
        return "cluster.levels must be in [2, " +
            std::to_string(ClusterSpec::maxLevels) + "]";
    if (!std::isfinite(cl.epochUs) || cl.epochUs < spec.exploreUs ||
        cl.epochUs > 1e6)
        return "cluster.epochUs must be in [exploreUs, 1e6]";
    if (spec.phaseShiftStride != 0.0)
        return "cluster scenarios take phase shifts per chip, not "
               "in sim.phaseShiftStride";
    return std::nullopt;
}

} // namespace

std::optional<std::string>
validateScenario(const ScenarioSpec &spec)
{
    if (spec.cluster) {
        if (auto err = validateCluster(spec))
            return err;
    } else {
        if (spec.combo.empty())
            return "combo must name at least one benchmark";
        if (spec.combo.size() > ScenarioSpec::maxCores)
            return "combo exceeds " +
                std::to_string(ScenarioSpec::maxCores) +
                " benchmarks";
        for (const auto &name : spec.combo)
            if (!hasWorkload(name))
                return "unknown workload '" + name + "'";
        if (spec.policy != "Static" && !isPolicyName(spec.policy))
            return "unknown policy '" + spec.policy + "'";
    }
    if (spec.budgets.empty())
        return "budgets must contain at least one fraction";
    if (spec.budgets.size() > ScenarioSpec::maxBudgets)
        return "budgets exceeds " +
            std::to_string(ScenarioSpec::maxBudgets) + " entries";
    for (double b : spec.budgets)
        if (!std::isfinite(b) || b <= 0.0 || b > 1.0)
            return "budget fractions must be in (0, 1]";
    if (!std::isfinite(spec.exploreUs) || spec.exploreUs <= 0.0 ||
        spec.exploreUs > 1e7)
        return "exploreUs must be in (0, 1e7]";
    if (!std::isfinite(spec.deltaSimUs) || spec.deltaSimUs <= 0.0 ||
        spec.deltaSimUs > spec.exploreUs)
        return "deltaSimUs must be in (0, exploreUs]";
    if (!std::isfinite(spec.sensorNoise) || spec.sensorNoise < 0.0 ||
        spec.sensorNoise > 1.0)
        return "sensorNoise must be in [0, 1]";
    if (!std::isfinite(spec.phaseShiftStride) ||
        spec.phaseShiftStride < 0.0 || spec.phaseShiftStride >= 1.0)
        return "phaseShiftStride must be in [0, 1)";
    if (!std::isfinite(spec.deadlineMs) || spec.deadlineMs < 0.0 ||
        spec.deadlineMs > 3.6e6)
        return "deadlineMs must be in [0, 3.6e6]";
    return std::nullopt;
}

namespace
{

using Fail = Expected<ScenarioSpec, std::string>;

std::optional<std::string>
parseSim(const Value &sim, ScenarioSpec &out)
{
    if (!sim.isObject())
        return "sim must be an object";
    for (const auto &[key, val] : sim.asObject()) {
        if (key == "exploreUs") {
            if (!val.isNumber())
                return "sim.exploreUs must be a number";
            out.exploreUs = val.asNumber();
        } else if (key == "deltaSimUs") {
            if (!val.isNumber())
                return "sim.deltaSimUs must be a number";
            out.deltaSimUs = val.asNumber();
        } else if (key == "contention") {
            if (!val.isBool())
                return "sim.contention must be a boolean";
            out.contention = val.asBool();
        } else if (key == "sensorNoise") {
            if (!val.isNumber())
                return "sim.sensorNoise must be a number";
            out.sensorNoise = val.asNumber();
        } else if (key == "phaseShiftStride") {
            if (!val.isNumber())
                return "sim.phaseShiftStride must be a number";
            out.phaseShiftStride = val.asNumber();
        } else {
            return "unknown sim field '" + key + "'";
        }
    }
    return std::nullopt;
}

std::optional<std::string>
parseChipCombo(const Value &val, ChipSpec &chip)
{
    if (val.isString()) {
        const auto *c = findCombination(val.asString());
        if (!c)
            return "unknown benchmark combination '" +
                val.asString() + "'";
        chip.combo = *c;
        return std::nullopt;
    }
    if (val.isArray()) {
        for (const auto &item : val.asArray()) {
            if (!item.isString())
                return std::optional<std::string>(
                    "chip combo entries must be strings");
            chip.combo.push_back(item.asString());
        }
        return std::nullopt;
    }
    return "chip combo must be an array of benchmark names or a "
           "combination key string";
}

std::optional<std::string>
parseChip(const Value &obj, ClusterSpec &cl)
{
    if (!obj.isObject())
        return "cluster.chips entries must be objects";
    ChipSpec chip;
    unsigned count = 1;
    for (const auto &[key, val] : obj.asObject()) {
        if (key == "combo") {
            if (auto err = parseChipCombo(val, chip))
                return err;
        } else if (key == "policy") {
            if (!val.isString())
                return std::optional<std::string>(
                    "chip policy must be a string");
            chip.policy = val.asString();
        } else if (key == "count") {
            if (!val.isNumber() || val.asNumber() < 1.0 ||
                val.asNumber() >
                    static_cast<double>(ClusterSpec::maxChips) ||
                val.asNumber() != std::floor(val.asNumber()))
                return "chip count must be an integer in [1, " +
                    std::to_string(ClusterSpec::maxChips) + "]";
            count = static_cast<unsigned>(val.asNumber());
        } else if (key == "phaseShiftStride") {
            if (!val.isNumber())
                return std::optional<std::string>(
                    "chip phaseShiftStride must be a number");
            chip.phaseShiftStride = val.asNumber();
        } else if (key == "phaseOffset") {
            if (!val.isNumber())
                return std::optional<std::string>(
                    "chip phaseOffset must be a number");
            chip.phaseOffset = val.asNumber();
        } else {
            return "unknown chip field '" + key + "'";
        }
    }
    if (chip.combo.empty() && !obj.find("combo"))
        return std::optional<std::string>(
            "missing required chip field 'combo'");
    if (chip.policy.empty())
        return std::optional<std::string>(
            "missing required chip field 'policy'");
    // Replication is a parse-time convenience; the canonical form
    // lists every chip explicitly. The chip cap is enforced by
    // validateCluster after expansion.
    for (unsigned i = 0; i < count; i++) {
        if (cl.chips.size() > ClusterSpec::maxChips)
            return "cluster.chips exceeds " +
                std::to_string(ClusterSpec::maxChips) + " chips";
        cl.chips.push_back(chip);
    }
    return std::nullopt;
}

std::optional<std::string>
parseCluster(const Value &obj, ScenarioSpec &out)
{
    if (!obj.isObject())
        return std::optional<std::string>(
            "cluster must be an object");
    ClusterSpec cl;
    for (const auto &[key, val] : obj.asObject()) {
        if (key == "chips") {
            if (!val.isArray())
                return std::optional<std::string>(
                    "cluster.chips must be an array");
            for (const auto &item : val.asArray())
                if (auto err = parseChip(item, cl))
                    return err;
        } else if (key == "epochs") {
            if (!val.isNumber() || val.asNumber() < 1.0 ||
                val.asNumber() >
                    static_cast<double>(ClusterSpec::maxEpochs) ||
                val.asNumber() != std::floor(val.asNumber()))
                return "cluster.epochs must be an integer in [1, " +
                    std::to_string(ClusterSpec::maxEpochs) + "]";
            cl.epochs = static_cast<unsigned>(val.asNumber());
        } else if (key == "epochUs") {
            if (!val.isNumber())
                return std::optional<std::string>(
                    "cluster.epochUs must be a number");
            cl.epochUs = val.asNumber();
        } else if (key == "levels") {
            if (!val.isNumber() || val.asNumber() < 2.0 ||
                val.asNumber() >
                    static_cast<double>(ClusterSpec::maxLevels) ||
                val.asNumber() != std::floor(val.asNumber()))
                return "cluster.levels must be an integer in [2, " +
                    std::to_string(ClusterSpec::maxLevels) + "]";
            cl.levels = static_cast<unsigned>(val.asNumber());
        } else {
            return "unknown cluster field '" + key + "'";
        }
    }
    if (cl.chips.empty() && !obj.find("chips"))
        return std::optional<std::string>(
            "missing required cluster field 'chips'");
    out.cluster = std::move(cl);
    return std::nullopt;
}

} // namespace

Expected<ScenarioSpec, std::string>
parseScenario(const Value &scenario)
{
    if (!scenario.isObject())
        return Fail::failure("scenario must be a JSON object");

    ScenarioSpec out;
    bool saw_budget = false, saw_budgets = false,
         saw_static_fit = false;

    for (const auto &[key, val] : scenario.asObject()) {
        if (key == "combo") {
            if (val.isString()) {
                const auto *c = findCombination(val.asString());
                if (!c)
                    return Fail::failure(
                        "unknown benchmark combination '" +
                        val.asString() + "'");
                out.combo = *c;
            } else if (val.isArray()) {
                for (const auto &item : val.asArray()) {
                    if (!item.isString())
                        return Fail::failure(
                            "combo entries must be strings");
                    out.combo.push_back(item.asString());
                }
            } else {
                return Fail::failure(
                    "combo must be an array of benchmark names or "
                    "a combination key string");
            }
        } else if (key == "policy") {
            if (!val.isString())
                return Fail::failure("policy must be a string");
            out.policy = val.asString();
        } else if (key == "budget") {
            if (!val.isNumber())
                return Fail::failure("budget must be a number");
            out.budgets = {val.asNumber()};
            saw_budget = true;
        } else if (key == "budgets") {
            if (!val.isArray())
                return Fail::failure(
                    "budgets must be an array of numbers");
            for (const auto &item : val.asArray()) {
                if (!item.isNumber())
                    return Fail::failure(
                        "budgets entries must be numbers");
                out.budgets.push_back(item.asNumber());
            }
            saw_budgets = true;
        } else if (key == "staticFit") {
            if (!val.isString() || (val.asString() != "peak" &&
                                    val.asString() != "average"))
                return Fail::failure(
                    "staticFit must be \"peak\" or \"average\"");
            out.staticFit = val.asString() == "peak"
                ? StaticFit::Peak
                : StaticFit::Average;
            saw_static_fit = true;
        } else if (key == "cluster") {
            if (auto err = parseCluster(val, out))
                return Fail::failure(std::move(*err));
        } else if (key == "sim") {
            if (auto err = parseSim(val, out))
                return Fail::failure(std::move(*err));
        } else if (key == "deadlineMs") {
            if (!val.isNumber())
                return Fail::failure("deadlineMs must be a number");
            out.deadlineMs = val.asNumber();
        } else {
            return Fail::failure("unknown scenario field '" + key +
                                 "'");
        }
    }

    if (out.combo.empty() && !scenario.find("combo") && !out.cluster)
        return Fail::failure(
            "missing required field 'combo' or 'cluster'");
    if (out.policy.empty())
        return Fail::failure("missing required field 'policy'");
    if (saw_budget && saw_budgets)
        return Fail::failure(
            "give either 'budget' or 'budgets', not both");
    if (!saw_budget && !saw_budgets)
        return Fail::failure(
            "missing required field 'budget' or 'budgets'");
    if (saw_static_fit && out.policy != "Static")
        return Fail::failure(
            "staticFit only applies to policy \"Static\"");

    if (auto err = validateScenario(out))
        return Fail::failure(std::move(*err));
    return out;
}

std::string
serializeResults(const ScenarioSpec &spec,
                 const std::vector<PolicyEval> &evals)
{
    Value root = Value::object();
    root.set("scenario", spec.canonicalJson());

    Value results = Value::array();
    for (const auto &ev : evals) {
        Value r = Value::object();
        r.set("policy", ev.policy);
        r.set("budget", ev.budgetFrac);

        Value m = Value::object();
        m.set("perfDegradation", ev.metrics.perfDegradation);
        m.set("weightedSlowdown", ev.metrics.weightedSlowdown);
        m.set("weightedSpeedupLoss",
              ev.metrics.weightedSpeedupLoss);
        m.set("powerSavings", ev.metrics.powerSavings);
        m.set("powerOverBudget", ev.metrics.powerOverBudget);
        m.set("avgChipPowerW", ev.metrics.avgChipPowerW);
        m.set("chipBips", ev.metrics.chipBips);
        r.set("metrics", std::move(m));

        r.set("predPowerError", ev.predPowerError);
        r.set("predBipsError", ev.predBipsError);

        Value mgr = Value::object();
        mgr.set("decisions", ev.managerStats.decisions);
        mgr.set("overshoots", ev.managerStats.overshoots);
        mgr.set("modeSwitches", ev.managerStats.modeSwitches);
        r.set("manager", std::move(mgr));

        results.push(std::move(r));
    }
    root.set("results", std::move(results));
    return root.canonical();
}

std::string
serializeClusterResults(const ScenarioSpec &spec,
                        const std::vector<ClusterRunResult> &runs)
{
    Value root = Value::object();
    root.set("scenario", spec.canonicalJson());

    Value results = Value::array();
    for (std::size_t k = 0; k < runs.size(); k++) {
        const ClusterRunResult &run = runs[k];
        Value r = Value::object();
        r.set("policy", spec.policy);
        r.set("budget", spec.budgets[k]);

        Value m = Value::object();
        m.set("clusterBips", run.clusterBips);
        m.set("clusterPowerW", run.clusterPowerW);
        m.set("facilityBudgetW", run.facilityBudgetW);
        m.set("budgetUtilization", run.budgetUtilization);
        r.set("metrics", std::move(m));

        Value chips = Value::array();
        for (const auto &c : run.chips) {
            Value ch = Value::object();
            ch.set("bips", c.bips);
            ch.set("powerW", c.avgCorePowerW);
            ch.set("awardedMeanW", c.awardedMeanW);
            ch.set("refPowerW", c.refPowerW);
            ch.set("decisions", c.managerStats.decisions);
            ch.set("overshoots", c.managerStats.overshoots);
            ch.set("modeSwitches", c.managerStats.modeSwitches);
            chips.push(std::move(ch));
        }
        r.set("chips", std::move(chips));

        Value epochs = Value::array();
        for (const auto &t : run.epochs) {
            Value e = Value::object();
            e.set("feasible", t.feasible);
            e.set("predictedBips", t.predictedBips);
            Value awards = Value::array();
            for (Watts w : t.awardsW)
                awards.push(w);
            e.set("awards", std::move(awards));
            epochs.push(std::move(e));
        }
        r.set("epochs", std::move(epochs));

        results.push(std::move(r));
    }
    root.set("results", std::move(results));
    return root.canonical();
}

} // namespace gpm
