#include "service/admission.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gpm
{

AdmissionController::AdmissionController(AdmissionOptions opts_,
                                         std::size_t queueCapacity,
                                         std::size_t workers_)
    : opts(opts_), capacity(queueCapacity),
      workers(std::max<std::size_t>(1, workers_))
{
    opts.fairShare = std::clamp(opts.fairShare, 0.0, 1.0);
    opts.degradeDepth = std::clamp(opts.degradeDepth, 0.0, 1.0);
    opts.ewmaAlpha = std::clamp(opts.ewmaAlpha, 0.01, 1.0);
    clientShare = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               opts.fairShare * static_cast<double>(capacity)));
    degradeAt = static_cast<std::size_t>(
        std::ceil(opts.degradeDepth *
                  static_cast<double>(capacity)));
    if (degradeAt == 0)
        degradeAt = 1;
}

std::string
AdmissionController::serviceKeyFor(const std::string &policy,
                                   bool cluster)
{
    return cluster ? "cluster:" + policy : policy;
}

double
AdmissionController::knownEwmaLocked(
    const std::string &key) const
{
    auto it = ewmaMs.find(key);
    return it == ewmaMs.end() ? 0.0 : it->second;
}

double
AdmissionController::hintLocked(std::size_t load) const
{
    // How long until a freed worker could reach a retried request:
    // the backlog drained at the worker rate, in units of the
    // typical observed service time (50 ms guess before any
    // completion has been observed).
    double per = anyEwmaMs > 0.0 ? anyEwmaMs : 50.0;
    double hint = per *
        (static_cast<double>(load + 1) /
         static_cast<double>(workers));
    return std::clamp(hint, 10.0, 5000.0);
}

AdmissionController::Decision
AdmissionController::preAdmit(std::uint64_t clientId,
                              const std::string &serviceKey,
                              const std::string &floorKey,
                              double deadlineMs, std::size_t load,
                              std::size_t count)
{
    Decision d;
    if (!opts.enabled)
        return d;
    std::lock_guard<std::mutex> lock(mtx);
    d.overloaded = load >= degradeAt;

    // Fairness: a client already holding its share of the queue is
    // rejected so the remaining capacity serves everyone else.
    // Client 0 (in-process callers) is exempt.
    if (clientId != 0) {
        std::size_t held = 0;
        if (auto it = queuedByClient.find(clientId);
            it != queuedByClient.end())
            held = it->second;
        if (held + count > clientShare) {
            shed += count;
            d.admit = false;
            d.errorCode = "rejected_overload";
            d.errorMessage = "client already holds " +
                std::to_string(held) + " of its " +
                std::to_string(clientShare) +
                " queued-request slots";
            d.retryAfterMs = hintLocked(load);
            return d;
        }
    }

    // Doomed deadline: predict queue wait + service from the
    // cheapest solver this request could degrade to. No prediction
    // without an observed EWMA — a cold service admits everything.
    if (deadlineMs > 0.0) {
        double per = knownEwmaLocked(floorKey);
        if (per <= 0.0)
            per = knownEwmaLocked(serviceKey);
        if (per > 0.0) {
            double waitMs = per *
                (static_cast<double>(load) /
                 static_cast<double>(workers));
            double predictedMs = waitMs + per;
            if (predictedMs * opts.headroom > deadlineMs) {
                shed += count;
                d.admit = false;
                d.errorCode = "rejected_overload";
                char buf[160];
                std::snprintf(
                    buf, sizeof(buf),
                    "predicted completion %.1f ms cannot meet "
                    "the %.1f ms deadline at queue load %zu",
                    predictedMs, deadlineMs, load);
                d.errorMessage = buf;
                d.retryAfterMs = hintLocked(load);
                return d;
            }
        }
    }
    return d;
}

void
AdmissionController::onEnqueue(std::uint64_t clientId,
                               std::size_t count)
{
    if (clientId == 0)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    queuedByClient[clientId] += count;
}

void
AdmissionController::onDequeue(std::uint64_t clientId)
{
    if (clientId == 0)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = queuedByClient.find(clientId);
    if (it == queuedByClient.end())
        return;
    if (--it->second == 0)
        queuedByClient.erase(it);
}

void
AdmissionController::recordService(const std::string &serviceKey,
                                   double ms)
{
    if (!(ms >= 0.0))
        return;
    std::lock_guard<std::mutex> lock(mtx);
    double &e = ewmaMs[serviceKey];
    e = e == 0.0 ? ms
                 : opts.ewmaAlpha * ms +
            (1.0 - opts.ewmaAlpha) * e;
    anyEwmaMs = anyEwmaMs == 0.0
        ? ms
        : opts.ewmaAlpha * ms + (1.0 - opts.ewmaAlpha) * anyEwmaMs;
}

double
AdmissionController::serviceTimeMs(
    const std::string &serviceKey) const
{
    std::lock_guard<std::mutex> lock(mtx);
    return knownEwmaLocked(serviceKey);
}

double
AdmissionController::retryHintMs(std::size_t load) const
{
    std::lock_guard<std::mutex> lock(mtx);
    return hintLocked(load);
}

std::uint64_t
AdmissionController::shedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return shed;
}

} // namespace gpm
