#include "service/degrade.hh"

namespace gpm::degrade
{

namespace
{

bool
isDpRung(const std::string &policy)
{
    // "MaxBIPS-DP" or "MaxBIPS-DP<G>": any grid sits on the same
    // rung — the grid is an accuracy knob, not a different solver.
    return policy.rfind("MaxBIPS-DP", 0) == 0;
}

} // namespace

std::optional<int>
rungIndex(const std::string &policy)
{
    if (policy == "MaxBIPS" || policy == "MaxBIPS-BnB")
        return 0;
    if (isDpRung(policy))
        return 1;
    if (policy == "GreedyTurbo")
        return 2;
    if (policy == "WaterFill")
        return 3;
    return std::nullopt;
}

bool
onLadder(const std::string &policy)
{
    return rungIndex(policy).has_value();
}

std::optional<std::string>
nextRung(const std::string &policy)
{
    auto idx = rungIndex(policy);
    if (!idx)
        return std::nullopt;
    switch (*idx) {
    case 0:
        return "MaxBIPS-DP";
    case 1:
        return "GreedyTurbo";
    case 2:
        return "WaterFill";
    default:
        return std::nullopt; // bottom rung
    }
}

} // namespace gpm::degrade
