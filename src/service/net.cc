#include "service/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace gpm
{

static std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

TcpListener::TcpListener(TcpListener &&o) noexcept
    : fd_(std::exchange(o.fd_, -1)), port_(std::exchange(o.port_, 0))
{
}

TcpListener &
TcpListener::operator=(TcpListener &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = std::exchange(o.fd_, -1);
        port_ = std::exchange(o.port_, 0);
    }
    return *this;
}

Expected<TcpListener, std::string>
TcpListener::listenOn(const std::string &host, std::uint16_t port,
                      int backlog)
{
    using Fail = Expected<TcpListener, std::string>;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return Fail::failure("invalid IPv4 address '" + host + "'");

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return Fail::failure(errnoString("socket"));

    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        std::string e = errnoString("bind");
        ::close(fd);
        return Fail::failure(std::move(e));
    }
    if (::listen(fd, backlog) < 0) {
        std::string e = errnoString("listen");
        ::close(fd);
        return Fail::failure(std::move(e));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) < 0) {
        std::string e = errnoString("getsockname");
        ::close(fd);
        return Fail::failure(std::move(e));
    }

    TcpListener l;
    l.fd_ = fd;
    l.port_ = ntohs(bound.sin_port);
    return l;
}

int
TcpListener::acceptFd()
{
    for (;;) {
        int cfd = ::accept(fd_, nullptr, nullptr);
        if (cfd >= 0)
            return cfd;
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        return -1; // shut down, closed, or a real error
    }
}

void
TcpListener::shutdownListener()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpStream::TcpStream(TcpStream &&o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      readTimeoutMs(std::exchange(o.readTimeoutMs, 0)),
      writeTimeoutMs(std::exchange(o.writeTimeoutMs, 0)),
      rdbuf(std::move(o.rdbuf))
{
}

TcpStream &
TcpStream::operator=(TcpStream &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = std::exchange(o.fd_, -1);
        readTimeoutMs = std::exchange(o.readTimeoutMs, 0);
        writeTimeoutMs = std::exchange(o.writeTimeoutMs, 0);
        rdbuf = std::move(o.rdbuf);
    }
    return *this;
}

namespace
{

/** Wait for @p events on @p fd: >0 ready, 0 timeout, <0 error. */
int
pollFor(int fd, short events, int timeout_ms)
{
    pollfd p{};
    p.fd = fd;
    p.events = events;
    for (;;) {
        int r = ::poll(&p, 1, timeout_ms);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

} // namespace

Expected<TcpStream, std::string>
TcpStream::connectTo(const std::string &host, std::uint16_t port)
{
    using Fail = Expected<TcpStream, std::string>;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return Fail::failure("invalid IPv4 address '" + host + "'");

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return Fail::failure(errnoString("socket"));

    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        std::string e = errnoString("connect");
        ::close(fd);
        return Fail::failure(std::move(e));
    }
    return TcpStream(fd);
}

TcpStream::ReadStatus
TcpStream::readLine(std::string &line, std::size_t max_len)
{
    for (;;) {
        std::size_t nl = rdbuf.find('\n');
        if (nl != std::string::npos && nl <= max_len) {
            line.assign(rdbuf, 0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            rdbuf.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        if (nl != std::string::npos || rdbuf.size() > max_len) {
            // Framing overrun: discard the buffer (capping its
            // growth at max_len + one chunk) — the stream cannot
            // be resynchronized to line boundaries.
            rdbuf.clear();
            rdbuf.shrink_to_fit();
            return ReadStatus::TooLong;
        }

        if (readTimeoutMs > 0) {
            int r = pollFor(fd_, POLLIN, readTimeoutMs);
            if (r == 0)
                return ReadStatus::Timeout;
            if (r < 0)
                return ReadStatus::Error;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            rdbuf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // Any partial line is dropped.
        return n == 0 ? ReadStatus::Eof : ReadStatus::Error;
    }
}

bool
TcpStream::writeAll(std::string_view data)
{
    while (!data.empty()) {
        if (writeTimeoutMs > 0 &&
            pollFor(fd_, POLLOUT, writeTimeoutMs) <= 0)
            return false; // timeout or poll error
        ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n > 0) {
            data.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
TcpStream::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace gpm
