#include "service/json.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "util/logging.hh"

namespace gpm::json
{

Value::Type
Value::type() const
{
    switch (v.index()) {
      case 0:
        return Type::Null;
      case 1:
        return Type::Bool;
      case 2:
        return Type::Number;
      case 3:
        return Type::String;
      case 4:
        return Type::Array;
      default:
        return Type::Object;
    }
}

bool
Value::asBool() const
{
    GPM_ASSERT(isBool());
    return std::get<bool>(v);
}

double
Value::asNumber() const
{
    GPM_ASSERT(isNumber());
    return std::get<double>(v);
}

const std::string &
Value::asString() const
{
    GPM_ASSERT(isString());
    return std::get<std::string>(v);
}

const Value::Array &
Value::asArray() const
{
    GPM_ASSERT(isArray());
    return std::get<Array>(v);
}

const Value::Object &
Value::asObject() const
{
    GPM_ASSERT(isObject());
    return std::get<Object>(v);
}

void
Value::push(Value item)
{
    GPM_ASSERT(isArray());
    std::get<Array>(v).push_back(std::move(item));
}

void
Value::set(std::string key, Value item)
{
    GPM_ASSERT(isObject());
    auto &obj = std::get<Object>(v);
    for (auto &m : obj) {
        if (m.first == key) {
            m.second = std::move(item);
            return;
        }
    }
    obj.emplace_back(std::move(key), std::move(item));
}

const Value *
Value::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &m : std::get<Object>(v))
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::string
formatDouble(double d)
{
    if (!std::isfinite(d))
        return "null";
    char buf[32];
    for (int prec = 1; prec <= 17; prec++) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    return buf;
}

static void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
Value::write(std::string &out, bool sorted) const
{
    switch (type()) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += std::get<bool>(v) ? "true" : "false";
        break;
      case Type::Number:
        out += formatDouble(std::get<double>(v));
        break;
      case Type::String:
        writeEscaped(out, std::get<std::string>(v));
        break;
      case Type::Array: {
        out += '[';
        const auto &arr = std::get<Array>(v);
        for (std::size_t i = 0; i < arr.size(); i++) {
            if (i)
                out += ',';
            arr[i].write(out, sorted);
        }
        out += ']';
        break;
      }
      case Type::Object: {
        const auto &obj = std::get<Object>(v);
        std::vector<const Member *> ms;
        ms.reserve(obj.size());
        for (const auto &m : obj)
            ms.push_back(&m);
        if (sorted)
            std::sort(ms.begin(), ms.end(),
                      [](const Member *a, const Member *b) {
                          return a->first < b->first;
                      });
        out += '{';
        for (std::size_t i = 0; i < ms.size(); i++) {
            if (i)
                out += ',';
            writeEscaped(out, ms[i]->first);
            out += ':';
            ms[i]->second.write(out, sorted);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    write(out, false);
    return out;
}

std::string
Value::canonical() const
{
    std::string out;
    write(out, true);
    return out;
}

std::uint64_t
Value::canonicalHash() const
{
    std::string c = canonical();
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char b : c) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    return h;
}

namespace
{

/** Recursive-descent parser state over the input span. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    /** Deep nesting is an attack surface, not a use case. */
    static constexpr int maxDepth = 64;

    std::optional<ParseError> err;

    bool
    fail(std::size_t at, std::string msg)
    {
        if (!err)
            err = ParseError{at, std::move(msg)};
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipWs()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    bool
    consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return fail(pos, std::string("expected '") + c + "'");
        pos++;
        return true;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (text.substr(pos, w.size()) != w)
            return fail(pos, "invalid literal");
        pos += w.size();
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos + 4 > text.size())
            return fail(pos, "truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; i++) {
            char c = text[pos + i];
            unsigned d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + c - 'a';
            else if (c >= 'A' && c <= 'F')
                d = 10 + c - 'A';
            else
                return fail(pos + i, "bad hex digit in \\u escape");
            out = out * 16 + d;
        }
        pos += 4;
        return true;
    }

    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        for (;;) {
            if (atEnd())
                return fail(pos, "unterminated string");
            unsigned char c = text[pos];
            if (c == '"') {
                pos++;
                return true;
            }
            if (c < 0x20)
                return fail(pos,
                            "raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                pos++;
                continue;
            }
            pos++;
            if (atEnd())
                return fail(pos, "unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xDC00 && cp <= 0xDFFF)
                    return fail(pos - 4, "lone low surrogate");
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos + 2 > text.size() ||
                        text[pos] != '\\' || text[pos + 1] != 'u')
                        return fail(pos, "unpaired high surrogate");
                    pos += 2;
                    unsigned lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail(pos - 4,
                                    "invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                        (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail(pos - 1, "unknown escape");
            }
        }
    }

    bool
    parseNumber(double &out)
    {
        std::size_t start = pos;
        if (!atEnd() && peek() == '-')
            pos++;
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail(pos, "invalid number");
        if (peek() == '0') {
            pos++;
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                return fail(pos, "leading zero in number");
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                pos++;
        }
        if (!atEnd() && peek() == '.') {
            pos++;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail(pos, "digit expected after '.'");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                pos++;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            pos++;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                pos++;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail(pos, "digit expected in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                pos++;
        }
        std::string span(text.substr(start, pos - start));
        out = std::strtod(span.c_str(), nullptr);
        if (!std::isfinite(out))
            return fail(start, "number out of range");
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth)
            return fail(pos, "nesting too deep");
        skipWs();
        if (atEnd())
            return fail(pos, "unexpected end of input");
        char c = peek();
        if (c == 'n') {
            if (!consumeWord("null"))
                return false;
            out = Value(nullptr);
            return true;
        }
        if (c == 't') {
            if (!consumeWord("true"))
                return false;
            out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!consumeWord("false"))
                return false;
            out = Value(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == '[') {
            pos++;
            out = Value::array();
            skipWs();
            if (!atEnd() && peek() == ']') {
                pos++;
                return true;
            }
            for (;;) {
                Value item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (atEnd())
                    return fail(pos, "unterminated array");
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                if (peek() == ']') {
                    pos++;
                    return true;
                }
                return fail(pos, "expected ',' or ']'");
            }
        }
        if (c == '{') {
            pos++;
            out = Value::object();
            skipWs();
            if (!atEnd() && peek() == '}') {
                pos++;
                return true;
            }
            for (;;) {
                skipWs();
                std::size_t key_at = pos;
                std::string key;
                if (!parseString(key))
                    return false;
                if (out.find(key))
                    return fail(key_at,
                                "duplicate key '" + key + "'");
                skipWs();
                if (!consume(':'))
                    return false;
                Value item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.set(std::move(key), std::move(item));
                skipWs();
                if (atEnd())
                    return fail(pos, "unterminated object");
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                if (peek() == '}') {
                    pos++;
                    return true;
                }
                return fail(pos, "expected ',' or '}'");
            }
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            double d = 0.0;
            if (!parseNumber(d))
                return false;
            out = Value(d);
            return true;
        }
        return fail(pos, "unexpected character");
    }
};

} // namespace

Expected<Value, ParseError>
parse(std::string_view text)
{
    Parser p;
    p.text = text;
    Value out;
    if (!p.parseValue(out, 0))
        return Expected<Value, ParseError>::failure(
            p.err.value_or(ParseError{p.pos, "parse error"}));
    p.skipWs();
    if (!p.atEnd())
        return Expected<Value, ParseError>::failure(
            ParseError{p.pos, "trailing characters after value"});
    return out;
}

} // namespace gpm::json
