#include "service/server.hh"

#include <sys/socket.h>

#include "service/fault.hh"
#include "util/logging.hh"

namespace gpm
{

using json::Value;

GpmServer::GpmServer(ScenarioService &svc_, TcpListener listener_,
                     ServerOptions opts_)
    : svc(svc_), listener(std::move(listener_)), opts(opts_)
{
}

GpmServer::~GpmServer() { stopAndDrain(); }

void
GpmServer::run()
{
    for (;;) {
        int cfd = listener.acceptFd();
        if (cfd < 0)
            return;
        if (fault::armed())
            fault::maybeDelay(fault::Point::AcceptDelay);
        std::lock_guard<std::mutex> lock(connMtx);
        if (stopping) {
            ::shutdown(cfd, SHUT_RDWR);
            ::close(cfd);
            return;
        }
        connections++;
        std::size_t slot = connFds.size();
        connFds.push_back(cfd);
        connBusy.push_back(0);
        connThreads.emplace_back(&GpmServer::serveConn, this, cfd,
                                 slot);
    }
}

void
GpmServer::requestStop()
{
    listener.shutdownListener();
}

void
GpmServer::stopAndDrain()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(connMtx);
        if (drained)
            return;
        drained = true;
    }
    // Finish queued scenario work first: connections blocked in
    // submit() get their responses before their sockets go away.
    svc.drain();
    {
        std::lock_guard<std::mutex> lock(connMtx);
        stopping = true;
        // Only idle connections (blocked in readLine) are shut down
        // here; one mid-request finishes writing its response, sees
        // `stopping`, and exits on its own — a drain never cuts off
        // a response whose work was already done.
        for (std::size_t i = 0; i < connFds.size(); i++)
            if (connFds[i] >= 0 && !connBusy[i])
                ::shutdown(connFds[i], SHUT_RDWR);
    }
    for (auto &t : connThreads)
        if (t.joinable())
            t.join();
    listener.close();
}

namespace
{

std::string
errorResponse(const Value &id, const std::string &code,
              const std::string &message)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", false);
    Value err = Value::object();
    err.set("code", code);
    err.set("message", message);
    root.set("error", std::move(err));
    return root.dump();
}

std::string
okResponse(const Value &id, Value result)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", true);
    root.set("result", std::move(result));
    return root.dump();
}

} // namespace

void
GpmServer::serveConn(int fd, std::size_t slot)
{
    TcpStream stream(fd);
    if (opts.idleTimeoutMs > 0)
        stream.setReadTimeoutMs(opts.idleTimeoutMs);
    if (opts.writeTimeoutMs > 0)
        stream.setWriteTimeoutMs(opts.writeTimeoutMs);
    std::string line;
    for (;;) {
        TcpStream::ReadStatus st =
            stream.readLine(line, opts.maxLineBytes);
        if (st == TcpStream::ReadStatus::Timeout) {
            // Idle reap: a silent client no longer pins its thread.
            idleReaped++;
            break;
        }
        if (st == TcpStream::ReadStatus::TooLong) {
            // Answer structurally, then close: past an overrun the
            // stream can no longer be framed into lines.
            lineTooLong++;
            stream.writeAll(errorResponse(
                                Value(nullptr), "line_too_long",
                                "request line exceeds " +
                                    std::to_string(
                                        opts.maxLineBytes) +
                                    " bytes") +
                            "\n");
            break;
        }
        if (st != TcpStream::ReadStatus::Line)
            break; // EOF, error, or shutdown
        if (fault::armed() && fault::fire(fault::Point::ReadDrop))
            continue; // pretend the request was lost in transit
        // Blank lines are keep-alive noise, not requests.
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue;
        requests++;
        {
            // Mark the slot mid-request so a concurrent
            // stopAndDrain() lets this response go out instead of
            // shutting the socket down underneath the write.
            std::lock_guard<std::mutex> lock(connMtx);
            if (stopping)
                break;
            connBusy[slot] = 1;
        }
        if (fault::armed())
            fault::maybeDelay(fault::Point::ConnStall);
        bool want_stop = false;
        std::string response = handleLine(line, want_stop);
        if (fault::armed())
            fault::maybeDelay(fault::Point::ResponseDelay);
        bool wrote = stream.writeAll(response + "\n");
        bool stop_now;
        {
            std::lock_guard<std::mutex> lock(connMtx);
            connBusy[slot] = 0;
            stop_now = stopping;
        }
        if (!wrote || stop_now)
            break;
        if (want_stop) {
            requestStop();
            break;
        }
    }
    // Mark the slot dead *before* the fd closes so stopAndDrain()
    // can never shut down a kernel-recycled fd number.
    std::lock_guard<std::mutex> lock(connMtx);
    connFds[slot] = -1;
}

std::string
GpmServer::handleLine(const std::string &line, bool &want_stop)
{
    Value id(nullptr);

    auto parsed = json::parse(line);
    if (!parsed.ok())
        return errorResponse(id, "parse",
                             parsed.error().message + " at offset " +
                                 std::to_string(
                                     parsed.error().offset));
    const Value &req = parsed.value();
    if (!req.isObject())
        return errorResponse(id, "parse",
                             "request must be a JSON object");

    if (const Value *rid = req.find("id")) {
        if (!rid->isScalar())
            return errorResponse(id, "invalid",
                                 "id must be a scalar");
        id = *rid;
    }
    for (const auto &[key, val] : req.asObject()) {
        (void)val;
        if (key != "id" && key != "verb" && key != "scenario")
            return errorResponse(
                id, "invalid", "unknown request field '" + key +
                    "'");
    }

    const Value *verb = req.find("verb");
    if (!verb || !verb->isString())
        return errorResponse(id, "invalid",
                             "missing or non-string 'verb'");
    const std::string &v = verb->asString();

    if (v == "ping") {
        Value result = Value::object();
        result.set("pong", true);
        return okResponse(id, std::move(result));
    }

    if (v == "stats") {
        ServiceStats s = svc.stats();
        Value result = Value::object();
        result.set("uptimeSec", s.uptimeSec);
        result.set("served", s.served);
        result.set("cacheHits", s.cacheHits);
        result.set("cacheMisses", s.cacheMisses);
        result.set("cacheHitRate", s.cacheHitRate);
        result.set("cacheSize", s.cacheSize);
        result.set("queueDepth", s.queueDepth);
        result.set("inFlight", s.inFlight);
        result.set("rejectedBusy", s.rejectedBusy);
        result.set("invalid", s.invalid);
        result.set("shedDeadline", s.shedDeadline);
        result.set("workerCrashes", s.workerCrashes);
        result.set("workersAlive", s.workersAlive);
        result.set("connections", connections.load());
        result.set("requests", requests.load());
        result.set("idleReaped", idleReaped.load());
        result.set("lineTooLong", lineTooLong.load());
        result.set("faultsArmed", fault::armed());
        return okResponse(id, std::move(result));
    }

    if (v == "submit") {
        const Value *scenario = req.find("scenario");
        if (!scenario)
            return errorResponse(id, "invalid",
                                 "submit needs a 'scenario'");
        auto spec = parseScenario(*scenario);
        if (!spec.ok())
            return errorResponse(id, "invalid", spec.error());
        ScenarioService::Response r = svc.submit(spec.value());
        if (!r.ok)
            return errorResponse(id, r.errorCode, r.errorMessage);
        // The payload is already serialized JSON; splice it in
        // verbatim so cached and computed responses are
        // byte-identical in their "result" field.
        Value head = Value::object();
        head.set("id", id);
        head.set("ok", true);
        head.set("cached", r.cacheHit);
        std::string out = head.dump();
        out.pop_back(); // strip '}'
        out += ",\"result\":" + r.payload + "}";
        return out;
    }

    if (v == "shutdown") {
        want_stop = true;
        Value result = Value::object();
        result.set("stopping", true);
        return okResponse(id, std::move(result));
    }

    return errorResponse(id, "invalid", "unknown verb '" + v + "'");
}

} // namespace gpm
