#include "service/server.hh"

#include <condition_variable>
#include <cstdio>

#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

using json::Value;

struct GpmServer::ConnState
{
    explicit ConnState(int fd) : stream(fd) {}

    TcpStream stream;
    /** Serializes response-line writes from the reader thread and
     *  worker-thread completion callbacks. */
    std::mutex writeMtx;
    /** A write failed; the reader stops reading new requests. */
    std::atomic<bool> broken{false};

    std::mutex pendMtx;
    std::condition_variable pendCv;
    /** Dispatched responses not yet written. */
    std::size_t pending = 0;

    void
    addPending(std::size_t n)
    {
        std::lock_guard<std::mutex> lock(pendMtx);
        pending += n;
    }

    void
    decPending(std::size_t n = 1)
    {
        {
            std::lock_guard<std::mutex> lock(pendMtx);
            pending -= n;
        }
        pendCv.notify_all();
    }

    std::size_t
    pendingCount()
    {
        std::lock_guard<std::mutex> lock(pendMtx);
        return pending;
    }

    /** Block until every dispatched response has been written (or
     *  abandoned via decPending). */
    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(pendMtx);
        pendCv.wait(lock, [&] { return pending == 0; });
    }
};

GpmServer::GpmServer(ScenarioService &svc_, TcpListener listener_,
                     ServerOptions opts_)
    : svc(svc_), listener(std::move(listener_)), opts(opts_)
{
}

GpmServer::~GpmServer() { stopAndDrain(); }

void
GpmServer::run()
{
    for (;;) {
        int cfd = listener.acceptFd();
        if (cfd < 0)
            return;
        if (fault::armed())
            fault::maybeDelay(fault::Point::AcceptDelay);
        std::lock_guard<std::mutex> lock(connMtx);
        if (stopping) {
            auto doomed = std::make_shared<ConnState>(cfd);
            doomed->stream.shutdownBoth();
            return;
        }
        connections++;
        std::size_t slot = conns.size();
        // Fairness identity: the 1-based accept ordinal. Never 0 —
        // 0 is the exempt in-process caller.
        std::uint64_t clientId = connections.load();
        auto conn = std::make_shared<ConnState>(cfd);
        conns.push_back(conn);
        connBusy.push_back(0);
        connThreads.emplace_back(&GpmServer::serveConn, this,
                                 std::move(conn), slot, clientId);
    }
}

void
GpmServer::requestStop()
{
    listener.shutdownListener();
}

void
GpmServer::stopAndDrain()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(connMtx);
        if (drained)
            return;
        drained = true;
    }
    // Finish dispatched scenario work first: every pending response
    // is computed and written (the workers invoke the connections'
    // completion callbacks) before any socket goes away.
    svc.drain();
    {
        std::lock_guard<std::mutex> lock(connMtx);
        stopping = true;
        // Only idle connections (blocked in readLine) are shut down
        // here; one mid-request finishes its inline handling, sees
        // `stopping`, and exits on its own — a drain never cuts off
        // a response whose work was already done.
        for (std::size_t i = 0; i < conns.size(); i++)
            if (conns[i] && !connBusy[i])
                conns[i]->stream.shutdownBoth();
    }
    for (auto &t : connThreads)
        if (t.joinable())
            t.join();
    listener.close();
}

namespace
{

std::string
errorResponse(const Value &id, const std::string &code,
              const std::string &message,
              double retryAfterMs = 0.0)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", false);
    Value err = Value::object();
    err.set("code", code);
    err.set("message", message);
    if (retryAfterMs > 0.0)
        err.set("retryAfterMs", retryAfterMs);
    root.set("error", std::move(err));
    return root.dump();
}

/** The "degraded": {from, to, reason} marker for responses the
 *  ladder served one or more rungs down. */
Value
degradedMarker(const ScenarioService::Response &r)
{
    Value d = Value::object();
    d.set("from", r.degradedFrom);
    d.set("to", r.degradedTo);
    d.set("reason", r.degradedReason);
    return d;
}

std::string
okResponse(const Value &id, Value result)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", true);
    root.set("result", std::move(result));
    return root.dump();
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Single-submit response: the payload is already serialized JSON,
 *  spliced in verbatim so cached and computed responses are
 *  byte-identical in their "result" field. */
std::string
submitResponse(const Value &id, const ScenarioService::Response &r)
{
    if (!r.ok)
        return errorResponse(id, r.errorCode, r.errorMessage,
                             r.retryAfterMs);
    Value head = Value::object();
    head.set("id", id);
    head.set("ok", true);
    head.set("cached", r.cacheHit);
    if (!r.degradedTo.empty())
        head.set("degraded", degradedMarker(r));
    std::string out = head.dump();
    out.pop_back(); // strip '}'
    out += ",\"result\":" + r.payload + "}";
    return out;
}

/** One submit_batch per-scenario response line: position in the
 *  request array plus the canonical hash, so clients can match
 *  out-of-order completions however they prefer. */
std::string
batchResponse(const Value &id, std::size_t index,
              const ScenarioService::Response &r)
{
    Value head = Value::object();
    head.set("id", id);
    head.set("ok", r.ok);
    head.set("index", index);
    head.set("hash", hashHex(r.hash));
    if (!r.ok) {
        Value err = Value::object();
        err.set("code", r.errorCode);
        err.set("message", r.errorMessage);
        if (r.retryAfterMs > 0.0)
            err.set("retryAfterMs", r.retryAfterMs);
        head.set("error", std::move(err));
        return head.dump();
    }
    head.set("cached", r.cacheHit);
    if (!r.degradedTo.empty())
        head.set("degraded", degradedMarker(r));
    std::string out = head.dump();
    out.pop_back(); // strip '}'
    out += ",\"result\":" + r.payload + "}";
    return out;
}

} // namespace

void
GpmServer::writeLine(ConnState &conn, const std::string &line)
{
    if (fault::armed())
        fault::maybeDelay(fault::Point::ResponseDelay);
    std::lock_guard<std::mutex> lock(conn.writeMtx);
    if (!conn.stream.writeAll(line + "\n"))
        conn.broken.store(true, std::memory_order_relaxed);
}

void
GpmServer::serveConn(std::shared_ptr<ConnState> conn,
                     std::size_t slot, std::uint64_t clientId)
{
    if (opts.idleTimeoutMs > 0)
        conn->stream.setReadTimeoutMs(opts.idleTimeoutMs);
    if (opts.writeTimeoutMs > 0)
        conn->stream.setWriteTimeoutMs(opts.writeTimeoutMs);
    std::string line;
    for (;;) {
        TcpStream::ReadStatus st =
            conn->stream.readLine(line, opts.maxLineBytes);
        if (st == TcpStream::ReadStatus::Timeout) {
            // A connection still owed responses is waiting on
            // workers, not idling — keep reading (pipelining).
            if (conn->pendingCount() > 0)
                continue;
            // Idle reap: a silent client no longer pins its thread.
            idleReaped++;
            break;
        }
        if (st == TcpStream::ReadStatus::TooLong) {
            // Answer structurally, then close: past an overrun the
            // stream can no longer be framed into lines.
            lineTooLong++;
            writeLine(*conn,
                      errorResponse(Value(nullptr), "line_too_long",
                                    "request line exceeds " +
                                        std::to_string(
                                            opts.maxLineBytes) +
                                        " bytes"));
            break;
        }
        if (st != TcpStream::ReadStatus::Line)
            break; // EOF, error, or shutdown
        if (fault::armed() && fault::fire(fault::Point::ReadDrop))
            continue; // pretend the request was lost in transit
        // Blank lines are keep-alive noise, not requests.
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue;
        requests++;
        {
            // Mark the slot mid-request so a concurrent
            // stopAndDrain() lets the inline handling finish
            // instead of shutting the socket down underneath it.
            std::lock_guard<std::mutex> lock(connMtx);
            if (stopping)
                break;
            connBusy[slot] = 1;
        }
        if (fault::armed())
            fault::maybeDelay(fault::Point::ConnStall);
        bool want_stop = false;
        handleLine(conn, line, want_stop, clientId);
        bool stop_now;
        {
            std::lock_guard<std::mutex> lock(connMtx);
            connBusy[slot] = 0;
            stop_now = stopping;
        }
        if (conn->broken.load(std::memory_order_relaxed) ||
            stop_now)
            break;
        if (want_stop) {
            requestStop();
            break;
        }
    }
    // Every dispatched response must be written (or abandoned)
    // before the stream can die: worker callbacks hold a reference
    // to this ConnState and write through it.
    conn->waitIdle();
    // Drop the server's reference *before* the fd closes so
    // stopAndDrain() can never shut down a kernel-recycled fd.
    std::lock_guard<std::mutex> lock(connMtx);
    conns[slot].reset();
}

void
GpmServer::handleLine(const std::shared_ptr<ConnState> &conn,
                      const std::string &line, bool &want_stop,
                      std::uint64_t clientId)
{
    Value id(nullptr);

    auto parsed = json::parse(line);
    if (!parsed.ok()) {
        writeLine(*conn,
                  errorResponse(id, "parse",
                                parsed.error().message +
                                    " at offset " +
                                    std::to_string(
                                        parsed.error().offset)));
        return;
    }
    const Value &req = parsed.value();
    if (!req.isObject()) {
        writeLine(*conn,
                  errorResponse(id, "parse",
                                "request must be a JSON object"));
        return;
    }

    if (const Value *rid = req.find("id")) {
        if (!rid->isScalar()) {
            writeLine(*conn, errorResponse(id, "invalid",
                                           "id must be a scalar"));
            return;
        }
        id = *rid;
    }
    for (const auto &[key, val] : req.asObject()) {
        (void)val;
        if (key != "id" && key != "verb" && key != "scenario" &&
            key != "scenarios") {
            writeLine(*conn,
                      errorResponse(id, "invalid",
                                    "unknown request field '" +
                                        key + "'"));
            return;
        }
    }

    const Value *verb = req.find("verb");
    if (!verb || !verb->isString()) {
        writeLine(*conn,
                  errorResponse(id, "invalid",
                                "missing or non-string 'verb'"));
        return;
    }
    const std::string &v = verb->asString();

    if (v == "ping") {
        Value result = Value::object();
        result.set("pong", true);
        writeLine(*conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "stats") {
        ServiceStats s = svc.stats();
        Value result = Value::object();
        result.set("uptimeSec", s.uptimeSec);
        result.set("served", s.served);
        result.set("cacheHits", s.cacheHits);
        result.set("cacheMisses", s.cacheMisses);
        result.set("cacheHitRate", s.cacheHitRate);
        result.set("cacheSize", s.cacheSize);
        result.set("queueDepth", s.queueDepth);
        result.set("inFlight", s.inFlight);
        result.set("rejectedBusy", s.rejectedBusy);
        result.set("invalid", s.invalid);
        result.set("shedDeadline", s.shedDeadline);
        result.set("workerCrashes", s.workerCrashes);
        result.set("workersAlive", s.workersAlive);
        result.set("batchRequests", s.batchRequests);
        result.set("diskHits", s.diskHits);
        result.set("diskEvictions", s.diskEvictions);
        result.set("diskQuarantined", s.diskQuarantined);
        result.set("diskEntries", s.diskEntries);
        result.set("diskBytes", s.diskBytes);
        result.set("cancelledMidSweep", s.cancelledMidSweep);
        result.set("clusterRequests", s.clusterRequests);
        result.set("clusterEpochs", s.clusterEpochs);
        result.set("chipSims", s.chipSims);
        result.set("profileBuilds", s.profileBuilds);
        result.set("profileDiskHits", s.profileDiskHits);
        result.set("profileBuildMs", s.profileBuildMs);
        result.set("profileReady", s.profileReady);
        result.set("profileQuarantined", s.profileQuarantined);
        result.set("shedOverload", s.shedOverload);
        result.set("degradedRequests", s.degradedRequests);
        result.set("breakerOpens",
                   s.diskBreakerOpens + s.profileBreakerOpens);
        result.set("breakerRefusals",
                   s.diskBreakerRefusals +
                       s.profileBreakerRefusals);
        result.set("breakerStateDisk",
                   std::string(s.diskBreakerState));
        result.set("breakerStateProfile",
                   std::string(s.profileBreakerState));
        result.set("connections", connections.load());
        result.set("requests", requests.load());
        result.set("idleReaped", idleReaped.load());
        result.set("lineTooLong", lineTooLong.load());
        result.set("faultsArmed", fault::armed());
        writeLine(*conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "submit") {
        const Value *scenario = req.find("scenario");
        if (!scenario) {
            writeLine(*conn,
                      errorResponse(id, "invalid",
                                    "submit needs a 'scenario'"));
            return;
        }
        auto spec = parseScenario(*scenario);
        if (!spec.ok()) {
            writeLine(*conn,
                      errorResponse(id, "invalid", spec.error()));
            return;
        }
        // Dispatch and return to reading: the response line is
        // written whenever the service completes it (immediately
        // for cache hits and rejections).
        conn->addPending(1);
        GpmServer *self = this;
        svc.submitAsync(
            spec.value(),
            [self, conn, id](ScenarioService::Response &&r) {
                self->writeLine(*conn, submitResponse(id, r));
                conn->decPending();
            },
            clientId);
        return;
    }

    if (v == "submit_batch") {
        const Value *scenarios = req.find("scenarios");
        if (!scenarios || !scenarios->isArray()) {
            writeLine(*conn,
                      errorResponse(
                          id, "invalid",
                          "submit_batch needs a 'scenarios' array"));
            return;
        }
        const Value::Array &arr = scenarios->asArray();
        if (arr.empty()) {
            writeLine(*conn,
                      errorResponse(id, "invalid",
                                    "'scenarios' must not be "
                                    "empty"));
            return;
        }
        std::vector<ScenarioSpec> specs;
        specs.reserve(arr.size());
        for (std::size_t i = 0; i < arr.size(); i++) {
            auto spec = parseScenario(arr[i]);
            if (!spec.ok()) {
                writeLine(*conn,
                          errorResponse(id, "invalid",
                                        "scenario " +
                                            std::to_string(i) +
                                            ": " + spec.error()));
                return;
            }
            specs.push_back(std::move(spec.value()));
        }
        // Count the whole batch as pending before dispatch: hit
        // callbacks fire synchronously inside submitBatch.
        conn->addPending(specs.size());
        GpmServer *self = this;
        auto outcome = svc.submitBatch(
            specs,
            [self, conn, id](std::size_t index,
                             ScenarioService::Response &&r) {
                self->writeLine(*conn, batchResponse(id, index, r));
                conn->decPending();
            },
            clientId);
        if (!outcome.admitted) {
            // No per-scenario callback fired or ever will: answer
            // with one batch-level error line (no "index").
            conn->decPending(specs.size());
            writeLine(*conn,
                      errorResponse(id, outcome.errorCode,
                                    outcome.errorMessage,
                                    outcome.retryAfterMs));
        }
        return;
    }

    if (v == "shutdown") {
        want_stop = true;
        Value result = Value::object();
        result.set("stopping", true);
        writeLine(*conn, okResponse(id, std::move(result)));
        return;
    }

    writeLine(*conn,
              errorResponse(id, "invalid",
                            "unknown verb '" + v + "'"));
}

} // namespace gpm
