#include "service/server.hh"

#include "service/prom.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

using json::Value;

GpmServer::GpmServer(ScenarioService &svc_, TcpListener listener_,
                     ServerOptions opts_)
    : svc(svc_), listener(std::move(listener_)), opts(opts_)
{
    ReactorOptions ropts;
    ropts.threads = opts.reactorThreads;
    ropts.idleTimeoutMs = opts.idleTimeoutMs;
    ropts.writeTimeoutMs = opts.writeTimeoutMs;
    ropts.maxLineBytes = opts.maxLineBytes;
    // Convert to the private base here, in member context, where
    // the conversion is accessible.
    ReactorHandler &handler = *this;
    pool = std::make_unique<ReactorPool>(handler, ropts);
    pool->serveListener(listener.fd());
}

GpmServer::~GpmServer() { stopAndDrain(); }

void
GpmServer::attachMetricsListener(TcpListener l)
{
    metricsListener = std::move(l);
    pool->serveHttpListener(metricsListener.fd());
}

void
GpmServer::run()
{
    pool->start();
    std::unique_lock<std::mutex> lock(stopMtx);
    stopCv.wait(lock, [&] { return acceptClosed; });
}

void
GpmServer::requestStop()
{
    listener.shutdownListener();
}

void
GpmServer::onAcceptDone()
{
    std::lock_guard<std::mutex> lock(stopMtx);
    acceptClosed = true;
    stopCv.notify_all();
}

void
GpmServer::stopAndDrain()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(stopMtx);
        if (drained)
            return;
        drained = true;
    }
    // Finish dispatched scenario work first: every pending response
    // is computed and enqueued (the workers invoke the connections'
    // completion callbacks) before any socket goes away.
    svc.drain();
    // Then flush what is queued, close every connection and join
    // the reactor threads.
    pool->shutdownAndJoin();
    listener.close();
    metricsListener.close();
}

namespace
{

std::string
errorResponse(const Value &id, const std::string &code,
              const std::string &message,
              double retryAfterMs = 0.0)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", false);
    Value err = Value::object();
    err.set("code", code);
    err.set("message", message);
    if (retryAfterMs > 0.0)
        err.set("retryAfterMs", retryAfterMs);
    root.set("error", std::move(err));
    return root.dump();
}

/** The "degraded": {from, to, reason} marker for responses the
 *  ladder served one or more rungs down. */
Value
degradedMarker(const ScenarioService::Response &r)
{
    Value d = Value::object();
    d.set("from", r.degradedFrom);
    d.set("to", r.degradedTo);
    d.set("reason", r.degradedReason);
    return d;
}

std::string
okResponse(const Value &id, Value result)
{
    Value root = Value::object();
    root.set("id", id);
    root.set("ok", true);
    root.set("result", std::move(result));
    return root.dump();
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Single-submit response: the payload is already serialized JSON,
 *  spliced in verbatim so cached and computed responses are
 *  byte-identical in their "result" field. */
std::string
submitResponse(const Value &id, const ScenarioService::Response &r)
{
    if (!r.ok)
        return errorResponse(id, r.errorCode, r.errorMessage,
                             r.retryAfterMs);
    Value head = Value::object();
    head.set("id", id);
    head.set("ok", true);
    head.set("cached", r.cacheHit);
    if (!r.degradedTo.empty())
        head.set("degraded", degradedMarker(r));
    std::string out = head.dump();
    out.pop_back(); // strip '}'
    out += ",\"result\":" + r.payload + "}";
    return out;
}

/** One submit_batch per-scenario response line: position in the
 *  request array plus the canonical hash, so clients can match
 *  out-of-order completions however they prefer. */
std::string
batchResponse(const Value &id, std::size_t index,
              const ScenarioService::Response &r)
{
    Value head = Value::object();
    head.set("id", id);
    head.set("ok", r.ok);
    head.set("index", index);
    head.set("hash", hashHex(r.hash));
    if (!r.ok) {
        Value err = Value::object();
        err.set("code", r.errorCode);
        err.set("message", r.errorMessage);
        if (r.retryAfterMs > 0.0)
            err.set("retryAfterMs", r.retryAfterMs);
        head.set("error", std::move(err));
        return head.dump();
    }
    head.set("cached", r.cacheHit);
    if (!r.degradedTo.empty())
        head.set("degraded", degradedMarker(r));
    std::string out = head.dump();
    out.pop_back(); // strip '}'
    out += ",\"result\":" + r.payload + "}";
    return out;
}

/** Frame one complete HTTP/1.0 response. */
std::string
httpResponse(int code, const char *status, const char *ctype,
             std::string body)
{
    std::string r = "HTTP/1.0 ";
    r += std::to_string(code);
    r += ' ';
    r += status;
    r += "\r\nContent-Type: ";
    r += ctype;
    r += "\r\nContent-Length: ";
    r += std::to_string(body.size());
    r += "\r\nConnection: close\r\n\r\n";
    r += body;
    return r;
}

} // namespace

void
GpmServer::sendLine(const std::shared_ptr<ReactorConn> &conn,
                    std::string line)
{
    line.push_back('\n');
    conn->send(std::move(line));
}

std::string
GpmServer::onLineTooLong()
{
    std::string line = errorResponse(
        Value(nullptr), "line_too_long",
        "request line exceeds " +
            std::to_string(opts.maxLineBytes) + " bytes");
    line.push_back('\n');
    return line;
}

std::string
GpmServer::onHttpRequest(std::string_view method,
                         std::string_view path)
{
    if (method != "GET")
        return httpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "method not allowed\n");
    if (path == "/healthz")
        return httpResponse(200, "OK",
                            "text/plain; charset=utf-8", "ok\n");
    if (path == "/metrics") {
        ServerCounters c;
        c.connections = pool->stats().accepted;
        c.requests = requests.load(std::memory_order_relaxed);
        c.reactorThreads = opts.reactorThreads;
        return httpResponse(
            200, "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            renderPrometheus(svc.stats(), pool->stats(), c));
    }
    return httpResponse(404, "Not Found",
                        "text/plain; charset=utf-8",
                        "not found\n");
}

void
GpmServer::onLine(const std::shared_ptr<ReactorConn> &conn,
                  std::string_view line)
{
    requests++;
    Value id(nullptr);

    auto parsed = json::parse(line);
    if (!parsed.ok()) {
        sendLine(conn,
                 errorResponse(id, "parse",
                               parsed.error().message +
                                   " at offset " +
                                   std::to_string(
                                       parsed.error().offset)));
        return;
    }
    const Value &req = parsed.value();
    if (!req.isObject()) {
        sendLine(conn,
                 errorResponse(id, "parse",
                               "request must be a JSON object"));
        return;
    }

    if (const Value *rid = req.find("id")) {
        if (!rid->isScalar()) {
            sendLine(conn, errorResponse(id, "invalid",
                                         "id must be a scalar"));
            return;
        }
        id = *rid;
    }
    for (const auto &[key, val] : req.asObject()) {
        (void)val;
        if (key != "id" && key != "verb" && key != "scenario" &&
            key != "scenarios") {
            sendLine(conn,
                     errorResponse(id, "invalid",
                                   "unknown request field '" +
                                       key + "'"));
            return;
        }
    }

    const Value *verb = req.find("verb");
    if (!verb || !verb->isString()) {
        sendLine(conn,
                 errorResponse(id, "invalid",
                               "missing or non-string 'verb'"));
        return;
    }
    const std::string &v = verb->asString();

    if (v == "ping") {
        Value result = Value::object();
        result.set("pong", true);
        sendLine(conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "stats") {
        ServiceStats s = svc.stats();
        ReactorStats r = pool->stats();
        Value result = Value::object();
        result.set("uptimeSec", s.uptimeSec);
        result.set("served", s.served);
        result.set("cacheHits", s.cacheHits);
        result.set("cacheMisses", s.cacheMisses);
        result.set("cacheHitRate", s.cacheHitRate);
        result.set("cacheSize", s.cacheSize);
        result.set("queueDepth", s.queueDepth);
        result.set("inFlight", s.inFlight);
        result.set("rejectedBusy", s.rejectedBusy);
        result.set("invalid", s.invalid);
        result.set("shedDeadline", s.shedDeadline);
        result.set("workerCrashes", s.workerCrashes);
        result.set("workersAlive", s.workersAlive);
        result.set("batchRequests", s.batchRequests);
        result.set("diskHits", s.diskHits);
        result.set("diskEvictions", s.diskEvictions);
        result.set("diskQuarantined", s.diskQuarantined);
        result.set("diskEntries", s.diskEntries);
        result.set("diskBytes", s.diskBytes);
        result.set("cancelledMidSweep", s.cancelledMidSweep);
        result.set("clusterRequests", s.clusterRequests);
        result.set("clusterEpochs", s.clusterEpochs);
        result.set("chipSims", s.chipSims);
        result.set("profileBuilds", s.profileBuilds);
        result.set("profileDiskHits", s.profileDiskHits);
        result.set("profileBuildMs", s.profileBuildMs);
        result.set("profileReady", s.profileReady);
        result.set("profileQuarantined", s.profileQuarantined);
        result.set("shedOverload", s.shedOverload);
        result.set("degradedRequests", s.degradedRequests);
        result.set("breakerOpens",
                   s.diskBreakerOpens + s.profileBreakerOpens);
        result.set("breakerRefusals",
                   s.diskBreakerRefusals +
                       s.profileBreakerRefusals);
        result.set("breakerStateDisk",
                   std::string(s.diskBreakerState));
        result.set("breakerStateProfile",
                   std::string(s.profileBreakerState));
        result.set("connections", r.accepted);
        result.set("requests", requests.load());
        result.set("idleReaped", r.idleReaped);
        result.set("lineTooLong", r.lineTooLong);
        result.set("openConnections", r.openConnections);
        result.set("epollWakeups", r.epollWakeups);
        result.set("bytesIn", r.bytesIn);
        result.set("bytesOut", r.bytesOut);
        result.set("ringHighWater", r.ringHighWater);
        result.set("acceptSheds", r.emfileSheds);
        result.set("faultsArmed", fault::armed());
        sendLine(conn, okResponse(id, std::move(result)));
        return;
    }

    if (v == "submit") {
        const Value *scenario = req.find("scenario");
        if (!scenario) {
            sendLine(conn,
                     errorResponse(id, "invalid",
                                   "submit needs a 'scenario'"));
            return;
        }
        auto spec = parseScenario(*scenario);
        if (!spec.ok()) {
            sendLine(conn,
                     errorResponse(id, "invalid", spec.error()));
            return;
        }
        // Dispatch and return to reading: the response line is
        // enqueued whenever the service completes it (immediately
        // for cache hits and rejections).
        conn->addPending(1);
        svc.submitAsync(
            spec.value(),
            [conn, id](ScenarioService::Response &&r) {
                sendLine(conn, submitResponse(id, r));
                conn->decPending();
            },
            conn->clientId());
        return;
    }

    if (v == "submit_batch") {
        const Value *scenarios = req.find("scenarios");
        if (!scenarios || !scenarios->isArray()) {
            sendLine(conn,
                     errorResponse(
                         id, "invalid",
                         "submit_batch needs a 'scenarios' array"));
            return;
        }
        const Value::Array &arr = scenarios->asArray();
        if (arr.empty()) {
            sendLine(conn,
                     errorResponse(id, "invalid",
                                   "'scenarios' must not be "
                                   "empty"));
            return;
        }
        std::vector<ScenarioSpec> specs;
        specs.reserve(arr.size());
        for (std::size_t i = 0; i < arr.size(); i++) {
            auto spec = parseScenario(arr[i]);
            if (!spec.ok()) {
                sendLine(conn,
                         errorResponse(id, "invalid",
                                       "scenario " +
                                           std::to_string(i) +
                                           ": " + spec.error()));
                return;
            }
            specs.push_back(std::move(spec.value()));
        }
        // Count the whole batch as pending before dispatch: hit
        // callbacks fire synchronously inside submitBatch.
        conn->addPending(specs.size());
        auto outcome = svc.submitBatch(
            specs,
            [conn, id](std::size_t index,
                       ScenarioService::Response &&r) {
                sendLine(conn, batchResponse(id, index, r));
                conn->decPending();
            },
            conn->clientId());
        if (!outcome.admitted) {
            // No per-scenario callback fired or ever will: answer
            // with one batch-level error line (no "index").
            conn->decPending(specs.size());
            sendLine(conn,
                     errorResponse(id, outcome.errorCode,
                                   outcome.errorMessage,
                                   outcome.retryAfterMs));
        }
        return;
    }

    if (v == "shutdown") {
        Value result = Value::object();
        result.set("stopping", true);
        sendLine(conn, okResponse(id, std::move(result)));
        requestStop();
        return;
    }

    sendLine(conn, errorResponse(id, "invalid",
                                 "unknown verb '" + v + "'"));
}

} // namespace gpm
