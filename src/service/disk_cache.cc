#include "service/disk_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "util/binio.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/** On-disk entry layout: binio framing (magic, LE u64 payload
 *  length, LE u32 CRC32(payload), payload); the magic doubles as a
 *  format version. */
constexpr char kMagic[8] = {'G', 'P', 'M', 'C',
                            'A', 'C', 'H', '1'};

} // namespace

DiskCache::DiskCache(std::string dir_, std::uint64_t maxBytes_,
                     BreakerOptions breakerOpts)
    : dir(std::move(dir_)), maxBytes(maxBytes_),
      breaker(breakerOpts)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        warn("disk cache: cannot create %s: %s", dir.c_str(),
             std::strerror(errno));
    std::lock_guard<std::mutex> lock(mtx);
    scanDirLocked();
}

std::string
DiskCache::fileNameFor(std::uint64_t hash)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx.gpmc",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
DiskCache::pathFor(std::uint64_t hash) const
{
    return dir + "/" + fileNameFor(hash);
}

void
DiskCache::scanDirLocked()
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    struct Found
    {
        std::uint64_t hash;
        std::uint64_t bytes;
        time_t mtime;
    };
    std::vector<Found> found;
    while (const dirent *e = ::readdir(d)) {
        const char *name = e->d_name;
        std::size_t len = std::strlen(name);
        if (len != 16 + 5 || std::strcmp(name + 16, ".gpmc") != 0)
            continue;
        char *end = nullptr;
        std::uint64_t hash = std::strtoull(name, &end, 16);
        if (end != name + 16)
            continue;
        struct stat st;
        std::string path = dir + "/" + name;
        if (::stat(path.c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode))
            continue;
        found.push_back({hash,
                         static_cast<std::uint64_t>(st.st_size),
                         st.st_mtime});
    }
    ::closedir(d);
    // Oldest first so the LRU back holds the stalest entries; ties
    // break on hash for a deterministic order.
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.hash < b.hash;
              });
    for (const Found &f : found)
        insertLocked(f.hash, f.bytes);
}

void
DiskCache::insertLocked(std::uint64_t hash, std::uint64_t bytes)
{
    auto it = index.find(hash);
    if (it != index.end()) {
        totalBytes -= it->second->bytes;
        it->second->bytes = bytes;
        totalBytes += bytes;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front({hash, bytes});
    index[hash] = lru.begin();
    totalBytes += bytes;
}

void
DiskCache::touchLocked(std::uint64_t hash)
{
    auto it = index.find(hash);
    if (it != index.end())
        lru.splice(lru.begin(), lru, it->second);
}

void
DiskCache::forgetLocked(std::uint64_t hash)
{
    auto it = index.find(hash);
    if (it == index.end())
        return;
    totalBytes -= it->second->bytes;
    lru.erase(it->second);
    index.erase(it);
}

void
DiskCache::evictToBudgetLocked()
{
    if (maxBytes == 0)
        return;
    while (totalBytes > maxBytes && !lru.empty()) {
        const Entry victim = lru.back();
        // Unlink before forgetting so a failed unlink (already gone
        // — e.g. another daemon evicted it) still drops the entry.
        if (::unlink(pathFor(victim.hash).c_str()) != 0 &&
            errno != ENOENT)
            warn("disk cache: cannot evict %s: %s",
                 fileNameFor(victim.hash).c_str(),
                 std::strerror(errno));
        forgetLocked(victim.hash);
        evictions++;
    }
}

void
DiskCache::quarantineLocked(const std::string &path,
                            std::uint64_t hash)
{
    quarantined++;
    std::string aside = path + ".corrupt";
    if (::rename(path.c_str(), aside.c_str()) != 0) {
        warn("disk cache: cannot quarantine %s: %s", path.c_str(),
             std::strerror(errno));
        ::unlink(path.c_str());
    } else {
        warn("disk cache: quarantined corrupt entry %s",
             aside.c_str());
    }
    forgetLocked(hash);
}

bool
DiskCache::get(std::uint64_t hash, std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    // Breaker open: the disk is (still) considered sick — an
    // immediate miss costs nothing, the memory tier serves alone.
    if (!breaker.allow()) {
        breakerRefusals++;
        misses++;
        return false;
    }
    // A stalled read is the failure mode breakers exist for: pay
    // the injected delay once, count it against the window.
    if (fault::armed() &&
        fault::maybeDelay(fault::Point::DiskReadStall)) {
        breaker.recordFailure();
        misses++;
        return false;
    }
    std::string path = pathFor(hash);
    std::string raw;
    // Probe the filesystem even when the index misses: another
    // process sharing the directory may have committed the entry
    // after our startup scan.
    if (!binio::readWholeFile(path, raw)) {
        forgetLocked(hash); // index said present, disk disagrees
        // A plain absence is a healthy answer, not an I/O fault.
        breaker.recordSuccess();
        misses++;
        return false;
    }

    bool corrupt = !binio::unframe(kMagic, raw, payload);
    if (!corrupt && fault::armed() &&
        fault::fire(fault::Point::DiskReadCorrupt))
        corrupt = true;
    if (corrupt) {
        breaker.recordFailure();
        quarantineLocked(path, hash);
        misses++;
        return false;
    }

    breaker.recordSuccess();
    insertLocked(hash, raw.size());
    hits++;
    return true;
}

void
DiskCache::put(std::uint64_t hash, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    // Writing to a disk the breaker holds open would stall the
    // worker the same way reads did; skip until a read probe
    // closes it. (Half-open is fine: the probe is a read.)
    if (breaker.state() == CircuitBreaker::State::Open) {
        breakerRefusals++;
        return;
    }
    if (index.count(hash)) {
        touchLocked(hash);
        return;
    }
    if (fault::armed() && fault::fire(fault::Point::DiskWriteFail)) {
        writeFailures++;
        return;
    }

    std::string blob = binio::frame(kMagic, payload);
    if (!binio::writeFileAtomic(pathFor(hash), blob)) {
        writeFailures++;
        warn("disk cache: cannot commit %s: %s",
             fileNameFor(hash).c_str(), std::strerror(errno));
        return;
    }

    insertLocked(hash, blob.size());
    evictToBudgetLocked();
}

DiskCacheStats
DiskCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    DiskCacheStats s;
    s.hits = hits;
    s.misses = misses;
    s.evictions = evictions;
    s.quarantined = quarantined;
    s.writeFailures = writeFailures;
    s.entries = lru.size();
    s.bytes = totalBytes;
    s.breakerRefusals = breakerRefusals;
    s.breakerOpens = breaker.opens();
    s.breakerState = breaker.stateName();
    return s;
}

} // namespace gpm
