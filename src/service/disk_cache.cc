#include "service/disk_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "service/fault.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/** On-disk entry layout: magic, payload length, CRC32(payload),
 *  payload bytes. All integers little-endian (the only hosts this
 *  targets); the magic doubles as a format version. */
constexpr char kMagic[8] = {'G', 'P', 'M', 'C',
                            'A', 'C', 'H', '1'};
constexpr std::size_t kHeaderBytes = 8 + 8 + 4;

/** Plain table-driven CRC32 (IEEE 802.3 polynomial). */
std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; i++)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
putLe(std::string &out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; i++)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint64_t
getLe(const char *p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; i++)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
            << (8 * i);
    return v;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char chunk[1 << 14];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, got);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace

DiskCache::DiskCache(std::string dir_, std::uint64_t maxBytes_)
    : dir(std::move(dir_)), maxBytes(maxBytes_)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        warn("disk cache: cannot create %s: %s", dir.c_str(),
             std::strerror(errno));
    std::lock_guard<std::mutex> lock(mtx);
    scanDirLocked();
}

std::string
DiskCache::fileNameFor(std::uint64_t hash)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx.gpmc",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
DiskCache::pathFor(std::uint64_t hash) const
{
    return dir + "/" + fileNameFor(hash);
}

void
DiskCache::scanDirLocked()
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    struct Found
    {
        std::uint64_t hash;
        std::uint64_t bytes;
        time_t mtime;
    };
    std::vector<Found> found;
    while (const dirent *e = ::readdir(d)) {
        const char *name = e->d_name;
        std::size_t len = std::strlen(name);
        if (len != 16 + 5 || std::strcmp(name + 16, ".gpmc") != 0)
            continue;
        char *end = nullptr;
        std::uint64_t hash = std::strtoull(name, &end, 16);
        if (end != name + 16)
            continue;
        struct stat st;
        std::string path = dir + "/" + name;
        if (::stat(path.c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode))
            continue;
        found.push_back({hash,
                         static_cast<std::uint64_t>(st.st_size),
                         st.st_mtime});
    }
    ::closedir(d);
    // Oldest first so the LRU back holds the stalest entries; ties
    // break on hash for a deterministic order.
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.hash < b.hash;
              });
    for (const Found &f : found)
        insertLocked(f.hash, f.bytes);
}

void
DiskCache::insertLocked(std::uint64_t hash, std::uint64_t bytes)
{
    auto it = index.find(hash);
    if (it != index.end()) {
        totalBytes -= it->second->bytes;
        it->second->bytes = bytes;
        totalBytes += bytes;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front({hash, bytes});
    index[hash] = lru.begin();
    totalBytes += bytes;
}

void
DiskCache::touchLocked(std::uint64_t hash)
{
    auto it = index.find(hash);
    if (it != index.end())
        lru.splice(lru.begin(), lru, it->second);
}

void
DiskCache::forgetLocked(std::uint64_t hash)
{
    auto it = index.find(hash);
    if (it == index.end())
        return;
    totalBytes -= it->second->bytes;
    lru.erase(it->second);
    index.erase(it);
}

void
DiskCache::evictToBudgetLocked()
{
    if (maxBytes == 0)
        return;
    while (totalBytes > maxBytes && !lru.empty()) {
        const Entry victim = lru.back();
        // Unlink before forgetting so a failed unlink (already gone
        // — e.g. another daemon evicted it) still drops the entry.
        if (::unlink(pathFor(victim.hash).c_str()) != 0 &&
            errno != ENOENT)
            warn("disk cache: cannot evict %s: %s",
                 fileNameFor(victim.hash).c_str(),
                 std::strerror(errno));
        forgetLocked(victim.hash);
        evictions++;
    }
}

void
DiskCache::quarantineLocked(const std::string &path,
                            std::uint64_t hash)
{
    quarantined++;
    std::string aside = path + ".corrupt";
    if (::rename(path.c_str(), aside.c_str()) != 0) {
        warn("disk cache: cannot quarantine %s: %s", path.c_str(),
             std::strerror(errno));
        ::unlink(path.c_str());
    } else {
        warn("disk cache: quarantined corrupt entry %s",
             aside.c_str());
    }
    forgetLocked(hash);
}

bool
DiskCache::get(std::uint64_t hash, std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    std::string path = pathFor(hash);
    std::string raw;
    // Probe the filesystem even when the index misses: another
    // process sharing the directory may have committed the entry
    // after our startup scan.
    if (!readWholeFile(path, raw)) {
        forgetLocked(hash); // index said present, disk disagrees
        misses++;
        return false;
    }

    bool corrupt = raw.size() < kHeaderBytes ||
        std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    if (!corrupt) {
        len = getLe(raw.data() + 8, 8);
        crc = static_cast<std::uint32_t>(getLe(raw.data() + 16, 4));
        corrupt = raw.size() != kHeaderBytes + len ||
            crc32(raw.data() + kHeaderBytes, len) != crc;
    }
    if (!corrupt && fault::armed() &&
        fault::fire(fault::Point::DiskReadCorrupt))
        corrupt = true;
    if (corrupt) {
        quarantineLocked(path, hash);
        misses++;
        return false;
    }

    payload.assign(raw, kHeaderBytes, len);
    insertLocked(hash, raw.size());
    hits++;
    return true;
}

void
DiskCache::put(std::uint64_t hash, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (index.count(hash)) {
        touchLocked(hash);
        return;
    }
    if (fault::armed() && fault::fire(fault::Point::DiskWriteFail)) {
        writeFailures++;
        return;
    }

    std::string blob;
    blob.reserve(kHeaderBytes + payload.size());
    blob.append(kMagic, sizeof(kMagic));
    putLe(blob, payload.size(), 8);
    putLe(blob, crc32(payload.data(), payload.size()), 4);
    blob += payload;

    // Process-unique temp name in the same directory, so the final
    // rename is atomic and two daemons sharing the directory can
    // never interleave bytes; whichever commits last wins with a
    // byte-identical entry anyway.
    std::string tmp = pathFor(hash) + ".tmp." +
        std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        writeFailures++;
        warn("disk cache: cannot write %s: %s", tmp.c_str(),
             std::strerror(errno));
        return;
    }
    bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    ok = std::fflush(f) == 0 && ok;
    std::fclose(f);
    if (!ok || ::rename(tmp.c_str(), pathFor(hash).c_str()) != 0) {
        writeFailures++;
        warn("disk cache: cannot commit %s: %s",
             fileNameFor(hash).c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return;
    }

    insertLocked(hash, blob.size());
    evictToBudgetLocked();
}

DiskCacheStats
DiskCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    DiskCacheStats s;
    s.hits = hits;
    s.misses = misses;
    s.evictions = evictions;
    s.quarantined = quarantined;
    s.writeFailures = writeFailures;
    s.entries = lru.size();
    s.bytes = totalBytes;
    return s;
}

} // namespace gpm
