/**
 * @file
 * GpmServer — the NDJSON-over-TCP front end of a ScenarioService.
 *
 * Protocol (one JSON object per line; see docs/SERVICE.md for the
 * full contract):
 *
 *   {"id": <scalar?>, "verb": "ping"}
 *   {"id": <scalar?>, "verb": "stats"}
 *   {"id": <scalar?>, "verb": "submit", "scenario": {...}}
 *   {"id": <scalar?>, "verb": "submit_batch", "scenarios": [...]}
 *   {"id": <scalar?>, "verb": "shutdown"}
 *
 * Responses echo the request id and carry either "result" (with
 * "cached" for submits, plus "degraded": {from, to, reason} when
 * the ladder substituted a cheaper solver) or "error": {"code",
 * "message"} with codes parse | invalid | busy | rejected_overload
 * | draining | deadline_exceeded | internal_error | line_too_long.
 * busy / rejected_overload errors carry "retryAfterMs", the
 * server's backoff floor hint.
 *
 * Pipelining: a client may send further request lines before
 * earlier responses arrive. submit and submit_batch are dispatched
 * asynchronously — the connection's reader keeps reading while
 * workers compute — and responses are written as results complete,
 * not in request order; clients match them by "id". Each response
 * line is written atomically under a per-connection writer lock.
 *
 * submit_batch admits its scenarios all-or-nothing and answers with
 * either ONE batch-level error line (no "index") or exactly one
 * line per scenario carrying "index" (position in the request
 * array) and "hash" (canonical scenario hash, 16 hex digits), in
 * completion order.
 *
 * Connection model: thread per connection off a blocking accept
 * loop. run() blocks until requestStop() (callable from a signal
 * handler via the listener's async-signal-safe shutdown);
 * stopAndDrain() then finishes queued scenario work, shuts down the
 * remaining connections and joins their threads — the clean
 * SIGINT/SIGTERM draining path.
 *
 * Hardening (see docs/ROBUSTNESS.md): a connection idle past
 * ServerOptions::idleTimeoutMs with no responses outstanding is
 * reaped (a connection still owed responses is working, not idle);
 * a request line longer than maxLineBytes is answered with a
 * structured "line_too_long" error before the connection closes
 * (framing is unrecoverable past an overrun).
 */

#ifndef GPM_SERVICE_SERVER_HH
#define GPM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/net.hh"
#include "service/service.hh"

namespace gpm
{

/** GpmServer hardening knobs. */
struct ServerOptions
{
    /** Reap a connection with no received bytes *and* no pending
     *  responses for this long; 0 = never. */
    int idleTimeoutMs = 0;
    /** Bound each wait for a response write to make progress;
     *  0 = block forever. */
    int writeTimeoutMs = 0;
    /** Longest accepted request line; longer ones are answered
     *  with "line_too_long" and the connection is closed. */
    std::size_t maxLineBytes = 1 << 20;
};

class GpmServer
{
  public:
    GpmServer(ScenarioService &svc, TcpListener listener,
              ServerOptions opts = ServerOptions{});

    /** stopAndDrain() if the owner did not. */
    ~GpmServer();

    GpmServer(const GpmServer &) = delete;
    GpmServer &operator=(const GpmServer &) = delete;

    std::uint16_t port() const { return listener.port(); }
    int listenerFd() const { return listener.fd(); }

    /** Accept loop; blocks until requestStop(). */
    void run();

    /** Unblock run(). Safe from signal handlers and other
     *  threads. */
    void requestStop();

    /**
     * Graceful teardown after run() returns: drain the service
     * (dispatched submits complete and their responses are
     * written), close the remaining connections, join connection
     * threads. Idempotent.
     */
    void stopAndDrain();

    /** Connections accepted since start. */
    std::uint64_t connectionCount() const { return connections; }
    /** Requests (lines) handled since start. */
    std::uint64_t requestCount() const { return requests; }
    /** Connections reaped for idling past idleTimeoutMs. */
    std::uint64_t idleReapedCount() const { return idleReaped; }
    /** Over-long lines answered with "line_too_long". */
    std::uint64_t lineTooLongCount() const { return lineTooLong; }

  private:
    /**
     * Everything a response writer needs, shared between the
     * connection's reader thread and the worker threads completing
     * its dispatched scenarios. The reader owns the read side; any
     * thread may write a response line under writeMtx. `pending`
     * counts dispatched-but-unwritten responses; the reader waits
     * for it to hit zero before letting the stream die.
     */
    struct ConnState;

    void serveConn(std::shared_ptr<ConnState> conn,
                   std::size_t slot, std::uint64_t clientId);
    void handleLine(const std::shared_ptr<ConnState> &conn,
                    const std::string &line, bool &want_stop,
                    std::uint64_t clientId);
    /** Write one response line (appends '\n') under the
     *  connection's writer lock; a failed write marks the
     *  connection broken. */
    void writeLine(ConnState &conn, const std::string &line);

    ScenarioService &svc;
    TcpListener listener;
    ServerOptions opts;

    std::mutex connMtx;
    std::vector<std::thread> connThreads;
    /** Live connection per thread slot; reset once that connection
     *  has finished (so stopAndDrain() never touches a dead one). */
    std::vector<std::shared_ptr<ConnState>> conns;
    /** Per-slot "mid-request" flag: stopAndDrain() only shuts down
     *  idle connections, so a response being handled inline is
     *  always written before its socket goes away. */
    std::vector<char> connBusy;
    bool stopping = false;
    bool drained = false;

    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> idleReaped{0};
    std::atomic<std::uint64_t> lineTooLong{0};
};

} // namespace gpm

#endif // GPM_SERVICE_SERVER_HH
