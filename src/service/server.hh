/**
 * @file
 * GpmServer — the NDJSON-over-TCP front end of a ScenarioService.
 *
 * Protocol (one JSON object per line; see docs/SERVICE.md for the
 * full contract):
 *
 *   {"id": <scalar?>, "verb": "ping"}
 *   {"id": <scalar?>, "verb": "stats"}
 *   {"id": <scalar?>, "verb": "submit", "scenario": {...}}
 *   {"id": <scalar?>, "verb": "submit_batch", "scenarios": [...]}
 *   {"id": <scalar?>, "verb": "shutdown"}
 *
 * Responses echo the request id and carry either "result" (with
 * "cached" for submits, plus "degraded": {from, to, reason} when
 * the ladder substituted a cheaper solver) or "error": {"code",
 * "message"} with codes parse | invalid | busy | rejected_overload
 * | draining | deadline_exceeded | internal_error | line_too_long.
 * busy / rejected_overload errors carry "retryAfterMs", the
 * server's backoff floor hint.
 *
 * Pipelining: a client may send further request lines before
 * earlier responses arrive. submit and submit_batch are dispatched
 * asynchronously — the reactor keeps reading while workers compute
 * — and responses are written as results complete, not in request
 * order; clients match them by "id". Each response line is enqueued
 * atomically on the connection's ordered output queue.
 *
 * submit_batch admits its scenarios all-or-nothing and answers with
 * either ONE batch-level error line (no "index") or exactly one
 * line per scenario carrying "index" (position in the request
 * array) and "hash" (canonical scenario hash, 16 hex digits), in
 * completion order.
 *
 * Connection model: an epoll reactor pool (reactor.hh; default one
 * event loop, ServerOptions::reactorThreads for more). Request
 * lines are framed zero-copy in per-connection scan buffers and
 * handled on the reactor thread; responses flush via writev with
 * EPOLLOUT-driven backpressure. run() blocks until requestStop()
 * (callable from a signal handler via the listener's
 * async-signal-safe shutdown); stopAndDrain() then finishes queued
 * scenario work, flushes and closes the remaining connections and
 * joins the reactors — the clean SIGINT/SIGTERM draining path.
 *
 * Observability: attachMetricsListener() adds an HTTP listener on
 * the same reactor serving GET /metrics (Prometheus text; see
 * prom.hh) and GET /healthz.
 *
 * Hardening (see docs/ROBUSTNESS.md): a connection idle past
 * ServerOptions::idleTimeoutMs with no responses outstanding is
 * reaped (a connection still owed responses is working, not idle);
 * a request line longer than maxLineBytes is answered with a
 * structured "line_too_long" error before the connection closes
 * (framing is unrecoverable past an overrun); a connection whose
 * queued responses make no write progress for writeTimeoutMs is
 * dropped; transient EMFILE/ENFILE sheds the incoming connection
 * via a reserved spare fd instead of killing the accept loop.
 */

#ifndef GPM_SERVICE_SERVER_HH
#define GPM_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "service/net.hh"
#include "service/reactor.hh"
#include "service/service.hh"

namespace gpm
{

/** GpmServer hardening knobs. */
struct ServerOptions
{
    /** Reap a connection with no received bytes *and* no pending
     *  responses for this long; 0 = never. */
    int idleTimeoutMs = 0;
    /** Close a connection whose queued responses make no write
     *  progress for this long; 0 = wait forever. */
    int writeTimeoutMs = 0;
    /** Longest accepted request line; longer ones are answered
     *  with "line_too_long" and the connection is closed. */
    std::size_t maxLineBytes = 1 << 20;
    /** Reactor event loops serving the sockets. */
    std::size_t reactorThreads = 1;
};

class GpmServer : private ReactorHandler
{
  public:
    GpmServer(ScenarioService &svc, TcpListener listener,
              ServerOptions opts = ServerOptions{});

    /** stopAndDrain() if the owner did not. */
    ~GpmServer() override;

    GpmServer(const GpmServer &) = delete;
    GpmServer &operator=(const GpmServer &) = delete;

    std::uint16_t port() const { return listener.port(); }
    int listenerFd() const { return listener.fd(); }

    /** Serve GET /metrics and /healthz on @p l (same reactor).
     *  Call before run(). */
    void attachMetricsListener(TcpListener l);
    /** The metrics listener's port; 0 when none is attached. */
    std::uint16_t metricsPort() const
    {
        return metricsListener.valid() ? metricsListener.port()
                                       : 0;
    }

    /** Serve; blocks until requestStop(). */
    void run();

    /** Unblock run(). Safe from signal handlers and other
     *  threads. */
    void requestStop();

    /**
     * Graceful teardown: drain the service (dispatched submits
     * complete and their responses are written), flush and close
     * the remaining connections, join the reactors. Idempotent.
     */
    void stopAndDrain();

    /** Connections accepted since start. */
    std::uint64_t connectionCount() const
    {
        return pool->stats().accepted;
    }
    /** Requests (lines) handled since start. */
    std::uint64_t requestCount() const { return requests; }
    /** Connections reaped for idling past idleTimeoutMs. */
    std::uint64_t idleReapedCount() const
    {
        return pool->stats().idleReaped;
    }
    /** Over-long lines answered with "line_too_long". */
    std::uint64_t lineTooLongCount() const
    {
        return pool->stats().lineTooLong;
    }

  private:
    // ---- ReactorHandler ----
    void onLine(const std::shared_ptr<ReactorConn> &conn,
                std::string_view line) override;
    std::string onLineTooLong() override;
    std::string onHttpRequest(std::string_view method,
                              std::string_view path) override;
    void onAcceptDone() override;

    /** Enqueue one response line (appends '\n'). */
    static void sendLine(const std::shared_ptr<ReactorConn> &conn,
                         std::string line);

    ScenarioService &svc;
    TcpListener listener;
    TcpListener metricsListener;
    ServerOptions opts;
    std::unique_ptr<ReactorPool> pool;

    std::mutex stopMtx;
    std::condition_variable stopCv;
    bool acceptClosed = false;
    bool drained = false;

    std::atomic<std::uint64_t> requests{0};
};

} // namespace gpm

#endif // GPM_SERVICE_SERVER_HH
