/**
 * @file
 * GpmServer — the NDJSON-over-TCP front end of a ScenarioService.
 *
 * Protocol (one JSON object per line, each answered with one JSON
 * object line; see docs/SERVICE.md for the full contract):
 *
 *   {"id": <scalar?>, "verb": "ping"}
 *   {"id": <scalar?>, "verb": "stats"}
 *   {"id": <scalar?>, "verb": "submit", "scenario": {...}}
 *   {"id": <scalar?>, "verb": "shutdown"}
 *
 * Responses echo the request id and carry either "result" (with
 * "cached" for submits) or "error": {"code", "message"} with codes
 * parse | invalid | busy | draining | deadline_exceeded |
 * internal_error | line_too_long.
 *
 * Connection model: thread per connection off a blocking accept
 * loop. run() blocks until requestStop() (callable from a signal
 * handler via the listener's async-signal-safe shutdown);
 * stopAndDrain() then finishes queued scenario work, shuts down the
 * remaining connections and joins their threads — the clean
 * SIGINT/SIGTERM draining path.
 *
 * Hardening (see docs/ROBUSTNESS.md): a connection idle past
 * ServerOptions::idleTimeoutMs is reaped, so a silent client can no
 * longer pin its thread forever; a request line longer than
 * maxLineBytes is answered with a structured "line_too_long" error
 * before the connection closes (framing is unrecoverable past an
 * overrun). Both are off/large by default.
 */

#ifndef GPM_SERVICE_SERVER_HH
#define GPM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/net.hh"
#include "service/service.hh"

namespace gpm
{

/** GpmServer hardening knobs. */
struct ServerOptions
{
    /** Reap a connection with no received bytes for this long;
     *  0 = never (the pre-hardening behavior). */
    int idleTimeoutMs = 0;
    /** Bound each wait for a response write to make progress;
     *  0 = block forever. */
    int writeTimeoutMs = 0;
    /** Longest accepted request line; longer ones are answered
     *  with "line_too_long" and the connection is closed. */
    std::size_t maxLineBytes = 1 << 20;
};

class GpmServer
{
  public:
    GpmServer(ScenarioService &svc, TcpListener listener,
              ServerOptions opts = ServerOptions{});

    /** stopAndDrain() if the owner did not. */
    ~GpmServer();

    GpmServer(const GpmServer &) = delete;
    GpmServer &operator=(const GpmServer &) = delete;

    std::uint16_t port() const { return listener.port(); }
    int listenerFd() const { return listener.fd(); }

    /** Accept loop; blocks until requestStop(). */
    void run();

    /** Unblock run(). Safe from signal handlers and other
     *  threads. */
    void requestStop();

    /**
     * Graceful teardown after run() returns: drain the service
     * (queued submits complete), close the remaining connections,
     * join connection threads. Idempotent.
     */
    void stopAndDrain();

    /** Connections accepted since start. */
    std::uint64_t connectionCount() const { return connections; }
    /** Requests (lines) handled since start. */
    std::uint64_t requestCount() const { return requests; }
    /** Connections reaped for idling past idleTimeoutMs. */
    std::uint64_t idleReapedCount() const { return idleReaped; }
    /** Over-long lines answered with "line_too_long". */
    std::uint64_t lineTooLongCount() const { return lineTooLong; }

  private:
    void serveConn(int fd, std::size_t slot);
    std::string handleLine(const std::string &line,
                           bool &want_stop);

    ScenarioService &svc;
    TcpListener listener;
    ServerOptions opts;

    std::mutex connMtx;
    std::vector<std::thread> connThreads;
    /** fd per thread slot; -1 once that connection has finished
     *  (fds are reused by the kernel, so stale entries must never
     *  be shut down). */
    std::vector<int> connFds;
    /** Per-slot "mid-request" flag: stopAndDrain() only shuts down
     *  idle connections, so a response in flight is always written
     *  before its socket goes away. */
    std::vector<char> connBusy;
    bool stopping = false;
    bool drained = false;

    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> idleReaped{0};
    std::atomic<std::uint64_t> lineTooLong{0};
};

} // namespace gpm

#endif // GPM_SERVICE_SERVER_HH
