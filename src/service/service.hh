/**
 * @file
 * ScenarioService — the runtime between the transport (gpmd) and
 * the sweep engine. Owns the ExperimentRunners (one per distinct
 * sim-knob configuration, built lazily over one shared
 * ProfileLibrary), a bounded FIFO request queue drained by a fixed
 * set of worker threads, and a two-tier result cache keyed by the
 * canonical scenario hash: an in-memory LRU of payload strings in
 * front of an optional persistent DiskCache (see disk_cache.hh).
 *
 * Cache hierarchy: lookups go memory → disk; a disk hit is promoted
 * into memory, and a payload demoted out of the memory LRU remains
 * on disk (computed payloads are written through), so the working
 * set survives restarts and daemons sharing one --cache-dir share
 * one corpus. Payloads are canonical JSON and deterministic per
 * hash, so every tier serves the same bytes a direct sweep would.
 *
 * Submission paths:
 *  - submit() — blocking: validate, serve from cache when possible,
 *    otherwise queue and wait. Rejected immediately with "busy" when
 *    the queue holds queueCapacity requests (high-water-mark
 *    admission; capacity 0 rejects every miss).
 *  - submitAsync() — same pipeline, but the caller passes a
 *    completion callback instead of blocking; cache hits and
 *    rejections invoke it synchronously, computed results invoke it
 *    from a worker thread. This is what lets one connection keep
 *    many scenarios in flight (pipelining, batch submit).
 *  - submitBatch() — all-or-nothing admission of N scenarios:
 *    every entry is validated up front, then either ALL misses are
 *    enqueued (and each scenario's callback fires as its result
 *    completes, in whatever order workers finish) or the whole
 *    batch is rejected with one structured error.
 *
 * Robustness (see docs/ROBUSTNESS.md):
 *  - Deadlines: a spec may carry deadlineMs. A queued request whose
 *    deadline expires before a worker pops it is shed with
 *    "deadline_exceeded"; one that expires *mid-computation* is
 *    cancelled cooperatively between sweep points (CancelToken
 *    through ExperimentRunner::trySweep), freeing the worker without
 *    waiting for the full sweep.
 *  - Crash containment: any exception thrown during sweep execution
 *    becomes a structured "internal_error" response. The throwing
 *    worker then retires (its state is no longer trusted) and a
 *    supervisor thread respawns a replacement, so the worker count
 *    survives arbitrarily many crashes.
 *  - Adaptive admission (admission.hh): beneath the binary "busy"
 *    high-water mark, per-policy service-time EWMAs shed requests
 *    whose deadline cannot be met even by the cheapest ladder rung
 *    ("rejected_overload" + retryAfterMs hint), and per-client
 *    fairness keeps one pipelined connection from occupying the
 *    whole queue.
 *  - Degradation ladder (degrade.hh): a request admitted while the
 *    service is overloaded, or whose remaining deadline the current
 *    solver's EWMA cannot meet, is served by the next-cheaper
 *    solver on the ladder. Degraded payloads are computed and
 *    cached under the DEGRADED spec's hash — never under the
 *    original hash, which must stay bitwise-reserved for the exact
 *    answer — and the response carries {from, to, reason}.
 *  - Circuit breakers (breaker.hh): the disk result cache wraps its
 *    read path in a breaker, so persistent I/O faults collapse to
 *    memory-only serving instead of a per-request disk penalty.
 */

#ifndef GPM_SERVICE_SERVICE_HH
#define GPM_SERVICE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/admission.hh"
#include "service/disk_cache.hh"
#include "service/scenario.hh"
#include "util/cancel.hh"

namespace gpm
{

/** ScenarioService tuning knobs. */
struct ServiceOptions
{
    /** Worker threads draining the request queue. */
    std::size_t workers = 2;
    /** Queue high-water mark; submits beyond it are rejected with
     *  "busy". 0 rejects every cache miss. */
    std::size_t queueCapacity = 64;
    /** In-memory LRU result-cache capacity in entries (0 disables
     *  the memory tier). */
    std::size_t cacheCapacity = 128;
    /** Threads per sweep (ExperimentRunner::sweep concurrency);
     *  0 = GPM_THREADS / hardware concurrency. */
    std::size_t sweepConcurrency = 0;
    /** Persistent cache directory; empty disables the disk tier. */
    std::string cacheDir;
    /** Disk-tier LRU byte budget (0 = unbounded). */
    std::uint64_t cacheDiskBytes = 64ull << 20;
    /** Adaptive admission control tuning (see admission.hh). */
    AdmissionOptions admission;
    /** Substitute cheaper ladder solvers under overload / doomed
     *  deadlines (see degrade.hh). Off = exact answers or nothing. */
    bool degradeLadder = true;
    /** Disk result-cache read-path circuit breaker tuning. */
    BreakerOptions resultBreaker;
};

/** A stats() snapshot (all counters since construction). */
struct ServiceStats
{
    std::uint64_t served = 0;      ///< responses with ok payloads
    std::uint64_t cacheHits = 0;   ///< either tier
    std::uint64_t cacheMisses = 0; ///< accepted, computed requests
    std::uint64_t rejectedBusy = 0;
    std::uint64_t invalid = 0;     ///< failed validation
    std::uint64_t shedDeadline = 0;  ///< shed, deadline expired
    std::uint64_t workerCrashes = 0; ///< contained worker throws
    std::uint64_t batchRequests = 0; ///< submitBatch() calls
    std::uint64_t diskHits = 0;      ///< hits promoted disk→memory
    std::uint64_t diskEvictions = 0; ///< disk entries LRU-evicted
    std::uint64_t diskQuarantined = 0; ///< corrupt entries set aside
    std::uint64_t cancelledMidSweep = 0; ///< deadlines hit mid-sweep
    std::uint64_t clusterRequests = 0; ///< cluster scenarios computed
    std::uint64_t clusterEpochs = 0;   ///< facility epochs arbitrated
    std::uint64_t chipSims = 0;        ///< per-chip simulations run
    std::uint64_t profileBuilds = 0;   ///< detailed-core suite builds
    std::uint64_t profileDiskHits = 0; ///< profiles loaded from disk
    std::uint64_t profileBuildMs = 0;  ///< cumulative sim time [ms]
    std::uint64_t profileReady = 0;    ///< profiles ready to serve
    std::uint64_t profileQuarantined = 0; ///< corrupt store entries
    std::uint64_t shedOverload = 0; ///< shed by admission control
    std::uint64_t degradedRequests = 0; ///< served a rung down
    std::uint64_t diskBreakerRefusals = 0; ///< ops skipped while open
    std::uint64_t diskBreakerOpens = 0; ///< disk breaker open events
    std::uint64_t profileBreakerRefusals = 0;
    std::uint64_t profileBreakerOpens = 0;
    const char *diskBreakerState = "closed";
    const char *profileBreakerState = "closed";
    std::size_t workersAlive = 0;  ///< workers currently running
    std::size_t queueDepth = 0;    ///< requests waiting right now
    std::size_t inFlight = 0;      ///< requests being computed
    std::size_t cacheSize = 0;     ///< memory-tier entries
    std::size_t diskEntries = 0;   ///< disk-tier entries
    std::uint64_t diskBytes = 0;   ///< disk-tier tracked bytes
    double uptimeSec = 0.0;
    /** cacheHits / (cacheHits + cacheMisses), 0 when unserved. */
    double cacheHitRate = 0.0;
};

class ScenarioService
{
  public:
    /** One scenario's outcome. */
    struct Response
    {
        bool ok = false;
        /** "invalid" | "busy" | "draining" | "parse" |
         *  "deadline_exceeded" | "rejected_overload" |
         *  "internal_error" when !ok. */
        std::string errorCode;
        std::string errorMessage;
        /** Canonical result payload (see serializeResults). */
        std::string payload;
        bool cacheHit = false;
        /** The hit was served from the disk tier (implies
         *  cacheHit). */
        bool diskHit = false;
        /** The hash of the SUBMITTED spec — the client's matching
         *  key — even when the payload was served degraded (the
         *  degraded payload is cached under its own spec's hash,
         *  never under this one). */
        std::uint64_t hash = 0;
        /** Non-empty when the ladder substituted a cheaper solver:
         *  the requested policy, the one that served, and why
         *  ("overload" | "deadline"). */
        std::string degradedFrom;
        std::string degradedTo;
        std::string degradedReason;
        /** Backoff floor hint on "busy"/"rejected_overload" [ms];
         *  0 = none. */
        double retryAfterMs = 0.0;
    };

    /** Completion callback: invoked exactly once per scenario,
     *  either synchronously from the submitting thread (cache hit,
     *  rejection) or later from a worker thread. */
    using Callback = std::function<void(Response &&)>;

    /** submitBatch()'s admission outcome. When !admitted no
     *  per-scenario callback has fired or ever will. */
    struct BatchOutcome
    {
        bool admitted = false;
        /** "invalid" | "busy" | "rejected_overload" | "draining"
         *  when !admitted. */
        std::string errorCode;
        std::string errorMessage;
        /** Offending scenario for "invalid". */
        std::size_t errorIndex = 0;
        /** Backoff floor hint on "busy"/"rejected_overload" [ms]. */
        double retryAfterMs = 0.0;
    };

    ScenarioService(ProfileLibrary &lib, const DvfsTable &dvfs,
                    ServiceOptions opts = ServiceOptions{});

    /** Drains outstanding work, then joins the workers. */
    ~ScenarioService();

    ScenarioService(const ScenarioService &) = delete;
    ScenarioService &operator=(const ScenarioService &) = delete;

    /**
     * Validate, then serve @p spec: from cache when possible,
     * otherwise through the queue (blocking until computed) unless
     * the high-water mark or admission control rejects it.
     * @p clientId attributes the request for per-client fairness;
     * 0 (in-process callers) is exempt.
     */
    Response submit(const ScenarioSpec &spec,
                    std::uint64_t clientId = 0);

    /**
     * submit() without blocking: @p done fires exactly once with
     * the outcome — synchronously (before submitAsync returns) for
     * validation errors, cache hits and rejections, from a worker
     * thread for computed results. The callback must be safe to
     * invoke from either context and must not call back into
     * drain().
     */
    void submitAsync(const ScenarioSpec &spec, Callback done,
                     std::uint64_t clientId = 0);

    /**
     * Admit @p specs as one unit. Every spec is validated before
     * anything runs; on any validation failure, a full queue
     * (queueDepth + misses would exceed queueCapacity), a client
     * over its fairness share, or a draining service, the whole
     * batch is rejected and no callback fires. Once admitted,
     * @p done fires exactly once per scenario with its index —
     * cache hits synchronously, in order; misses from worker
     * threads in completion order.
     */
    BatchOutcome
    submitBatch(const std::vector<ScenarioSpec> &specs,
                std::function<void(std::size_t, Response &&)> done,
                std::uint64_t clientId = 0);

    /** parse + parseScenario + submit, mapping JSON errors to the
     *  "parse" code and schema errors to "invalid". */
    Response submitJsonText(const std::string &text);

    /** Counters snapshot. */
    ServiceStats stats() const;

    /**
     * Stop accepting new work ("draining" rejections), finish what
     * is queued, and join the workers. Idempotent.
     */
    void drain();

    const ServiceOptions &options() const { return opts; }

    /** The admission controller (tests prime its EWMAs). */
    AdmissionController &admissionController()
    {
        return *admission;
    }

  private:
    struct Job;

    ExperimentRunner &runnerFor(const ScenarioSpec &spec);
    Response execute(Job &job);
    /** Cluster-scenario half of execute(): ClusterManager runs, one
     *  per budget fraction over @p spec (the possibly-degraded
     *  spec; @p payloadHash is its cache key, @p r carries the hash
     *  and degradation fields already filled in). Chip-sim failures
     *  come back as structured "internal_error" responses — the
     *  worker survives (workerCrashes stays untouched). */
    Response executeCluster(Job &job, const ScenarioSpec &spec,
                            std::uint64_t payloadHash, Response r);
    /** The degradation-ladder decision for @p job: the spec to
     *  actually run (== job.spec when not degrading) and why. */
    ScenarioSpec degradeDecision(const Job &job,
                                 std::string &reason) const;
    /** The EWMA key of the cheapest solver @p spec could degrade
     *  to (its own key when the ladder does not apply). */
    std::string floorKeyFor(const ScenarioSpec &spec) const;
    void workerLoop(std::size_t slot);
    void supervisorLoop();
    std::unique_ptr<Job> makeJob(const ScenarioSpec &spec,
                                 std::uint64_t hash, Callback done,
                                 std::uint64_t clientId);
    /** Two-tier lookup: memory, then disk (promoting the hit).
     *  Counts nothing — callers own the stats. */
    bool cacheGet(std::uint64_t hash, std::string &payload,
                  bool &diskHit);
    /** Insert into the memory tier and write through to disk; a
     *  payload the insert demotes keeps its disk entry fresh. */
    void cachePut(std::uint64_t hash, const std::string &payload);

    ProfileLibrary &lib;
    const DvfsTable &dvfs;
    ServiceOptions opts;
    std::chrono::steady_clock::time_point startTime;

    /** One runner per distinct sim-knob configuration. */
    std::mutex runnersMtx;
    std::map<std::string, std::unique_ptr<ExperimentRunner>>
        runners;

    /** Bounded request queue + workers. */
    mutable std::mutex queueMtx;
    std::condition_variable queueCv;
    std::deque<std::unique_ptr<Job>> queue;
    bool draining = false;
    std::vector<std::thread> workers;

    /**
     * Worker supervision: a crashed worker pushes its slot here and
     * exits; the supervisor joins it and spawns a replacement into
     * the same slot (guarded by queueMtx, signalled via supCv).
     */
    std::condition_variable supCv;
    std::deque<std::size_t> retiredSlots;
    std::thread supervisor;

    /** Memory tier: recency list + hash index into it. */
    mutable std::mutex cacheMtx;
    std::list<std::pair<std::uint64_t, std::string>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::string>>::iterator>
        cacheIndex;

    /** Disk tier (null when opts.cacheDir is empty). Internally
     *  locked; never touched while holding cacheMtx. */
    std::unique_ptr<DiskCache> disk;

    /** Adaptive admission control (always constructed; a disabled
     *  one admits everything). Internally locked; called under
     *  queueMtx — it never calls back out. */
    std::unique_ptr<AdmissionController> admission;

    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> rejectedBusy{0};
    std::atomic<std::uint64_t> invalidCount{0};
    std::atomic<std::uint64_t> shedDeadline{0};
    std::atomic<std::uint64_t> workerCrashes{0};
    std::atomic<std::uint64_t> batchRequests{0};
    std::atomic<std::uint64_t> diskHits{0};
    std::atomic<std::uint64_t> cancelledMidSweep{0};
    std::atomic<std::uint64_t> clusterRequests{0};
    std::atomic<std::uint64_t> clusterEpochs{0};
    std::atomic<std::uint64_t> chipSims{0};
    std::atomic<std::uint64_t> degradedCount{0};
    std::atomic<std::size_t> aliveWorkers{0};
    std::atomic<std::size_t> inFlight{0};
};

} // namespace gpm

#endif // GPM_SERVICE_SERVICE_HH
