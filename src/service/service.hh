/**
 * @file
 * ScenarioService — the runtime between the transport (gpmd) and
 * the sweep engine. Owns the ExperimentRunners (one per distinct
 * sim-knob configuration, built lazily over one shared
 * ProfileLibrary), a bounded FIFO request queue drained by a fixed
 * set of worker threads, and an LRU cache of serialized result
 * payloads keyed by the canonical scenario hash.
 *
 * Backpressure: submit() never blocks the caller on a full system —
 * when the queue already holds queueCapacity requests the submit is
 * rejected immediately with the "busy" error code (high-water-mark
 * admission control; a capacity of 0 rejects everything that is not
 * a cache hit). Accepted requests block their calling thread until
 * the result is ready, which is what the thread-per-connection
 * transport wants.
 *
 * Determinism: a scenario is compiled to a SweepSpec and served by
 * ExperimentRunner::trySweep, whose results are bitwise-identical
 * to a serial evaluation in spec order; payloads are canonical JSON
 * with round-trip double formatting. The same scenario therefore
 * always yields the same payload bytes, whether computed or served
 * from cache.
 *
 * Robustness (see docs/ROBUSTNESS.md):
 *  - Deadlines: a spec may carry deadlineMs; a queued request whose
 *    deadline expires before a worker pops it is shed with the
 *    "deadline_exceeded" error instead of being computed for a
 *    caller that has given up.
 *  - Crash containment: any exception thrown during sweep execution
 *    becomes a structured "internal_error" response. The throwing
 *    worker then retires (its state is no longer trusted) and a
 *    supervisor thread respawns a replacement, so the worker count
 *    survives arbitrarily many crashes.
 */

#ifndef GPM_SERVICE_SERVICE_HH
#define GPM_SERVICE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/scenario.hh"

namespace gpm
{

/** ScenarioService tuning knobs. */
struct ServiceOptions
{
    /** Worker threads draining the request queue. */
    std::size_t workers = 2;
    /** Queue high-water mark; submits beyond it are rejected with
     *  "busy". 0 rejects every cache miss. */
    std::size_t queueCapacity = 64;
    /** LRU result-cache capacity in entries (0 disables caching). */
    std::size_t cacheCapacity = 128;
    /** Threads per sweep (ExperimentRunner::sweep concurrency);
     *  0 = GPM_THREADS / hardware concurrency. */
    std::size_t sweepConcurrency = 0;
};

/** A stats() snapshot (all counters since construction). */
struct ServiceStats
{
    std::uint64_t served = 0;      ///< responses with ok payloads
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0; ///< accepted, computed requests
    std::uint64_t rejectedBusy = 0;
    std::uint64_t invalid = 0;     ///< failed validation
    std::uint64_t shedDeadline = 0;  ///< shed, deadline expired
    std::uint64_t workerCrashes = 0; ///< contained worker throws
    std::size_t workersAlive = 0;  ///< workers currently running
    std::size_t queueDepth = 0;    ///< requests waiting right now
    std::size_t inFlight = 0;      ///< requests being computed
    std::size_t cacheSize = 0;
    double uptimeSec = 0.0;
    /** cacheHits / (cacheHits + cacheMisses), 0 when unserved. */
    double cacheHitRate = 0.0;
};

class ScenarioService
{
  public:
    /** One submit()'s outcome. */
    struct Response
    {
        bool ok = false;
        /** "invalid" | "busy" | "draining" | "parse" |
         *  "deadline_exceeded" | "internal_error" when !ok. */
        std::string errorCode;
        std::string errorMessage;
        /** Canonical result payload (see serializeResults). */
        std::string payload;
        bool cacheHit = false;
        std::uint64_t hash = 0;
    };

    ScenarioService(ProfileLibrary &lib, const DvfsTable &dvfs,
                    ServiceOptions opts = ServiceOptions{});

    /** Drains outstanding work, then joins the workers. */
    ~ScenarioService();

    ScenarioService(const ScenarioService &) = delete;
    ScenarioService &operator=(const ScenarioService &) = delete;

    /**
     * Validate, then serve @p spec: from cache when possible,
     * otherwise through the queue (blocking until computed) unless
     * the high-water mark rejects it.
     */
    Response submit(const ScenarioSpec &spec);

    /** parse + parseScenario + submit, mapping JSON errors to the
     *  "parse" code and schema errors to "invalid". */
    Response submitJsonText(const std::string &text);

    /** Counters snapshot. */
    ServiceStats stats() const;

    /**
     * Stop accepting new work ("draining" rejections), finish what
     * is queued, and join the workers. Idempotent.
     */
    void drain();

    const ServiceOptions &options() const { return opts; }

  private:
    struct Job;

    ExperimentRunner &runnerFor(const ScenarioSpec &spec);
    Response execute(const Job &job);
    void workerLoop(std::size_t slot);
    void supervisorLoop();
    bool cacheGet(std::uint64_t hash, std::string &payload);
    void cachePut(std::uint64_t hash, const std::string &payload);

    ProfileLibrary &lib;
    const DvfsTable &dvfs;
    ServiceOptions opts;
    std::chrono::steady_clock::time_point startTime;

    /** One runner per distinct sim-knob configuration. */
    std::mutex runnersMtx;
    std::map<std::string, std::unique_ptr<ExperimentRunner>>
        runners;

    /** Bounded request queue + workers. */
    mutable std::mutex queueMtx;
    std::condition_variable queueCv;
    std::deque<std::unique_ptr<Job>> queue;
    bool draining = false;
    std::vector<std::thread> workers;

    /**
     * Worker supervision: a crashed worker pushes its slot here and
     * exits; the supervisor joins it and spawns a replacement into
     * the same slot (guarded by queueMtx, signalled via supCv).
     */
    std::condition_variable supCv;
    std::deque<std::size_t> retiredSlots;
    std::thread supervisor;

    /** LRU payload cache: recency list + hash index into it. */
    mutable std::mutex cacheMtx;
    std::list<std::pair<std::uint64_t, std::string>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::string>>::iterator>
        cacheIndex;

    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> rejectedBusy{0};
    std::atomic<std::uint64_t> invalidCount{0};
    std::atomic<std::uint64_t> shedDeadline{0};
    std::atomic<std::uint64_t> workerCrashes{0};
    std::atomic<std::size_t> aliveWorkers{0};
    std::atomic<std::size_t> inFlight{0};
};

} // namespace gpm

#endif // GPM_SERVICE_SERVICE_HH
