#include "service/service.hh"

#include <exception>
#include <future>
#include <stdexcept>
#include <utility>

#include "service/degrade.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

/** One queued request: the spec, its hash, the completion callback,
 *  and the admission-time deadline expressed as a CancelToken the
 *  sweep engine polls between points. */
struct ScenarioService::Job
{
    ScenarioSpec spec;
    std::uint64_t hash = 0;
    bool hasDeadline = false;
    CancelToken cancel;
    Callback done;
    /** Fairness attribution (0 = exempt in-process caller). */
    std::uint64_t clientId = 0;
    /** Load was at/over the degrade threshold when admitted. */
    bool overloadAtAdmit = false;
    /** When the job was admitted — the deadline's epoch, used to
     *  compute remaining time at execution (CancelToken keeps its
     *  deadline private). */
    std::chrono::steady_clock::time_point admitTime;
};

ScenarioService::ScenarioService(ProfileLibrary &lib_,
                                 const DvfsTable &dvfs_,
                                 ServiceOptions opts_)
    : lib(lib_), dvfs(dvfs_), opts(std::move(opts_)),
      startTime(std::chrono::steady_clock::now())
{
    if (opts.workers == 0)
        opts.workers = 1;
    if (!opts.cacheDir.empty())
        disk = std::make_unique<DiskCache>(opts.cacheDir,
                                           opts.cacheDiskBytes,
                                           opts.resultBreaker);
    admission = std::make_unique<AdmissionController>(
        opts.admission, opts.queueCapacity, opts.workers);
    workers.reserve(opts.workers);
    for (std::size_t i = 0; i < opts.workers; i++) {
        workers.emplace_back(&ScenarioService::workerLoop, this, i);
        aliveWorkers++;
    }
    supervisor =
        std::thread(&ScenarioService::supervisorLoop, this);
}

ScenarioService::~ScenarioService() { drain(); }

ExperimentRunner &
ScenarioService::runnerFor(const ScenarioSpec &spec)
{
    std::string key = spec.simJson().canonical();
    std::lock_guard<std::mutex> lock(runnersMtx);
    auto &slot = runners[key];
    if (!slot)
        slot = std::make_unique<ExperimentRunner>(
            lib, dvfs, spec.simConfig());
    return *slot;
}

bool
ScenarioService::cacheGet(std::uint64_t hash, std::string &payload,
                          bool &diskHit)
{
    diskHit = false;
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        auto it = cacheIndex.find(hash);
        if (it != cacheIndex.end()) {
            lru.splice(lru.begin(), lru, it->second);
            payload = it->second->second;
            return true;
        }
    }
    if (!disk || !disk->get(hash, payload))
        return false;
    diskHit = true;
    // Promote into the memory tier so the next hit skips the disk.
    // cachePut's write-through is a recency touch here — the entry
    // is already on disk byte-identical.
    cachePut(hash, payload);
    return true;
}

void
ScenarioService::cachePut(std::uint64_t hash,
                          const std::string &payload)
{
    std::pair<std::uint64_t, std::string> demoted;
    bool hasDemoted = false;
    if (opts.cacheCapacity != 0) {
        std::lock_guard<std::mutex> lock(cacheMtx);
        auto it = cacheIndex.find(hash);
        if (it != cacheIndex.end()) {
            lru.splice(lru.begin(), lru, it->second);
            it->second->second = payload;
        } else {
            lru.emplace_front(hash, payload);
            cacheIndex[hash] = lru.begin();
            if (lru.size() > opts.cacheCapacity) {
                demoted = std::move(lru.back());
                cacheIndex.erase(demoted.first);
                lru.pop_back();
                hasDemoted = true;
            }
        }
    }
    // Disk I/O happens outside cacheMtx — DiskCache locks itself.
    if (disk) {
        disk->put(hash, payload);
        // Demotion: the entry leaving memory was written through
        // when it was produced, so this is normally just a recency
        // bump keeping warm entries away from the disk LRU's tail.
        if (hasDemoted)
            disk->put(demoted.first, demoted.second);
    }
}

std::unique_ptr<ScenarioService::Job>
ScenarioService::makeJob(const ScenarioSpec &spec,
                         std::uint64_t hash, Callback done,
                         std::uint64_t clientId)
{
    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->hash = hash;
    job->done = std::move(done);
    job->clientId = clientId;
    job->admitTime = std::chrono::steady_clock::now();
    if (spec.deadlineMs > 0.0) {
        job->hasDeadline = true;
        job->cancel.setDeadlineAfterMs(spec.deadlineMs);
    }
    return job;
}

std::string
ScenarioService::floorKeyFor(const ScenarioSpec &spec) const
{
    std::string policy = spec.policy;
    if (opts.degradeLadder && degrade::onLadder(policy))
        policy = "WaterFill"; // the ladder's bottom rung
    return AdmissionController::serviceKeyFor(
        policy, spec.cluster.has_value());
}

ScenarioService::Response
ScenarioService::submit(const ScenarioSpec &spec,
                        std::uint64_t clientId)
{
    std::promise<Response> done;
    std::future<Response> fut = done.get_future();
    submitAsync(
        spec,
        [&done](Response &&r) { done.set_value(std::move(r)); },
        clientId);
    return fut.get();
}

void
ScenarioService::submitAsync(const ScenarioSpec &spec,
                             Callback done, std::uint64_t clientId)
{
    Response r;
    if (auto err = validateScenario(spec)) {
        invalidCount++;
        r.errorCode = "invalid";
        r.errorMessage = std::move(*err);
        done(std::move(r));
        return;
    }
    r.hash = spec.hash();

    bool diskHit = false;
    if (cacheGet(r.hash, r.payload, diskHit)) {
        cacheHits++;
        if (diskHit)
            diskHits++;
        served++;
        r.ok = true;
        r.cacheHit = true;
        r.diskHit = diskHit;
        done(std::move(r));
        return;
    }

    auto job = makeJob(spec, r.hash, std::move(done), clientId);
    Callback rejected; // fired outside the lock
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        std::size_t load = queue.size() + inFlight.load();
        if (draining) {
            r.errorCode = "draining";
            r.errorMessage = "service is shutting down";
            rejected = std::move(job->done);
        } else if (queue.size() >= opts.queueCapacity) {
            rejectedBusy++;
            r.errorCode = "busy";
            r.errorMessage = "request queue is full, retry later";
            r.retryAfterMs = admission->retryHintMs(load);
            rejected = std::move(job->done);
        } else if (auto d = admission->preAdmit(
                       clientId,
                       AdmissionController::serviceKeyFor(
                           spec.policy, spec.cluster.has_value()),
                       floorKeyFor(spec), spec.deadlineMs, load);
                   !d.admit) {
            r.errorCode = std::move(d.errorCode);
            r.errorMessage = std::move(d.errorMessage);
            r.retryAfterMs = d.retryAfterMs;
            rejected = std::move(job->done);
        } else {
            job->overloadAtAdmit = d.overloaded;
            admission->onEnqueue(clientId);
            cacheMisses++;
            queue.push_back(std::move(job));
        }
    }
    if (rejected) {
        rejected(std::move(r));
        return;
    }
    queueCv.notify_one();
}

ScenarioService::BatchOutcome
ScenarioService::submitBatch(
    const std::vector<ScenarioSpec> &specs,
    std::function<void(std::size_t, Response &&)> done,
    std::uint64_t clientId)
{
    batchRequests++;
    BatchOutcome out;

    // Validate everything before anything runs: a batch with one
    // malformed entry is a caller bug, not a partial workload.
    for (std::size_t i = 0; i < specs.size(); i++) {
        if (auto err = validateScenario(specs[i])) {
            invalidCount++;
            out.errorCode = "invalid";
            out.errorIndex = i;
            out.errorMessage = "scenario " + std::to_string(i) +
                ": " + *err;
            return out;
        }
    }

    // Resolve the cache for every entry first, so admission can be
    // all-or-nothing over the *misses* only. No counters yet — a
    // rejected batch must not inflate hit stats.
    struct Hit
    {
        std::size_t index;
        Response r;
    };
    std::vector<Hit> hits;
    std::vector<std::unique_ptr<Job>> misses;
    for (std::size_t i = 0; i < specs.size(); i++) {
        Response r;
        r.hash = specs[i].hash();
        bool diskHit = false;
        if (cacheGet(r.hash, r.payload, diskHit)) {
            r.ok = true;
            r.cacheHit = true;
            r.diskHit = diskHit;
            hits.push_back({i, std::move(r)});
            continue;
        }
        misses.push_back(makeJob(
            specs[i], r.hash,
            [done, i](Response &&resp) {
                done(i, std::move(resp));
            },
            clientId));
    }

    if (!misses.empty()) {
        std::lock_guard<std::mutex> lock(queueMtx);
        std::size_t load = queue.size() + inFlight.load();
        if (draining) {
            out.errorCode = "draining";
            out.errorMessage = "service is shutting down";
            return out;
        }
        if (queue.size() + misses.size() > opts.queueCapacity) {
            rejectedBusy++;
            out.errorCode = "busy";
            out.errorMessage = "queue cannot admit " +
                std::to_string(misses.size()) +
                " scenarios, retry later";
            out.retryAfterMs = admission->retryHintMs(load);
            return out;
        }
        // All-or-nothing admission extends to fairness and
        // overload: one decision covers the whole batch (deadline
        // doom prediction stays per-request at execution — batch
        // entries can carry heterogeneous deadlines).
        auto d = admission->preAdmit(
            clientId,
            AdmissionController::serviceKeyFor(
                misses.front()->spec.policy,
                misses.front()->spec.cluster.has_value()),
            floorKeyFor(misses.front()->spec), 0.0, load,
            misses.size());
        if (!d.admit) {
            out.errorCode = std::move(d.errorCode);
            out.errorMessage = std::move(d.errorMessage);
            out.retryAfterMs = d.retryAfterMs;
            return out;
        }
        admission->onEnqueue(clientId, misses.size());
        cacheMisses += misses.size();
        for (auto &job : misses) {
            job->overloadAtAdmit = d.overloaded;
            queue.push_back(std::move(job));
        }
    }
    queueCv.notify_all();

    out.admitted = true;
    for (auto &h : hits) {
        cacheHits++;
        if (h.r.diskHit)
            diskHits++;
        served++;
        done(h.index, std::move(h.r));
    }
    return out;
}

ScenarioService::Response
ScenarioService::submitJsonText(const std::string &text)
{
    auto parsed = json::parse(text);
    if (!parsed.ok()) {
        Response r;
        r.errorCode = "parse";
        r.errorMessage = parsed.error().message + " at offset " +
            std::to_string(parsed.error().offset);
        return r;
    }
    auto spec = parseScenario(parsed.value());
    if (!spec.ok()) {
        invalidCount++;
        Response r;
        r.errorCode = "invalid";
        r.errorMessage = spec.error();
        return r;
    }
    return submit(spec.value());
}

ScenarioSpec
ScenarioService::degradeDecision(const Job &job,
                                 std::string &reason) const
{
    reason.clear();
    if (!opts.degradeLadder || !degrade::onLadder(job.spec.policy))
        return job.spec;

    std::string target = job.spec.policy;
    // Overload at admission: one rung down unconditionally — the
    // whole queue is behind this request, shave where it is cheap.
    if (job.overloadAtAdmit) {
        if (auto next = degrade::nextRung(target)) {
            target = *next;
            reason = "overload";
        }
    }
    // Doomed deadline: keep descending while the EWMA of the
    // current candidate predictably blows the remaining time. Only
    // ever fires from observed completions — unknown solvers run
    // exact.
    if (job.hasDeadline) {
        double elapsedMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - job.admitTime)
                .count();
        double remainingMs = job.spec.deadlineMs - elapsedMs;
        for (;;) {
            double per = admission->serviceTimeMs(
                AdmissionController::serviceKeyFor(
                    target, job.spec.cluster.has_value()));
            if (per <= 0.0 ||
                per * admission->options().headroom <= remainingMs)
                break;
            auto next = degrade::nextRung(target);
            if (!next)
                break;
            target = *next;
            reason = "deadline";
        }
    }
    return target == job.spec.policy ? job.spec
                                     : degradeSpec(job.spec, target);
}

ScenarioService::Response
ScenarioService::execute(Job &job)
{
    if (fault::armed())
        fault::maybeDelay(fault::Point::WorkerStall);
    if (fault::armed() && fault::fire(fault::Point::WorkerThrow))
        throw std::runtime_error(
            "injected fault: worker-throw");

    Response r;
    r.hash = job.hash;

    std::string reason;
    ScenarioSpec spec = degradeDecision(job, reason);
    std::uint64_t payloadHash = job.hash;
    if (!reason.empty()) {
        // CACHE CORRECTNESS: the degraded payload lives under the
        // degraded spec's own hash. The submitted hash keeps
        // addressing only the exact answer.
        payloadHash = spec.hash();
        r.degradedFrom = job.spec.policy;
        r.degradedTo = spec.policy;
        r.degradedReason = reason;
        degradedCount++;
        bool diskHit = false;
        if (cacheGet(payloadHash, r.payload, diskHit)) {
            served++;
            r.ok = true;
            r.cacheHit = true;
            r.diskHit = diskHit;
            return r;
        }
    }

    if (spec.cluster)
        return executeCluster(job, spec, payloadHash,
                              std::move(r));

    ExperimentRunner &runner = runnerFor(spec);
    auto swept = runner.trySweep(
        spec.sweepSpec(), opts.sweepConcurrency,
        job.hasDeadline ? &job.cancel : nullptr);
    if (!swept.ok()) {
        if (swept.error().cancelled) {
            // The deadline passed while the sweep was running; the
            // engine abandoned the remaining points and freed this
            // worker early.
            cancelledMidSweep++;
            r.errorCode = "deadline_exceeded";
            r.errorMessage = "deadline of " +
                std::to_string(job.spec.deadlineMs) +
                " ms expired mid-sweep: " + swept.error().message;
            return r;
        }
        // validateScenario() should have caught anything trySweep
        // rejects; if not, surface it rather than dying.
        r.errorCode = "invalid";
        r.errorMessage = "sweep point " +
            std::to_string(swept.error().pointIndex) + ": " +
            swept.error().message;
        return r;
    }
    r.payload = serializeResults(spec, swept.value());
    cachePut(payloadHash, r.payload);
    served++;
    r.ok = true;
    return r;
}

ScenarioService::Response
ScenarioService::executeCluster(Job &job, const ScenarioSpec &spec,
                                std::uint64_t payloadHash,
                                Response r)
{
    clusterRequests++;

    ClusterManager mgr(lib, dvfs, spec.simConfig(),
                       spec.clusterSpec());
    std::vector<ClusterRunResult> runs;
    runs.reserve(spec.budgets.size());
    for (double b : spec.budgets) {
        auto run = mgr.run(b, opts.sweepConcurrency,
                           job.hasDeadline ? &job.cancel : nullptr);
        if (!run.ok()) {
            const ClusterError &e = run.error();
            if (e.cancelled) {
                cancelledMidSweep++;
                r.errorCode = "deadline_exceeded";
                r.errorMessage = "deadline of " +
                    std::to_string(job.spec.deadlineMs) +
                    " ms expired mid-run: " + e.message;
                return r;
            }
            // Structured containment: a failing chip sim is a
            // per-request error, not a worker crash — the worker
            // stays alive and nothing is cached.
            r.errorCode = "internal_error";
            r.errorMessage = e.chipIndex == ClusterError::npos
                ? "cluster: " + e.message
                : "cluster chip " + std::to_string(e.chipIndex) +
                    ": " + e.message;
            return r;
        }
        clusterEpochs += run.value().epochs.size();
        chipSims += run.value().chips.size();
        runs.push_back(std::move(run.value()));
    }
    r.payload = serializeClusterResults(spec, runs);
    cachePut(payloadHash, r.payload);
    served++;
    r.ok = true;
    return r;
}

void
ScenarioService::workerLoop(std::size_t slot)
{
    for (;;) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            queueCv.wait(lock, [&] {
                return draining || !queue.empty();
            });
            if (queue.empty()) {
                aliveWorkers--;
                return; // draining and nothing left
            }
            job = std::move(queue.front());
            queue.pop_front();
        }
        // Frees the client's fairness slot whether the job runs,
        // sheds, or crashes.
        admission->onDequeue(job->clientId);

        // Deadline shed: the caller stopped caring — answer with a
        // structured error instead of burning a worker on it.
        if (job->hasDeadline && job->cancel.cancelled()) {
            shedDeadline++;
            Response r;
            r.hash = job->hash;
            r.errorCode = "deadline_exceeded";
            r.errorMessage = "deadline of " +
                std::to_string(job->spec.deadlineMs) +
                " ms expired before a worker was available";
            job->done(std::move(r));
            continue;
        }

        inFlight++;
        Response r;
        bool crashed = false;
        auto execStart = std::chrono::steady_clock::now();
        try {
            r = execute(*job);
        } catch (const std::exception &e) {
            crashed = true;
            r = Response{};
            r.hash = job->hash;
            r.errorCode = "internal_error";
            r.errorMessage =
                std::string("worker exception: ") + e.what();
        } catch (...) {
            crashed = true;
            r = Response{};
            r.hash = job->hash;
            r.errorCode = "internal_error";
            r.errorMessage = "worker exception of unknown type";
        }
        inFlight--;
        if (!crashed) {
            // Feed the admission EWMAs from actual computations
            // only (a degraded-cache hit says nothing about the
            // solver's cost), keyed by the policy that served.
            if (r.ok && !r.cacheHit) {
                double wallMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() -
                        execStart)
                        .count();
                const std::string &ran = r.degradedTo.empty()
                    ? job->spec.policy
                    : r.degradedTo;
                admission->recordService(
                    AdmissionController::serviceKeyFor(
                        ran, job->spec.cluster.has_value()),
                    wallMs);
            }
            job->done(std::move(r));
            continue;
        }

        // Crashed: this thread's state is no longer trusted. Count
        // and retire *before* publishing the response, so a caller
        // that just saw "internal_error" finds both the crash
        // counter and the worker's retirement in stats() — never a
        // stale "still alive" count. During drain there is no
        // supervisor turnover — keep serving in place so queued
        // work still finishes.
        workerCrashes++;
        warn("scenario worker %zu crashed (contained): %s",
             slot, r.errorMessage.c_str());
        bool retire;
        {
            std::lock_guard<std::mutex> lock(queueMtx);
            retire = !draining;
            if (retire) {
                aliveWorkers--;
                retiredSlots.push_back(slot);
            }
        }
        if (retire)
            supCv.notify_one();
        job->done(std::move(r));
        if (retire)
            return;
    }
}

void
ScenarioService::supervisorLoop()
{
    for (;;) {
        std::size_t slot;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            supCv.wait(lock, [&] {
                return draining || !retiredSlots.empty();
            });
            if (retiredSlots.empty())
                return; // draining, nothing left to resurrect
            slot = retiredSlots.front();
            retiredSlots.pop_front();
        }
        // The retired thread has already returned (it pushed its
        // slot as its last act); join() completes promptly.
        if (workers[slot].joinable())
            workers[slot].join();
        std::lock_guard<std::mutex> lock(queueMtx);
        // While draining, respawn only if queued work still needs a
        // worker; otherwise drain() owns worker lifetime from here.
        if (draining && queue.empty())
            continue;
        workers[slot] =
            std::thread(&ScenarioService::workerLoop, this, slot);
        aliveWorkers++;
    }
}

ServiceStats
ScenarioService::stats() const
{
    ServiceStats s;
    s.served = served.load();
    s.cacheHits = cacheHits.load();
    s.cacheMisses = cacheMisses.load();
    s.rejectedBusy = rejectedBusy.load();
    s.invalid = invalidCount.load();
    s.shedDeadline = shedDeadline.load();
    s.workerCrashes = workerCrashes.load();
    s.batchRequests = batchRequests.load();
    s.diskHits = diskHits.load();
    s.cancelledMidSweep = cancelledMidSweep.load();
    s.clusterRequests = clusterRequests.load();
    s.clusterEpochs = clusterEpochs.load();
    s.chipSims = chipSims.load();
    s.workersAlive = aliveWorkers.load();
    s.inFlight = inFlight.load();
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        s.queueDepth = queue.size();
    }
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        s.cacheSize = lru.size();
    }
    s.shedOverload = admission->shedCount();
    s.degradedRequests = degradedCount.load();
    if (disk) {
        DiskCacheStats d = disk->stats();
        s.diskEvictions = d.evictions;
        s.diskQuarantined = d.quarantined;
        s.diskEntries = d.entries;
        s.diskBytes = d.bytes;
        s.diskBreakerRefusals = d.breakerRefusals;
        s.diskBreakerOpens = d.breakerOpens;
        s.diskBreakerState = d.breakerState;
    }
    {
        ProfileLibraryStats pl = lib.stats();
        s.profileBuilds = pl.builds;
        s.profileDiskHits = pl.diskHits;
        s.profileBuildMs = pl.buildMs;
        s.profileReady = pl.ready;
        s.profileQuarantined = pl.storeQuarantined;
        s.profileBreakerRefusals = pl.storeBreakerRefusals;
        s.profileBreakerOpens = pl.storeBreakerOpens;
        s.profileBreakerState = pl.storeBreakerState;
    }
    s.uptimeSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - startTime)
                      .count();
    std::uint64_t lookups = s.cacheHits + s.cacheMisses;
    s.cacheHitRate =
        lookups ? static_cast<double>(s.cacheHits) / lookups : 0.0;
    return s;
}

void
ScenarioService::drain()
{
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        draining = true;
    }
    queueCv.notify_all();
    supCv.notify_all();
    // The supervisor goes first: once it has exited, nothing else
    // touches the workers vector and the joins below are safe.
    if (supervisor.joinable())
        supervisor.join();
    for (auto &w : workers)
        if (w.joinable())
            w.join();
}

} // namespace gpm
