#include "service/service.hh"

#include <exception>
#include <future>
#include <stdexcept>

#include "service/fault.hh"
#include "util/logging.hh"

namespace gpm
{

/** One queued request: the spec, its hash, the caller's rendezvous,
 *  and the admission-time deadline (when the spec carries one). */
struct ScenarioService::Job
{
    ScenarioSpec spec;
    std::uint64_t hash = 0;
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Response> done;
};

ScenarioService::ScenarioService(ProfileLibrary &lib_,
                                 const DvfsTable &dvfs_,
                                 ServiceOptions opts_)
    : lib(lib_), dvfs(dvfs_), opts(opts_),
      startTime(std::chrono::steady_clock::now())
{
    if (opts.workers == 0)
        opts.workers = 1;
    workers.reserve(opts.workers);
    for (std::size_t i = 0; i < opts.workers; i++) {
        workers.emplace_back(&ScenarioService::workerLoop, this, i);
        aliveWorkers++;
    }
    supervisor =
        std::thread(&ScenarioService::supervisorLoop, this);
}

ScenarioService::~ScenarioService() { drain(); }

ExperimentRunner &
ScenarioService::runnerFor(const ScenarioSpec &spec)
{
    std::string key = spec.simJson().canonical();
    std::lock_guard<std::mutex> lock(runnersMtx);
    auto &slot = runners[key];
    if (!slot)
        slot = std::make_unique<ExperimentRunner>(
            lib, dvfs, spec.simConfig());
    return *slot;
}

bool
ScenarioService::cacheGet(std::uint64_t hash, std::string &payload)
{
    std::lock_guard<std::mutex> lock(cacheMtx);
    auto it = cacheIndex.find(hash);
    if (it == cacheIndex.end())
        return false;
    lru.splice(lru.begin(), lru, it->second);
    payload = it->second->second;
    return true;
}

void
ScenarioService::cachePut(std::uint64_t hash,
                          const std::string &payload)
{
    if (opts.cacheCapacity == 0)
        return;
    std::lock_guard<std::mutex> lock(cacheMtx);
    auto it = cacheIndex.find(hash);
    if (it != cacheIndex.end()) {
        lru.splice(lru.begin(), lru, it->second);
        it->second->second = payload;
        return;
    }
    lru.emplace_front(hash, payload);
    cacheIndex[hash] = lru.begin();
    if (lru.size() > opts.cacheCapacity) {
        cacheIndex.erase(lru.back().first);
        lru.pop_back();
    }
}

ScenarioService::Response
ScenarioService::submit(const ScenarioSpec &spec)
{
    Response r;
    if (auto err = validateScenario(spec)) {
        invalidCount++;
        r.errorCode = "invalid";
        r.errorMessage = std::move(*err);
        return r;
    }
    r.hash = spec.hash();

    if (cacheGet(r.hash, r.payload)) {
        cacheHits++;
        served++;
        r.ok = true;
        r.cacheHit = true;
        return r;
    }

    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->hash = r.hash;
    if (spec.deadlineMs > 0.0) {
        job->hasDeadline = true;
        job->deadline = std::chrono::steady_clock::now() +
            std::chrono::microseconds(static_cast<std::int64_t>(
                spec.deadlineMs * 1000.0));
    }
    std::future<Response> fut = job->done.get_future();
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        if (draining) {
            r.errorCode = "draining";
            r.errorMessage = "service is shutting down";
            return r;
        }
        if (queue.size() >= opts.queueCapacity) {
            rejectedBusy++;
            r.errorCode = "busy";
            r.errorMessage = "request queue is full, retry later";
            return r;
        }
        cacheMisses++;
        queue.push_back(std::move(job));
    }
    queueCv.notify_one();
    return fut.get();
}

ScenarioService::Response
ScenarioService::submitJsonText(const std::string &text)
{
    auto parsed = json::parse(text);
    if (!parsed.ok()) {
        Response r;
        r.errorCode = "parse";
        r.errorMessage = parsed.error().message + " at offset " +
            std::to_string(parsed.error().offset);
        return r;
    }
    auto spec = parseScenario(parsed.value());
    if (!spec.ok()) {
        invalidCount++;
        Response r;
        r.errorCode = "invalid";
        r.errorMessage = spec.error();
        return r;
    }
    return submit(spec.value());
}

ScenarioService::Response
ScenarioService::execute(const Job &job)
{
    if (fault::armed())
        fault::maybeDelay(fault::Point::WorkerStall);
    if (fault::armed() && fault::fire(fault::Point::WorkerThrow))
        throw std::runtime_error(
            "injected fault: worker-throw");

    Response r;
    r.hash = job.hash;
    ExperimentRunner &runner = runnerFor(job.spec);
    auto swept = runner.trySweep(job.spec.sweepSpec(),
                                 opts.sweepConcurrency);
    if (!swept.ok()) {
        // validateScenario() should have caught anything trySweep
        // rejects; if not, surface it rather than dying.
        r.errorCode = "invalid";
        r.errorMessage = "sweep point " +
            std::to_string(swept.error().pointIndex) + ": " +
            swept.error().message;
        return r;
    }
    r.payload = serializeResults(job.spec, swept.value());
    cachePut(job.hash, r.payload);
    served++;
    r.ok = true;
    return r;
}

void
ScenarioService::workerLoop(std::size_t slot)
{
    for (;;) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            queueCv.wait(lock, [&] {
                return draining || !queue.empty();
            });
            if (queue.empty()) {
                aliveWorkers--;
                return; // draining and nothing left
            }
            job = std::move(queue.front());
            queue.pop_front();
        }

        // Deadline shed: the caller stopped caring — answer with a
        // structured error instead of burning a worker on it.
        if (job->hasDeadline &&
            std::chrono::steady_clock::now() > job->deadline) {
            shedDeadline++;
            Response r;
            r.hash = job->hash;
            r.errorCode = "deadline_exceeded";
            r.errorMessage = "deadline of " +
                std::to_string(job->spec.deadlineMs) +
                " ms expired before a worker was available";
            job->done.set_value(std::move(r));
            continue;
        }

        inFlight++;
        Response r;
        bool crashed = false;
        try {
            r = execute(*job);
        } catch (const std::exception &e) {
            crashed = true;
            r = Response{};
            r.hash = job->hash;
            r.errorCode = "internal_error";
            r.errorMessage =
                std::string("worker exception: ") + e.what();
        } catch (...) {
            crashed = true;
            r = Response{};
            r.hash = job->hash;
            r.errorCode = "internal_error";
            r.errorMessage = "worker exception of unknown type";
        }
        inFlight--;
        if (!crashed) {
            job->done.set_value(std::move(r));
            continue;
        }

        // Crashed: this thread's state is no longer trusted. Count
        // and retire *before* publishing the response, so a caller
        // that just saw "internal_error" finds both the crash
        // counter and the worker's retirement in stats() — never a
        // stale "still alive" count. During drain there is no
        // supervisor turnover — keep serving in place so queued
        // work still finishes.
        workerCrashes++;
        warn("scenario worker %zu crashed (contained): %s",
             slot, r.errorMessage.c_str());
        bool retire;
        {
            std::lock_guard<std::mutex> lock(queueMtx);
            retire = !draining;
            if (retire) {
                aliveWorkers--;
                retiredSlots.push_back(slot);
            }
        }
        if (retire)
            supCv.notify_one();
        job->done.set_value(std::move(r));
        if (retire)
            return;
    }
}

void
ScenarioService::supervisorLoop()
{
    for (;;) {
        std::size_t slot;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            supCv.wait(lock, [&] {
                return draining || !retiredSlots.empty();
            });
            if (retiredSlots.empty())
                return; // draining, nothing left to resurrect
            slot = retiredSlots.front();
            retiredSlots.pop_front();
        }
        // The retired thread has already returned (it pushed its
        // slot as its last act); join() completes promptly.
        if (workers[slot].joinable())
            workers[slot].join();
        std::lock_guard<std::mutex> lock(queueMtx);
        // While draining, respawn only if queued work still needs a
        // worker; otherwise drain() owns worker lifetime from here.
        if (draining && queue.empty())
            continue;
        workers[slot] =
            std::thread(&ScenarioService::workerLoop, this, slot);
        aliveWorkers++;
    }
}

ServiceStats
ScenarioService::stats() const
{
    ServiceStats s;
    s.served = served.load();
    s.cacheHits = cacheHits.load();
    s.cacheMisses = cacheMisses.load();
    s.rejectedBusy = rejectedBusy.load();
    s.invalid = invalidCount.load();
    s.shedDeadline = shedDeadline.load();
    s.workerCrashes = workerCrashes.load();
    s.workersAlive = aliveWorkers.load();
    s.inFlight = inFlight.load();
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        s.queueDepth = queue.size();
    }
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        s.cacheSize = lru.size();
    }
    s.uptimeSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - startTime)
                      .count();
    std::uint64_t lookups = s.cacheHits + s.cacheMisses;
    s.cacheHitRate =
        lookups ? static_cast<double>(s.cacheHits) / lookups : 0.0;
    return s;
}

void
ScenarioService::drain()
{
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        draining = true;
    }
    queueCv.notify_all();
    supCv.notify_all();
    // The supervisor goes first: once it has exited, nothing else
    // touches the workers vector and the joins below are safe.
    if (supervisor.joinable())
        supervisor.join();
    for (auto &w : workers)
        if (w.joinable())
            w.join();
}

} // namespace gpm
