#include "service/service.hh"

#include <future>

#include "util/logging.hh"

namespace gpm
{

/** One queued request: the spec, its hash, and the caller's
 *  rendezvous. */
struct ScenarioService::Job
{
    ScenarioSpec spec;
    std::uint64_t hash = 0;
    std::promise<Response> done;
};

ScenarioService::ScenarioService(ProfileLibrary &lib_,
                                 const DvfsTable &dvfs_,
                                 ServiceOptions opts_)
    : lib(lib_), dvfs(dvfs_), opts(opts_),
      startTime(std::chrono::steady_clock::now())
{
    if (opts.workers == 0)
        opts.workers = 1;
    workers.reserve(opts.workers);
    for (std::size_t i = 0; i < opts.workers; i++)
        workers.emplace_back(&ScenarioService::workerLoop, this);
}

ScenarioService::~ScenarioService() { drain(); }

ExperimentRunner &
ScenarioService::runnerFor(const ScenarioSpec &spec)
{
    std::string key = spec.simJson().canonical();
    std::lock_guard<std::mutex> lock(runnersMtx);
    auto &slot = runners[key];
    if (!slot)
        slot = std::make_unique<ExperimentRunner>(
            lib, dvfs, spec.simConfig());
    return *slot;
}

bool
ScenarioService::cacheGet(std::uint64_t hash, std::string &payload)
{
    std::lock_guard<std::mutex> lock(cacheMtx);
    auto it = cacheIndex.find(hash);
    if (it == cacheIndex.end())
        return false;
    lru.splice(lru.begin(), lru, it->second);
    payload = it->second->second;
    return true;
}

void
ScenarioService::cachePut(std::uint64_t hash,
                          const std::string &payload)
{
    if (opts.cacheCapacity == 0)
        return;
    std::lock_guard<std::mutex> lock(cacheMtx);
    auto it = cacheIndex.find(hash);
    if (it != cacheIndex.end()) {
        lru.splice(lru.begin(), lru, it->second);
        it->second->second = payload;
        return;
    }
    lru.emplace_front(hash, payload);
    cacheIndex[hash] = lru.begin();
    if (lru.size() > opts.cacheCapacity) {
        cacheIndex.erase(lru.back().first);
        lru.pop_back();
    }
}

ScenarioService::Response
ScenarioService::submit(const ScenarioSpec &spec)
{
    Response r;
    if (auto err = validateScenario(spec)) {
        invalidCount++;
        r.errorCode = "invalid";
        r.errorMessage = std::move(*err);
        return r;
    }
    r.hash = spec.hash();

    if (cacheGet(r.hash, r.payload)) {
        cacheHits++;
        served++;
        r.ok = true;
        r.cacheHit = true;
        return r;
    }

    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->hash = r.hash;
    std::future<Response> fut = job->done.get_future();
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        if (draining) {
            r.errorCode = "draining";
            r.errorMessage = "service is shutting down";
            return r;
        }
        if (queue.size() >= opts.queueCapacity) {
            rejectedBusy++;
            r.errorCode = "busy";
            r.errorMessage = "request queue is full, retry later";
            return r;
        }
        cacheMisses++;
        queue.push_back(std::move(job));
    }
    queueCv.notify_one();
    return fut.get();
}

ScenarioService::Response
ScenarioService::submitJsonText(const std::string &text)
{
    auto parsed = json::parse(text);
    if (!parsed.ok()) {
        Response r;
        r.errorCode = "parse";
        r.errorMessage = parsed.error().message + " at offset " +
            std::to_string(parsed.error().offset);
        return r;
    }
    auto spec = parseScenario(parsed.value());
    if (!spec.ok()) {
        invalidCount++;
        Response r;
        r.errorCode = "invalid";
        r.errorMessage = spec.error();
        return r;
    }
    return submit(spec.value());
}

ScenarioService::Response
ScenarioService::execute(const Job &job)
{
    Response r;
    r.hash = job.hash;
    ExperimentRunner &runner = runnerFor(job.spec);
    auto swept = runner.trySweep(job.spec.sweepSpec(),
                                 opts.sweepConcurrency);
    if (!swept.ok()) {
        // validateScenario() should have caught anything trySweep
        // rejects; if not, surface it rather than dying.
        r.errorCode = "invalid";
        r.errorMessage = "sweep point " +
            std::to_string(swept.error().pointIndex) + ": " +
            swept.error().message;
        return r;
    }
    r.payload = serializeResults(job.spec, swept.value());
    cachePut(job.hash, r.payload);
    served++;
    r.ok = true;
    return r;
}

void
ScenarioService::workerLoop()
{
    for (;;) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            queueCv.wait(lock, [&] {
                return draining || !queue.empty();
            });
            if (queue.empty())
                return; // draining and nothing left
            job = std::move(queue.front());
            queue.pop_front();
        }
        inFlight++;
        Response r = execute(*job);
        inFlight--;
        job->done.set_value(std::move(r));
    }
}

ServiceStats
ScenarioService::stats() const
{
    ServiceStats s;
    s.served = served.load();
    s.cacheHits = cacheHits.load();
    s.cacheMisses = cacheMisses.load();
    s.rejectedBusy = rejectedBusy.load();
    s.invalid = invalidCount.load();
    s.inFlight = inFlight.load();
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        s.queueDepth = queue.size();
    }
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        s.cacheSize = lru.size();
    }
    s.uptimeSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - startTime)
                      .count();
    std::uint64_t lookups = s.cacheHits + s.cacheMisses;
    s.cacheHitRate =
        lookups ? static_cast<double>(s.cacheHits) / lookups : 0.0;
    return s;
}

void
ScenarioService::drain()
{
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        draining = true;
    }
    queueCv.notify_all();
    for (auto &w : workers)
        if (w.joinable())
            w.join();
}

} // namespace gpm
