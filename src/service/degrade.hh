/**
 * @file
 * The policy degradation ladder — the serving-time embodiment of
 * the paper's quality/cost result: exact MaxBIPS is the best answer
 * but the approximate kernels trail it by fractions of a percent at
 * a fraction of the cost (MaxBIPS-DP gap ~0% at ~270 us vs
 * WaterFill at ~80 us for 1024 cores). When the daemon is
 * overloaded, or a request's deadline cannot survive the exact
 * solver, the service transparently steps the solver DOWN the
 * ladder instead of rejecting or blowing the deadline:
 *
 *     MaxBIPS / MaxBIPS-BnB  (exact, exponential worst case)
 *        │
 *        ▼
 *     MaxBIPS-DP<G>          (MCKP DP, ~exact, microseconds)
 *        │
 *        ▼
 *     GreedyTurbo            (heap-driven upgrades, cheaper)
 *        │
 *        ▼
 *     WaterFill              (water-filling, cheapest)
 *
 * Every rung is a valid policy for both flat sweeps and cluster
 * facility arbitration, so one ladder serves both request shapes.
 * Policies off the ladder (Priority, Static, Oracle, the MinPower
 * family, ...) are never degraded — there is no cheaper solver
 * with the same meaning.
 *
 * A degraded response is exactly what a direct submission of the
 * degraded scenario would return (bitwise — same serializer, same
 * canonical echo), is labeled with {from, to, reason}, and is
 * cached only under the DEGRADED scenario's hash, never the
 * original's: the cache tier stays bitwise-truthful per hash.
 */

#ifndef GPM_SERVICE_DEGRADE_HH
#define GPM_SERVICE_DEGRADE_HH

#include <optional>
#include <string>

namespace gpm::degrade
{

/** True when @p policy sits on the ladder (including its bottom
 *  rung, which has nowhere further to go). */
bool onLadder(const std::string &policy);

/**
 * The next rung down from @p policy, or nullopt when @p policy is
 * off the ladder or already the bottom rung. "MaxBIPS-DP<G>"
 * matches the DP rung for any grid G.
 */
std::optional<std::string> nextRung(const std::string &policy);

/** Ladder position of @p policy: 0 = top (exact family), larger =
 *  cheaper; nullopt when off the ladder. */
std::optional<int> rungIndex(const std::string &policy);

} // namespace gpm::degrade

#endif // GPM_SERVICE_DEGRADE_HH
