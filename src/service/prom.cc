#include "service/prom.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace gpm
{

#ifndef GPM_BUILD_VERSION
#define GPM_BUILD_VERSION "unknown"
#endif
#ifndef GPM_BUILD_REVISION
#define GPM_BUILD_REVISION "unknown"
#endif

void
promCounter(std::string &out, const char *name, const char *help,
            std::uint64_t v)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "# HELP %s %s\n# TYPE %s counter\n%s %" PRIu64
                  "\n",
                  name, help, name, name, v);
    out += buf;
}

void
promGauge(std::string &out, const char *name, const char *help,
          double v)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name,
                  help, name, name, v);
    out += buf;
}

void
promBuildInfo(std::string &out)
{
    out += "# HELP gpm_build_info Build version and revision as "
           "labels; value is always 1\n"
           "# TYPE gpm_build_info gauge\n"
           "gpm_build_info{version=\"" GPM_BUILD_VERSION
           "\",revision=\"" GPM_BUILD_REVISION "\"} 1\n";
}

namespace
{

void
breakerState(std::string &out, const char *breaker,
             const char *state)
{
    static const char *const kStates[] = {"closed", "open",
                                          "half-open"};
    char buf[128];
    for (const char *s : kStates) {
        std::snprintf(
            buf, sizeof(buf),
            "gpm_breaker_state{breaker=\"%s\",state=\"%s\"} %d\n",
            breaker, s, std::strcmp(s, state) == 0 ? 1 : 0);
        out += buf;
    }
}

} // namespace

std::string
renderPrometheus(const ServiceStats &s, const ReactorStats &r,
                 const ServerCounters &c)
{
    std::string out;
    out.reserve(8192);

    promBuildInfo(out);

    // ---- scenario service counters ----
    promCounter(out,"gpm_served_total",
            "Responses served with ok payloads", s.served);
    promCounter(out,"gpm_cache_hits_total",
            "Cache hits (memory or disk tier)", s.cacheHits);
    promCounter(out,"gpm_cache_misses_total",
            "Accepted requests that had to compute",
            s.cacheMisses);
    promCounter(out,"gpm_rejected_busy_total",
            "Requests rejected while the queue was full",
            s.rejectedBusy);
    promCounter(out,"gpm_invalid_total",
            "Requests that failed validation", s.invalid);
    promCounter(out,"gpm_shed_deadline_total",
            "Requests shed because their deadline expired",
            s.shedDeadline);
    promCounter(out,"gpm_worker_crashes_total",
            "Contained worker crashes", s.workerCrashes);
    promCounter(out,"gpm_batch_requests_total",
            "submit_batch requests admitted", s.batchRequests);
    promCounter(out,"gpm_disk_hits_total",
            "Disk-tier hits promoted to memory", s.diskHits);
    promCounter(out,"gpm_disk_evictions_total",
            "Disk-tier entries LRU-evicted", s.diskEvictions);
    promCounter(out,"gpm_disk_quarantined_total",
            "Corrupt disk entries quarantined",
            s.diskQuarantined);
    promCounter(out,"gpm_cancelled_mid_sweep_total",
            "Sweeps cancelled by a mid-flight deadline",
            s.cancelledMidSweep);
    promCounter(out,"gpm_cluster_requests_total",
            "Cluster scenarios computed", s.clusterRequests);
    promCounter(out,"gpm_cluster_epochs_total",
            "Facility epochs arbitrated", s.clusterEpochs);
    promCounter(out,"gpm_chip_sims_total",
            "Per-chip simulations run", s.chipSims);
    promCounter(out,"gpm_profile_builds_total",
            "Detailed-core profile suite builds",
            s.profileBuilds);
    promCounter(out,"gpm_profile_disk_hits_total",
            "Profiles loaded from the on-disk store",
            s.profileDiskHits);
    promCounter(out,"gpm_profile_build_ms_total",
            "Cumulative profile simulation time in ms",
            s.profileBuildMs);
    promCounter(out,"gpm_profile_quarantined_total",
            "Corrupt profile-store entries quarantined",
            s.profileQuarantined);
    promCounter(out,"gpm_shed_overload_total",
            "Requests shed by admission control",
            s.shedOverload);
    promCounter(out,"gpm_degraded_requests_total",
            "Requests served one or more rungs down",
            s.degradedRequests);
    promCounter(out,"gpm_disk_breaker_refusals_total",
            "Disk ops refused while the breaker was open",
            s.diskBreakerRefusals);
    promCounter(out,"gpm_disk_breaker_opens_total",
            "Disk breaker open events", s.diskBreakerOpens);
    promCounter(out,"gpm_profile_breaker_refusals_total",
            "Profile-store ops refused while the breaker was open",
            s.profileBreakerRefusals);
    promCounter(out,"gpm_profile_breaker_opens_total",
            "Profile-store breaker open events",
            s.profileBreakerOpens);

    // ---- scenario service gauges ----
    promGauge(out,"gpm_profile_ready",
          "Profiles currently ready to serve",
          static_cast<double>(s.profileReady));
    promGauge(out,"gpm_workers_alive", "Worker threads running",
          static_cast<double>(s.workersAlive));
    promGauge(out,"gpm_queue_depth", "Requests waiting right now",
          static_cast<double>(s.queueDepth));
    promGauge(out,"gpm_in_flight", "Requests being computed",
          static_cast<double>(s.inFlight));
    promGauge(out,"gpm_cache_size", "Memory-tier cache entries",
          static_cast<double>(s.cacheSize));
    promGauge(out,"gpm_disk_entries", "Disk-tier cache entries",
          static_cast<double>(s.diskEntries));
    promGauge(out,"gpm_disk_bytes", "Disk-tier tracked bytes",
          static_cast<double>(s.diskBytes));
    promGauge(out,"gpm_uptime_seconds", "Daemon uptime",
          s.uptimeSec);
    promGauge(out,"gpm_cache_hit_rate",
          "cacheHits / (cacheHits + cacheMisses)",
          s.cacheHitRate);

    out += "# HELP gpm_breaker_state Circuit breaker state "
           "(exactly one state sample per breaker is 1)\n"
           "# TYPE gpm_breaker_state gauge\n";
    breakerState(out, "disk", s.diskBreakerState);
    breakerState(out, "profile", s.profileBreakerState);

    // ---- server / reactor transport ----
    promCounter(out,"gpm_connections_total",
            "NDJSON connections accepted", c.connections);
    promCounter(out,"gpm_requests_total",
            "Request lines handled", c.requests);
    promCounter(out,"gpm_idle_reaped_total",
            "Connections reaped for idling", r.idleReaped);
    promCounter(out,"gpm_line_too_long_total",
            "Over-long lines answered with line_too_long",
            r.lineTooLong);
    promCounter(out,"gpm_epoll_wakeups_total",
            "epoll_wait returns across all reactors",
            r.epollWakeups);
    promCounter(out,"gpm_bytes_in_total",
            "Bytes received on data sockets", r.bytesIn);
    promCounter(out,"gpm_bytes_out_total",
            "Bytes written to data sockets", r.bytesOut);
    promCounter(out,"gpm_accept_sheds_total",
            "Connections shed under EMFILE/ENFILE via the spare "
            "fd",
            r.emfileSheds);
    promGauge(out,"gpm_open_connections",
          "Sockets currently open across all reactors",
          static_cast<double>(r.openConnections));
    promGauge(out,"gpm_ring_buffer_high_water",
          "Largest per-connection scan-buffer fill seen",
          static_cast<double>(r.ringHighWater));
    promGauge(out,"gpm_reactor_threads", "Reactor event loops",
          static_cast<double>(c.reactorThreads));
    return out;
}

} // namespace gpm
