/**
 * @file
 * ScenarioSpec — the scenario service's request schema: one
 * benchmark combination, one policy, one or more budget fractions,
 * and the simulator knobs a client may turn. A scenario maps 1:1
 * onto a SweepSpec (one point per budget) plus the SimConfig its
 * runner must use, and has a canonical JSON form whose hash is the
 * result-cache key: two requests that mean the same thing — key
 * order, "budget" vs "budgets":[...], combination key vs explicit
 * benchmark list — hash identically.
 *
 * Parsing is strict: unknown fields, out-of-range knobs, unknown
 * benchmark/policy names and malformed shapes are all rejected with
 * a message the service returns verbatim in its "invalid" error
 * response.
 */

#ifndef GPM_SERVICE_SCENARIO_HH
#define GPM_SERVICE_SCENARIO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hh"
#include "core/static_planner.hh"
#include "metrics/experiment.hh"
#include "service/json.hh"

namespace gpm
{

struct ScenarioSpec
{
    /** Benchmark names run together (one per core). */
    std::vector<std::string> combo;
    /** Policy name; "Static" routes through evaluateStatic(). */
    std::string policy;
    /** Budget fractions, one sweep point each. */
    std::vector<double> budgets;
    /** Fitting rule when policy == "Static". */
    StaticFit staticFit = StaticFit::Peak;

    /**
     * Cluster scenario: when set, the request describes a rack of
     * chips under one facility budget instead of a single chip, and
     * `policy` names the facility-level arbitration kernel (see
     * cluster/cluster.hh). Mutually exclusive with `combo`. The
     * embedded spec's own policy field stays empty — clusterSpec()
     * assembles the complete spec. Cluster scenarios serialize a
     * distinct canonical shape (a "cluster" object, no "combo"
     * key), so their hashes can never collide with flat scenarios'.
     */
    std::optional<ClusterSpec> cluster;

    /** Client-tunable SimConfig knobs (defaults mirror SimConfig). */
    double exploreUs = 500.0;
    double deltaSimUs = 50.0;
    bool contention = false;
    double sensorNoise = 0.0;
    /** Per-core workload phase-shift stride in [0, 1); 0 = off.
     *  Serialized into the canonical form only when non-zero so
     *  pre-existing scenario hashes are unaffected. */
    double phaseShiftStride = 0.0;

    /**
     * Optional per-request deadline in milliseconds (0 = none),
     * measured from service admission. The queue sheds a request
     * whose deadline expired before a worker picked it up with a
     * structured "deadline_exceeded" error instead of burning a
     * worker on a result nobody is waiting for. A QoS knob, not
     * part of the scenario's identity: it does NOT participate in
     * canonicalJson()/hash(), so requests that differ only in
     * deadline share one cache entry.
     */
    double deadlineMs = 0.0;

    /** Hard caps on request shape (many-core scenarios go to 1024
     *  cores; see trace/workload.hh manyCoreCombo). */
    static constexpr std::size_t maxCores = 1024;
    static constexpr std::size_t maxBudgets = 64;

    /** The SimConfig an ExperimentRunner needs for this scenario. */
    SimConfig simConfig() const;

    /** The equivalent sweep: one point per budget fraction. Flat
     *  scenarios only. */
    SweepSpec sweepSpec() const;

    /** The complete ClusterSpec (cluster + the top-level policy).
     *  Cluster scenarios only. */
    ClusterSpec clusterSpec() const;

    /** The sim-knob subsection of the canonical form (also the
     *  service's runner-cache key). */
    json::Value simJson() const;

    /** Canonical JSON with every field explicit. */
    json::Value canonicalJson() const;

    /** Cache key: canonicalJson().canonicalHash(). */
    std::uint64_t hash() const;
};

/**
 * Semantic validation of an already-populated spec (parseScenario
 * applies it too): known names, non-empty shapes, knob ranges.
 * Returns the rejection reason, or nullopt when valid.
 */
std::optional<std::string>
validateScenario(const ScenarioSpec &spec);

/**
 * A copy of @p spec solving with @p policy instead — what a
 * degraded execution actually runs and serializes (see
 * degrade.hh). For cluster scenarios this substitutes the
 * facility-level arbitration kernel; the chips keep their inner
 * policies. The copy has its own canonical form and hash, so a
 * degraded payload can never collide with the original scenario's
 * cache entry.
 */
ScenarioSpec degradeSpec(const ScenarioSpec &spec,
                         const std::string &policy);

/**
 * Build a ScenarioSpec from a parsed JSON scenario object.
 * Accepted fields:
 *   combo     array of benchmark names, or a combination key
 *             string: Table 2 ("2way1", ...) or many-core
 *             ("many64" ... "many1024")   } exactly one
 *   cluster   cluster object (below)      } of the two
 *   policy    policy name or "Static"; for cluster scenarios a
 *             facility arbitration kernel  [required]
 *   budget    single budget fraction     } exactly one
 *   budgets   array of budget fractions  } of the two
 *   staticFit  "peak" | "average" (policy "Static" only)
 *   sim        object: exploreUs, deltaSimUs, contention,
 *              sensorNoise, phaseShiftStride (all optional;
 *              phaseShiftStride must stay 0 for cluster scenarios —
 *              phase geometry is per-chip there)
 *   deadlineMs queue deadline in ms (optional; see the field)
 *
 * The cluster object:
 *   chips     array of chip objects        [required]
 *               combo    names array or combination key [required]
 *               policy   inner dynamic policy name      [required]
 *               count    replicate this chip N times (default 1)
 *               phaseShiftStride  per-core stride in [0, 1)
 *               phaseOffset       chip-wide base shift in [0, 1)
 *   epochs    outer reallocation epochs (default 8)
 *   epochUs   epoch length in us (default 2000)
 *   levels    frontier quantization levels (default 16)
 * Anything else is rejected.
 */
Expected<ScenarioSpec, std::string>
parseScenario(const json::Value &scenario);

/**
 * Deterministic result payload for a served scenario: the canonical
 * scenario echoed back plus one result object per sweep point, all
 * serialized canonically (sorted keys, shortest round-trip
 * doubles). Identical evals always produce identical bytes — the
 * cache stores exactly this string.
 */
std::string serializeResults(const ScenarioSpec &spec,
                             const std::vector<PolicyEval> &evals);

/**
 * Deterministic result payload for a served *cluster* scenario: the
 * canonical scenario plus, per budget fraction, cluster metrics,
 * per-chip outcomes and the per-epoch reallocation trace.
 */
std::string
serializeClusterResults(const ScenarioSpec &spec,
                        const std::vector<ClusterRunResult> &runs);

} // namespace gpm

#endif // GPM_SERVICE_SCENARIO_HH
