#include "service/reactor.hh"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Minimum tail space requested before each recv(); the scanner
 *  consumes as it goes, so quiet connections never grow past this. */
constexpr std::size_t kReadChunk = 4096;
constexpr int kMaxEvents = 256;
constexpr std::size_t kMaxIov = 64;
/** HTTP request/header lines are tiny; anything bigger is abuse. */
constexpr std::size_t kHttpMaxLine = 8192;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool
deadlinePassed(Clock::time_point since, Clock::time_point now,
               int ms)
{
    return now - since >= std::chrono::milliseconds(ms);
}

} // namespace

/**
 * One event loop: an epoll instance, an eventfd for cross-thread
 * wake-ups, and the connections this loop owns. Reactor 0
 * additionally owns the listening sockets and a spare fd reserved
 * for shedding connections under EMFILE/ENFILE.
 */
class Reactor
{
  public:
    Reactor(ReactorPool &pool_, std::size_t index_)
        : pool(pool_), opts(pool_.opts), index(index_)
    {
        epfd = ::epoll_create1(EPOLL_CLOEXEC);
        if (epfd < 0)
            fatal("reactor: epoll_create1: %s",
                  std::strerror(errno));
        wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (wakeFd < 0)
            fatal("reactor: eventfd: %s", std::strerror(errno));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = wakeFd;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, wakeFd, &ev);
        spareFd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }

    ~Reactor()
    {
        join();
        if (spareFd >= 0)
            ::close(spareFd);
        if (wakeFd >= 0)
            ::close(wakeFd);
        if (epfd >= 0)
            ::close(epfd);
    }

    /** Register a listening socket (level-triggered; not owned). */
    void
    addListener(int fd, bool http)
    {
        setNonBlocking(fd);
        (http ? httpListenFd : ndjsonListenFd) = fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
    }

    void
    start()
    {
        thr = std::thread(&Reactor::loop, this);
    }

    /** Ask the loop to stop reading, flush, close and exit. */
    void
    beginShutdown()
    {
        drainRequested.store(true, std::memory_order_release);
        signalWake();
    }

    void
    join()
    {
        if (thr.joinable())
            thr.join();
    }

    /** Hand over a connection accepted on another reactor. */
    void
    adopt(std::shared_ptr<ReactorConn> c)
    {
        {
            std::lock_guard<std::mutex> lock(wakeMtx);
            adoptQueue.push_back(std::move(c));
        }
        signalWake();
    }

    /** Queue a flush/close re-evaluation for @p c (any thread). */
    void
    scheduleFlush(std::shared_ptr<ReactorConn> c)
    {
        if (t_current == this) {
            dirty.push_back(std::move(c));
            return;
        }
        {
            std::lock_guard<std::mutex> lock(wakeMtx);
            wakeQueue.push_back(std::move(c));
        }
        signalWake();
    }

    // Transport counters; written by this reactor's thread, read by
    // ReactorPool::stats() from anywhere.
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> bytesIn{0};
    std::atomic<std::uint64_t> bytesOut{0};
    std::atomic<std::uint64_t> idleReaped{0};
    std::atomic<std::uint64_t> lineTooLong{0};
    std::atomic<std::uint64_t> emfileSheds{0};
    std::atomic<std::uint64_t> openConns{0};
    std::atomic<std::uint64_t> ringHighWater{0};

  private:
    static thread_local Reactor *t_current;

    void
    signalWake()
    {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd, &one, sizeof(one));
    }

    int
    epollTimeoutMs() const
    {
        if (draining)
            return 50;
        bool timers = (opts.idleTimeoutMs > 0 ||
                       opts.writeTimeoutMs > 0) &&
                      !conns.empty();
        return timers ? 100 : -1;
    }

    void
    loop()
    {
        t_current = this;
        epoll_event evs[kMaxEvents];
        for (;;) {
            if (drainRequested.load(std::memory_order_acquire) &&
                !draining)
                handleDrain();
            if (draining && conns.empty()) {
                std::lock_guard<std::mutex> lock(wakeMtx);
                if (wakeQueue.empty() && adoptQueue.empty())
                    break;
            }
            int n = ::epoll_wait(epfd, evs, kMaxEvents,
                                 epollTimeoutMs());
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                warn("reactor %zu: epoll_wait: %s", index,
                     std::strerror(errno));
                break;
            }
            wakeups.fetch_add(1, std::memory_order_relaxed);
            for (int i = 0; i < n; i++) {
                int fd = evs[i].data.fd;
                std::uint32_t e = evs[i].events;
                if (fd == wakeFd) {
                    drainWakeFd();
                    continue;
                }
                if (fd == ndjsonListenFd) {
                    acceptReady(false);
                    continue;
                }
                if (fd == httpListenFd) {
                    acceptReady(true);
                    continue;
                }
                // Look the connection up by fd: an earlier event or
                // flush in this very batch may have closed it, and
                // a stale map miss is the safe signal for that.
                auto it = conns.find(fd);
                if (it == conns.end())
                    continue;
                std::shared_ptr<ReactorConn> c = it->second;
                if (e & EPOLLERR) {
                    closeConn(c);
                    continue;
                }
                // Write first: a drained out-queue frees the
                // cheapest backpressure there is.
                if (e & EPOLLOUT)
                    flushConn(c);
                if (c->fd >= 0 &&
                    (e & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)))
                    readConn(c);
            }
            // Responses enqueued synchronously during this batch
            // (cache hits completing inline) flush here, batched.
            for (std::size_t i = 0; i < dirty.size(); i++) {
                std::shared_ptr<ReactorConn> c = dirty[i];
                flushConn(c);
            }
            dirty.clear();
            sweepTimers();
        }
        t_current = nullptr;
    }

    void
    drainWakeFd()
    {
        std::uint64_t junk;
        while (::read(wakeFd, &junk, sizeof(junk)) > 0) {
        }
        std::vector<std::shared_ptr<ReactorConn>> adopts, flushes;
        {
            std::lock_guard<std::mutex> lock(wakeMtx);
            adopts.swap(adoptQueue);
            flushes.swap(wakeQueue);
        }
        for (auto &c : adopts)
            adoptLocal(std::move(c));
        for (auto &c : flushes)
            flushConn(c);
    }

    void
    acceptReady(bool http)
    {
        int lfd = http ? httpListenFd : ndjsonListenFd;
        for (;;) {
            if (lfd < 0 || draining)
                return;
            int cfd = ::accept4(lfd, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (cfd < 0) {
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return;
                if (errno == EMFILE || errno == ENFILE) {
                    shedOverLimit(lfd);
                    continue;
                }
                // The listener was shut down (EINVAL) or closed:
                // accepting on this socket is over for good.
                ::epoll_ctl(epfd, EPOLL_CTL_DEL, lfd, nullptr);
                if (http)
                    httpListenFd = -1;
                else {
                    ndjsonListenFd = -1;
                    pool.notifyAcceptDone();
                }
                return;
            }
            if (fault::armed())
                fault::maybeDelay(fault::Point::AcceptDelay);
            int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            auto c = std::make_shared<ReactorConn>();
            c->fd = cfd;
            if (http) {
                // Observability scrapes stay on the accepting
                // reactor and never count as protocol clients.
                c->kind = ReactorConn::Kind::Http;
                adoptLocal(std::move(c));
                continue;
            }
            c->kind = ReactorConn::Kind::Ndjson;
            // Fairness identity: the 1-based accept ordinal. Never
            // 0 — 0 is the exempt in-process caller.
            c->clientId_ = pool.acceptCounter.fetch_add(
                               1, std::memory_order_acq_rel) +
                           1;
            Reactor &home = pool.reactorFor(c->clientId_ - 1);
            c->owner = &home;
            if (&home == this)
                adoptLocal(std::move(c));
            else
                home.adopt(std::move(c));
        }
    }

    /**
     * Transient EMFILE/ENFILE: release the reserved spare fd,
     * accept-and-close the pending connection (the client sees a
     * clean close and retries), then re-reserve the spare. Without
     * this the accept loop would treat fd exhaustion as fatal.
     */
    void
    shedOverLimit(int lfd)
    {
        if (spareFd >= 0) {
            ::close(spareFd);
            spareFd = -1;
        }
        int shed = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
        if (shed >= 0) {
            ::close(shed);
            if (emfileSheds.fetch_add(
                    1, std::memory_order_relaxed) == 0)
                warn("reactor %zu: fd limit reached; shedding "
                     "connections via the spare fd",
                     index);
        }
        spareFd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }

    void
    adoptLocal(std::shared_ptr<ReactorConn> c)
    {
        if (draining) {
            ::close(c->fd);
            c->fd = -1;
            return;
        }
        c->owner = this;
        auto now = Clock::now();
        c->lastActivity = now;
        c->lastWriteOk = now;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
        ev.data.fd = c->fd;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, c->fd, &ev) != 0) {
            warn("reactor %zu: epoll add: %s", index,
                 std::strerror(errno));
            ::close(c->fd);
            c->fd = -1;
            return;
        }
        int fd = c->fd;
        conns.emplace(fd, c);
        openConns.fetch_add(1, std::memory_order_relaxed);
        // Bytes may already be queued; consume them now rather
        // than waiting for the initial edge.
        readConn(c);
    }

    void
    readConn(std::shared_ptr<ReactorConn> c)
    {
        for (;;) {
            if (c->fd < 0 || c->stopReading)
                return;
            char *p = c->in.writePtr(kReadChunk);
            std::size_t cap = c->in.writeCapacity();
            ssize_t n = ::recv(c->fd, p, cap, 0);
            if (n > 0) {
                bytesIn.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
                c->in.commit(static_cast<std::size_t>(n));
                c->lastActivity = Clock::now();
                std::uint64_t hw = c->in.highWater();
                if (hw >
                    ringHighWater.load(std::memory_order_relaxed))
                    ringHighWater.store(
                        hw, std::memory_order_relaxed);
                bool alive = c->kind == ReactorConn::Kind::Ndjson
                                 ? scanNdjson(c)
                                 : scanHttp(c);
                if (!alive || c->fd < 0)
                    return;
                continue;
            }
            if (n == 0) {
                // Orderly half-close: pipelined responses still in
                // flight are delivered before the socket dies.
                c->readEof = true;
                maybeCloseQuiescent(c);
                return;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            closeConn(c);
            return;
        }
    }

    /** Frame and dispatch every complete NDJSON line buffered on
     *  @p c. False when the connection was closed. */
    bool
    scanNdjson(const std::shared_ptr<ReactorConn> &c)
    {
        std::string_view line;
        for (;;) {
            switch (c->in.next(line, opts.maxLineBytes)) {
            case LineScanner::Scan::Line: {
                if (c->stopReading)
                    return true;
                if (fault::armed() &&
                    fault::fire(fault::Point::ReadDrop))
                    continue; // lost in transit, per the fault
                // Blank lines are keep-alive noise, not requests.
                if (line.find_first_not_of(" \t") ==
                    std::string_view::npos)
                    continue;
                if (drainRequested.load(
                        std::memory_order_acquire)) {
                    c->stopReading = true;
                    return true;
                }
                if (fault::armed())
                    fault::maybeDelay(fault::Point::ConnStall);
                pool.handler.onLine(c, line);
                if (c->isBroken()) {
                    closeConn(c);
                    return false;
                }
                continue;
            }
            case LineScanner::Scan::NeedMore:
                return true;
            case LineScanner::Scan::Overflow:
                // Answer structurally, then close: past an overrun
                // the stream can no longer be framed into lines.
                lineTooLong.fetch_add(1,
                                      std::memory_order_relaxed);
                c->in.reset();
                c->stopReading = true;
                c->closeAfterFlush = true;
                c->send(pool.handler.onLineTooLong());
                return true;
            }
        }
    }

    /** Minimal HTTP: request line, headers to the blank line, one
     *  handler-rendered response, close after the flush. */
    bool
    scanHttp(const std::shared_ptr<ReactorConn> &c)
    {
        std::string_view line;
        for (;;) {
            switch (c->in.next(line, kHttpMaxLine)) {
            case LineScanner::Scan::Line: {
                if (c->stopReading)
                    return true;
                if (!c->httpGotRequestLine) {
                    c->httpGotRequestLine = true;
                    std::size_t sp1 = line.find(' ');
                    if (sp1 == std::string_view::npos) {
                        closeConn(c);
                        return false;
                    }
                    std::size_t sp2 = line.find(' ', sp1 + 1);
                    c->httpMethod =
                        std::string(line.substr(0, sp1));
                    c->httpPath = std::string(
                        sp2 == std::string_view::npos
                            ? line.substr(sp1 + 1)
                            : line.substr(sp1 + 1,
                                          sp2 - sp1 - 1));
                    if (sp2 == std::string_view::npos) {
                        // HTTP/0.9-style simple request: no
                        // version, no headers — answer now.
                        respondHttp(c);
                        return true;
                    }
                } else if (line.empty()) {
                    respondHttp(c);
                    return true;
                }
                continue;
            }
            case LineScanner::Scan::NeedMore:
                return true;
            case LineScanner::Scan::Overflow:
                closeConn(c);
                return false;
            }
        }
    }

    void
    respondHttp(const std::shared_ptr<ReactorConn> &c)
    {
        c->stopReading = true;
        c->closeAfterFlush = true;
        c->send(pool.handler.onHttpRequest(c->httpMethod,
                                           c->httpPath));
    }

    /**
     * Drive the out-queue into the socket with scatter-gather
     * writes until it runs dry or the kernel pushes back (the next
     * EPOLLOUT edge resumes). Runs only on this reactor's thread;
     * the queue lock is held across the sendmsg — workers only ever
     * hold it for a push_back.
     */
    void
    flushConn(std::shared_ptr<ReactorConn> c)
    {
        std::unique_lock<std::mutex> lock(c->mtx);
        c->flushQueued = false;
        if (c->fd < 0)
            return;
        while (!c->out.empty()) {
            iovec iov[kMaxIov];
            std::size_t cnt = 0;
            std::size_t off = c->outHead;
            for (auto it = c->out.begin();
                 it != c->out.end() && cnt < kMaxIov; ++it) {
                iov[cnt].iov_base =
                    const_cast<char *>(it->data()) + off;
                iov[cnt].iov_len = it->size() - off;
                off = 0;
                cnt++;
            }
            msghdr mh{};
            mh.msg_iov = iov;
            mh.msg_iovlen = cnt;
            ssize_t n = ::sendmsg(c->fd, &mh, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return; // backpressure: EPOLLOUT will resume
                c->broken.store(true, std::memory_order_relaxed);
                lock.unlock();
                closeConn(c);
                return;
            }
            bytesOut.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
            c->lastWriteOk = Clock::now();
            std::size_t left = static_cast<std::size_t>(n);
            while (left > 0) {
                std::size_t avail =
                    c->out.front().size() - c->outHead;
                if (left >= avail) {
                    left -= avail;
                    c->out.pop_front();
                    c->outHead = 0;
                } else {
                    c->outHead += left;
                    left = 0;
                }
            }
        }
        // Fully flushed: an empty queue restarts the idle clock and
        // lets a finished (EOF'd / answered-and-closing / drained)
        // connection go.
        c->lastActivity = Clock::now();
        bool close_now =
            (c->readEof || c->closeAfterFlush) &&
            c->pending.load(std::memory_order_acquire) == 0;
        lock.unlock();
        if (close_now)
            closeConn(c);
    }

    void
    maybeCloseQuiescent(const std::shared_ptr<ReactorConn> &c)
    {
        bool outEmpty;
        {
            std::lock_guard<std::mutex> lock(c->mtx);
            outEmpty = c->out.empty();
        }
        if (outEmpty &&
            c->pending.load(std::memory_order_acquire) == 0)
            closeConn(c);
    }

    void
    closeConn(std::shared_ptr<ReactorConn> c)
    {
        if (c->fd < 0)
            return;
        {
            std::lock_guard<std::mutex> lock(c->mtx);
            c->closedForSend = true;
            c->out.clear();
            c->outHead = 0;
        }
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, c->fd, nullptr);
        ::close(c->fd);
        conns.erase(c->fd);
        c->fd = -1;
        openConns.fetch_sub(1, std::memory_order_relaxed);
    }

    void
    sweepTimers()
    {
        if (opts.idleTimeoutMs <= 0 && opts.writeTimeoutMs <= 0)
            return;
        if (conns.empty())
            return;
        auto now = Clock::now();
        std::vector<std::shared_ptr<ReactorConn>> stalled, idle;
        for (auto &[fd, c] : conns) {
            (void)fd;
            bool outEmpty;
            {
                std::lock_guard<std::mutex> lock(c->mtx);
                outEmpty = c->out.empty();
            }
            if (opts.writeTimeoutMs > 0 && !outEmpty &&
                deadlinePassed(c->lastWriteOk, now,
                               opts.writeTimeoutMs)) {
                stalled.push_back(c);
                continue;
            }
            // A connection still owed responses is waiting on
            // workers, not idling — the reap clock only runs while
            // it is fully quiescent.
            if (opts.idleTimeoutMs > 0 && outEmpty &&
                !c->closeAfterFlush &&
                c->pending.load(std::memory_order_acquire) == 0 &&
                deadlinePassed(c->lastActivity, now,
                               opts.idleTimeoutMs))
                idle.push_back(c);
        }
        for (auto &c : stalled) {
            c->broken.store(true, std::memory_order_relaxed);
            closeConn(c);
        }
        for (auto &c : idle) {
            idleReaped.fetch_add(1, std::memory_order_relaxed);
            closeConn(c);
        }
    }

    void
    handleDrain()
    {
        draining = true;
        if (ndjsonListenFd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, ndjsonListenFd,
                        nullptr);
            ndjsonListenFd = -1;
            pool.notifyAcceptDone();
        }
        if (httpListenFd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, httpListenFd, nullptr);
            httpListenFd = -1;
        }
        std::vector<std::shared_ptr<ReactorConn>> all;
        all.reserve(conns.size());
        for (auto &kv : conns)
            all.push_back(kv.second);
        for (auto &c : all) {
            c->stopReading = true;
            c->closeAfterFlush = true;
            flushConn(c); // flushes what it can, closes if done
        }
    }

    ReactorPool &pool;
    ReactorOptions opts;
    std::size_t index;
    int epfd = -1;
    int wakeFd = -1;
    int spareFd = -1;
    int ndjsonListenFd = -1;
    int httpListenFd = -1;
    bool draining = false;
    std::atomic<bool> drainRequested{false};
    std::unordered_map<int, std::shared_ptr<ReactorConn>> conns;
    /** Conns with responses enqueued during the current event
     *  batch (reactor-thread local). */
    std::vector<std::shared_ptr<ReactorConn>> dirty;
    std::mutex wakeMtx;
    std::vector<std::shared_ptr<ReactorConn>> wakeQueue;
    std::vector<std::shared_ptr<ReactorConn>> adoptQueue;
    std::thread thr;
};

thread_local Reactor *Reactor::t_current = nullptr;

// ---------------------------------------------------------------
// ReactorConn
// ---------------------------------------------------------------

void
ReactorConn::send(std::string line)
{
    if (fault::armed())
        fault::maybeDelay(fault::Point::ResponseDelay);
    bool schedule = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (closedForSend)
            return;
        out.push_back(std::move(line));
        if (!flushQueued) {
            flushQueued = true;
            schedule = true;
        }
    }
    if (schedule)
        owner->scheduleFlush(shared_from_this());
}

void
ReactorConn::wake()
{
    bool schedule = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (closedForSend || flushQueued)
            return;
        flushQueued = true;
        schedule = true;
    }
    if (schedule)
        owner->scheduleFlush(shared_from_this());
}

void
ReactorConn::addPending(std::size_t n)
{
    pending.fetch_add(n, std::memory_order_acq_rel);
}

void
ReactorConn::decPending(std::size_t n)
{
    // The last dispatched response just resolved: the owner must
    // re-evaluate whether an EOF'd/closing connection can go now.
    if (pending.fetch_sub(n, std::memory_order_acq_rel) == n)
        wake();
}

// ---------------------------------------------------------------
// ReactorPool
// ---------------------------------------------------------------

ReactorPool::ReactorPool(ReactorHandler &handler_,
                         ReactorOptions opts_)
    : handler(handler_), opts(opts_)
{
    if (opts.threads < 1)
        opts.threads = 1;
    reactors.reserve(opts.threads);
    for (std::size_t i = 0; i < opts.threads; i++)
        reactors.push_back(std::make_unique<Reactor>(*this, i));
}

ReactorPool::~ReactorPool() { shutdownAndJoin(); }

void
ReactorPool::serveListener(int fd)
{
    reactors[0]->addListener(fd, false);
}

void
ReactorPool::serveHttpListener(int fd)
{
    reactors[0]->addListener(fd, true);
}

void
ReactorPool::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMtx);
    if (started)
        return;
    started = true;
    for (auto &r : reactors)
        r->start();
}

void
ReactorPool::shutdownAndJoin()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMtx);
        if (joined)
            return;
        joined = true;
        if (!started)
            return;
    }
    for (auto &r : reactors)
        r->beginShutdown();
    for (auto &r : reactors)
        r->join();
}

Reactor &
ReactorPool::reactorFor(std::uint64_t ordinal)
{
    return *reactors[ordinal % reactors.size()];
}

void
ReactorPool::notifyAcceptDone()
{
    if (!acceptDoneFlag.exchange(true,
                                 std::memory_order_acq_rel))
        handler.onAcceptDone();
}

ReactorStats
ReactorPool::stats() const
{
    ReactorStats s;
    s.accepted = acceptCounter.load(std::memory_order_relaxed);
    for (const auto &r : reactors) {
        s.openConnections +=
            r->openConns.load(std::memory_order_relaxed);
        s.epollWakeups +=
            r->wakeups.load(std::memory_order_relaxed);
        s.bytesIn += r->bytesIn.load(std::memory_order_relaxed);
        s.bytesOut += r->bytesOut.load(std::memory_order_relaxed);
        s.idleReaped +=
            r->idleReaped.load(std::memory_order_relaxed);
        s.lineTooLong +=
            r->lineTooLong.load(std::memory_order_relaxed);
        s.emfileSheds +=
            r->emfileSheds.load(std::memory_order_relaxed);
        std::uint64_t hw =
            r->ringHighWater.load(std::memory_order_relaxed);
        if (hw > s.ringHighWater)
            s.ringHighWater = hw;
    }
    return s;
}

} // namespace gpm
