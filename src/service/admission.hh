/**
 * @file
 * AdmissionController — the adaptive load controller in front of
 * the scenario queue. The binary high-water mark ("busy" at
 * queueCapacity) stays as the hard bound; this layer adds three
 * graded signals beneath it:
 *
 *  - Doomed-deadline shedding: per-policy EWMAs of observed service
 *    time predict a request's completion (queue wait + its own
 *    service); a request whose deadline cannot survive even the
 *    cheapest solver the degradation ladder could substitute is
 *    shed AT ADMISSION with a structured `rejected_overload` and a
 *    `retryAfterMs` hint, instead of burning queue space on an
 *    answer nobody will wait for. Prediction only ever fires from
 *    observed completions — a cold service admits everything.
 *
 *  - Per-client fairness: one pipelined connection may hold at most
 *    `fairShare` of the queue; entries beyond that are rejected
 *    `rejected_overload` so a flooding client throttles itself
 *    while others keep being admitted. Client 0 (in-process
 *    callers: tests, benches, embedding code) is exempt.
 *
 *  - Overload marking: when queued + in-flight work reaches
 *    `degradeDepth` of capacity the service is "overloaded";
 *    requests admitted in that state are flagged so execution can
 *    step exact solvers down the degradation ladder (degrade.hh).
 *
 * Thread-safety: all methods are safe from any thread (one internal
 * mutex). The service calls preAdmit()/onEnqueue() under its queue
 * lock — the controller never calls back out, so the lock order is
 * trivially acyclic.
 */

#ifndef GPM_SERVICE_ADMISSION_HH
#define GPM_SERVICE_ADMISSION_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gpm
{

/** AdmissionController tuning knobs (ServiceOptions::admission). */
struct AdmissionOptions
{
    /** Master switch; off = binary high-water admission only. */
    bool enabled = true;
    /** Largest fraction of queueCapacity one client (connection)
     *  may occupy; beyond it that client is rejected
     *  `rejected_overload` while others still get in. */
    double fairShare = 0.5;
    /** Safety factor on predicted completion when shedding doomed
     *  deadlines: shed when predictedMs * headroom > deadlineMs.
     *  >1 sheds earlier (leaves margin), <1 gambles. */
    double headroom = 1.0;
    /** Fraction of queueCapacity at/over which (counting in-flight
     *  work) the service is in the overload state: admitted
     *  ladder-eligible requests degrade and retry hints grow. */
    double degradeDepth = 0.75;
    /** EWMA smoothing factor for per-policy service times. */
    double ewmaAlpha = 0.3;
};

class AdmissionController
{
  public:
    /** preAdmit()'s verdict. */
    struct Decision
    {
        bool admit = true;
        /** Load was at/over the degrade threshold at admission —
         *  execution may step down the ladder. */
        bool overloaded = false;
        /** "rejected_overload" when !admit. */
        std::string errorCode;
        std::string errorMessage;
        /** Backoff floor hint for the client [ms]; also attached
         *  to hard "busy" rejections via retryHintMs(). */
        double retryAfterMs = 0.0;
    };

    AdmissionController(AdmissionOptions opts,
                        std::size_t queueCapacity,
                        std::size_t workers);

    /**
     * Gate one request. @p load is queued + in-flight work sampled
     * by the caller (under its queue lock); @p serviceKey is the
     * EWMA key (see serviceKeyFor); @p floorKey is the EWMA key of
     * the cheapest solver execution could degrade to (equal to
     * @p serviceKey when the ladder does not apply); @p deadlineMs
     * 0 means none; @p count admits a batch of N as one client
     * unit (fairness counts all N, doom prediction treats them as
     * queued work).
     */
    Decision preAdmit(std::uint64_t clientId,
                      const std::string &serviceKey,
                      const std::string &floorKey,
                      double deadlineMs, std::size_t load,
                      std::size_t count = 1);

    /** The request was enqueued; holds a fairness slot until
     *  onDequeue(). */
    void onEnqueue(std::uint64_t clientId, std::size_t count = 1);
    /** A worker popped (or shed) the client's request. */
    void onDequeue(std::uint64_t clientId);

    /** Feed an observed service time into @p serviceKey's EWMA. */
    void recordService(const std::string &serviceKey, double ms);

    /** Current EWMA for @p serviceKey [ms]; 0 = never observed. */
    double serviceTimeMs(const std::string &serviceKey) const;

    /** The retryAfterMs hint for the current @p load — also used
     *  for hard "busy" rejections. Clamped to [10, 5000] ms. */
    double retryHintMs(std::size_t load) const;

    /** Requests rejected `rejected_overload` (fairness + doomed
     *  deadlines). */
    std::uint64_t shedCount() const;

    /** Load at/over which admissions are flagged overloaded. */
    std::size_t overloadThreshold() const { return degradeAt; }

    const AdmissionOptions &options() const { return opts; }

    /** The EWMA key for a request: its policy name, prefixed for
     *  cluster scenarios — facility arbitration and flat sweeps
     *  have very different service times under the same kernel. */
    static std::string serviceKeyFor(const std::string &policy,
                                     bool cluster);

  private:
    double knownEwmaLocked(const std::string &key) const;
    double hintLocked(std::size_t load) const;

    AdmissionOptions opts;
    std::size_t capacity;
    std::size_t workers;
    /** max(1, floor(fairShare * capacity)): one client's cap. */
    std::size_t clientShare;
    /** ceil(degradeDepth * capacity): the overload threshold. */
    std::size_t degradeAt;

    mutable std::mutex mtx;
    std::unordered_map<std::string, double> ewmaMs;
    /** Mean observed service time across all keys (retry hints
     *  before a specific policy has history). */
    double anyEwmaMs = 0.0;
    std::unordered_map<std::uint64_t, std::size_t> queuedByClient;
    std::uint64_t shed = 0;
};

} // namespace gpm

#endif // GPM_SERVICE_ADMISSION_HH
