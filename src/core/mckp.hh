/**
 * @file
 * Shared multiple-choice-knapsack (MCKP) decision kernels.
 *
 * Every budget-partitioning policy — exact branch-and-bound,
 * DP-over-discretized-power, water-filling, greedy turbo — works on
 * the same substrate: each core's (power, BIPS) mode points reduced
 * to their *efficiency frontier* (the upper-left convex hull, whose
 * marginal BIPS-per-watt ratios decrease along the hull). This file
 * provides that substrate once, in flat cache-friendly arrays sized
 * for many-core chips (N up to 1024+):
 *
 *  - FrontierSet / buildFrontiers(): per-core hulls in one flat
 *    power-ascending point array, with the *mode index of every hull
 *    point recorded while the hull is built* (never re-found by
 *    float comparison afterwards);
 *  - greedyUpgradeHeap(): hull upgrades applied in globally
 *    decreasing BIPS-per-watt order through a binary heap —
 *    O(increments * log n) instead of an O(n * k) rescan per
 *    upgrade. Seeds the BnB incumbent and *is* the GreedyTurbo
 *    policy;
 *  - mckpUpperBound(): the fractional (LP-relaxation) optimum, a
 *    valid upper bound on any integer assignment's BIPS — the BnB
 *    root bound and the gap reference for the many-core benches;
 *  - ModeColumns: a per-mode column (SoA) snapshot of a ModeMatrix
 *    for vectorizable column passes (uniform-mode totals, grid cost
 *    quantization).
 */

#ifndef GPM_CORE_MCKP_HH
#define GPM_CORE_MCKP_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace gpm
{

/** One point of a core's efficiency frontier. */
struct HullPoint
{
    /** Predicted power at this mode [W]. */
    double powerW = 0.0;
    /** Predicted BIPS at this mode. */
    double bips = 0.0;
    /** The mode this point came from (recorded at hull build). */
    PowerMode mode = 0;
};

/**
 * Per-core efficiency frontiers of a ModeMatrix, flattened: core c's
 * hull points live at pts[begin[c] .. begin[c + 1]), power-ascending
 * with strictly increasing BIPS and decreasing marginal ratios.
 * Point 0 of each core is its cheapest mode.
 */
struct FrontierSet
{
    std::vector<HullPoint> pts;
    /** Per-core offsets into pts; size numCores() + 1. */
    std::vector<std::uint32_t> begin;
    /** Sum of every core's cheapest-mode power [W]. */
    double minTotalPowerW = 0.0;
    /** Sum of every core's cheapest-mode BIPS. */
    double baseTotalBips = 0.0;
    /** Smallest single hull-increment power across all cores [W];
     *  +inf when no core has an upgrade. Lets greedy fills stop as
     *  soon as the leftover budget cannot fit any increment instead
     *  of draining the heap through doomed pops. */
    double minIncPowerW = 0.0;

    std::size_t numCores() const { return begin.size() - 1; }

    /** Hull size of core @p c. */
    std::size_t sizeOf(std::size_t c) const
    {
        return begin[c + 1] - begin[c];
    }

    /** Hull point @p h of core @p c. */
    const HullPoint &at(std::size_t c, std::size_t h) const
    {
        return pts[begin[c] + h];
    }
};

/**
 * Build the efficiency frontiers of @p m. O(n * k log k). The mode
 * index of every hull point is recorded as the hull is built, so
 * duplicated (power, BIPS) points always resolve to a definite mode.
 */
FrontierSet buildFrontiers(const ModeMatrix &m);

/** Outcome of a greedy hull fill. */
struct GreedyResult
{
    /** Total power of the final assignment [W]. */
    double powerW = 0.0;
    /** Total BIPS of the final assignment. */
    double bips = 0.0;
    /** False when even the all-cheapest assignment busts the
     *  budget (positions/assignment are then untouched). */
    bool feasible = false;
};

/**
 * Heap-driven best-ratio hull upgrades: starting from the hull
 * positions in @p pos (one per core; 0 = cheapest mode), repeatedly
 * apply the globally best remaining BIPS-per-watt hull increment
 * that still fits @p budget_w. A core whose next increment does not
 * fit is dropped (its deeper hull points cost strictly more, and
 * the remaining budget only shrinks). Deterministic: ties in ratio
 * break toward the lower core index. O(increments * log n).
 *
 * @param f        frontiers of the matrix
 * @param budget_w power budget [W]
 * @param pos      in: starting hull position per core;
 *                 out: final positions. Sized f.numCores().
 * @return totals of the final positions; feasible = false iff the
 *         *starting* positions already exceed the budget (pos is
 *         then left unchanged).
 */
GreedyResult greedyUpgradeHeap(const FrontierSet &f, Watts budget_w,
                               std::vector<std::uint8_t> &pos);

/**
 * The MCKP LP-relaxation optimum: every core at its cheapest mode,
 * the leftover budget filled with hull increments in globally
 * decreasing ratio order, the last one fractionally. An upper bound
 * on the BIPS of every budget-feasible integer assignment.
 * Returns baseTotalBips when the budget cannot even cover the
 * all-cheapest assignment (no feasible point; the bound is vacuous
 * and callers should check minTotalPowerW themselves).
 */
double mckpUpperBound(const FrontierSet &f, Watts budget_w);

/** Translate hull positions into a per-core mode assignment. */
std::vector<PowerMode>
assignmentFromPositions(const FrontierSet &f,
                        const std::vector<std::uint8_t> &pos);

/**
 * Per-mode column (SoA) snapshot of a ModeMatrix: power and BIPS of
 * mode m across all cores in one contiguous array each, so
 * column-wise passes (uniform-mode totals, per-mode cost
 * quantization) vectorize instead of striding through the row-major
 * matrix.
 */
struct ModeColumns
{
    std::size_t cores = 0;
    std::size_t modes = 0;
    /** powerW[m * cores + c]; column-contiguous. */
    std::vector<double> powerW;
    /** bips[m * cores + c]; column-contiguous. */
    std::vector<double> bips;

    static ModeColumns fromMatrix(const ModeMatrix &m);

    const double *powerOfMode(PowerMode m) const
    {
        return powerW.data() + static_cast<std::size_t>(m) * cores;
    }

    const double *bipsOfMode(PowerMode m) const
    {
        return bips.data() + static_cast<std::size_t>(m) * cores;
    }

    /** Total chip power with every core at mode @p m [W]. */
    double uniformPowerW(PowerMode m) const;

    /** Total chip BIPS with every core at mode @p m. */
    double uniformBips(PowerMode m) const;
};

} // namespace gpm

#endif // GPM_CORE_MCKP_HH
