/**
 * @file
 * The global power manager (paper Section 2): the hierarchical
 * controller that periodically collects per-core power/performance
 * samples from the local monitors, builds predicted Power/BIPS
 * matrices, invokes the configured policy, and issues per-core mode
 * directives subject to the chip power budget.
 */

#ifndef GPM_CORE_GLOBAL_MANAGER_HH
#define GPM_CORE_GLOBAL_MANAGER_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/mode_predictor.hh"
#include "core/policies.hh"
#include "power/dvfs.hh"

namespace gpm
{

/** Decision statistics kept by the manager. */
struct ManagerStats
{
    /** Explore intervals processed. */
    std::uint64_t decisions = 0;
    /** Intervals whose measured power exceeded the budget (these are
     *  corrected at the next explore time, paper Section 5.4). */
    std::uint64_t overshoots = 0;
    /** Total mode switches issued across all cores. */
    std::uint64_t modeSwitches = 0;
};

/**
 * Global manager: one per chip. The driving simulator calls
 * atExplore() every explore interval with fresh sensor samples; the
 * manager returns the mode assignment for the next interval.
 */
class GlobalManager
{
  public:
    /**
     * @param dvfs        mode table
     * @param policy      decision policy (owned)
     * @param explore_us  explore-interval length [us]
     * @param idle_power  predictor's power charge for finished cores
     */
    GlobalManager(const DvfsTable &dvfs,
                  std::unique_ptr<Policy> policy, MicroSec explore_us,
                  Watts idle_power = 0.0);

    /**
     * One control step.
     *
     * @param samples       measured per-core samples for the last
     *                      interval
     * @param budget_w      budget for the next interval [W]
     * @param oracle_matrix exact future matrices; required when the
     *                      policy wantsOracle(), ignored otherwise
     * @return the mode per core for the next interval
     */
    std::vector<PowerMode>
    atExplore(const std::vector<CoreSample> &samples, Watts budget_w,
              const ModeMatrix *oracle_matrix = nullptr);

    /** True when the policy needs future matrices. */
    bool wantsOracle() const { return policy->wantsOracle(); }

    /** The policy in use. */
    const Policy &currentPolicy() const { return *policy; }

    /** Prediction-accuracy tracker (paper Section 5.5 numbers). */
    const ModePredictor &predictor() const { return pred; }

    /** Decision statistics. */
    const ManagerStats &stats() const { return stats_; }

  private:
    const DvfsTable &dvfs;
    std::unique_ptr<Policy> policy;
    ModePredictor pred;
    ManagerStats stats_;

    /** Previous prediction, scored against the next measurement. */
    std::optional<ModeMatrix> lastPrediction;
    std::vector<PowerMode> lastChosen;
    Watts lastBudgetW = 0.0;
};

} // namespace gpm

#endif // GPM_CORE_GLOBAL_MANAGER_HH
