/**
 * @file
 * The two mode-knowledge alternatives paper Section 5.5 argues
 * against, implemented so the argument can be measured: exploration
 * (visit each mode and measure it) and history (assume previously
 * seen behaviour persists). Both feed the same MaxBIPS solver.
 */

#include <utility>
#include <vector>

#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/**
 * Overlay remembered measurements onto the analytic prediction:
 * entries with a remembered (power, bips) replace the scaled ones.
 */
ModeMatrix
overlayMemory(
    const ModeMatrix &predicted,
    const std::vector<std::vector<std::pair<double, double>>> &seen)
{
    ModeMatrix m = predicted;
    for (std::size_t c = 0; c < m.numCores(); c++) {
        for (std::size_t mi = 0; mi < m.numModes(); mi++) {
            auto mode = static_cast<PowerMode>(mi);
            const auto &entry = seen[c][mi];
            if (entry.first >= 0.0) {
                m.powerW(c, mode) = entry.first;
                m.bips(c, mode) = entry.second;
            }
        }
    }
    return m;
}

/** Grow/refresh the memory table from this interval's samples. */
void
remember(std::vector<std::vector<std::pair<double, double>>> &seen,
         const std::vector<CoreSample> &samples,
         std::size_t n_modes)
{
    if (seen.size() != samples.size()) {
        seen.assign(samples.size(),
                    std::vector<std::pair<double, double>>(
                        n_modes, {-1.0, -1.0}));
    }
    for (std::size_t c = 0; c < samples.size(); c++) {
        if (!samples[c].active)
            continue;
        seen[c][samples[c].mode] = {samples[c].powerW,
                                    samples[c].bips};
    }
}

} // namespace

ExplorationPolicy::ExplorationPolicy(unsigned exploit_intervals)
    : exploitIntervals(exploit_intervals)
{
    GPM_ASSERT(exploit_intervals >= 1);
}

std::vector<PowerMode>
ExplorationPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr && in.samples != nullptr);
    const std::size_t n = in.predicted->numCores();
    const std::size_t k = in.predicted->numModes();

    remember(seen, *in.samples, k);
    if (lastChoice.size() != n)
        lastChoice.assign(n, static_cast<PowerMode>(k - 1));

    if (exploring) {
        if (exploreMode < k) {
            // Visit the next mode chip-wide, slowest first so the
            // sweep starts budget-safe.
            auto mode =
                static_cast<PowerMode>(k - 1 - exploreMode);
            exploreMode++;
            std::vector<PowerMode> assign(n, mode);
            lastChoice = assign;
            return assign;
        }
        // Sweep done: solve over what was measured (all entries
        // fresh) and switch to exploitation.
        exploring = false;
        phase = 0;
        ModeMatrix measured = overlayMemory(*in.predicted, seen);
        lastChoice = MaxBipsPolicy::solve(
            measured, in.budgetW, MaxBipsPolicy::Search::Auto);
        return lastChoice;
    }

    if (++phase >= exploitIntervals) {
        exploring = true;
        exploreMode = 0;
    }
    // Hold the solved assignment between sweeps.
    return lastChoice;
}

std::vector<PowerMode>
HistoryPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr && in.samples != nullptr);
    remember(seen, *in.samples, in.predicted->numModes());
    ModeMatrix m = overlayMemory(*in.predicted, seen);
    return MaxBipsPolicy::solve(m, in.budgetW,
                                MaxBipsPolicy::Search::Auto);
}

} // namespace gpm
