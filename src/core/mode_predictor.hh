/**
 * @file
 * Predictive Power/BIPS matrix construction (paper Section 5.5).
 *
 * DVFS has the useful property that behaviour at another operating
 * point can be estimated analytically: power scales cubically with
 * the linear (V, f) scale and BIPS scales linearly with f. Starting
 * from the measured (power, BIPS) of each core at its current mode,
 * the predictor fills in every other mode's expected behaviour, and
 * discounts BIPS for mode transitions by explore/(explore + t_trans)
 * (e.g. 500/507, 500/513, 500/520 for the paper's parameters).
 */

#ifndef GPM_CORE_MODE_PREDICTOR_HH
#define GPM_CORE_MODE_PREDICTOR_HH

#include <vector>

#include "core/types.hh"
#include "power/dvfs.hh"
#include "util/stats.hh"

namespace gpm
{

/** Builds predicted ModeMatrices and tracks prediction accuracy. */
class ModePredictor
{
  public:
    /**
     * @param dvfs        the mode table in force
     * @param explore_us  explore-interval length (transition
     *                    discounting)
     * @param idle_power  power charged for inactive cores [W]
     */
    ModePredictor(const DvfsTable &dvfs, MicroSec explore_us,
                  Watts idle_power = 0.0);

    /**
     * Predict each core's power/BIPS at every mode from its measured
     * sample. Transition discounts apply to modes different from the
     * sampled one.
     */
    ModeMatrix predict(const std::vector<CoreSample> &samples) const;

    /**
     * Record the realized outcome of the interval that followed a
     * prediction, updating error statistics (paper Section 5.5
     * reports 0.1-0.3% power error and 2-4% BIPS error).
     *
     * @param predicted matrix produced at the previous explore
     * @param chosen    modes that were applied
     * @param actual    measured samples after the interval
     */
    void recordOutcome(const ModeMatrix &predicted,
                       const std::vector<PowerMode> &chosen,
                       const std::vector<CoreSample> &actual);

    /** Mean absolute relative power-prediction error. */
    double meanPowerError() const;

    /** Mean absolute relative BIPS-prediction error. */
    double meanBipsError() const;

    /** Number of scored predictions. */
    std::uint64_t outcomes() const { return nOutcomes; }

    /** The BIPS transition-discount factor for a mode change. */
    double transitionFactor(PowerMode from, PowerMode to) const;

  private:
    const DvfsTable &dvfs;
    MicroSec exploreUs;
    Watts idlePowerW;
    RunningStat powerErr;
    RunningStat bipsErr;
    std::uint64_t nOutcomes = 0;
};

} // namespace gpm

#endif // GPM_CORE_MODE_PREDICTOR_HH
