#include "core/mckp.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.hh"

namespace gpm
{

FrontierSet
buildFrontiers(const ModeMatrix &m)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();

    FrontierSet f;
    f.pts.reserve(n * k);
    f.begin.reserve(n + 1);
    f.begin.push_back(0);
    f.minIncPowerW = std::numeric_limits<double>::infinity();

    std::vector<HullPoint> pts(k);
    for (std::size_t c = 0; c < n; c++) {
        for (std::size_t mi = 0; mi < k; mi++) {
            auto mode = static_cast<PowerMode>(mi);
            pts[mi] = {m.powerW(c, mode), m.bips(c, mode), mode};
        }
        // Power-ascending; equal points resolve to the lower mode.
        std::sort(pts.begin(), pts.end(),
                  [](const HullPoint &a, const HullPoint &b) {
                      if (a.powerW != b.powerW)
                          return a.powerW < b.powerW;
                      if (a.bips != b.bips)
                          return a.bips < b.bips;
                      return a.mode < b.mode;
                  });
        const std::size_t base = f.pts.size();
        auto hull = [&](std::size_t i) -> HullPoint & {
            return f.pts[base + i];
        };
        std::size_t sz = 0;
        for (const HullPoint &pt : pts) {
            if (sz > 0 && pt.bips <= hull(sz - 1).bips)
                continue; // dominated: dearer, no more BIPS
            // Same power, more BIPS: the previous point is dominated.
            while (sz > 0 && pt.powerW <= hull(sz - 1).powerW)
                sz--;
            while (sz >= 2) {
                // Keep marginal ratios decreasing.
                const HullPoint &a = hull(sz - 2);
                const HullPoint &b = hull(sz - 1);
                double r1 = (b.bips - a.bips) /
                    std::max(b.powerW - a.powerW, 1e-12);
                double r2 = (pt.bips - b.bips) /
                    std::max(pt.powerW - b.powerW, 1e-12);
                if (r2 >= r1)
                    sz--;
                else
                    break;
            }
            f.pts.resize(base + sz);
            f.pts.push_back(pt);
            sz++;
        }
        f.minTotalPowerW += hull(0).powerW;
        f.baseTotalBips += hull(0).bips;
        for (std::size_t h = 1; h < sz; h++)
            f.minIncPowerW = std::min(
                f.minIncPowerW, hull(h).powerW - hull(h - 1).powerW);
        f.begin.push_back(static_cast<std::uint32_t>(f.pts.size()));
    }
    return f;
}

namespace
{

/** One pending hull upgrade of a core, heap-ordered by ratio. */
struct HeapInc
{
    double dp = 0.0;
    double db = 0.0;
    std::uint32_t core = 0;
};

/** priority_queue "less": true when a ranks below b. Higher
 *  BIPS-per-watt first; ties break toward the lower core index. */
struct HeapIncLess
{
    bool
    operator()(const HeapInc &a, const HeapInc &b) const
    {
        double lhs = a.db * b.dp;
        double rhs = b.db * a.dp;
        if (lhs != rhs)
            return lhs < rhs;
        return a.core > b.core;
    }
};

} // namespace

GreedyResult
greedyUpgradeHeap(const FrontierSet &f, Watts budget_w,
                  std::vector<std::uint8_t> &pos)
{
    const std::size_t n = f.numCores();
    GPM_ASSERT(pos.size() == n);

    GreedyResult r;
    for (std::size_t c = 0; c < n; c++) {
        const HullPoint &p = f.at(c, pos[c]);
        r.powerW += p.powerW;
        r.bips += p.bips;
    }
    if (r.powerW > budget_w)
        return r; // infeasible start; positions untouched
    r.feasible = true;

    std::vector<HeapInc> seed;
    seed.reserve(n);
    for (std::size_t c = 0; c < n; c++) {
        if (pos[c] + 1u < f.sizeOf(c)) {
            const HullPoint &a = f.at(c, pos[c]);
            const HullPoint &b = f.at(c, pos[c] + 1);
            seed.push_back({b.powerW - a.powerW, b.bips - a.bips,
                            static_cast<std::uint32_t>(c)});
        }
    }
    std::priority_queue<HeapInc, std::vector<HeapInc>, HeapIncLess>
        heap(HeapIncLess{}, std::move(seed));

    while (!heap.empty()) {
        // No remaining increment is cheaper than the global minimum,
        // so once that cannot fit, nothing can: stop instead of
        // popping the whole heap through doomed candidates. (Key for
        // DP slack repair, whose leftover budget is near zero.)
        if (budget_w - r.powerW < f.minIncPowerW)
            break;
        HeapInc inc = heap.top();
        heap.pop();
        // Cumulative hull cost only grows along a core's frontier,
        // so a core whose next step busts the budget is done.
        if (r.powerW + inc.dp > budget_w)
            continue;
        r.powerW += inc.dp;
        r.bips += inc.db;
        std::size_t c = inc.core;
        pos[c]++;
        if (pos[c] + 1u < f.sizeOf(c)) {
            const HullPoint &a = f.at(c, pos[c]);
            const HullPoint &b = f.at(c, pos[c] + 1);
            heap.push({b.powerW - a.powerW, b.bips - a.bips,
                       inc.core});
        }
    }
    return r;
}

double
mckpUpperBound(const FrontierSet &f, Watts budget_w)
{
    const std::size_t n = f.numCores();
    double slack = budget_w - f.minTotalPowerW;
    double bound = f.baseTotalBips;
    if (slack <= 0.0)
        return bound;

    struct Inc
    {
        double dp, db;
    };
    std::vector<Inc> incs;
    incs.reserve(f.pts.size());
    for (std::size_t c = 0; c < n; c++)
        for (std::size_t h = 1; h < f.sizeOf(c); h++)
            incs.push_back({f.at(c, h).powerW - f.at(c, h - 1).powerW,
                            f.at(c, h).bips - f.at(c, h - 1).bips});
    std::sort(incs.begin(), incs.end(),
              [](const Inc &a, const Inc &b) {
                  return a.db * b.dp > b.db * a.dp;
              });
    for (const Inc &inc : incs) {
        if (slack <= 0.0)
            break;
        if (inc.dp <= slack) {
            bound += inc.db;
            slack -= inc.dp;
        } else {
            bound += inc.db * slack / std::max(inc.dp, 1e-12);
            slack = 0.0;
        }
    }
    return bound;
}

std::vector<PowerMode>
assignmentFromPositions(const FrontierSet &f,
                        const std::vector<std::uint8_t> &pos)
{
    const std::size_t n = f.numCores();
    GPM_ASSERT(pos.size() == n);
    std::vector<PowerMode> out(n);
    for (std::size_t c = 0; c < n; c++)
        out[c] = f.at(c, pos[c]).mode;
    return out;
}

ModeColumns
ModeColumns::fromMatrix(const ModeMatrix &m)
{
    ModeColumns cols;
    cols.cores = m.numCores();
    cols.modes = m.numModes();
    cols.powerW.resize(cols.cores * cols.modes);
    cols.bips.resize(cols.cores * cols.modes);
    for (std::size_t mi = 0; mi < cols.modes; mi++) {
        auto mode = static_cast<PowerMode>(mi);
        double *pw = cols.powerW.data() + mi * cols.cores;
        double *bp = cols.bips.data() + mi * cols.cores;
        for (std::size_t c = 0; c < cols.cores; c++) {
            pw[c] = m.powerW(c, mode);
            bp[c] = m.bips(c, mode);
        }
    }
    return cols;
}

double
ModeColumns::uniformPowerW(PowerMode m) const
{
    const double *pw = powerOfMode(m);
    double total = 0.0;
    for (std::size_t c = 0; c < cores; c++)
        total += pw[c];
    return total;
}

double
ModeColumns::uniformBips(PowerMode m) const
{
    const double *bp = bipsOfMode(m);
    double total = 0.0;
    for (std::size_t c = 0; c < cores; c++)
        total += bp[c];
    return total;
}

} // namespace gpm
