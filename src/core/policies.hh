/**
 * @file
 * Global CMP power-management policies (paper Section 5).
 *
 * Every policy receives the measured per-core samples, the predicted
 * Power/BIPS matrices and the power budget, and returns one mode per
 * core. All policies guarantee the returned assignment fits the
 * budget under the predicted matrix whenever *any* assignment does;
 * when even the all-slowest assignment exceeds the budget they
 * return all-slowest (the best they can do).
 */

#ifndef GPM_CORE_POLICIES_HH
#define GPM_CORE_POLICIES_HH

#include <memory>
#include <string>
#include <vector>

#include "core/types.hh"
#include "power/dvfs.hh"

namespace gpm
{

/** Everything a policy may consult when deciding. */
struct PolicyInput
{
    /** Measured per-core samples over the last explore interval. */
    const std::vector<CoreSample> *samples = nullptr;
    /** Predicted Power/BIPS matrices (always provided). */
    const ModeMatrix *predicted = nullptr;
    /**
     * Exact next-interval matrices (provided only to policies whose
     * wantsOracle() returns true; null otherwise).
     */
    const ModeMatrix *oracle = nullptr;
    /** Power budget for the next interval [W]. */
    Watts budgetW = 0.0;
    /** Mode table in force. */
    const DvfsTable *dvfs = nullptr;
};

/** Abstract global power-management policy. */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Short policy name ("MaxBIPS", ...). */
    virtual const char *name() const = 0;

    /** True when the simulator must supply future (oracle) matrices. */
    virtual bool wantsOracle() const { return false; }

    /** Choose the mode of every core for the next explore interval. */
    virtual std::vector<PowerMode> decide(const PolicyInput &in) = 0;
};

/**
 * Priority policy (paper 5.2.1): tasks have fixed priorities (the
 * highest-numbered core is most important). Starting from all-slowest,
 * cores are upgraded in priority order as far as the budget permits;
 * a core whose next mode would bust the budget is skipped and the
 * next core in priority order is tried.
 */
class PriorityPolicy : public Policy
{
  public:
    const char *name() const override { return "Priority"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;
};

/**
 * PullHiPushLo policy (paper 5.2.2): balances power across cores by
 * slowing the highest-power core on a budget overshoot and speeding
 * up the lowest-power core when slack is available; ties prefer
 * memory-bound tasks for slow-down (they lose the least).
 */
class PullHiPushLoPolicy : public Policy
{
  public:
    const char *name() const override { return "PullHiPushLo"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;
};

/**
 * MaxBIPS policy (paper 5.2.3): evaluates the predicted power and
 * BIPS of every mode combination and picks the feasible combination
 * with maximal chip throughput. Exhaustive for small chips; a
 * branch-and-bound search with identical results takes over when
 * the state space (modes^cores) is large. Exact at any scale, but
 * worst-case exponential — the many-core studies at 64-1024 cores
 * use the approximate engines below (MaxBipsDpPolicy,
 * WaterFillPolicy, GreedyTurboPolicy) to stay inside the 500 µs
 * decision interval.
 */
class MaxBipsPolicy : public Policy
{
  public:
    /** Search strategies. */
    enum class Search
    {
        Auto,       ///< exhaustive when small, branch-and-bound else
        Exhaustive, ///< always enumerate modes^cores
        BranchAndBound,
    };

    explicit MaxBipsPolicy(Search search = Search::Auto);

    const char *name() const override { return "MaxBIPS"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

    /**
     * Core search routine shared with OraclePolicy: best assignment
     * under @p matrix within @p budget_w. Exposed for testing.
     */
    static std::vector<PowerMode> solve(const ModeMatrix &matrix,
                                        Watts budget_w, Search search);

    /**
     * The dual problem (paper Section 1: "minimizing the power for
     * a given multi-core performance target has similarly not been
     * analyzed"): cheapest assignment whose total BIPS meets
     * @p target_bips. Returns all-Turbo when even that misses the
     * target (best effort).
     */
    static std::vector<PowerMode>
    solveMinPower(const ModeMatrix &matrix, double target_bips,
                  Search search);

  private:
    Search search;
};

/**
 * Approximate MaxBIPS as a multiple-choice-knapsack DP over
 * discretized power: per-core efficiency frontiers, hull-point
 * costs quantized (rounded up) onto a `grid`-bin power grid, one
 * flattened DP pass, then exact-cost greedy upgrades to spend the
 * quantization slack. O(cores x modes x grid) with a tunable
 * accuracy/latency knob — the many-core engine's accuracy anchor
 * (gap vs the MCKP LP bound well under 1% at the default grid).
 * Registered as "MaxBIPS-DP" (default grid) or "MaxBIPS-DP<G>".
 */
class MaxBipsDpPolicy : public Policy
{
  public:
    /** Default power-grid resolution [bins]: fits the DP comfortably
     *  inside the 500 us explore interval at 1024 cores while the
     *  greedy slack repair keeps the gap well under 1%; raise it via
     *  "MaxBIPS-DP<G>" when accuracy matters more than latency. */
    static constexpr unsigned defaultGrid = 64;

    explicit MaxBipsDpPolicy(unsigned grid_bins = defaultGrid);

    const char *name() const override { return label.c_str(); }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

    /** The configured grid resolution [bins]. */
    unsigned gridBins() const { return grid; }

    /** The DP solver itself; exposed for tests and benches. */
    static std::vector<PowerMode> solve(const ModeMatrix &matrix,
                                        Watts budget_w,
                                        unsigned grid_bins);

  private:
    unsigned grid;
    std::string label;
};

/**
 * FastCap-style water-filling (arXiv 1603.01313): every core starts
 * at its cheapest frontier point and the budget "water level" rises
 * in level-synchronous rounds — each round upgrades every core by
 * at most one frontier level that still fits. Fairness-shaped
 * rather than ratio-greedy, O(cores x modes), no heap.
 */
class WaterFillPolicy : public Policy
{
  public:
    const char *name() const override { return "WaterFill"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

    /** The water-filling solver; exposed for tests and benches. */
    static std::vector<PowerMode> solve(const ModeMatrix &matrix,
                                        Watts budget_w);
};

/**
 * The 1000-core Turbo Boost heuristic (arXiv 1008.1571): cheapest
 * modes everywhere, then heap-driven upgrades in globally
 * decreasing BIPS-per-watt order until nothing fits — exactly the
 * integer-greedy root of the MCKP LP relaxation, so its gap vs the
 * LP bound is at most one hull increment. O(increments x log n).
 */
class GreedyTurboPolicy : public Policy
{
  public:
    const char *name() const override { return "GreedyTurbo"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

    /** The greedy solver; exposed for tests and benches. */
    static std::vector<PowerMode> solve(const ModeMatrix &matrix,
                                        Watts budget_w);
};

/**
 * Chip-wide DVFS baseline (paper 5.3): all cores share a single mode;
 * the fastest uniform mode that fits the budget is chosen.
 */
class ChipWideDvfsPolicy : public Policy
{
  public:
    const char *name() const override { return "ChipWideDVFS"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;
};

/**
 * Oracle upper bound (paper 5.6): MaxBIPS search on the *exact*
 * behaviour of the next explore interval (supplied by the simulator
 * from future knowledge), transition overheads included — the
 * paper's "conservative oracle".
 */
class OraclePolicy : public Policy
{
  public:
    const char *name() const override { return "Oracle"; }
    bool wantsOracle() const override { return true; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;
};

/**
 * Uniform per-core budgeting baseline (in the spirit of Merkel et
 * al.): the chip budget is split into equal per-core slices and each
 * core independently picks its fastest mode that fits its slice.
 * Slack in one slice cannot help another core — the coordination
 * failure that motivates global management.
 */
class UniformBudgetPolicy : public Policy
{
  public:
    const char *name() const override { return "UniformBudget"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;
};

/**
 * MinPower policy — the dual objective the paper poses but leaves
 * unexplored: minimize chip power subject to a chip throughput
 * target, expressed as a fraction of the predicted all-Turbo BIPS.
 * Ignores the power budget; uses the same predictive Power/BIPS
 * matrices and MCKP search machinery as MaxBIPS.
 */
class MinPowerPolicy : public Policy
{
  public:
    /** @param target_fraction required BIPS as a fraction of the
     *        predicted all-Turbo chip BIPS (e.g. 0.95). */
    explicit MinPowerPolicy(double target_fraction = 0.95);

    const char *name() const override { return "MinPower"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

    /** The configured throughput-target fraction. */
    double targetFraction() const { return fraction; }

  private:
    double fraction;
};

/**
 * Exploration-based MaxBIPS (paper Section 5.5's rejected
 * alternative #1, implemented to quantify the rejection): instead
 * of predicting other modes analytically, the chip periodically
 * *visits* each mode for one explore interval (uniform assignment,
 * slowest first), records the measured per-core (power, BIPS), and
 * then exploits the MaxBIPS solution over the measured matrix for
 * a configurable number of intervals before re-exploring. The
 * exploration sweeps cost real time, transitions, and budget
 * violations — "for a heavy-handed adaptation like DVFS, this
 * exploration approach is essentially prohibitive".
 */
class ExplorationPolicy : public Policy
{
  public:
    /** @param exploit_intervals intervals to run the solved
     *        assignment between exploration sweeps. */
    explicit ExplorationPolicy(unsigned exploit_intervals = 8);

    const char *name() const override { return "ExploreMaxBIPS"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

  private:
    unsigned exploitIntervals;
    unsigned phase = 0;       ///< sweep position / exploit counter
    bool exploring = true;
    std::size_t exploreMode = 0;
    /** Measured (power, bips) per core per mode; negative = unset. */
    std::vector<std::vector<std::pair<double, double>>> seen;
    std::vector<PowerMode> lastChoice;
};

/**
 * History-based MaxBIPS (paper Section 5.5's rejected alternative
 * #2): assume behaviour previously observed in a mode persists.
 * Each core keeps the last (power, BIPS) it measured at every mode;
 * matrix entries use the remembered value when one exists and fall
 * back to analytic scaling otherwise. Stale memories mislead the
 * solver when phases change — "relying on past history can be
 * misleading with temporally changing application behavior".
 */
class HistoryPolicy : public Policy
{
  public:
    HistoryPolicy() = default;

    const char *name() const override { return "HistoryMaxBIPS"; }
    std::vector<PowerMode> decide(const PolicyInput &in) override;

  private:
    /** last-seen (power, bips) per core per mode; negative = unset. */
    std::vector<std::vector<std::pair<double, double>>> seen;
};

/** Factory by policy name ("MaxBIPS", "MaxBIPS-BnB", "MaxBIPS-DP"
 *  or "MaxBIPS-DP<G>" for a G-bin power grid, "WaterFill",
 *  "GreedyTurbo", "Priority", "PullHiPushLo", "ChipWideDVFS",
 *  "Oracle", "UniformBudget", "MinPower" or "MinPowerNN" for an
 *  NN% target, "ExploreMaxBIPS", "HistoryMaxBIPS"); fatal() on
 *  unknown names. */
std::unique_ptr<Policy> makePolicy(const std::string &name);

/** True when makePolicy(@p name) would succeed — the non-fatal
 *  validity check callers with structured error paths need. */
bool isPolicyName(const std::string &name);

} // namespace gpm

#endif // GPM_CORE_POLICIES_HH
