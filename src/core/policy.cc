#include "core/policies.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace gpm
{

/** makePolicy without the fatal(): nullptr on unknown/malformed. */
static std::unique_ptr<Policy>
tryMakePolicy(const std::string &name)
{
    if (name == "MaxBIPS")
        return std::make_unique<MaxBipsPolicy>();
    if (name == "MaxBIPS-BnB")
        return std::make_unique<MaxBipsPolicy>(
            MaxBipsPolicy::Search::BranchAndBound);
    if (name.rfind("MaxBIPS-DP", 0) == 0) {
        unsigned grid = MaxBipsDpPolicy::defaultGrid;
        if (name.size() > 10) {
            const std::string suffix = name.substr(10);
            if (suffix.find_first_not_of("0123456789") !=
                std::string::npos)
                return nullptr;
            long g = std::atol(suffix.c_str());
            if (g < 2 || g > 65536)
                return nullptr;
            grid = static_cast<unsigned>(g);
        }
        return std::make_unique<MaxBipsDpPolicy>(grid);
    }
    if (name == "WaterFill")
        return std::make_unique<WaterFillPolicy>();
    if (name == "GreedyTurbo")
        return std::make_unique<GreedyTurboPolicy>();
    if (name == "Priority")
        return std::make_unique<PriorityPolicy>();
    if (name == "PullHiPushLo")
        return std::make_unique<PullHiPushLoPolicy>();
    if (name == "ChipWideDVFS")
        return std::make_unique<ChipWideDvfsPolicy>();
    if (name == "Oracle")
        return std::make_unique<OraclePolicy>();
    if (name == "UniformBudget")
        return std::make_unique<UniformBudgetPolicy>();
    if (name == "ExploreMaxBIPS")
        return std::make_unique<ExplorationPolicy>();
    if (name == "HistoryMaxBIPS")
        return std::make_unique<HistoryPolicy>();
    if (name.rfind("MinPower", 0) == 0) {
        double frac = 0.95;
        if (name.size() > 8) {
            frac = std::atof(name.substr(8).c_str()) / 100.0;
            if (frac <= 0.0 || frac > 1.0)
                return nullptr;
        }
        return std::make_unique<MinPowerPolicy>(frac);
    }
    return nullptr;
}

bool
isPolicyName(const std::string &name)
{
    return tryMakePolicy(name) != nullptr;
}

std::unique_ptr<Policy>
makePolicy(const std::string &name)
{
    auto p = tryMakePolicy(name);
    if (!p)
        fatal("unknown or malformed policy '%s'", name.c_str());
    return p;
}

} // namespace gpm
