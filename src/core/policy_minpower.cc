#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/** Exhaustive enumeration for the dual (min power, BIPS floor). */
std::vector<PowerMode>
solveMinPowerExhaustive(const ModeMatrix &m, double target_bips)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();
    std::vector<PowerMode> cur(n, 0);
    std::vector<PowerMode> best(n, 0); // all-Turbo fallback
    double best_power = 1e300;
    double best_bips = -1.0;

    for (;;) {
        double b = m.totalBips(cur);
        if (b + 1e-12 >= target_bips) {
            double p = m.totalPowerW(cur);
            if (p < best_power ||
                (p == best_power && b > best_bips)) {
                best_power = p;
                best_bips = b;
                best = cur;
            }
        }
        std::size_t c = 0;
        while (c < n && ++cur[c] == k)
            cur[c++] = 0;
        if (c == n)
            break;
    }
    if (best_power == 1e300)
        return std::vector<PowerMode>(n, 0); // unreachable target
    return best;
}

/**
 * Branch-and-bound dual solver: DFS with an LP lower bound on the
 * power needed to finish meeting the BIPS floor — cheapest modes
 * everywhere plus frontier increments bought at increasing
 * power-per-BIPS until the target is covered.
 */
class MinPowerBnb
{
  public:
    MinPowerBnb(const ModeMatrix &m, double target)
        : m(m), target(target), n(m.numCores()), k(m.numModes()),
          cur(n, 0), best(n, 0), sufMinPower(n + 1, 0.0),
          sufBaseBips(n + 1, 0.0), sufMaxBips(n + 1, 0.0),
          sufIncs(n + 1)
    {
        std::vector<std::vector<Increment>> core_incs(n);
        for (std::size_t c = n; c-- > 0;) {
            std::vector<std::pair<double, double>> pts;
            double max_b = 0.0;
            for (std::size_t mi = 0; mi < k; mi++) {
                auto mode = static_cast<PowerMode>(mi);
                pts.push_back(
                    {m.powerW(c, mode), m.bips(c, mode)});
                max_b = std::max(max_b, m.bips(c, mode));
            }
            std::sort(pts.begin(), pts.end());
            std::vector<std::pair<double, double>> hull;
            for (const auto &pt : pts) {
                if (!hull.empty() &&
                    pt.second <= hull.back().second)
                    continue;
                while (hull.size() >= 2) {
                    auto &a = hull[hull.size() - 2];
                    auto &b = hull.back();
                    double r1 = (b.second - a.second) /
                        std::max(b.first - a.first, 1e-12);
                    double r2 = (pt.second - b.second) /
                        std::max(pt.first - b.first, 1e-12);
                    if (r2 >= r1)
                        hull.pop_back();
                    else
                        break;
                }
                hull.push_back(pt);
            }
            for (std::size_t h = 1; h < hull.size(); h++) {
                core_incs[c].push_back(
                    {hull[h].first - hull[h - 1].first,
                     hull[h].second - hull[h - 1].second});
            }
            sufMinPower[c] =
                sufMinPower[c + 1] + hull.front().first;
            sufBaseBips[c] =
                sufBaseBips[c + 1] + hull.front().second;
            sufMaxBips[c] = sufMaxBips[c + 1] + max_b;
        }
        for (std::size_t c = n; c-- > 0;) {
            sufIncs[c] = sufIncs[c + 1];
            sufIncs[c].insert(sufIncs[c].end(),
                              core_incs[c].begin(),
                              core_incs[c].end());
            // Cheapest BIPS first: ascending power-per-BIPS.
            std::sort(sufIncs[c].begin(), sufIncs[c].end(),
                      [](const Increment &a, const Increment &b) {
                          return a.dp * b.db < b.dp * a.db;
                      });
        }
    }

    std::vector<PowerMode>
    run()
    {
        if (sufMaxBips[0] + 1e-12 < target)
            return std::vector<PowerMode>(n, 0); // best effort
        dfs(0, 0.0, 0.0);
        if (bestPower == 1e300)
            return std::vector<PowerMode>(n, 0);
        return best;
    }

  private:
    struct Increment
    {
        double dp = 0.0;
        double db = 0.0;
    };

    void
    dfs(std::size_t c, double power, double bips)
    {
        if (c == n) {
            if (bips + 1e-12 >= target &&
                (power < bestPower ||
                 (power == bestPower && bips > bestBips))) {
                bestPower = power;
                bestBips = bips;
                best = cur;
            }
            return;
        }
        // Feasibility: remaining cores cannot reach the floor.
        if (bips + sufMaxBips[c] + 1e-12 < target)
            return;
        // LP lower bound on completion power.
        double need = target - (bips + sufBaseBips[c]);
        double lb = power + sufMinPower[c];
        if (need > 0.0) {
            double deficit = need;
            for (const Increment &inc : sufIncs[c]) {
                if (deficit <= 0.0)
                    break;
                if (inc.db <= deficit) {
                    lb += inc.dp;
                    deficit -= inc.db;
                } else {
                    lb += inc.dp * deficit / inc.db;
                    deficit = 0.0;
                }
            }
            if (deficit > 1e-12)
                return; // cannot cover the floor
        }
        if (lb > bestPower)
            return;
        // Cheapest modes first so good incumbents appear early.
        for (std::size_t mi = k; mi-- > 0;) {
            auto mode = static_cast<PowerMode>(mi);
            cur[c] = mode;
            dfs(c + 1, power + m.powerW(c, mode),
                bips + m.bips(c, mode));
        }
    }

    const ModeMatrix &m;
    const double target;
    const std::size_t n;
    const std::size_t k;
    std::vector<PowerMode> cur;
    std::vector<PowerMode> best;
    std::vector<double> sufMinPower;
    std::vector<double> sufBaseBips;
    std::vector<double> sufMaxBips;
    std::vector<std::vector<Increment>> sufIncs;
    double bestPower = 1e300;
    double bestBips = -1.0;
};

} // namespace

std::vector<PowerMode>
MaxBipsPolicy::solveMinPower(const ModeMatrix &m, double target_bips,
                             Search search)
{
    if (search == Search::Auto) {
        double states = std::pow(static_cast<double>(m.numModes()),
                                 static_cast<double>(m.numCores()));
        search = states <= 262144.0 ? Search::Exhaustive
                                    : Search::BranchAndBound;
    }
    if (search == Search::Exhaustive)
        return solveMinPowerExhaustive(m, target_bips);
    return MinPowerBnb(m, target_bips).run();
}

MinPowerPolicy::MinPowerPolicy(double target_fraction)
    : fraction(target_fraction)
{
    GPM_ASSERT(target_fraction > 0.0 && target_fraction <= 1.0);
}

std::vector<PowerMode>
MinPowerPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    const ModeMatrix &m = *in.predicted;
    std::vector<PowerMode> all_turbo(m.numCores(), modes::Turbo);
    double target = fraction * m.totalBips(all_turbo);
    return MaxBipsPolicy::solveMinPower(
        m, target, MaxBipsPolicy::Search::Auto);
}

} // namespace gpm
