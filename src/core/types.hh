/**
 * @file
 * Shared types of the global power-management layer: per-core sensor
 * samples and the Power/BIPS matrices of paper Section 5.5.
 */

#ifndef GPM_CORE_TYPES_HH
#define GPM_CORE_TYPES_HH

#include <cstdint>
#include <vector>

#include "power/dvfs.hh"
#include "util/units.hh"

namespace gpm
{

/**
 * What the local (per-core) monitors report to the global manager at
 * each explore time: average power from the current sensor, BIPS from
 * the performance counters, the mode the core ran in, and an L2-miss
 * intensity used by policies that prefer memory-bound tasks.
 */
struct CoreSample
{
    /** Average core power over the last explore interval [W]. */
    Watts powerW = 0.0;
    /** Average throughput over the last interval [BIPS]. */
    double bips = 0.0;
    /** Mode the core ran in during the interval. */
    PowerMode mode = modes::Turbo;
    /** L2 misses per microsecond (memory-boundedness signal). */
    double memIntensity = 0.0;
    /** False once the core's workload has completed. */
    bool active = true;
};

/**
 * Power and BIPS matrices: for each core and each candidate mode, the
 * predicted (or, for the oracle, exact future) average power and
 * BIPS over the next explore interval. Row-major, cores x modes.
 */
class ModeMatrix
{
  public:
    /** Create a cores x modes matrix of zeros. */
    ModeMatrix(std::size_t cores, std::size_t modes);

    /** Number of cores (rows). */
    std::size_t numCores() const { return nCores; }

    /** Number of modes (columns). */
    std::size_t numModes() const { return nModes; }

    /** Predicted power of core @p c at mode @p m [W]. */
    Watts &powerW(std::size_t c, PowerMode m);
    Watts powerW(std::size_t c, PowerMode m) const;

    /** Predicted BIPS of core @p c at mode @p m. */
    double &bips(std::size_t c, PowerMode m);
    double bips(std::size_t c, PowerMode m) const;

    /**
     * Contiguous row of core @p c's predicted powers, one entry per
     * mode — the matrix is row-major, so per-core kernels (DP inner
     * loops, frontier builds) can stream a core's modes without the
     * per-element bounds-checked accessor.
     */
    const double *powerRow(std::size_t c) const;

    /** Contiguous row of core @p c's predicted BIPS (see powerRow). */
    const double *bipsRow(std::size_t c) const;

    /** Total power of an assignment (one mode per core) [W]. */
    Watts totalPowerW(const std::vector<PowerMode> &assign) const;

    /** Total BIPS of an assignment. */
    double totalBips(const std::vector<PowerMode> &assign) const;

  private:
    std::size_t index(std::size_t c, PowerMode m) const;

    std::size_t nCores;
    std::size_t nModes;
    std::vector<double> power;
    std::vector<double> perf;
};

} // namespace gpm

#endif // GPM_CORE_TYPES_HH
