/**
 * @file
 * The many-core approximate policy engine: three budget-partitioning
 * policies that trade the exact MaxBIPS search for bounded-gap
 * heuristics whose decision latency stays within the paper's 500 µs
 * interval at 64-1024 cores. All three run on the shared MCKP
 * kernels (core/mckp.hh) and honour the policies.hh contract: a
 * budget-feasible assignment whenever one exists, all-slowest
 * otherwise.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/mckp.hh"
#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/** The contract's infeasible-budget fallback. */
std::vector<PowerMode>
allSlowest(const ModeMatrix &m)
{
    return std::vector<PowerMode>(
        m.numCores(), static_cast<PowerMode>(m.numModes() - 1));
}

} // namespace

MaxBipsDpPolicy::MaxBipsDpPolicy(unsigned grid_bins)
    : grid(grid_bins), label("MaxBIPS-DP")
{
    GPM_ASSERT(grid_bins > 0);
    if (grid_bins != defaultGrid)
        label += std::to_string(grid_bins);
}

std::vector<PowerMode>
MaxBipsDpPolicy::solve(const ModeMatrix &m, Watts budget_w,
                       unsigned grid_bins)
{
    GPM_ASSERT(grid_bins > 0);
    FrontierSet f = buildFrontiers(m);
    if (f.minTotalPowerW > budget_w)
        return allSlowest(m);

    const std::size_t n = m.numCores();
    const std::size_t G = grid_bins;
    const double slack = budget_w - f.minTotalPowerW;
    std::vector<std::uint8_t> pos(n, 0);

    if (slack > 0.0) {
        const double bin_w = slack / static_cast<double>(G);
        // Hull-point costs in grid bins, relative to the core's
        // cheapest mode and rounded UP: a DP solution whose bins sum
        // to <= G then costs at most `slack` real watts, so the
        // result is budget-feasible by construction (the cheapest
        // choice costs 0 bins, so a feasible solution always
        // exists).
        auto bins_of = [&](std::size_t c, std::size_t h) {
            double d = f.at(c, h).powerW - f.at(c, 0).powerW;
            return std::ceil(d / bin_w);
        };
        // Full DP table, one row per core prefix: rows[c * W + g] is
        // the best BIPS of cores [0, c) using at most g bins.
        // Keeping every row — instead of two rolling rows plus an
        // n x (G + 1) choice matrix — turns the inner loop into a
        // pure max() the compiler vectorizes (the byte-wide choice
        // store would otherwise break the blend), and the backtrack
        // recovers each core's choice by re-testing its <= k hull
        // points against the stored rows. The table is thread-local
        // scratch so steady-state decisions pay no allocation.
        const std::size_t W = G + 1;
        static thread_local std::vector<double> rows;
        rows.resize((n + 1) * W);
        std::fill_n(rows.data(), W, 0.0);
        for (std::size_t c = 0; c < n; c++) {
            // Adjacent non-overlapping rows; __restrict spares the
            // vectorizer its runtime alias check on every row pass.
            const double *__restrict dps = rows.data() + c * W;
            double *__restrict nds = rows.data() + (c + 1) * W;
            // Cheapest choice (0 bins) first: flat vectorizable add.
            const double v0 = f.at(c, 0).bips;
            for (std::size_t g = 0; g < W; g++)
                nds[g] = dps[g] + v0;
            for (std::size_t h = 1; h < f.sizeOf(c); h++) {
                double bins = bins_of(c, h);
                if (bins > static_cast<double>(G))
                    break; // hull costs only grow with h
                const auto cost = static_cast<std::size_t>(bins);
                const double vh = f.at(c, h).bips;
                for (std::size_t g = cost; g < W; g++) {
                    double cand = dps[g - cost] + vh;
                    nds[g] = cand > nds[g] ? cand : nds[g];
                }
            }
        }
        // Backtrack: per core, re-test its hull points against the
        // stored rows to find a choice achieving the optimum. The
        // candidates are recomputed with the exact additions of the
        // forward pass, so the equality comparison matches bitwise;
        // the forward row value is the max over these very
        // candidates, so a match always exists.
        std::size_t g = G;
        for (std::size_t c = n; c-- > 0;) {
            const double *dps = rows.data() + c * W;
            const double target = rows[(c + 1) * W + g];
            for (std::size_t h = 0; h < f.sizeOf(c); h++) {
                double bins = bins_of(c, h);
                if (bins > static_cast<double>(g))
                    break; // unaffordable here, and costs only grow
                const auto cost = static_cast<std::size_t>(bins);
                if (dps[g - cost] + f.at(c, h).bips == target) {
                    pos[c] = static_cast<std::uint8_t>(h);
                    g -= cost;
                    break;
                }
            }
        }
    }
    // Quantization leaves real-watt slack on the table (each chosen
    // hull point was charged up to one bin too much); spend it with
    // exact-cost greedy upgrades.
    greedyUpgradeHeap(f, budget_w, pos);
    return assignmentFromPositions(f, pos);
}

std::vector<PowerMode>
MaxBipsDpPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    return solve(*in.predicted, in.budgetW, grid);
}

std::vector<PowerMode>
WaterFillPolicy::solve(const ModeMatrix &m, Watts budget_w)
{
    FrontierSet f = buildFrontiers(m);
    if (f.minTotalPowerW > budget_w)
        return allSlowest(m);

    const std::size_t n = m.numCores();
    std::vector<std::uint8_t> pos(n, 0);
    double power = f.minTotalPowerW;
    // Level-synchronous water-filling: each round raises every core
    // by at most one frontier level, so the "water level" rises
    // fairly across cores instead of draining the budget into
    // whichever core is scanned first. A core whose next level does
    // not fit is skipped, not dropped — a later round may still
    // afford it after cheaper cores stop rising. Terminates: each
    // round either advances a position (bounded by total hull size)
    // or changes nothing.
    for (bool changed = true; changed;) {
        changed = false;
        // Once the leftover budget cannot fit even the globally
        // cheapest increment, no further round can change anything.
        if (budget_w - power < f.minIncPowerW)
            break;
        for (std::size_t c = 0; c < n; c++) {
            if (pos[c] + 1u >= f.sizeOf(c))
                continue;
            double dp = f.at(c, pos[c] + 1).powerW -
                f.at(c, pos[c]).powerW;
            if (power + dp <= budget_w) {
                power += dp;
                pos[c]++;
                changed = true;
            }
        }
    }
    return assignmentFromPositions(f, pos);
}

std::vector<PowerMode>
WaterFillPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    return solve(*in.predicted, in.budgetW);
}

std::vector<PowerMode>
GreedyTurboPolicy::solve(const ModeMatrix &m, Watts budget_w)
{
    FrontierSet f = buildFrontiers(m);
    if (f.minTotalPowerW > budget_w)
        return allSlowest(m);
    std::vector<std::uint8_t> pos(m.numCores(), 0);
    greedyUpgradeHeap(f, budget_w, pos);
    return assignmentFromPositions(f, pos);
}

std::vector<PowerMode>
GreedyTurboPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    return solve(*in.predicted, in.budgetW);
}

} // namespace gpm
