#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::vector<PowerMode>
UniformBudgetPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    const ModeMatrix &m = *in.predicted;
    const std::size_t n = m.numCores();
    Watts slice = in.budgetW / static_cast<double>(n);

    // Each core independently picks its fastest mode fitting its
    // equal share of the budget; no global coordination (the
    // Merkel-style per-core budgeting baseline). Unspent slack in
    // one core's slice is NOT transferable — that inability is
    // exactly what global management fixes.
    std::vector<PowerMode> assign(
        n, static_cast<PowerMode>(m.numModes() - 1));
    for (std::size_t c = 0; c < n; c++) {
        for (std::size_t mi = 0; mi < m.numModes(); mi++) {
            auto mode = static_cast<PowerMode>(mi);
            if (m.powerW(c, mode) <= slice) {
                assign[c] = mode;
                break;
            }
        }
    }
    return assign;
}

} // namespace gpm
