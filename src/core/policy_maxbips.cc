#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/mckp.hh"
#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

MaxBipsPolicy::MaxBipsPolicy(Search search_)
    : search(search_)
{
}

namespace
{

/** Exhaustive odometer enumeration of modes^cores. */
std::vector<PowerMode>
solveExhaustive(const ModeMatrix &m, Watts budget_w)
{
    const std::size_t n = m.numCores();
    const std::size_t k = m.numModes();
    std::vector<PowerMode> cur(n, 0);
    std::vector<PowerMode> best(n,
                                static_cast<PowerMode>(k - 1));
    double best_bips = -1.0;
    Watts best_power = 0.0;

    for (;;) {
        Watts p = m.totalPowerW(cur);
        if (p <= budget_w) {
            double b = m.totalBips(cur);
            if (b > best_bips ||
                (b == best_bips && p < best_power)) {
                best_bips = b;
                best_power = p;
                best = cur;
            }
        }
        // Odometer increment.
        std::size_t c = 0;
        while (c < n) {
            if (++cur[c] < k)
                break;
            cur[c] = 0;
            c++;
        }
        if (c == n)
            break;
    }
    return best;
}

/**
 * Depth-first branch-and-bound with the exact fractional
 * multiple-choice-knapsack (MCKP) bound; same result as exhaustive
 * search (up to ties in total BIPS).
 *
 * This is a multiple-choice knapsack: per core pick one mode. Each
 * core's (power, BIPS) points are reduced to their efficiency
 * frontier (upper-left convex hull); the node bound assigns every
 * remaining core its cheapest mode and then spends the remaining
 * budget on hull *increments* in globally decreasing BIPS-per-watt
 * order, taking the last one fractionally — the LP relaxation of
 * the remaining subproblem, which is a valid (and tight) upper
 * bound. Increment lists are pre-merged per suffix so the bound is
 * O(remaining increments) per node. A greedy incumbent (cheapest
 * modes + heap-driven best-ratio upgrades, shared with
 * GreedyTurboPolicy) is seeded before the search so pruning bites
 * immediately.
 */
class BnbSolver
{
  public:
    BnbSolver(const ModeMatrix &m, Watts budget)
        : m(m), budget(budget), n(m.numCores()), k(m.numModes()),
          f(buildFrontiers(m)), cur(n, 0),
          best(n, static_cast<PowerMode>(k - 1)),
          sufMinPower(n + 1, 0.0), sufBaseBips(n + 1, 0.0),
          sufIncs(n + 1)
    {
        for (std::size_t c = n; c-- > 0;) {
            sufMinPower[c] = sufMinPower[c + 1] + f.at(c, 0).powerW;
            sufBaseBips[c] = sufBaseBips[c + 1] + f.at(c, 0).bips;
        }
        // Suffix-merged increment lists, ratio-descending.
        for (std::size_t c = n; c-- > 0;) {
            sufIncs[c] = sufIncs[c + 1];
            for (std::size_t h = 1; h < f.sizeOf(c); h++) {
                Increment inc;
                inc.dp = f.at(c, h).powerW - f.at(c, h - 1).powerW;
                inc.db = f.at(c, h).bips - f.at(c, h - 1).bips;
                sufIncs[c].push_back(inc);
            }
            std::sort(sufIncs[c].begin(), sufIncs[c].end(),
                      [](const Increment &a, const Increment &b) {
                          return a.db * b.dp > b.db * a.dp;
                      });
        }
        seedGreedyIncumbent();
    }

    std::vector<PowerMode>
    run()
    {
        dfs(0, 0.0, 0.0);
        return best;
    }

  private:
    /** Feasible all-cheapest start plus heap-driven best-ratio hull
     *  upgrades (the shared seeder; O(increments log n) instead of
     *  the old O(n * k) rescan per upgrade). */
    void
    seedGreedyIncumbent()
    {
        if (f.minTotalPowerW > budget)
            return; // nothing feasible; keep all-slowest default
        std::vector<std::uint8_t> pos(n, 0);
        GreedyResult g = greedyUpgradeHeap(f, budget, pos);
        best = assignmentFromPositions(f, pos);
        bestBips = g.bips;
        bestPower = g.powerW;
    }

    void
    dfs(std::size_t c, Watts power, double bips)
    {
        if (c == n) {
            if (bips > bestBips ||
                (bips == bestBips && power < bestPower)) {
                bestBips = bips;
                bestPower = power;
                best = cur;
            }
            return;
        }
        Watts remaining = budget - power;
        // Feasibility: even the cheapest remaining modes overflow.
        if (sufMinPower[c] > remaining)
            return;
        // MCKP LP bound: cheapest modes everywhere, leftover budget
        // filled with frontier increments by decreasing ratio, the
        // last one fractionally.
        double slack = remaining - sufMinPower[c];
        double bound = bips + sufBaseBips[c];
        for (const Increment &inc : sufIncs[c]) {
            if (slack <= 0.0)
                break;
            if (inc.dp <= slack) {
                bound += inc.db;
                slack -= inc.dp;
            } else {
                bound += inc.db * slack / inc.dp;
                slack = 0.0;
            }
        }
        if (bound < bestBips)
            return;
        // Try faster modes first so good incumbents appear early.
        for (std::size_t mi = 0; mi < k; mi++) {
            auto mode = static_cast<PowerMode>(mi);
            Watts p = power + m.powerW(c, mode);
            if (p + sufMinPower[c + 1] > budget)
                continue;
            cur[c] = mode;
            dfs(c + 1, p, bips + m.bips(c, mode));
        }
    }

    /** One convex-hull upgrade step of a core. */
    struct Increment
    {
        double dp = 0.0;
        double db = 0.0;
    };

    const ModeMatrix &m;
    const Watts budget;
    const std::size_t n;
    const std::size_t k;
    /** Per-core efficiency frontiers with recorded mode indices. */
    const FrontierSet f;
    std::vector<PowerMode> cur;
    std::vector<PowerMode> best;
    std::vector<double> sufMinPower;
    std::vector<double> sufBaseBips;
    /** Ratio-sorted hull increments of cores c..n-1. */
    std::vector<std::vector<Increment>> sufIncs;
    double bestBips = -1.0;
    Watts bestPower = 0.0;
};

} // namespace

std::vector<PowerMode>
MaxBipsPolicy::solve(const ModeMatrix &m, Watts budget_w,
                     Search search)
{
    if (search == Search::Auto) {
        double states = std::pow(static_cast<double>(m.numModes()),
                                 static_cast<double>(m.numCores()));
        search = states <= 262144.0 ? Search::Exhaustive
                                    : Search::BranchAndBound;
    }
    if (search == Search::Exhaustive)
        return solveExhaustive(m, budget_w);
    return BnbSolver(m, budget_w).run();
}

std::vector<PowerMode>
MaxBipsPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    return solve(*in.predicted, in.budgetW, search);
}

std::vector<PowerMode>
OraclePolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.oracle != nullptr);
    return MaxBipsPolicy::solve(*in.oracle, in.budgetW,
                                MaxBipsPolicy::Search::Auto);
}

} // namespace gpm
