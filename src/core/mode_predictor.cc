#include "mode_predictor.hh"

#include <cmath>

#include "util/logging.hh"

namespace gpm
{

ModePredictor::ModePredictor(const DvfsTable &dvfs_,
                             MicroSec explore_us, Watts idle_power)
    : dvfs(dvfs_), exploreUs(explore_us), idlePowerW(idle_power)
{
    GPM_ASSERT(explore_us > 0.0);
}

double
ModePredictor::transitionFactor(PowerMode from, PowerMode to) const
{
    if (from == to)
        return 1.0;
    MicroSec t = dvfs.transitionUs(from, to);
    return exploreUs / (exploreUs + t);
}

ModeMatrix
ModePredictor::predict(const std::vector<CoreSample> &samples) const
{
    GPM_ASSERT(!samples.empty());
    ModeMatrix m(samples.size(), dvfs.numModes());
    for (std::size_t c = 0; c < samples.size(); c++) {
        const CoreSample &s = samples[c];
        double p_scale_cur = dvfs.powerScale(s.mode);
        double f_scale_cur = dvfs.perfScale(s.mode);
        for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
            auto to = static_cast<PowerMode>(mi);
            if (!s.active) {
                m.powerW(c, to) = idlePowerW * dvfs.powerScale(to);
                m.bips(c, to) = 0.0;
                continue;
            }
            double p_new =
                s.powerW * dvfs.powerScale(to) / p_scale_cur;
            if (to != s.mode) {
                // The scored interval includes the transition
                // stall, during which power is still drawn at the
                // departing operating point: blend accordingly
                // (mirrors the BIPS 500/(500+t) discount).
                MicroSec tr = dvfs.transitionUs(s.mode, to);
                p_new = (tr * s.powerW + exploreUs * p_new) /
                    (exploreUs + tr);
            }
            m.powerW(c, to) = p_new;
            m.bips(c, to) = s.bips * dvfs.perfScale(to) /
                f_scale_cur * transitionFactor(s.mode, to);
        }
    }
    return m;
}

void
ModePredictor::recordOutcome(const ModeMatrix &predicted,
                             const std::vector<PowerMode> &chosen,
                             const std::vector<CoreSample> &actual)
{
    GPM_ASSERT(chosen.size() == predicted.numCores());
    GPM_ASSERT(actual.size() == predicted.numCores());
    for (std::size_t c = 0; c < chosen.size(); c++) {
        if (!actual[c].active)
            continue;
        double pp = predicted.powerW(c, chosen[c]);
        double pb = predicted.bips(c, chosen[c]);
        if (actual[c].powerW > 0.0 && pp > 0.0) {
            powerErr.add(
                std::abs(pp - actual[c].powerW) / actual[c].powerW);
        }
        if (actual[c].bips > 0.0 && pb > 0.0) {
            bipsErr.add(
                std::abs(pb - actual[c].bips) / actual[c].bips);
        }
    }
    nOutcomes++;
}

double
ModePredictor::meanPowerError() const
{
    return powerErr.mean();
}

double
ModePredictor::meanBipsError() const
{
    return bipsErr.mean();
}

} // namespace gpm
