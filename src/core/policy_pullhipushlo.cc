#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::vector<PowerMode>
PullHiPushLoPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr && in.samples != nullptr);
    const ModeMatrix &m = *in.predicted;
    const std::vector<CoreSample> &samples = *in.samples;
    const std::size_t n = m.numCores();
    const auto slowest =
        static_cast<PowerMode>(m.numModes() - 1);

    // Start from the modes the cores are currently in.
    std::vector<PowerMode> assign(n);
    for (std::size_t c = 0; c < n; c++)
        assign[c] = samples[c].mode;

    Watts total = m.totalPowerW(assign);

    // Phase 1 — pull the high ones: while over budget, slow down the
    // core drawing the most power; ties prefer the more memory-bound
    // task (it loses the least performance).
    std::size_t guard = n * m.numModes() + 1;
    while (total > in.budgetW && guard-- > 0) {
        std::size_t pick = n;
        for (std::size_t c = 0; c < n; c++) {
            if (assign[c] == slowest)
                continue;
            if (pick == n)
                pick = c;
            else {
                double pw_c = m.powerW(c, assign[c]);
                double pw_p = m.powerW(pick, assign[pick]);
                if (pw_c > pw_p ||
                    (pw_c == pw_p &&
                     samples[c].memIntensity >
                         samples[pick].memIntensity)) {
                    pick = c;
                }
            }
        }
        if (pick == n)
            break; // everything already at the floor
        total -= m.powerW(pick, assign[pick]);
        assign[pick] = static_cast<PowerMode>(assign[pick] + 1);
        total += m.powerW(pick, assign[pick]);
    }

    // Phase 2 — push the low ones: while slack remains, speed up the
    // lowest-power core whose upgrade still fits.
    guard = n * m.numModes() + 1;
    while (guard-- > 0) {
        std::size_t pick = n;
        for (std::size_t c = 0; c < n; c++) {
            if (assign[c] == 0)
                continue;
            auto next = static_cast<PowerMode>(assign[c] - 1);
            Watts delta =
                m.powerW(c, next) - m.powerW(c, assign[c]);
            if (total + delta > in.budgetW)
                continue;
            if (pick == n ||
                m.powerW(c, assign[c]) <
                    m.powerW(pick, assign[pick])) {
                pick = c;
            }
        }
        if (pick == n)
            break;
        auto next = static_cast<PowerMode>(assign[pick] - 1);
        total += m.powerW(pick, next) - m.powerW(pick, assign[pick]);
        assign[pick] = next;
    }
    return assign;
}

} // namespace gpm
