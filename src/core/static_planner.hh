/**
 * @file
 * Optimistic static mode assignment (paper Section 5.7): the lower
 * bound for dynamic management. With oracle knowledge of each
 * benchmark's *whole-run* behaviour at every mode, choose the fixed
 * per-core mode combination that maximizes throughput while its
 * average power fits the budget. The chosen combination is then
 * simulated with no further mode changes.
 */

#ifndef GPM_CORE_STATIC_PLANNER_HH
#define GPM_CORE_STATIC_PLANNER_HH

#include <vector>

#include "core/types.hh"
#include "power/dvfs.hh"

namespace gpm
{

/** Whole-run behaviour of one workload at one mode. */
struct StaticModeStats
{
    /** Average power over the native run [W]. */
    Watts avgPowerW = 0.0;
    /**
     * Peak explore-window power [W]. A static assignment has no
     * controller to correct overshoots, so the budget must hold at
     * the peak; this headroom requirement is precisely why static
     * management trails dynamic policies (paper Section 5.7).
     */
    Watts peakPowerW = 0.0;
    /** Whole-run throughput [BIPS]. */
    double bips = 0.0;
};

/** Which power figure the static plan must fit to the budget. */
enum class StaticFit
{
    Peak,    ///< worst explore window fits (sound: no controller)
    Average, ///< whole-run average fits (optimistic ablation)
};

/**
 * Chooses the throughput-maximal static assignment whose summed
 * power fits the budget. Uses the same search machinery as MaxBIPS
 * on a matrix built from native whole-run statistics.
 *
 * @param per_core  per core: whole-run stats at every mode
 * @param budget_w  chip budget for the cores [W]
 * @param fit       peak-window (default) or average fitting
 * @return one fixed mode per core (all-slowest when nothing fits)
 */
std::vector<PowerMode> planStaticAssignment(
    const std::vector<std::vector<StaticModeStats>> &per_core,
    Watts budget_w, StaticFit fit = StaticFit::Peak);

} // namespace gpm

#endif // GPM_CORE_STATIC_PLANNER_HH
