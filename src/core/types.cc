#include "types.hh"

#include "util/logging.hh"

namespace gpm
{

ModeMatrix::ModeMatrix(std::size_t cores, std::size_t modes)
    : nCores(cores), nModes(modes), power(cores * modes, 0.0),
      perf(cores * modes, 0.0)
{
    GPM_ASSERT(cores > 0 && modes > 0);
}

std::size_t
ModeMatrix::index(std::size_t c, PowerMode m) const
{
    GPM_ASSERT(c < nCores && m < nModes);
    return c * nModes + m;
}

Watts &
ModeMatrix::powerW(std::size_t c, PowerMode m)
{
    return power[index(c, m)];
}

Watts
ModeMatrix::powerW(std::size_t c, PowerMode m) const
{
    return power[index(c, m)];
}

double &
ModeMatrix::bips(std::size_t c, PowerMode m)
{
    return perf[index(c, m)];
}

double
ModeMatrix::bips(std::size_t c, PowerMode m) const
{
    return perf[index(c, m)];
}

const double *
ModeMatrix::powerRow(std::size_t c) const
{
    GPM_ASSERT(c < nCores);
    return power.data() + c * nModes;
}

const double *
ModeMatrix::bipsRow(std::size_t c) const
{
    GPM_ASSERT(c < nCores);
    return perf.data() + c * nModes;
}

Watts
ModeMatrix::totalPowerW(const std::vector<PowerMode> &assign) const
{
    GPM_ASSERT(assign.size() == nCores);
    Watts total = 0.0;
    for (std::size_t c = 0; c < nCores; c++)
        total += powerW(c, assign[c]);
    return total;
}

double
ModeMatrix::totalBips(const std::vector<PowerMode> &assign) const
{
    GPM_ASSERT(assign.size() == nCores);
    double total = 0.0;
    for (std::size_t c = 0; c < nCores; c++)
        total += bips(c, assign[c]);
    return total;
}

} // namespace gpm
