#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::vector<PowerMode>
PriorityPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    const ModeMatrix &m = *in.predicted;
    const std::size_t n = m.numCores();
    const auto slowest =
        static_cast<PowerMode>(m.numModes() - 1);

    // Start everything in the cheapest mode.
    std::vector<PowerMode> assign(n, slowest);
    Watts total = m.totalPowerW(assign);

    // Upgrade in priority order (highest core index first). A core
    // whose next mode would exceed the budget is left behind and the
    // next core in priority order is tried — the paper's
    // "out-of-order" release behaviour for small budget steps.
    for (std::size_t pc = n; pc-- > 0;) {
        while (assign[pc] > 0) {
            auto next = static_cast<PowerMode>(assign[pc] - 1);
            Watts delta =
                m.powerW(pc, next) - m.powerW(pc, assign[pc]);
            if (total + delta > in.budgetW)
                break;
            total += delta;
            assign[pc] = next;
        }
    }
    return assign;
}

} // namespace gpm
