#include "static_planner.hh"

#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::vector<PowerMode>
planStaticAssignment(
    const std::vector<std::vector<StaticModeStats>> &per_core,
    Watts budget_w, StaticFit fit)
{
    GPM_ASSERT(!per_core.empty());
    std::size_t n_modes = per_core.front().size();
    GPM_ASSERT(n_modes > 0);
    for (const auto &row : per_core)
        GPM_ASSERT(row.size() == n_modes);

    ModeMatrix m(per_core.size(), n_modes);
    for (std::size_t c = 0; c < per_core.size(); c++) {
        for (std::size_t mi = 0; mi < n_modes; mi++) {
            auto mode = static_cast<PowerMode>(mi);
            m.powerW(c, mode) = fit == StaticFit::Peak
                ? per_core[c][mi].peakPowerW
                : per_core[c][mi].avgPowerW;
            m.bips(c, mode) = per_core[c][mi].bips;
        }
    }
    return MaxBipsPolicy::solve(m, budget_w,
                                MaxBipsPolicy::Search::Auto);
}

} // namespace gpm
