#include "global_manager.hh"

#include "util/logging.hh"

namespace gpm
{

GlobalManager::GlobalManager(const DvfsTable &dvfs_,
                             std::unique_ptr<Policy> policy_,
                             MicroSec explore_us, Watts idle_power)
    : dvfs(dvfs_), policy(std::move(policy_)),
      pred(dvfs_, explore_us, idle_power)
{
    GPM_ASSERT(policy != nullptr);
}

std::vector<PowerMode>
GlobalManager::atExplore(const std::vector<CoreSample> &samples,
                         Watts budget_w,
                         const ModeMatrix *oracle_matrix)
{
    GPM_ASSERT(!samples.empty());

    // Score the prediction made last interval against what the local
    // monitors now report (Section 5.5 accuracy statistics).
    if (lastPrediction && lastChosen.size() == samples.size())
        pred.recordOutcome(*lastPrediction, lastChosen, samples);

    // Budget-overshoot bookkeeping: overshoots happen when behaviour
    // shifts inside an interval; they are corrected by this decision.
    Watts measured = 0.0;
    for (const auto &s : samples)
        measured += s.powerW;
    if (lastBudgetW > 0.0 && measured > lastBudgetW)
        stats_.overshoots++;

    ModeMatrix predicted = pred.predict(samples);

    PolicyInput in;
    in.samples = &samples;
    in.predicted = &predicted;
    in.budgetW = budget_w;
    in.dvfs = &dvfs;
    if (policy->wantsOracle()) {
        GPM_ASSERT(oracle_matrix != nullptr);
        in.oracle = oracle_matrix;
    }

    std::vector<PowerMode> assign = policy->decide(in);
    GPM_ASSERT(assign.size() == samples.size());
    for (auto m : assign)
        GPM_ASSERT(dvfs.valid(m));

    for (std::size_t c = 0; c < assign.size(); c++)
        if (assign[c] != samples[c].mode)
            stats_.modeSwitches++;
    stats_.decisions++;

    lastPrediction = std::move(predicted);
    lastChosen = assign;
    lastBudgetW = budget_w;
    return assign;
}

} // namespace gpm
